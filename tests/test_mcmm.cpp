// Multi-corner/multi-mode propagation: a C-corner engine must be
// bit-identical, corner for corner, to C independent single-corner engines
// built with the same scale sets — through the dense forward pass, the
// frontier-sparse incremental pass, endpoint evaluation (setup and hold),
// the aggregate caches, and ScenarioBatch's corner × delta-set cross
// product. Also covers the corner-aware API surface (corner_id, targeted
// vs broadcast annotate, merged_summary semantics) and the analysis-layer
// corner lint rules.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "analysis/rules.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace insta {
namespace {

using core::CornerId;
using core::CornerSpec;
using core::Mode;
using core::SlackSummary;

/// The corner set all multi-corner tests use: a byte-exact default corner
/// plus a faster and a slower scale set.
std::vector<CornerSpec> three_corners() {
  return {CornerSpec{"typ", 1.0f, 1.0f}, CornerSpec{"fast", 0.9f, 0.95f},
          CornerSpec{"slow", 1.12f, 1.05f}};
}

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed, bool hold = false) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    ref::GoldenOptions gopt;
    gopt.enable_hold = hold;
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays,
                                           gopt);
    sta->update_full();
  }

  [[nodiscard]] core::Engine make_engine(std::vector<CornerSpec> corners,
                                         bool hold = false) const {
    core::EngineOptions opt;
    opt.top_k = 8;
    opt.enable_hold = hold;
    opt.corners = std::move(corners);
    return core::Engine(*sta, opt);
  }
};

/// Bitwise float equality that also matches non-finite pairs.
::testing::AssertionResult same_bits(float a, float b) {
  if (a == b || (std::isnan(a) && std::isnan(b)) ||
      (std::isinf(a) && std::isinf(b) && std::signbit(a) == std::signbit(b))) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bitwise)";
}

/// Asserts corner `c` of `multi` matches the single-corner `solo` exactly:
/// every endpoint slack (setup and, when enabled, hold) and every
/// aggregate cache, bit for bit.
void expect_corner_identical(const core::Engine& multi, CornerId c,
                             const core::Engine& solo, bool hold) {
  const auto multi_slacks = multi.endpoint_slacks(c);
  const auto solo_slacks = solo.endpoint_slacks();
  ASSERT_EQ(multi_slacks.size(), solo_slacks.size());
  for (std::size_t e = 0; e < solo_slacks.size(); ++e) {
    EXPECT_TRUE(same_bits(multi_slacks[e], solo_slacks[e]))
        << "corner " << c << " endpoint " << e;
  }
  EXPECT_EQ(multi.tns(c), solo.tns());
  EXPECT_EQ(multi.wns(c), solo.wns());
  EXPECT_EQ(multi.num_violations(c), solo.num_violations());
  EXPECT_EQ(multi.summary(Mode::kSetup, c), solo.summary(Mode::kSetup, 0));
  if (!hold) return;
  for (std::size_t e = 0; e < solo_slacks.size(); ++e) {
    const auto ep = static_cast<timing::EndpointId>(e);
    EXPECT_TRUE(
        same_bits(multi.endpoint_hold_slack(ep, c), solo.endpoint_hold_slack(ep)))
        << "corner " << c << " hold endpoint " << e;
  }
  EXPECT_EQ(multi.ths(c), solo.ths());
  EXPECT_EQ(multi.whs(c), solo.whs());
  EXPECT_EQ(multi.num_hold_violations(c), solo.num_hold_violations());
  EXPECT_EQ(multi.summary(Mode::kHold, c), solo.summary(Mode::kHold, 0));
}

class Mcmm : public ::testing::TestWithParam<std::uint64_t> {};

/// Dense forward: C corners in one engine == C independent engines.
TEST_P(Mcmm, DenseForwardMatchesIndependentEngines) {
  const Fixture f(GetParam());
  const auto corners = three_corners();
  core::Engine multi = f.make_engine(corners);
  multi.run_forward();
  ASSERT_EQ(multi.num_corners(), corners.size());
  for (std::size_t c = 0; c < corners.size(); ++c) {
    core::Engine solo = f.make_engine({corners[c]});
    solo.run_forward();
    expect_corner_identical(multi, static_cast<CornerId>(c), solo, false);
  }
}

/// Same bit-identity through the hold (early/min) planes.
TEST_P(Mcmm, HoldPlanesMatchIndependentEngines) {
  const Fixture f(GetParam(), /*hold=*/true);
  const auto corners = three_corners();
  core::Engine multi = f.make_engine(corners, /*hold=*/true);
  multi.run_forward();
  for (std::size_t c = 0; c < corners.size(); ++c) {
    core::Engine solo = f.make_engine({corners[c]}, /*hold=*/true);
    solo.run_forward();
    expect_corner_identical(multi, static_cast<CornerId>(c), solo, true);
  }
}

/// Frontier-sparse incremental: a randomized sequence of broadcast
/// annotates + run_forward_incremental keeps every corner bit-identical to
/// its independent twin replaying the same sequence.
TEST_P(Mcmm, IncrementalSparseMatchesIndependentEngines) {
  const Fixture f(GetParam(), /*hold=*/true);
  const auto corners = three_corners();
  core::Engine multi = f.make_engine(corners, /*hold=*/true);
  multi.run_forward();
  std::vector<core::Engine> solos;
  for (const CornerSpec& spec : corners) {
    solos.push_back(f.make_engine({spec}, /*hold=*/true));
    solos.back().run_forward();
  }

  util::Rng rng(GetParam() * 31 + 5);
  const std::vector<gen::Resize> changes =
      gen::random_changelist(*f.gd.design, *f.graph, rng, 6);
  for (const gen::Resize& rz : changes) {
    const auto deltas = f.calc->estimate_eco(rz.cell, rz.new_libcell);
    multi.annotate(deltas);
    multi.run_forward_incremental();
    for (std::size_t c = 0; c < corners.size(); ++c) {
      solos[c].annotate(deltas);
      solos[c].run_forward_incremental();
      expect_corner_identical(multi, static_cast<CornerId>(c), solos[c],
                              true);
    }
  }
}

/// Targeted annotate touches exactly its corner: the others keep their
/// bytes, the target matches an independent engine given the same edit.
TEST_P(Mcmm, TargetedAnnotateIsolatesCorners) {
  const Fixture f(GetParam());
  const auto corners = three_corners();
  core::Engine multi = f.make_engine(corners);
  multi.run_forward();
  std::vector<core::Engine> solos;
  for (const CornerSpec& spec : corners) {
    solos.push_back(f.make_engine({spec}));
    solos.back().run_forward();
  }

  util::Rng rng(GetParam() * 13 + 2);
  const std::vector<gen::Resize> changes =
      gen::random_changelist(*f.gd.design, *f.graph, rng, 3);
  const CornerId target = 1;  // "fast"
  for (const gen::Resize& rz : changes) {
    const auto deltas = f.calc->estimate_eco(rz.cell, rz.new_libcell);
    multi.annotate(deltas, target);
    solos[static_cast<std::size_t>(target)].annotate(deltas);
  }
  multi.run_forward_incremental();
  solos[static_cast<std::size_t>(target)].run_forward_incremental();
  for (std::size_t c = 0; c < corners.size(); ++c) {
    expect_corner_identical(multi, static_cast<CornerId>(c), solos[c], false);
  }
}

/// merged_summary is the endpoint-major worst-case fold across corners.
TEST_P(Mcmm, MergedSummaryIsPerEndpointWorstCase) {
  const Fixture f(GetParam());
  core::Engine multi = f.make_engine(three_corners());
  multi.run_forward();

  const std::size_t num_eps = f.graph->endpoints().size();
  double tns = 0.0;
  double wns = 0.0;
  bool any = false;
  int violations = 0;
  for (std::size_t e = 0; e < num_eps; ++e) {
    float m = std::numeric_limits<float>::infinity();
    for (std::size_t c = 0; c < multi.num_corners(); ++c) {
      const float s = multi.endpoint_slacks(static_cast<CornerId>(c))[e];
      if (std::isfinite(s) && s < m) m = s;
    }
    if (!std::isfinite(m)) continue;
    if (!any || m < wns) wns = m;
    any = true;
    if (m < 0.0f) {
      tns += m;
      ++violations;
    }
  }
  const SlackSummary merged = multi.merged_summary(Mode::kSetup);
  EXPECT_EQ(merged.tns, tns);
  EXPECT_EQ(merged.wns, any ? wns : 0.0);
  EXPECT_EQ(merged.violations, violations);

  // On a single-corner engine the merged view IS corner 0.
  core::Engine solo = f.make_engine({});
  solo.run_forward();
  EXPECT_EQ(solo.merged_summary(Mode::kSetup), solo.summary(Mode::kSetup, 0));
}

/// ScenarioBatch broadcasts each delta-set across the corners; per-corner
/// summaries must be bit-identical to single-corner batches, and the
/// merged scenario summary must follow the same worst-case fold.
TEST_P(Mcmm, ScenarioBatchCrossProductMatchesSingleCornerBatches) {
  const Fixture f(GetParam(), /*hold=*/true);
  const auto corners = three_corners();
  core::Engine multi = f.make_engine(corners, /*hold=*/true);
  multi.run_forward();

  util::Rng rng(GetParam() * 97 + 3);
  const std::vector<gen::Resize> changes =
      gen::random_changelist(*f.gd.design, *f.graph, rng, 4);
  std::vector<std::vector<timing::ArcDelta>> scenarios;
  for (const gen::Resize& rz : changes) {
    scenarios.push_back(f.calc->estimate_eco(rz.cell, rz.new_libcell));
  }

  core::ScenarioBatch batch(multi);
  const std::vector<core::ScenarioResult> results = batch.evaluate(scenarios);
  ASSERT_EQ(results.size(), scenarios.size());

  for (std::size_t c = 0; c < corners.size(); ++c) {
    core::Engine solo = f.make_engine({corners[c]}, /*hold=*/true);
    solo.run_forward();
    core::ScenarioBatch solo_batch(solo);
    const auto solo_results = solo_batch.evaluate(scenarios);
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i].setup_by_corner.size(), corners.size());
      EXPECT_EQ(results[i].setup_by_corner[c], solo_results[i].setup)
          << "scenario " << i << " corner " << c;
      EXPECT_EQ(results[i].hold_by_corner[c], solo_results[i].hold)
          << "scenario " << i << " corner " << c;
    }
  }

  // Merged == what Engine reports after actually committing the deltas.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    core::Engine committed = f.make_engine(corners, /*hold=*/true);
    committed.run_forward();
    committed.annotate(scenarios[i]);
    committed.run_forward_incremental();
    EXPECT_EQ(results[i].setup, committed.merged_summary(Mode::kSetup))
        << "scenario " << i;
    EXPECT_EQ(results[i].hold, committed.merged_summary(Mode::kHold))
        << "scenario " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mcmm, ::testing::Values(3u, 11u, 29u));

/// corner_id resolves names; unknown names map to kAllCorners.
TEST(McmmApi, CornerIdLookup) {
  const Fixture f(5);
  core::Engine engine = f.make_engine(three_corners());
  EXPECT_EQ(engine.corner_id("typ"), 0);
  EXPECT_EQ(engine.corner_id("fast"), 1);
  EXPECT_EQ(engine.corner_id("slow"), 2);
  EXPECT_EQ(engine.corner_id("nope"), core::kAllCorners);

  core::Engine dflt = f.make_engine({});
  EXPECT_EQ(dflt.num_corners(), 1u);
  EXPECT_EQ(dflt.corners()[0].name, "default");
}

/// Invalid corner sets are rejected by EngineOptions::validate (and hence
/// the Engine constructor), matching the analysis lint rules.
TEST(McmmApi, EngineOptionsRejectBadCorners) {
  core::EngineOptions opt;
  opt.corners = {CornerSpec{"a", 1.0f, 1.0f}, CornerSpec{"a", 1.1f, 1.0f}};
  EXPECT_FALSE(opt.validate().empty());  // duplicate name
  opt.corners = {CornerSpec{"", 1.0f, 1.0f}};
  EXPECT_FALSE(opt.validate().empty());  // empty name
  opt.corners = {CornerSpec{"x", -1.0f, 1.0f}};
  EXPECT_FALSE(opt.validate().empty());  // negative delay scale
  opt.corners = {CornerSpec{"x", 1.0f, 0.0f}};
  EXPECT_FALSE(opt.validate().empty());  // zero sigma scale
  opt.corners = {CornerSpec{"x", std::numeric_limits<float>::quiet_NaN(),
                            1.0f}};
  EXPECT_FALSE(opt.validate().empty());  // NaN delay scale
  opt.corners = three_corners();
  EXPECT_TRUE(opt.validate().empty());
}

/// annotate() rejects out-of-range target corners.
TEST(McmmApi, AnnotateRejectsUnknownCorner) {
  const Fixture f(7);
  core::Engine engine = f.make_engine(three_corners());
  engine.run_forward();
  timing::ArcDelta d;
  d.arc = 0;
  d.mu = {1.0, 1.0};
  d.sigma = {0.0, 0.0};
  const std::vector<timing::ArcDelta> deltas{d};
  EXPECT_THROW(engine.annotate(deltas, 3), util::CheckError);
  EXPECT_THROW(engine.annotate(deltas, -2), util::CheckError);
}

// ---- analysis corner rules --------------------------------------------------

TEST(McmmLint, CheckCornerSetupFlagsBadScales) {
  using analysis::CornerSetup;
  const std::vector<CornerSetup> bad = {
      {"ok", 1.0, 1.0},
      {"nan", std::numeric_limits<double>::quiet_NaN(), 1.0},
      {"neg", 1.0, -0.5},
      {"zero", 0.0, 1.0},
  };
  const analysis::LintReport r = analysis::check_corner_setup(bad);
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.count_rule("corner-scale"), 3u);
  EXPECT_EQ(r.count_rule("corner-name"), 0u);
}

TEST(McmmLint, CheckCornerSetupFlagsNameProblems) {
  using analysis::CornerSetup;
  const std::vector<CornerSetup> bad = {
      {"a", 1.0, 1.0}, {"", 1.0, 1.0}, {"a", 1.1, 1.0}};
  const analysis::LintReport r = analysis::check_corner_setup(bad);
  EXPECT_EQ(r.count_rule("corner-name"), 2u);  // one empty, one duplicate
  EXPECT_EQ(r.count_rule("corner-scale"), 0u);
}

TEST(McmmLint, CheckCornerSetupFlagsCountMismatch) {
  using analysis::CornerSetup;
  const std::vector<CornerSetup> two = {{"a", 1.0, 1.0}, {"b", 1.1, 1.0}};
  EXPECT_FALSE(analysis::check_corner_setup(two, 2).has_errors());
  EXPECT_FALSE(analysis::check_corner_setup(two, 0).has_errors());
  const analysis::LintReport r = analysis::check_corner_setup(two, 3);
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.count_rule("corner-count"), 1u);
}

TEST(McmmLint, CheckCornerReference) {
  EXPECT_FALSE(analysis::check_corner_reference(-1, 3).has_errors());
  EXPECT_FALSE(analysis::check_corner_reference(0, 3).has_errors());
  EXPECT_FALSE(analysis::check_corner_reference(2, 3).has_errors());
  EXPECT_TRUE(analysis::check_corner_reference(3, 3).has_errors());
  EXPECT_TRUE(analysis::check_corner_reference(-2, 3).has_errors());
  EXPECT_EQ(
      analysis::check_corner_reference(5, 3).count_rule("corner-reference"),
      1u);
}

}  // namespace
}  // namespace insta
