// The SIMD dispatch contract (DESIGN.md §14): in default numeric mode the
// scalar and AVX2 kernel flavors are bit-identical — same Top-K bytes, same
// counters, same gradients — across ragged list sizes, empty lists, and
// every K; tolerance mode (fast_math_tolerance > 0) may drift only within
// the documented bound, and only in the backward softmax.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "core/engine.hpp"
#include "core/topk.hpp"
#include "core/topk_simd.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"
#include "util/simd.hpp"

namespace insta {
namespace {

bool avx2_available() {
  return util::simd::compiled_avx2() && util::simd::cpu_has_avx2();
}

// ---- kernel-level property tests --------------------------------------------

/// One randomized merge workload: parents with ragged counts (including
/// empty lists) in stride-padded SoA planes, merged through both flavors
/// into separate destinations that must come out byte-identical.
class MergeFlavors : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(MergeFlavors, ScalarAndAvx2AreBitIdentical) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
  const std::int32_t k = GetParam();
  const std::size_t stride = (static_cast<std::size_t>(k) + 7) & ~std::size_t{7};
  std::mt19937 rng(1234u + static_cast<unsigned>(k));
  std::uniform_real_distribution<float> val(-500.0f, 500.0f);
  std::uniform_real_distribution<float> dly(1.0f, 40.0f);

  for (int trial = 0; trial < 50; ++trial) {
    const int num_arcs = 1 + static_cast<int>(rng() % 12);
    std::vector<float> parr, pmu, psig;
    std::vector<std::int32_t> psp;
    std::vector<core::MergeArc> arcs(static_cast<std::size_t>(num_arcs));
    parr.assign(static_cast<std::size_t>(num_arcs) * stride, 0.0f);
    pmu = parr;
    psig = parr;
    psp.assign(parr.size(), -1);
    for (int a = 0; a < num_arcs; ++a) {
      // Ragged counts: empty, partial, and full lists all occur.
      const auto cnt = static_cast<std::int32_t>(rng() % (k + 1));
      std::vector<float> vs(static_cast<std::size_t>(cnt));
      for (auto& v : vs) v = val(rng);
      std::sort(vs.begin(), vs.end(), std::greater<>());
      const std::size_t b = static_cast<std::size_t>(a) * stride;
      for (std::int32_t j = 0; j < cnt; ++j) {
        parr[b + static_cast<std::size_t>(j)] = vs[static_cast<std::size_t>(j)];
        pmu[b + static_cast<std::size_t>(j)] =
            vs[static_cast<std::size_t>(j)] - 3.0f;
        psig[b + static_cast<std::size_t>(j)] = 0.5f + 0.1f * dly(rng);
        // Overlapping tags across arcs exercise the in-list update path.
        psp[b + static_cast<std::size_t>(j)] = static_cast<std::int32_t>(
            rng() % static_cast<unsigned>(2 * k + 1));
      }
      arcs[static_cast<std::size_t>(a)].par = {&parr[b], &pmu[b], &psig[b],
                                               &psp[b], cnt};
      arcs[static_cast<std::size_t>(a)].am = dly(rng);
      const float s = 0.1f * dly(rng);
      arcs[static_cast<std::size_t>(a)].as2 = s * s;
    }

    for (const bool early : {false, true}) {
      std::vector<float> a1(static_cast<std::size_t>(k)), m1 = a1, s1 = a1;
      std::vector<float> a2 = a1, m2 = a1, s2 = a1;
      std::vector<std::int32_t> p1(static_cast<std::size_t>(k), -1), p2 = p1;
      std::int32_t c1 = 0, c2 = 0;
      const core::TopKView d1{a1.data(), m1.data(), s1.data(), p1.data(), k,
                              &c1};
      const core::TopKView d2{a2.data(), m2.data(), s2.data(), p2.data(), k,
                              &c2};
      core::MergeCounters mc1, mc2;
      core::merge_arcs_scalar(d1, arcs.data(), num_arcs, 3.0f, early, mc1);
      core::merge_arcs_avx2(d2, arcs.data(), num_arcs, 3.0f, early, mc2);
      ASSERT_EQ(c1, c2) << "trial " << trial << " early " << early;
      for (std::int32_t j = 0; j < c1; ++j) {
        const auto ji = static_cast<std::size_t>(j);
        EXPECT_EQ(a1[ji], a2[ji]) << "trial " << trial << " slot " << j;
        EXPECT_EQ(m1[ji], m2[ji]);
        EXPECT_EQ(s1[ji], s2[ji]);
        EXPECT_EQ(p1[ji], p2[ji]);
      }
      // The flavors share the group structure, so the counters agree too.
      EXPECT_EQ(mc1.merges, mc2.merges);
      EXPECT_EQ(mc1.prunes, mc2.prunes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, MergeFlavors,
                         ::testing::Values(1, 2, 4, 8, 13));

TEST(BackwardCandFlavors, ScalarAndAvx2AreBitIdentical) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
  const std::int32_t stride = 8;
  const std::int32_t parents = 257;  // odd count: gather tail coverage
  std::mt19937 rng(99);
  std::uniform_real_distribution<float> val(-100.0f, 900.0f);
  std::vector<float> tk_mu(static_cast<std::size_t>(parents * stride));
  std::vector<float> tk_sig(tk_mu.size());
  std::vector<std::int32_t> tk_cnt(static_cast<std::size_t>(parents));
  for (auto& v : tk_mu) v = val(rng);
  for (auto& v : tk_sig) v = 0.5f + 0.001f * val(rng);
  for (std::size_t p = 0; p < tk_cnt.size(); ++p) {
    tk_cnt[p] = (p % 7 == 0) ? 0 : static_cast<std::int32_t>(1 + p % 4);
  }
  const std::int32_t slots = 1003;  // non-multiple of 8: vector tail
  std::vector<std::int32_t> ci(static_cast<std::size_t>(slots));
  std::vector<float> amu(ci.size()), asig(ci.size());
  for (auto& c : ci) {
    c = static_cast<std::int32_t>(rng() % static_cast<unsigned>(parents));
  }
  for (auto& x : amu) x = 0.1f * val(rng);
  for (auto& x : asig) x = 0.001f * std::abs(val(rng));
  std::vector<float> out1(ci.size(), -1.0f), out2(ci.size(), -2.0f);
  core::backward_cand_scalar(tk_mu.data(), tk_sig.data(), tk_cnt.data(),
                             ci.data(), stride, amu.data(), asig.data(), slots,
                             3.0f, out1.data());
  core::backward_cand_avx2(tk_mu.data(), tk_sig.data(), tk_cnt.data(),
                           ci.data(), stride, amu.data(), asig.data(), slots,
                           3.0f, out2.data());
  for (std::size_t s = 0; s < out1.size(); ++s) {
    if (tk_cnt[static_cast<std::size_t>(ci[s])] == 0) {
      EXPECT_EQ(out1[s], -std::numeric_limits<float>::infinity());
    }
    EXPECT_EQ(out1[s], out2[s]) << "slot " << s;
  }
}

// ---- engine-level property tests --------------------------------------------

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

void expect_same_forward_state(const core::Engine& a, const core::Engine& b,
                               const netlist::Design& d) {
  for (std::size_t p = 0; p < d.num_pins(); ++p) {
    const auto pin = static_cast<netlist::PinId>(p);
    for (const auto rf : {netlist::RiseFall::kRise, netlist::RiseFall::kFall}) {
      const auto ea = a.arrivals(pin, rf);
      const auto eb = b.arrivals(pin, rf);
      ASSERT_EQ(ea.size(), eb.size()) << "pin " << p;
      for (std::size_t j = 0; j < ea.size(); ++j) {
        EXPECT_EQ(ea[j].arr, eb[j].arr) << "pin " << p << " slot " << j;
        EXPECT_EQ(ea[j].mu, eb[j].mu);
        EXPECT_EQ(ea[j].sig, eb[j].sig);
        EXPECT_EQ(ea[j].sp, eb[j].sp);
      }
    }
  }
  const auto sa = a.endpoint_slacks();
  const auto sb = b.endpoint_slacks();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t e = 0; e < sa.size(); ++e) {
    if (std::isnan(sa[e])) {
      EXPECT_TRUE(std::isnan(sb[e]));
    } else {
      EXPECT_EQ(sa[e], sb[e]) << "endpoint " << e;
    }
  }
}

class SimdEngine
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

/// Forward propagation through the scalar and AVX2 flavors must leave
/// byte-identical Top-K stores and slacks at every K.
TEST_P(SimdEngine, ForwardIsBitIdenticalAcrossFlavors) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
  const auto [seed, k] = GetParam();
  Fixture f(seed);
  core::EngineOptions so;
  so.top_k = k;
  so.simd = util::simd::SimdMode::kScalar;
  core::EngineOptions vo = so;
  vo.simd = util::simd::SimdMode::kAvx2;
  core::Engine es(*f.sta, so);
  core::Engine ev(*f.sta, vo);
  es.run_forward();
  ev.run_forward();
  expect_same_forward_state(es, ev, *f.gd.design);
}

/// Backward gradients from the vectorized candidate pass must match the
/// scalar reference bit-for-bit in default numeric mode.
TEST_P(SimdEngine, BackwardGradientsAreBitIdenticalAcrossFlavors) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
  const auto [seed, k] = GetParam();
  Fixture f(seed);
  core::EngineOptions so;
  so.top_k = k;
  so.simd = util::simd::SimdMode::kScalar;
  core::EngineOptions vo = so;
  vo.simd = util::simd::SimdMode::kAvx2;
  core::Engine es(*f.sta, so);
  core::Engine ev(*f.sta, vo);
  es.run_forward();
  ev.run_forward();
  for (const auto metric :
       {core::GradientMetric::kTns, core::GradientMetric::kWns}) {
    es.run_backward(metric);
    ev.run_backward(metric);
    const auto ga = es.arc_gradients();
    const auto gb = ev.arc_gradients();
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i], gb[i]) << "arc " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimdEngine,
    ::testing::Combine(::testing::Values(21u, 22u, 23u),
                       ::testing::Values(1, 2, 4, 8)));

/// After an ECO the incremental backward pass reuses clean softmax weights
/// (BackwardStats says so) and must still produce gradients bitwise equal
/// to a dense forward + full backward on identical annotations.
TEST(SimdEngine, IncrementalBackwardReuseMatchesFullRecompute) {
  Fixture f(31u);
  core::EngineOptions opt;
  opt.top_k = 8;
  core::Engine inc(*f.sta, opt);
  core::Engine full(*f.sta, opt);
  inc.run_forward();
  full.run_forward();
  inc.run_backward(core::GradientMetric::kTns);

  util::Rng rng(7);
  const auto changes = gen::random_changelist(*f.gd.design, *f.graph, rng, 10);
  bool saw_reuse = false;
  for (const auto& ch : changes) {
    const auto deltas = f.calc->estimate_eco(ch.cell, ch.new_libcell);
    inc.annotate(deltas);
    full.annotate(deltas);
    inc.run_forward_incremental();
    full.run_forward();
    inc.run_backward(core::GradientMetric::kTns);
    saw_reuse = saw_reuse || inc.last_backward_stats().weights_reused;
    full.run_backward(core::GradientMetric::kTns);
    const auto ga = inc.arc_gradients();
    const auto gb = full.arc_gradients();
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i], gb[i]) << "arc " << i;
    }
  }
  EXPECT_TRUE(saw_reuse) << "no incremental backward exercised weight reuse";
}

/// Tolerance mode (fast_math_tolerance > 0): forward stays bit-exact (the
/// merge kernel never reassociates), and backward gradients stay within
/// the documented 1e-3 bound of the default-mode reference.
TEST(SimdEngine, ToleranceModeBoundsGradientDrift) {
  if (!avx2_available()) {
    GTEST_SKIP() << "fast-math softmax requires AVX2";
  }
  Fixture f(41u);
  core::EngineOptions exact;
  exact.top_k = 8;
  core::EngineOptions fast = exact;
  fast.fast_math_tolerance = 1e-3f;
  core::Engine ee(*f.sta, exact);
  core::Engine ef(*f.sta, fast);
  ee.run_forward();
  ef.run_forward();
  expect_same_forward_state(ee, ef, *f.gd.design);

  ee.run_backward(core::GradientMetric::kTns);
  ef.run_backward(core::GradientMetric::kTns);
  const auto ga = ee.arc_gradients();
  const auto gb = ef.arc_gradients();
  ASSERT_EQ(ga.size(), gb.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < ga.size(); ++i) {
    const float scale = std::max(1.0f, std::abs(ga[i]));
    const float rel = std::abs(ga[i] - gb[i]) / scale;
    worst = std::max(worst, rel);
    EXPECT_LE(rel, fast.fast_math_tolerance) << "arc " << i;
  }
  // The polynomial exp is ~2 ulp; drift should be far inside the bound.
  EXPECT_LT(worst, fast.fast_math_tolerance);
}

/// INSTA_SIMD=off / SimdMode::kScalar must be honored even on AVX2 hosts:
/// the dispatcher resolves to the scalar flavor and the engine still
/// produces a valid timing state.
TEST(SimdDispatch, ScalarModeAlwaysResolves) {
  EXPECT_FALSE(util::simd::resolve(util::simd::SimdMode::kScalar));
  if (avx2_available()) {
    EXPECT_TRUE(util::simd::resolve(util::simd::SimdMode::kAvx2));
  }
}

}  // namespace
}  // namespace insta
