#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "util/check.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace insta::util {
namespace {

TEST(Check, ThrowsWithLocation) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "boom");
    FAIL() << "check(false) must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Stats, PearsonPerfectAndAnti) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonKnownValue) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {1, 3, 2, 4};
  // Hand-computed: cov = 1.0, var_x = var_y = 1.25 -> r = 1.0/1.25 = 0.8.
  EXPECT_NEAR(pearson(xs, ys), 0.8, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs = {3, 3, 3};
  EXPECT_EQ(pearson(xs, xs), 1.0);
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
  EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(Stats, Mismatch) {
  const std::vector<double> ref = {1, 2, 3};
  const std::vector<double> test = {1.5, 2, 1};
  const MismatchStats mm = mismatch(ref, test);
  EXPECT_NEAR(mm.avg_abs, (0.5 + 0 + 2) / 3.0, 1e-12);
  EXPECT_EQ(mm.max_abs, 2.0);
  EXPECT_EQ(mm.max_index, 2u);
  EXPECT_NEAR(mm.rmse, std::sqrt((0.25 + 0 + 4) / 3.0), 1e-12);
}

TEST(Stats, Summary) {
  const std::vector<double> xs = {2, 4, 6, 8};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 8);
  EXPECT_EQ(s.mean, 5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0), 1e-12);
}

TEST(Stats, RSquaredIdentity) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_EQ(r_squared_identity(xs, xs), 1.0);
  const std::vector<double> ys = {1.1, 2.0, 2.9};
  EXPECT_GT(r_squared_identity(xs, ys), 0.97);
}

TEST(Stats, FormatCorrelation) {
  EXPECT_EQ(format_correlation(0.999943), "0.99994");
  EXPECT_EQ(format_correlation(1.0), "1.00000");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    // Different seeds diverge almost surely.
  }
  EXPECT_NE(a(), c());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksSum) {
  ThreadPool pool(3);
  std::atomic<long long> total{0};
  pool.parallel_for_chunks(1, 1001, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 500500);  // [1, 1001) covers 1..1000 inclusive
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int runs = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  std::atomic<int> small{0};
  pool.parallel_for(0, 3, [&](std::size_t) { small.fetch_add(1); });
  EXPECT_EQ(small.load(), 3);
}

TEST(ThreadPool, PropagatesFirstExceptionFromWorkers) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  // Large range + small grain forces the enqueued (worker-thread) path; the
  // exception must resurface on the calling thread, not std::terminate.
  EXPECT_THROW(
      pool.parallel_for(
          0, 10000,
          [&](std::size_t i) {
            ran.fetch_add(1);
            if (i % 1000 == 17) throw std::runtime_error("task failed");
          },
          16),
      std::runtime_error);
  EXPECT_GT(ran.load(), 0);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_chunks(
                   0, 5000,
                   [](std::size_t, std::size_t) {
                     throw CheckError("chunk failed");
                   },
                   8),
               CheckError);
  // The pool must survive the failed launch and run later work normally.
  std::atomic<int> hits{0};
  pool.parallel_for(0, 2000, [&](std::size_t) { hits.fetch_add(1); }, 16);
  EXPECT_EQ(hits.load(), 2000);
}

TEST(ThreadPool, ExceptionOnInlinePath) {
  // Ranges at or below the grain run inline on the caller; exceptions take
  // the ordinary path there too.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 4, [](std::size_t) { throw CheckError("inline"); }, 256),
               CheckError);
}

TEST(ThreadPool, NestedLaunchesRunInline) {
  // A launch from inside a chunk cannot claim the (already claimed) ticket
  // slot; it must fall back to inline execution instead of deadlocking, and
  // every index must still be covered exactly once.
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  pool.parallel_for_chunks(
      0, 2048,
      [&](std::size_t lo, std::size_t hi) {
        pool.parallel_for(
            lo, hi,
            [&](std::size_t i) {
              total.fetch_add(static_cast<long long>(i),
                              std::memory_order_relaxed);
            },
            1);
      },
      64);
  EXPECT_EQ(total.load(), 2048LL * 2047 / 2);
}

TEST(ThreadPool, ConcurrentLaunchesFromExternalThreads) {
  // Racing launchers: one wins the claim and uses the pool, the rest run
  // inline. All must complete with full coverage.
  ThreadPool pool(4);
  constexpr int kThreads = 4;
  constexpr int kReps = 50;
  constexpr std::size_t kN = 4096;
  std::array<std::atomic<long long>, kThreads> counts{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        pool.parallel_for(
            0, kN,
            [&](std::size_t) {
              counts[static_cast<std::size_t>(t)].fetch_add(
                  1, std::memory_order_relaxed);
            },
            16);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), static_cast<long long>(kReps) * kN);
  }
}

TEST(ThreadPool, ManyRepeatedSmallLaunches) {
  // Back-to-back launches stress the epoch handshake (worker wake, join,
  // drain, re-park) without ever tearing the shared launch fields.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int rep = 0; rep < 2000; ++rep) {
    pool.parallel_for_chunks(
        0, 600,
        [&](std::size_t lo, std::size_t hi) {
          total.fetch_add(hi - lo, std::memory_order_relaxed);
        },
        1);
  }
  EXPECT_EQ(total.load(), 2000ull * 600ull);
}

TEST(ThreadPool, ExceptionFromEveryChunkRethrowsOnce) {
  // With a single worker the caller executes a share of the chunks itself;
  // a throw from a caller-executed chunk must follow the same capture-and-
  // rethrow path as a worker throw.
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for_chunks(
                   0, 1000,
                   [](std::size_t, std::size_t) {
                     throw CheckError("chunk boom");
                   },
                   1),
               CheckError);
  std::atomic<int> hits{0};
  pool.parallel_for(0, 100, [&](std::size_t) { hits.fetch_add(1); }, 1);
  EXPECT_EQ(hits.load(), 100);
}

TEST(CheckMacros, InstaCheckEvaluatesOnce) {
  int evals = 0;
  INSTA_CHECK(++evals > 0, "must pass");
  EXPECT_EQ(evals, 1);
  EXPECT_THROW(INSTA_CHECK(evals == 99, "nope"), CheckError);
}

TEST(CheckMacros, InstaCheckMessageHasLocation) {
  try {
    INSTA_CHECK(false, "macro boom");
    FAIL() << "INSTA_CHECK(false) must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("macro boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(CheckMacros, InstaDcheckSideEffectFree) {
  int evals = 0;
#ifdef NDEBUG
  // Compiled out: the condition must not be evaluated at all.
  INSTA_DCHECK(++evals > 0, "unused");
  INSTA_DCHECK(false, "never throws in release");
  EXPECT_EQ(evals, 0);
#else
  // Debug: behaves exactly like INSTA_CHECK (single evaluation, throws).
  INSTA_DCHECK(++evals > 0, "must pass");
  EXPECT_EQ(evals, 1);
  EXPECT_THROW(INSTA_DCHECK(false, "throws in debug"), CheckError);
#endif
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "long-header"});
  t.add_row({"xx", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| xx | 1           |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Memory, RssIsPositiveAndOrdered) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
  EXPECT_NEAR(to_gib(1ull << 30), 1.0, 1e-12);
}

}  // namespace
}  // namespace insta::util
