#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "place/hpwl.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

TEST(EngineOptionsValidation, RejectsNonPositiveTopK) {
  Fixture f(201);
  core::EngineOptions opt;
  opt.top_k = 0;
  EXPECT_THROW(core::Engine(*f.sta, opt), util::CheckError);
}

TEST(GoldenValidation, RequiresDelaysForGraph) {
  Fixture f(202);
  timing::ArcDelays empty;
  EXPECT_THROW(ref::GoldenSta(*f.graph, f.gd.constraints, empty),
               util::CheckError);
}

TEST(GoldenValidation, CloneBeforeUpdateThrows) {
  Fixture f(203);
  ref::GoldenSta fresh(*f.graph, f.gd.constraints, f.delays);
  // Reading the clock analysis before update_full must fail loudly (the
  // INSTA engine initializes from it).
  EXPECT_THROW(fresh.clock(), util::CheckError);
  EXPECT_THROW(core::Engine(fresh, {}), util::CheckError);
}

TEST(GoldenValidation, IncrementalBeforeFullThrows) {
  Fixture f(204);
  ref::GoldenSta fresh(*f.graph, f.gd.constraints, f.delays);
  const timing::ArcId arc = 0;
  EXPECT_THROW(fresh.update_incremental({&arc, 1}), util::CheckError);
}

/// Slacks shift exactly one-for-one with the clock period for single-cycle
/// endpoints (the basis of the period tuner).
TEST(GoldenSemantics, SlackShiftsWithPeriod) {
  Fixture f(205);
  timing::Constraints shifted = f.gd.constraints;
  shifted.clock_period += 100.0;
  ref::GoldenSta sta2(*f.graph, shifted, f.delays);
  sta2.update_full();
  const timing::ExceptionTable table(*f.graph, f.gd.constraints.exceptions);
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const double a = f.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const double b = sta2.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(a)) continue;
    // Multicycle endpoints shift by a multiple of the period; others by
    // exactly 100 ps.
    const double shift = b - a;
    EXPECT_GE(shift, 100.0 - 1e-9);
    EXPECT_NEAR(std::fmod(shift + 1e-9, 100.0), 0.0, 2e-9);
  }
}

/// Scaling every arc sigma to zero turns the statistical engine into a
/// plain deterministic STA: arrivals equal plain mean sums and CPPR credits
/// vanish.
TEST(GoldenSemantics, ZeroSigmaDegeneratesToDeterministic) {
  Fixture f(206);
  timing::ArcDelays no_sigma = f.delays;
  for (const int rf : {0, 1}) {
    std::fill(no_sigma.sigma[rf].begin(), no_sigma.sigma[rf].end(), 0.0);
  }
  timing::Constraints cx = f.gd.constraints;
  cx.input_arrival_sigma = 0.0;
  ref::GoldenSta sta(*f.graph, cx, no_sigma);
  sta.update_full();
  const timing::ClockAnalysis clock(*f.graph, no_sigma, cx.nsigma);
  EXPECT_DOUBLE_EQ(clock.max_credit(), 0.0);
  // Every arrival entry has sigma 0 and corner == mu.
  for (const netlist::PinId p : f.graph->level_order()) {
    for (const auto rf : netlist::kBothTransitions) {
      for (const auto& e : sta.arrivals(p, rf)) {
        EXPECT_EQ(e.sigma, 0.0);
        EXPECT_EQ(e.corner, e.mu);
      }
    }
  }
}

/// N_sigma scales pessimism monotonically: larger corners, smaller slacks.
TEST(GoldenSemantics, NSigmaMonotonicity) {
  Fixture f(207);
  timing::Constraints tighter = f.gd.constraints;
  tighter.nsigma = 4.5;
  ref::GoldenSta sta2(*f.graph, tighter, f.delays);
  sta2.update_full();
  // TNS can only degrade with more pessimism (required gains some credit
  // back, but data-path RSS always grows faster than the shared prefix).
  EXPECT_LE(sta2.tns(), f.sta->tns() + 1e-6);
}

TEST(Hpwl, MatchesHandComputedBoundingBoxes) {
  netlist::Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const auto a = d.add_input_port("a");
  const auto inv = d.add_cell("i", lib.find(netlist::CellFunc::kInv, 1));
  const auto o = d.add_output_port("o");
  const auto n1 = d.add_net("n1");
  d.connect_driver(n1, d.output_pin(a));
  d.connect_sink(n1, d.input_pin(inv, 0));
  const auto n2 = d.add_net("n2");
  d.connect_driver(n2, d.output_pin(inv));
  d.connect_sink(n2, d.input_pin(o, 0));
  d.cell(a).x = 0.0;
  d.cell(a).y = 0.0;
  d.cell(inv).x = 3.0;
  d.cell(inv).y = 4.0;
  d.cell(o).x = 10.0;
  d.cell(o).y = 2.0;
  EXPECT_DOUBLE_EQ(place::net_hpwl(d, n1), 7.0);
  EXPECT_DOUBLE_EQ(place::net_hpwl(d, n2), 9.0);
  EXPECT_DOUBLE_EQ(place::total_hpwl(d), 16.0);
}

/// The WNS backward seed concentrates on the worst endpoint: the fanin arc
/// of the WNS endpoint receives the largest endpoint seed.
TEST(GradientSemantics, WnsSeedConcentratesOnWorstEndpoint) {
  Fixture f(208);
  core::EngineOptions opt;
  opt.wns_tau = 1.0f;  // sharp soft-min
  core::Engine engine(*f.sta, opt);
  engine.run_forward();
  engine.run_backward(core::GradientMetric::kWns);
  float worst_seed = -1.0f;
  std::size_t worst_ep = 0;
  float wns = 0.0f;
  std::size_t wns_ep = 0;
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    float g = 0.0f;
    for (const timing::ArcId a : f.graph->fanin(f.graph->endpoints()[e].pin)) {
      g += engine.arc_gradient(a);
    }
    if (g > worst_seed) {
      worst_seed = g;
      worst_ep = e;
    }
    const float s = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(s) && s < wns) {
      wns = s;
      wns_ep = e;
    }
  }
  EXPECT_EQ(worst_ep, wns_ep);
  EXPECT_GT(worst_seed, 0.5f);  // sharp soft-min: most of the mass
}

}  // namespace
}  // namespace insta
