#include <gtest/gtest.h>

#include <cmath>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/brute_force.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;

  explicit Fixture(std::uint64_t seed, double violate_frac = 0.1) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, violate_frac);
  }
};

/// Property: the golden engine's endpoint slacks equal exhaustive path
/// enumeration with exact CPPR, on every random tiny design.
class GoldenVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenVsBruteForce, EndpointSlacksMatch) {
  Fixture f(GetParam());
  ref::GoldenSta sta(*f.graph, f.gd.constraints, f.delays);
  sta.update_full();
  const auto brute =
      ref::brute_force_endpoint_slacks(*f.graph, f.gd.constraints, f.delays);
  ASSERT_EQ(brute.size(), sta.endpoint_slacks().size());
  for (std::size_t e = 0; e < brute.size(); ++e) {
    if (!std::isfinite(brute[e])) {
      EXPECT_FALSE(std::isfinite(sta.endpoint_slack(
          static_cast<timing::EndpointId>(e))))
          << "endpoint " << e;
      continue;
    }
    EXPECT_NEAR(brute[e], sta.endpoint_slack(static_cast<timing::EndpointId>(e)),
                1e-7)
        << "endpoint " << e;
  }
}

TEST_P(GoldenVsBruteForce, SomeViolationsExist) {
  Fixture f(GetParam());
  ref::GoldenSta sta(*f.graph, f.gd.constraints, f.delays);
  sta.update_full();
  EXPECT_GT(sta.num_violations(), 0);
  EXPECT_LT(sta.tns(), 0.0);
  EXPECT_LE(sta.wns(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenVsBruteForce,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

}  // namespace
}  // namespace insta
