// Tests of the replication subsystem: the snapshot/delta binary codec
// (round-trip properties, corruption/truncation rejection), the delta-set
// canonicalizer, the commit-delta log, the what-if cache, engine state
// export/import (including merged_summary cache correctness across
// rollback and generation-number collisions), service-level delta
// application equivalence, and socket end-to-end replication with
// restart-without-resync catch-up.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "replica/codec.hpp"
#include "replica/delta_log.hpp"
#include "replica/replica.hpp"
#include "replica/whatif_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "timing/delay_calc.hpp"
#include "timing/delta_canon.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace insta {
namespace {

using core::CornerSpec;
using core::EngineState;
using core::Mode;
using replica::CommitRecord;
using timing::ArcDelta;

// ---- fixture ---------------------------------------------------------------

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed, bool hold = false) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    ref::GoldenOptions gopt;
    gopt.enable_hold = hold;
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays,
                                           gopt);
    sta->update_full();
  }

  [[nodiscard]] std::unique_ptr<core::Engine> make_engine(
      std::vector<CornerSpec> corners = {}, bool hold = false) const {
    core::EngineOptions opt;
    opt.top_k = 8;
    opt.enable_hold = hold;
    opt.corners = std::move(corners);
    auto e = std::make_unique<core::Engine>(*sta, opt);
    e->run_forward();
    return e;
  }

  [[nodiscard]] std::vector<std::vector<ArcDelta>> make_scenarios(
      util::Rng& rng, std::size_t n) const {
    const auto changes = gen::random_changelist(*gd.design, *graph, rng,
                                                static_cast<int>(n));
    std::vector<std::vector<ArcDelta>> scen;
    for (const auto& ch : changes) {
      scen.push_back(calc->estimate_eco(ch.cell, ch.new_libcell));
    }
    for (std::size_t i = 0; scen.size() < n && !scen.empty(); ++i) {
      scen.push_back(scen[i % changes.size()]);
    }
    return scen;
  }
};

std::vector<CornerSpec> corner_set(std::size_t c) {
  std::vector<CornerSpec> v{CornerSpec{"typ", 1.0f, 1.0f}};
  if (c >= 2) v.push_back(CornerSpec{"fast", 0.9f, 0.95f});
  if (c >= 4) {
    v.push_back(CornerSpec{"slow", 1.12f, 1.05f});
    v.push_back(CornerSpec{"cold", 1.05f, 0.9f});
  }
  v.resize(c > 0 ? c : 1, CornerSpec{"typ", 1.0f, 1.0f});
  return v;
}

/// Commits `n` edits through the Transaction path (the writer-side flow),
/// returning the applied sets of the last commit.
void commit_edits(core::Engine& engine, Fixture& f, util::Rng& rng, int n) {
  for (int i = 0; i < n; ++i) {
    const auto scen = f.make_scenarios(rng, 1);
    ASSERT_FALSE(scen.empty());
    core::Engine::Transaction tx = engine.begin_edit();
    tx.annotate(scen[0]);
    engine.run_forward_incremental();
    tx.commit();
  }
}

template <typename T>
::testing::AssertionResult same_bytes(const std::vector<T>& a,
                                      const std::vector<T>& b,
                                      const char* what) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << what << ": size " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) != 0) {
    return ::testing::AssertionFailure() << what << ": bytes differ";
  }
  return ::testing::AssertionSuccess();
}

/// Byte-exact equality of two engine-state images, field by field.
void expect_state_eq(const EngineState& a, const EngineState& b) {
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.num_corners, b.num_corners);
  EXPECT_EQ(a.num_pins, b.num_pins);
  EXPECT_EQ(a.num_slots, b.num_slots);
  EXPECT_EQ(a.num_sps, b.num_sps);
  EXPECT_EQ(a.num_eps, b.num_eps);
  EXPECT_EQ(a.num_arcs, b.num_arcs);
  EXPECT_EQ(a.top_k, b.top_k);
  EXPECT_EQ(a.tk_stride, b.tk_stride);
  EXPECT_EQ(a.enable_hold, b.enable_hold);
  ASSERT_EQ(a.corners.size(), b.corners.size());
  for (std::size_t c = 0; c < a.corners.size(); ++c) {
    EXPECT_EQ(a.corners[c].name, b.corners[c].name);
    EXPECT_EQ(a.corners[c].delay_scale, b.corners[c].delay_scale);
    EXPECT_EQ(a.corners[c].sigma_scale, b.corners[c].sigma_scale);
  }
  for (const int rf : {0, 1}) {
    const auto i = static_cast<std::size_t>(rf);
    EXPECT_TRUE(same_bytes(a.amu[i], b.amu[i], "amu"));
    EXPECT_TRUE(same_bytes(a.asig[i], b.asig[i], "asig"));
    EXPECT_TRUE(same_bytes(a.sp_mu[i], b.sp_mu[i], "sp_mu"));
    EXPECT_TRUE(same_bytes(a.sp_sig[i], b.sp_sig[i], "sp_sig"));
  }
  EXPECT_TRUE(same_bytes(a.tk_arr, b.tk_arr, "tk_arr"));
  EXPECT_TRUE(same_bytes(a.tk_mu, b.tk_mu, "tk_mu"));
  EXPECT_TRUE(same_bytes(a.tk_sig, b.tk_sig, "tk_sig"));
  EXPECT_TRUE(same_bytes(a.tk_sp, b.tk_sp, "tk_sp"));
  EXPECT_TRUE(same_bytes(a.tk_cnt, b.tk_cnt, "tk_cnt"));
  EXPECT_TRUE(same_bytes(a.tk2_arr, b.tk2_arr, "tk2_arr"));
  EXPECT_TRUE(same_bytes(a.tk2_mu, b.tk2_mu, "tk2_mu"));
  EXPECT_TRUE(same_bytes(a.tk2_sig, b.tk2_sig, "tk2_sig"));
  EXPECT_TRUE(same_bytes(a.tk2_sp, b.tk2_sp, "tk2_sp"));
  EXPECT_TRUE(same_bytes(a.tk2_cnt, b.tk2_cnt, "tk2_cnt"));
  EXPECT_TRUE(same_bytes(a.slack, b.slack, "slack"));
  EXPECT_TRUE(same_bytes(a.hold_slack, b.hold_slack, "hold_slack"));
  EXPECT_TRUE(same_bytes(a.ep_worst_rf, b.ep_worst_rf, "ep_worst_rf"));
  EXPECT_TRUE(same_bytes(a.ep_base_req, b.ep_base_req, "ep_base_req"));
  EXPECT_TRUE(same_bytes(a.ep_hold_base, b.ep_hold_base, "ep_hold_base"));
  EXPECT_TRUE(same_bytes(a.tns, b.tns, "tns"));
  EXPECT_TRUE(same_bytes(a.nviol, b.nviol, "nviol"));
  EXPECT_TRUE(same_bytes(a.ths, b.ths, "ths"));
  EXPECT_TRUE(same_bytes(a.nhold_viol, b.nhold_viol, "nhold_viol"));
  EXPECT_TRUE(same_bytes(a.wns, b.wns, "wns"));
  EXPECT_TRUE(same_bytes(a.wns_any, b.wns_any, "wns_any"));
  EXPECT_TRUE(same_bytes(a.wns_valid, b.wns_valid, "wns_valid"));
  EXPECT_TRUE(same_bytes(a.whs, b.whs, "whs"));
  EXPECT_TRUE(same_bytes(a.whs_any, b.whs_any, "whs_any"));
  EXPECT_TRUE(same_bytes(a.whs_valid, b.whs_valid, "whs_valid"));
}

// ---- base64 ------------------------------------------------------------------

TEST(Base64, RoundTripsArbitraryBytesAtEveryLengthResidue) {
  util::Rng rng(101);
  for (std::size_t len = 0; len < 70; ++len) {
    std::string raw(len, '\0');
    for (char& ch : raw) ch = static_cast<char>(rng() & 0xff);
    const std::string b64 = replica::base64_encode(raw);
    std::string back;
    ASSERT_TRUE(replica::base64_decode(b64, back)) << "len " << len;
    EXPECT_EQ(back, raw) << "len " << len;
  }
}

TEST(Base64, RejectsMalformedInput) {
  std::string out;
  EXPECT_FALSE(replica::base64_decode("abc", out));      // bad length
  EXPECT_FALSE(replica::base64_decode("ab==ab==", out)); // inner padding
  EXPECT_FALSE(replica::base64_decode("a#cd", out));     // bad alphabet
  EXPECT_FALSE(replica::base64_decode("=abc", out));     // leading padding
  EXPECT_TRUE(replica::base64_decode("", out));
  EXPECT_TRUE(out.empty());
}

// ---- delta-set canonicalization ----------------------------------------------

TEST(DeltaCanon, SortsByArcAndMergesDuplicatesLastWins) {
  const std::vector<ArcDelta> in = {
      {7, {1.0, 1.0}, {0.1, 0.1}},
      {3, {2.0, 2.0}, {0.0, 0.0}},
      {7, {9.0, 9.5}, {0.7, 0.7}},  // shadows the first arc-7 delta
  };
  std::vector<timing::ArcId> dups;
  const std::vector<ArcDelta> canon = timing::canonicalize_deltas(in, &dups);
  ASSERT_EQ(canon.size(), 2u);
  EXPECT_EQ(canon[0].arc, 3);
  EXPECT_EQ(canon[1].arc, 7);
  EXPECT_EQ(canon[1].mu[0], 9.0);   // last write won
  EXPECT_EQ(canon[1].sigma[1], 0.7);
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_EQ(dups[0], 7);
}

TEST(DeltaCanon, HashIsOrderInvariantAndValueSensitive) {
  const std::vector<ArcDelta> a = {{1, {1.0, 1.0}, {0.0, 0.0}},
                                   {5, {2.0, 2.0}, {0.3, 0.3}}};
  const std::vector<ArcDelta> b = {{5, {2.0, 2.0}, {0.3, 0.3}},
                                   {1, {1.0, 1.0}, {0.0, 0.0}}};
  EXPECT_EQ(timing::delta_set_hash(a), timing::delta_set_hash(b));
  std::vector<ArcDelta> c = a;
  c[0].mu[0] = 1.0000001;
  EXPECT_NE(timing::delta_set_hash(a), timing::delta_set_hash(c));
}

TEST(DeltaCanon, EqualityIsBitwise) {
  const std::vector<ArcDelta> a = {{1, {0.0, 1.0}, {0.0, 0.0}}};
  std::vector<ArcDelta> b = a;
  EXPECT_TRUE(timing::deltas_equal(a, b));
  b[0].mu[0] = -0.0;  // same value, different bits
  EXPECT_FALSE(timing::deltas_equal(a, b));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<ArcDelta> n1 = {{1, {nan, 1.0}, {0.0, 0.0}}};
  std::vector<ArcDelta> n2 = {{1, {nan, 1.0}, {0.0, 0.0}}};
  EXPECT_TRUE(timing::deltas_equal(n1, n2));  // NaN-safe (same bit pattern)
}

// ---- codec: snapshots ----------------------------------------------------------

TEST(Codec, SnapshotRoundTripsByteExactAcrossCornerCounts) {
  for (const std::size_t corners : {1u, 2u, 4u}) {
    Fixture f(11 + corners, /*hold=*/true);
    auto engine = f.make_engine(corner_set(corners), /*hold=*/true);
    util::Rng rng(40 + corners);
    commit_edits(*engine, f, rng, 3);

    const EngineState out = engine->export_state();
    const std::string frame = replica::encode_snapshot(out);
    EngineState in;
    const std::string err = replica::decode_snapshot(frame, in);
    ASSERT_TRUE(err.empty()) << err;
    expect_state_eq(out, in);
  }
}

TEST(Codec, SnapshotRejectsCorruptionTruncationAndWrongKind) {
  Fixture f(13);
  auto engine = f.make_engine();
  const std::string frame = replica::encode_snapshot(engine->export_state());
  EngineState scratch;

  // Single-byte corruption anywhere must fail the checksum (or a header
  // check); probe a spread of positions including header and payload.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{5}, std::size_t{8}, std::size_t{30},
        frame.size() / 2, frame.size() - 1}) {
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_FALSE(replica::decode_snapshot(bad, scratch).empty())
        << "corruption at byte " << pos << " was accepted";
  }
  // Truncation at any prefix must be rejected, never read out of bounds.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, std::size_t{23}, frame.size() / 3,
        frame.size() - 1}) {
    EXPECT_FALSE(
        replica::decode_snapshot(std::string_view(frame).substr(0, len),
                                 scratch)
            .empty())
        << "truncation to " << len << " bytes was accepted";
  }
  // Trailing garbage is rejected too (a frame is exactly one message).
  EXPECT_FALSE(replica::decode_snapshot(frame + "x", scratch).empty());
  // A delta frame is not a snapshot.
  CommitRecord rec;
  rec.parent_generation = 1;
  rec.generation = 2;
  EXPECT_FALSE(
      replica::decode_snapshot(replica::encode_delta(rec), scratch).empty());
}

TEST(Codec, DeltaRoundTripsWithCornerTargetsAndOrdering) {
  CommitRecord rec;
  rec.parent_generation = 41;
  rec.generation = 42;
  rec.commit_unix_us = 1754700000000000;
  rec.sets.push_back({core::kAllCorners,
                      {{3, {1.5, 1.5}, {0.1, 0.2}}, {9, {0.0, -0.0}, {0, 0}}}});
  rec.sets.push_back({core::CornerId{1}, {{7, {2.5, 2.25}, {0.0, 0.0}}}});

  const std::string frame = replica::encode_delta(rec);
  CommitRecord back;
  const std::string err = replica::decode_delta(frame, back);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.parent_generation, 41u);
  EXPECT_EQ(back.generation, 42u);
  EXPECT_EQ(back.commit_unix_us, rec.commit_unix_us);
  ASSERT_EQ(back.sets.size(), 2u);
  EXPECT_EQ(back.sets[0].corner, core::kAllCorners);
  EXPECT_TRUE(timing::deltas_equal(back.sets[0].deltas, rec.sets[0].deltas));
  EXPECT_EQ(back.sets[1].corner, core::CornerId{1});
  EXPECT_TRUE(timing::deltas_equal(back.sets[1].deltas, rec.sets[1].deltas));

  // Corruption and truncation are rejected here too.
  CommitRecord scratch;
  std::string bad = frame;
  bad[frame.size() - 2] = static_cast<char>(bad[frame.size() - 2] ^ 1);
  EXPECT_FALSE(replica::decode_delta(bad, scratch).empty());
  EXPECT_FALSE(replica::decode_delta(
                   std::string_view(frame).substr(0, frame.size() / 2),
                   scratch)
                   .empty());
}

// ---- delta log -----------------------------------------------------------------

CommitRecord make_rec(std::uint64_t parent) {
  CommitRecord rec;
  rec.parent_generation = parent;
  rec.generation = parent + 1;
  rec.sets.push_back({core::kAllCorners, {{1, {1.0, 1.0}, {0.0, 0.0}}}});
  return rec;
}

TEST(DeltaLog, ServesChainsReportsGapsAndEnforcesChaining) {
  replica::DeltaLog log(/*capacity=*/4);
  log.seed(10);
  EXPECT_EQ(log.base(), 10u);
  EXPECT_EQ(log.latest(), 10u);

  std::vector<CommitRecord> out;
  EXPECT_TRUE(log.since(10, out));  // up to date: empty, in window
  EXPECT_TRUE(out.empty());

  for (std::uint64_t g = 10; g < 13; ++g) log.append(make_rec(g));
  EXPECT_EQ(log.latest(), 13u);
  out.clear();
  EXPECT_TRUE(log.since(11, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].generation, 12u);
  EXPECT_EQ(out[1].generation, 13u);

  // A record that does not extend the head is a caller bug.
  EXPECT_THROW(log.append(make_rec(99)), util::CheckError);

  // Ring overflow advances the base; a client below it needs a resync.
  for (std::uint64_t g = 13; g < 20; ++g) log.append(make_rec(g));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.base(), 16u);
  EXPECT_FALSE(log.since(10, out));  // fell out of the window
  EXPECT_FALSE(log.since(21, out));  // ahead of the head: diverged
  out.clear();
  EXPECT_TRUE(log.since(16, out));
  ASSERT_EQ(out.size(), 4u);

  // Re-seeding (after an import) resets the chain.
  log.seed(100);
  EXPECT_EQ(log.base(), 100u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.since(16, out));
}

// ---- what-if cache ---------------------------------------------------------------

core::ScenarioResult tagged_result(double tns) {
  core::ScenarioResult r;
  r.setup.tns = tns;
  return r;
}

TEST(WhatifCache, KeysOnGenerationCornerAndCanonicalDeltas) {
  replica::WhatifCache cache(/*max_entries=*/8);
  const std::vector<ArcDelta> fwd = {{2, {1.0, 1.0}, {0.0, 0.0}},
                                     {5, {2.0, 2.0}, {0.0, 0.0}}};
  const std::vector<ArcDelta> rev = {{5, {2.0, 2.0}, {0.0, 0.0}},
                                     {2, {1.0, 1.0}, {0.0, 0.0}}};
  auto canon_fwd = replica::WhatifCache::canonicalize(fwd);
  auto canon_rev = replica::WhatifCache::canonicalize(rev);

  core::ScenarioResult out;
  EXPECT_FALSE(cache.lookup(1, -1, canon_fwd, out));
  cache.insert(1, -1, std::move(canon_fwd), tagged_result(-3.5));

  // Reordered delta-sets share the entry (canonical keying)...
  ASSERT_TRUE(cache.lookup(1, -1, canon_rev, out));
  EXPECT_EQ(out.setup.tns, -3.5);
  // ...but another generation or another corner does not.
  EXPECT_FALSE(cache.lookup(2, -1, canon_rev, out));
  EXPECT_FALSE(cache.lookup(1, 0, canon_rev, out));

  const replica::WhatifCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(WhatifCache, EvictsLeastRecentlyUsedAndDisablesAtZero) {
  replica::WhatifCache cache(/*max_entries=*/2);
  const auto scenario = [](timing::ArcId arc) {
    return replica::WhatifCache::canonicalize(
        std::vector<ArcDelta>{{arc, {1.0, 1.0}, {0.0, 0.0}}});
  };
  cache.insert(1, -1, scenario(1), tagged_result(-1));
  cache.insert(1, -1, scenario(2), tagged_result(-2));
  core::ScenarioResult out;
  ASSERT_TRUE(cache.lookup(1, -1, scenario(1), out));  // 1 is now MRU
  cache.insert(1, -1, scenario(3), tagged_result(-3)); // evicts 2
  EXPECT_TRUE(cache.lookup(1, -1, scenario(1), out));
  EXPECT_FALSE(cache.lookup(1, -1, scenario(2), out));
  EXPECT_TRUE(cache.lookup(1, -1, scenario(3), out));
  EXPECT_EQ(cache.stats().evictions, 1u);

  replica::WhatifCache off(0);
  EXPECT_FALSE(off.enabled());
  off.insert(1, -1, scenario(1), tagged_result(-1));
  EXPECT_FALSE(off.lookup(1, -1, scenario(1), out));
  EXPECT_EQ(off.stats().entries, 0u);
  EXPECT_EQ(off.stats().misses, 0u);  // disabled lookups are not counted
}

// ---- engine state export / import ------------------------------------------------

TEST(EngineState, ImportReproducesEveryAccessorOnAFreshEngine) {
  Fixture f(17, /*hold=*/true);
  auto writer = f.make_engine(corner_set(2), /*hold=*/true);
  util::Rng rng(90);
  commit_edits(*writer, f, rng, 4);

  auto replica_engine = f.make_engine(corner_set(2), /*hold=*/true);
  ASSERT_NE(replica_engine->generation(), writer->generation());
  replica_engine->import_state(writer->export_state());

  EXPECT_EQ(replica_engine->generation(), writer->generation());
  expect_state_eq(replica_engine->export_state(), writer->export_state());
  EXPECT_EQ(replica_engine->merged_summary(Mode::kSetup),
            writer->merged_summary(Mode::kSetup));
  EXPECT_EQ(replica_engine->merged_summary(Mode::kHold),
            writer->merged_summary(Mode::kHold));
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const auto ep = static_cast<timing::EndpointId>(e);
    for (core::CornerId c = 0; c < 2; ++c) {
      const float a = replica_engine->endpoint_slack(ep, c);
      const float b = writer->endpoint_slack(ep, c);
      EXPECT_TRUE(a == b || (std::isnan(a) && std::isnan(b)));
    }
  }
}

TEST(EngineState, ImportRejectsMismatchedShapeOrOptions) {
  Fixture f(19);
  auto writer = f.make_engine(corner_set(1));
  const EngineState st = writer->export_state();

  {
    auto other = f.make_engine(corner_set(2));  // corner count differs
    EXPECT_THROW(other->import_state(st), util::CheckError);
  }
  {
    core::EngineOptions opt;
    opt.top_k = 4;  // Top-K capacity differs
    core::Engine other(*f.sta, opt);
    other.run_forward();
    EXPECT_THROW(other.import_state(st), util::CheckError);
  }
  {
    Fixture g(23);  // different design entirely
    auto other = g.make_engine(corner_set(1));
    EXPECT_THROW(other->import_state(st), util::CheckError);
  }
}

TEST(EngineState, ExportRequiresCleanCommittedState) {
  Fixture f(29);
  auto engine = f.make_engine();
  util::Rng rng(5);
  const auto scen = f.make_scenarios(rng, 1);
  ASSERT_FALSE(scen.empty());

  {
    core::Engine::Transaction tx = engine->begin_edit();
    tx.annotate(scen[0]);
    EXPECT_THROW((void)engine->export_state(), util::CheckError);
    engine->run_forward_incremental();
    EXPECT_THROW((void)engine->export_state(), util::CheckError);  // txn open
    tx.commit();
  }
  EXPECT_TRUE(engine->export_state().generation == engine->generation());
}

/// merged_summary is cached per generation; both rollback (same generation,
/// same bytes) and import (possibly same generation number, different
/// bytes) must leave it correct.
TEST(EngineState, MergedSummaryCacheSurvivesRollbackAndImportCollision) {
  Fixture f(31, /*hold=*/true);
  auto engine = f.make_engine(corner_set(2), /*hold=*/true);
  util::Rng rng(77);
  const auto scen = f.make_scenarios(rng, 1);
  ASSERT_FALSE(scen.empty());

  const core::SlackSummary before = engine->merged_summary(Mode::kSetup);
  {
    core::Engine::Transaction tx = engine->begin_edit();
    tx.annotate(scen[0]);
    engine->run_forward_incremental();
    (void)engine->merged_summary(Mode::kSetup);  // may cache mid-txn state
    tx.rollback();
  }
  engine->run_forward_incremental();
  EXPECT_EQ(engine->merged_summary(Mode::kSetup), before);

  // Generation-number collision: two engines at the same generation with
  // different bytes. The import must not serve the stale cached summary.
  auto a = f.make_engine(corner_set(2), /*hold=*/true);
  auto b = f.make_engine(corner_set(2), /*hold=*/true);
  {
    // A delay large enough to guarantee the merged summary moves (random
    // ECO deltas can land on paths with enough headroom to stay clean).
    const auto scen = f.make_scenarios(rng, 1);
    ASSERT_FALSE(scen.empty());
    std::vector<ArcDelta> big = scen[0];
    for (ArcDelta& d : big) d.mu = {1.0e4, 1.0e4};
    core::Engine::Transaction tx = b->begin_edit();
    tx.annotate(big);
    b->run_forward_incremental();
    tx.commit();
  }                                                // b: generation 2, edited
  a->run_forward();                                // a: generation 2, pristine
  ASSERT_EQ(a->generation(), b->generation());
  const core::SlackSummary stale = a->merged_summary(Mode::kSetup);
  ASSERT_NE(b->merged_summary(Mode::kSetup), stale);  // the edit bit
  a->import_state(b->export_state());
  EXPECT_EQ(a->merged_summary(Mode::kSetup),
            b->merged_summary(Mode::kSetup));
  EXPECT_NE(a->merged_summary(Mode::kSetup), stale);
}

// ---- service-level replication -----------------------------------------------------

std::string repl_socket_path(const char* tag) {
  return "/tmp/insta_test_replica_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

TEST(ServiceReplication, ApplyCommitReproducesWriterBytesAndChecksChaining) {
  Fixture f(37, /*hold=*/true);
  auto writer_engine = f.make_engine(corner_set(2), /*hold=*/true);
  serve::TimingService writer(*writer_engine);

  auto replica_engine = f.make_engine(corner_set(2), /*hold=*/true);
  serve::ServiceOptions ropt;
  ropt.read_only = true;
  serve::TimingService replica_svc(*replica_engine, ropt);

  // Read-only: the edit API is closed...
  serve::SessionId rsid = -1;
  ASSERT_TRUE(replica_svc.open_session(rsid).ok());
  EXPECT_EQ(replica_svc.begin_edit(rsid).code, serve::ErrorCode::kUnsupported);

  // ...but replication applies commits through the internal path.
  serve::SessionId wsid = -1;
  ASSERT_TRUE(writer.open_session(wsid).ok());
  util::Rng rng(55);
  const std::uint64_t base = writer.snapshot()->version;
  for (int k = 0; k < 3; ++k) {
    const auto scen = f.make_scenarios(rng, 1);
    ASSERT_FALSE(scen.empty());
    ASSERT_TRUE(writer.begin_edit(wsid).ok());
    ASSERT_TRUE(writer.annotate(wsid, scen[0]).ok());
    serve::TimingService::CommitReply cr;
    ASSERT_TRUE(writer.commit(wsid, cr).ok());
  }

  std::vector<CommitRecord> recs;
  ASSERT_TRUE(writer.delta_log().since(base, recs));
  ASSERT_EQ(recs.size(), 3u);

  // Applying out of order must fail without touching the engine.
  EXPECT_EQ(replica_svc.apply_commit(recs[1]).code,
            serve::ErrorCode::kInternal);
  EXPECT_EQ(replica_svc.snapshot()->version, base);

  for (const CommitRecord& rec : recs) {
    ASSERT_TRUE(replica_svc.apply_commit(rec).ok());
  }
  EXPECT_EQ(replica_svc.snapshot()->version, writer.snapshot()->version);
  expect_state_eq(replica_svc.export_state(), writer.export_state());
  // The replica's published snapshot (merged_summary caches included) is
  // the writer's.
  EXPECT_EQ(replica_svc.snapshot()->setup, writer.snapshot()->setup);
  EXPECT_EQ(replica_svc.snapshot()->hold, writer.snapshot()->hold);
  EXPECT_TRUE(same_bytes(replica_svc.snapshot()->slack,
                         writer.snapshot()->slack, "snapshot slack"));
}

TEST(ServiceReplication, WhatifCacheHitsServeBitIdenticalResults) {
  Fixture f(41);
  auto engine = f.make_engine();
  serve::ServiceOptions sopt;
  sopt.whatif_cache_entries = 16;
  serve::TimingService service(*engine, sopt);
  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());

  util::Rng rng(60);
  const auto scen = f.make_scenarios(rng, 2);
  ASSERT_GE(scen.size(), 2u);

  serve::TimingService::WhatifReply first;
  ASSERT_TRUE(service.whatif(sid, {scen[0], scen[1]}, first).ok());
  EXPECT_EQ(service.cache_stats().hits, 0u);

  serve::TimingService::WhatifReply second;
  ASSERT_TRUE(service.whatif(sid, {scen[0], scen[1]}, second).ok());
  const replica::WhatifCacheStats st = service.cache_stats();
  EXPECT_EQ(st.hits, 2u);  // both scenarios answered from the cache
  EXPECT_EQ(second.version, first.version);
  ASSERT_EQ(second.results.size(), 2u);
  EXPECT_EQ(second.results[0].setup, first.results[0].setup);
  EXPECT_EQ(second.results[1].setup, first.results[1].setup);

  // A commit bumps the generation; old entries stop matching.
  ASSERT_TRUE(service.begin_edit(sid).ok());
  ASSERT_TRUE(service.annotate(sid, scen[0]).ok());
  serve::TimingService::CommitReply cr;
  ASSERT_TRUE(service.commit(sid, cr).ok());
  serve::TimingService::WhatifReply third;
  ASSERT_TRUE(service.whatif(sid, {scen[1]}, third).ok());
  EXPECT_EQ(service.cache_stats().hits, 2u);  // miss: new generation
  EXPECT_EQ(third.version, cr.version);
}

TEST(ServiceReplication, SocketReplicationConvergesAndRestartUsesDeltasOnly) {
  Fixture f(43);
  auto writer_engine = f.make_engine(corner_set(2));
  serve::TimingService writer(*writer_engine);
  serve::ServerOptions nopt;
  nopt.unix_path = repl_socket_path("e2e");
  serve::Server server(writer, nopt);
  server.start();

  const auto converge = [](serve::TimingService& svc, std::uint64_t target) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (svc.snapshot()->version < target &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return svc.snapshot()->version >= target;
  };
  const auto commit_one = [&](util::Rng& rng) {
    serve::SessionId wsid = -1;
    ASSERT_TRUE(writer.open_session(wsid).ok());
    const auto scen = f.make_scenarios(rng, 1);
    ASSERT_FALSE(scen.empty());
    ASSERT_TRUE(writer.begin_edit(wsid).ok());
    ASSERT_TRUE(writer.annotate(wsid, scen[0]).ok());
    serve::TimingService::CommitReply cr;
    ASSERT_TRUE(writer.commit(wsid, cr).ok());
    ASSERT_TRUE(writer.close_session(wsid).ok());
  };

  util::Rng rng(70);
  {
    // Live replica: bootstraps at the shared base generation (no snapshot
    // needed), then follows commits through the delta stream.
    auto replica_engine = f.make_engine(corner_set(2));
    serve::ServiceOptions ropt;
    ropt.read_only = true;
    serve::TimingService replica_svc(*replica_engine, ropt);
    replica::ReplicatorOptions rro;
    rro.upstream = "unix:" + nopt.unix_path;
    rro.poll_ms = 1;
    replica::Replicator rep(replica_svc, rro);
    rep.bootstrap();
    rep.start();

    for (int k = 0; k < 3; ++k) commit_one(rng);
    ASSERT_TRUE(converge(replica_svc, writer.snapshot()->version));
    rep.stop();

    EXPECT_EQ(rep.info().full_syncs.load(), 0u);
    EXPECT_EQ(rep.info().applied_deltas.load(), 3u);
    EXPECT_NE(rep.info().last_lag_us.load(), -1);  // at least one apply ran
    expect_state_eq(replica_svc.export_state(), writer.export_state());
  }

  // Two more commits land while no replica is running.
  for (int k = 0; k < 2; ++k) commit_one(rng);

  {
    // "Restarted" replica: a fresh engine sits at the writer's delta-log
    // base generation, so the entire gap replays as deltas — no snapshot
    // transfer, full_syncs stays 0.
    auto replica_engine = f.make_engine(corner_set(2));
    serve::ServiceOptions ropt;
    ropt.read_only = true;
    serve::TimingService replica_svc(*replica_engine, ropt);
    replica::ReplicatorOptions rro;
    rro.upstream = "unix:" + nopt.unix_path;
    rro.poll_ms = 1;
    replica::Replicator rep(replica_svc, rro);
    rep.bootstrap();

    EXPECT_EQ(rep.info().full_syncs.load(), 0u);
    EXPECT_EQ(rep.info().applied_deltas.load(), 5u);
    EXPECT_EQ(replica_svc.snapshot()->version, writer.snapshot()->version);
    expect_state_eq(replica_svc.export_state(), writer.export_state());
  }

  {
    // Gap recovery: a writer whose delta log has shed the replica's
    // generation forces exactly one full sync.
    auto replica_engine = f.make_engine(corner_set(2));
    serve::ServiceOptions ropt;
    ropt.read_only = true;
    serve::TimingService replica_svc(*replica_engine, ropt);
    // Age the writer's log out from under the replica's base generation.
    for (int k = 0; k < 2; ++k) commit_one(rng);
    writer.delta_log().seed(writer.snapshot()->version);
    replica::ReplicatorOptions rro;
    rro.upstream = "unix:" + nopt.unix_path;
    rro.poll_ms = 1;
    replica::Replicator rep(replica_svc, rro);
    rep.bootstrap();
    EXPECT_EQ(rep.info().full_syncs.load(), 1u);
    expect_state_eq(replica_svc.export_state(), writer.export_state());
  }

  server.stop();
  ::unlink(nopt.unix_path.c_str());
}

}  // namespace
}  // namespace insta
