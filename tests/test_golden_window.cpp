#include <gtest/gtest.h>

#include <cmath>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/clock.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

/// The CPPR-safe pruning window (max credit * 1.5 + margin) must leave
/// every endpoint slack bit-identical to the unpruned engine: only entries
/// within the maximum possible credit of a pin's best corner can decide a
/// slack (DESIGN.md §6). This is the property that lets the benchmark
/// harness run the exact reference engine on 100k-cell blocks.
class GoldenWindow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenWindow, WindowedEqualsExact) {
  gen::LogicBlockSpec spec = gen::tiny_spec(GetParam());
  spec.num_gates = 2500;
  spec.num_ffs = 250;
  spec.depth = 14;
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, 0.1);

  ref::GoldenSta exact(graph, gd.constraints, delays);
  exact.update_full();

  const timing::ClockAnalysis probe(graph, delays, gd.constraints.nsigma);
  ref::GoldenOptions windowed_opts;
  windowed_opts.prune_window = probe.max_credit() * 1.5 + 10.0;
  ref::GoldenSta windowed(graph, gd.constraints, delays, windowed_opts);
  windowed.update_full();

  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const double a = exact.endpoint_slack(static_cast<timing::EndpointId>(e));
    const double b = windowed.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(a)) {
      EXPECT_FALSE(std::isfinite(b));
      continue;
    }
    EXPECT_DOUBLE_EQ(a, b) << "endpoint " << e;
  }

  // The window genuinely prunes (otherwise the test proves nothing).
  std::size_t exact_entries = 0, windowed_entries = 0;
  for (std::size_t p = 0; p < gd.design->num_pins(); ++p) {
    for (const auto rf : netlist::kBothTransitions) {
      exact_entries += exact.arrivals(static_cast<netlist::PinId>(p), rf).size();
      windowed_entries +=
          windowed.arrivals(static_cast<netlist::PinId>(p), rf).size();
    }
  }
  EXPECT_LT(windowed_entries, exact_entries);
}

/// A max_entries cap (a lossy setting) can only make slacks optimistic or
/// equal, never more pessimistic: dropped entries can only remove slack
/// minima.
TEST_P(GoldenWindow, EntryCapIsOptimisticOrExact) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(GetParam()));
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, 0.1);

  ref::GoldenSta exact(graph, gd.constraints, delays);
  exact.update_full();
  ref::GoldenOptions capped_opts;
  capped_opts.max_entries = 2;
  ref::GoldenSta capped(graph, gd.constraints, delays, capped_opts);
  capped.update_full();

  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const double a = exact.endpoint_slack(static_cast<timing::EndpointId>(e));
    const double b = capped.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(a)) continue;
    EXPECT_GE(b, a - 1e-9) << "endpoint " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenWindow, ::testing::Values(81u, 82u, 83u));

}  // namespace
}  // namespace insta
