#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace insta {
namespace {

using core::Mode;
using core::ScenarioBatch;
using core::ScenarioBatchOptions;
using core::ScenarioResult;
using core::ScenarioStrategy;
using core::SlackSummary;
using timing::ArcDelta;

/// Sequential ground truth of one scenario: a Transaction applies the
/// deltas to the parent, the sparse pass settles, the summaries are read,
/// and rollback() restores the parent to its exact pre-edit bytes.
struct SequentialRef {
  SlackSummary setup;
  SlackSummary hold;
  std::vector<float> slack;
  std::vector<float> hold_slack;
};

SequentialRef sequential_reference(core::Engine& engine,
                                   std::span<const ArcDelta> deltas) {
  auto tx = engine.begin_edit();
  tx.annotate(deltas);
  engine.run_forward_incremental();
  SequentialRef ref;
  ref.setup = engine.summary(Mode::kSetup, 0);
  ref.slack.assign(engine.endpoint_slacks().begin(),
                   engine.endpoint_slacks().end());
  if (engine.options().enable_hold) {
    ref.hold = engine.summary(Mode::kHold, 0);
    const std::size_t n = engine.graph().endpoints().size();
    ref.hold_slack.reserve(n);
    for (std::size_t e = 0; e < n; ++e) {
      ref.hold_slack.push_back(
          engine.endpoint_hold_slack(static_cast<timing::EndpointId>(e)));
    }
  }
  tx.rollback();
  return ref;
}

/// The full endpoint-slack vector a scenario implies: the parent baseline
/// with the scenario's recorded endpoint changes overlaid.
std::vector<float> overlay_slacks(std::span<const float> base,
                                  const ScenarioResult& r, bool hold) {
  std::vector<float> s(base.begin(), base.end());
  for (const core::EndpointSlackChange& c : r.endpoint_changes) {
    s[static_cast<std::size_t>(c.ep)] = hold ? c.hold : c.setup;
  }
  return s;
}

std::vector<float> hold_slacks_of(const core::Engine& engine) {
  std::vector<float> s;
  const std::size_t n = engine.graph().endpoints().size();
  s.reserve(n);
  for (std::size_t e = 0; e < n; ++e) {
    s.push_back(engine.endpoint_hold_slack(static_cast<timing::EndpointId>(e)));
  }
  return s;
}

/// Evaluates `scen` through `batch` and checks every scenario bit-identical
/// to its Transaction-based sequential reference: summaries via
/// SlackSummary::operator== and, when collect_endpoints is on, the full
/// overlaid slack vectors entry by entry.
void expect_scenarios_match(core::Engine& engine, ScenarioBatch& batch,
                            const std::vector<std::vector<ArcDelta>>& scen) {
  const bool hold = engine.options().enable_hold;
  const std::vector<float> base_slack(engine.endpoint_slacks().begin(),
                                      engine.endpoint_slacks().end());
  const std::vector<float> base_hold =
      hold ? hold_slacks_of(engine) : std::vector<float>{};

  const std::vector<ScenarioResult> results = batch.evaluate(scen);
  ASSERT_EQ(results.size(), scen.size());
  for (std::size_t i = 0; i < scen.size(); ++i) {
    const SequentialRef ref = sequential_reference(engine, scen[i]);
    EXPECT_EQ(results[i].setup, ref.setup) << "scenario " << i;
    if (hold) {
      EXPECT_EQ(results[i].hold, ref.hold) << "scenario " << i;
    }
    if (!batch.options().collect_endpoints) continue;
    const std::vector<float> got = overlay_slacks(base_slack, results[i], false);
    for (std::size_t e = 0; e < got.size(); ++e) {
      if (!std::isfinite(ref.slack[e])) {
        ASSERT_FALSE(std::isfinite(got[e]))
            << "scenario " << i << " endpoint " << e;
      } else {
        ASSERT_EQ(got[e], ref.slack[e])
            << "scenario " << i << " endpoint " << e;
      }
    }
    if (!hold) continue;
    const std::vector<float> goth = overlay_slacks(base_hold, results[i], true);
    for (std::size_t e = 0; e < goth.size(); ++e) {
      if (!std::isfinite(ref.hold_slack[e])) {
        ASSERT_FALSE(std::isfinite(goth[e]))
            << "scenario " << i << " hold endpoint " << e;
      } else {
        ASSERT_EQ(goth[e], ref.hold_slack[e])
            << "scenario " << i << " hold endpoint " << e;
      }
    }
  }
}

class ScenarioBatchTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    gd_ = gen::build_logic_block(gen::tiny_spec(GetParam()));
    graph_ = std::make_unique<timing::TimingGraph>(*gd_.design,
                                                   gd_.constraints.clock_root);
    calc_ = std::make_unique<timing::DelayCalculator>(*gd_.design, *graph_);
    calc_->compute_all(delays_);
    gen::tune_clock_period(*graph_, gd_.constraints, delays_, 0.1);
    sta_ = std::make_unique<ref::GoldenSta>(*graph_, gd_.constraints, delays_);
    sta_->update_full();
  }

  /// B delta-sets, one per randomized resize; repeats changes when the
  /// changelist is shorter than B (duplicate scenarios are legal — each
  /// evaluates independently).
  std::vector<std::vector<ArcDelta>> make_scenarios(util::Rng& rng,
                                                    std::size_t n) {
    const auto changes = gen::random_changelist(
        *gd_.design, *graph_, rng, static_cast<int>(n));
    std::vector<std::vector<ArcDelta>> scen;
    scen.reserve(n);
    for (const auto& ch : changes) {
      scen.push_back(calc_->estimate_eco(ch.cell, ch.new_libcell));
    }
    for (std::size_t i = 0; scen.size() < n && !scen.empty(); ++i) {
      scen.push_back(scen[i % changes.size()]);
    }
    return scen;
  }

  gen::GeneratedDesign gd_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::unique_ptr<timing::DelayCalculator> calc_;
  timing::ArcDelays delays_;
  std::unique_ptr<ref::GoldenSta> sta_;
};

/// The tentpole guarantee: every scenario's summaries and endpoint slacks
/// are bit-identical to sequentially annotating the parent and running the
/// sparse pass, under both dispatch strategies and B from 1 to 64.
TEST_P(ScenarioBatchTest, MatchesSequentialAcrossStrategiesAndBatchSizes) {
  for (const ScenarioStrategy strat :
       {ScenarioStrategy::kScenarioParallel, ScenarioStrategy::kLevelParallel}) {
    core::Engine engine(*sta_, {});
    engine.run_forward();
    ScenarioBatchOptions opt;
    opt.strategy = strat;
    opt.collect_endpoints = true;
    ScenarioBatch batch(engine, opt);
    util::Rng rng(GetParam() * 19 + 11);
    for (const std::size_t b : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      const auto scen = make_scenarios(rng, b);
      ASSERT_FALSE(scen.empty());
      expect_scenarios_match(engine, batch, scen);
    }
  }
}

/// Overlapping delta-sets: every scenario shares a common delta prefix (the
/// same arcs annotated with the same values) plus its own resize. The
/// overlays must stay fully independent — each scenario's result matches
/// its own sequential reference.
TEST_P(ScenarioBatchTest, OverlappingDeltaSetsStayIndependent) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  ScenarioBatchOptions opt;
  opt.collect_endpoints = true;
  ScenarioBatch batch(engine, opt);

  util::Rng rng(GetParam() * 23 + 5);
  const auto scen = make_scenarios(rng, 8);
  ASSERT_GE(scen.size(), 2u);
  std::vector<std::vector<ArcDelta>> overlapping;
  for (std::size_t i = 1; i < scen.size(); ++i) {
    std::vector<ArcDelta> s = scen[0];  // shared prefix
    s.insert(s.end(), scen[i].begin(), scen[i].end());
    overlapping.push_back(std::move(s));
  }
  expect_scenarios_match(engine, batch, overlapping);
}

/// evaluate() must never mutate the parent: summaries, slack arrays, and
/// every Top-K store entry read back bit-identical afterwards.
TEST_P(ScenarioBatchTest, ParentEngineUntouched) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  const SlackSummary before = engine.summary(Mode::kSetup, 0);
  const std::vector<float> slack_before(engine.endpoint_slacks().begin(),
                                        engine.endpoint_slacks().end());
  std::vector<std::vector<core::Engine::TopKEntry>> stores_before;
  for (std::size_t p = 0; p < gd_.design->num_pins(); ++p) {
    for (const auto rf : {netlist::RiseFall::kRise, netlist::RiseFall::kFall}) {
      stores_before.push_back(
          engine.arrivals(static_cast<netlist::PinId>(p), rf));
    }
  }

  ScenarioBatch batch(engine);
  util::Rng rng(GetParam() * 29 + 3);
  const auto results = batch.evaluate(make_scenarios(rng, 7));
  ASSERT_FALSE(results.empty());

  EXPECT_TRUE(engine.timing_clean());
  EXPECT_EQ(engine.summary(Mode::kSetup, 0), before);
  for (std::size_t e = 0; e < slack_before.size(); ++e) {
    const float after = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(slack_before[e])) {
      ASSERT_EQ(slack_before[e], after) << "endpoint " << e;
    } else {
      ASSERT_FALSE(std::isfinite(after)) << "endpoint " << e;
    }
  }
  std::size_t idx = 0;
  for (std::size_t p = 0; p < gd_.design->num_pins(); ++p) {
    for (const auto rf : {netlist::RiseFall::kRise, netlist::RiseFall::kFall}) {
      const auto after = engine.arrivals(static_cast<netlist::PinId>(p), rf);
      const auto& ref = stores_before[idx++];
      ASSERT_EQ(after.size(), ref.size()) << "pin " << p;
      for (std::size_t k = 0; k < after.size(); ++k) {
        ASSERT_EQ(after[k].arr, ref[k].arr) << "pin " << p << " entry " << k;
        ASSERT_EQ(after[k].mu, ref[k].mu) << "pin " << p << " entry " << k;
        ASSERT_EQ(after[k].sig, ref[k].sig) << "pin " << p << " entry " << k;
        ASSERT_EQ(after[k].sp, ref[k].sp) << "pin " << p << " entry " << k;
      }
    }
  }
}

/// An empty delta-set is the baseline scenario: zero frontier, zero
/// overlay, and summaries equal to the parent's.
TEST_P(ScenarioBatchTest, EmptyDeltaSetIsBaseline) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  ScenarioBatchOptions opt;
  opt.collect_endpoints = true;
  ScenarioBatch batch(engine, opt);

  const auto results =
      batch.evaluate(std::vector<std::vector<ArcDelta>>{{}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].setup, engine.summary(Mode::kSetup, 0));
  EXPECT_EQ(results[0].frontier_pins, 0u);
  EXPECT_EQ(results[0].endpoints_evaluated, 0u);
  EXPECT_EQ(results[0].overlay_bytes, 0u);
  EXPECT_TRUE(results[0].endpoint_changes.empty());
}

/// A real resize scenario must report non-trivial work accounting: a
/// frontier, evaluated endpoints, and a non-zero copy-on-write footprint.
TEST_P(ScenarioBatchTest, StatsAndOverlayAccounting) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  ScenarioBatch batch(engine);
  util::Rng rng(GetParam() * 31 + 7);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);
  const auto results = batch.evaluate(scen);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].frontier_pins, 0u);
  EXPECT_GT(results[0].overlay_bytes, 0u);
  // The same ECO applied sequentially walks the same frontier.
  core::Engine seq(*sta_, {});
  seq.run_forward();
  seq.annotate(scen[0]);
  seq.run_forward_incremental();
  const core::Engine::SparseStats st = seq.last_pass_stats();
  EXPECT_EQ(results[0].frontier_pins, st.frontier_pins);
  EXPECT_EQ(results[0].early_terminations, st.early_terminations);
  EXPECT_EQ(results[0].endpoints_evaluated, st.endpoints_evaluated);
}

/// summary(Mode) must agree with the single-field accessors.
TEST_P(ScenarioBatchTest, SummaryMatchesSingleFieldGetters) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  const SlackSummary s = engine.summary(Mode::kSetup, 0);
  EXPECT_EQ(s.tns, engine.tns());
  EXPECT_EQ(s.wns, engine.wns());
  EXPECT_EQ(s.violations, engine.num_violations());
}

// ---- Transaction ----------------------------------------------------------

/// rollback() must restore summaries, endpoint slacks, and every Top-K
/// entry to their exact pre-transaction bytes, and leave timing clean.
TEST_P(ScenarioBatchTest, TransactionRollbackRestoresExactState) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  const SlackSummary before = engine.summary(Mode::kSetup, 0);
  const std::vector<float> slack_before(engine.endpoint_slacks().begin(),
                                        engine.endpoint_slacks().end());

  util::Rng rng(GetParam() * 37 + 13);
  const auto scen = make_scenarios(rng, 3);
  ASSERT_FALSE(scen.empty());
  for (const auto& deltas : scen) {
    auto tx = engine.begin_edit();
    tx.annotate(deltas);
    engine.run_forward_incremental();
    EXPECT_TRUE(tx.active());
    tx.rollback();
    EXPECT_FALSE(tx.active());
    EXPECT_TRUE(engine.timing_clean());
    EXPECT_EQ(engine.summary(Mode::kSetup, 0), before);
    for (std::size_t e = 0; e < slack_before.size(); ++e) {
      const float after =
          engine.endpoint_slack(static_cast<timing::EndpointId>(e));
      if (std::isfinite(slack_before[e])) {
        ASSERT_EQ(slack_before[e], after) << "endpoint " << e;
      } else {
        ASSERT_FALSE(std::isfinite(after)) << "endpoint " << e;
      }
    }
  }
}

/// commit() keeps the edits, and the committed state is bit-identical to
/// what ScenarioBatch predicted for the same delta-set.
TEST_P(ScenarioBatchTest, TransactionCommitMatchesWhatIf) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  ScenarioBatch batch(engine);
  util::Rng rng(GetParam() * 41 + 17);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);
  const auto predicted = batch.evaluate(scen);

  auto tx = engine.begin_edit();
  tx.annotate(scen[0]);
  engine.run_forward_incremental();
  tx.commit();
  EXPECT_FALSE(tx.active());
  EXPECT_EQ(engine.summary(Mode::kSetup, 0), predicted[0].setup);
}

/// Destroying an active Transaction rolls it back.
TEST_P(ScenarioBatchTest, TransactionDtorRollsBack) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  const SlackSummary before = engine.summary(Mode::kSetup, 0);
  util::Rng rng(GetParam() * 43 + 19);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);
  {
    auto tx = engine.begin_edit();
    tx.annotate(scen[0]);
    engine.run_forward_incremental();
  }  // ~Transaction
  EXPECT_TRUE(engine.timing_clean());
  EXPECT_EQ(engine.summary(Mode::kSetup, 0), before);
}

/// One Transaction per engine, and only on clean timing.
TEST_P(ScenarioBatchTest, TransactionGuards) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  {
    auto tx = engine.begin_edit();
    EXPECT_THROW((void)engine.begin_edit(), util::CheckError);
    tx.rollback();
  }
  util::Rng rng(GetParam() * 47 + 23);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);
  engine.annotate(scen[0]);
  EXPECT_THROW((void)engine.begin_edit(), util::CheckError);
  engine.run_forward_incremental();
  auto tx = engine.begin_edit();  // clean again: fine
  tx.rollback();
}

/// The hand-rolled read_annotation/annotate rollback dance (what the removed
/// checkpoint()/restore() shims wrapped) still round-trips data-arc edits
/// exactly; Transaction is the first-class API, this guards the primitive.
TEST_P(ScenarioBatchTest, ReadAnnotationRoundTripsDataArcEdits) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  const std::vector<float> slack_before(engine.endpoint_slacks().begin(),
                                        engine.endpoint_slacks().end());
  util::Rng rng(GetParam() * 53 + 29);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);

  std::vector<ArcDelta> saved;
  for (const ArcDelta& d : scen[0]) saved.push_back(engine.read_annotation(d.arc));
  engine.annotate(scen[0]);
  engine.run_forward_incremental();
  engine.annotate(saved);
  engine.run_forward_incremental();

  EXPECT_TRUE(engine.timing_clean());
  for (std::size_t e = 0; e < slack_before.size(); ++e) {
    const float after =
        engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(slack_before[e])) {
      ASSERT_EQ(slack_before[e], after) << "endpoint " << e;
    } else {
      ASSERT_FALSE(std::isfinite(after)) << "endpoint " << e;
    }
  }
}

// ---- structured delta diagnostics ----------------------------------------

/// check_deltas() classifies every way a delta can go wrong with stable
/// rule ids, and annotate_checked() applies exactly the clean subset.
TEST_P(ScenarioBatchTest, CheckDeltasDiagnostics) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  util::Rng rng(GetParam() * 59 + 31);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);
  const std::vector<ArcDelta>& good = scen[0];
  ASSERT_GE(good.size(), 2u);

  const auto num_arcs = static_cast<timing::ArcId>(graph_->num_arcs());
  ArcDelta bad_range;
  bad_range.arc = num_arcs;  // one past the end

  timing::ArcId clock_arc = timing::kNullArc;
  for (timing::ArcId a = 0; a < num_arcs; ++a) {
    const timing::ArcRecord& rec = graph_->arc(a);
    if (rec.kind != timing::ArcKind::kLaunch &&
        graph_->is_clock_network(rec.to)) {
      clock_arc = a;
      break;
    }
  }
  ASSERT_NE(clock_arc, timing::kNullArc);
  ArcDelta bad_clock;
  bad_clock.arc = clock_arc;

  ArcDelta bad_value = good[1];
  bad_value.sigma[0] = -1.0;

  ArcDelta dup = good[0];
  dup.mu[0] = good[0].mu[0] + 1.0;  // last write must win

  const std::vector<ArcDelta> mixed = {bad_range, bad_clock, bad_value,
                                       good[0], dup};
  const analysis::LintReport rep = engine.check_deltas(mixed);
  EXPECT_TRUE(rep.has_errors());
  EXPECT_EQ(rep.count_rule("delta-arc-range"), 1u);
  EXPECT_EQ(rep.count_rule("delta-clock-arc"), 1u);
  EXPECT_EQ(rep.count_rule("delta-bad-value"), 1u);
  EXPECT_EQ(rep.count_rule("delta-duplicate-arc"), 1u);
  EXPECT_EQ(rep.count(analysis::Severity::kError), 3u);
  EXPECT_EQ(rep.count(analysis::Severity::kWarning), 1u);
  EXPECT_TRUE(engine.timing_clean());  // check_deltas never applies

  // annotate_checked: the erroneous entries are skipped, the clean ones
  // (including the duplicate, last-wins) are applied.
  const ArcDelta untouched_before = engine.read_annotation(good[1].arc);
  const analysis::LintReport rep2 = engine.annotate_checked(mixed);
  EXPECT_EQ(rep2.size(), rep.size());
  EXPECT_FALSE(engine.timing_clean());
  const ArcDelta applied = engine.read_annotation(good[0].arc);
  EXPECT_EQ(applied.mu[0], double(float(dup.mu[0])));
  const ArcDelta untouched_after = engine.read_annotation(good[1].arc);
  EXPECT_EQ(untouched_after.mu[0], untouched_before.mu[0]);
  EXPECT_EQ(untouched_after.sigma[0], untouched_before.sigma[0]);
  engine.run_forward_incremental();

  // A clean delta-set reports nothing and applies everything.
  const analysis::LintReport rep3 = engine.annotate_checked(good);
  EXPECT_TRUE(rep3.empty());
  EXPECT_FALSE(engine.timing_clean());
  engine.run_forward_incremental();
}

/// EngineOptions::validate() reports every problem at once and the Engine
/// constructor rejects invalid options with CheckError.
TEST_P(ScenarioBatchTest, OptionsValidateGatesConstruction) {
  EXPECT_TRUE(core::EngineOptions{}.validate().empty());
  core::EngineOptions bad;
  bad.top_k = 0;
  bad.tau = -1.0f;
  bad.wns_tau = 0.0f;
  bad.parallel_threshold = -1;
  bad.parallel_grain = 0;
  bad.endpoint_grain = 0;
  EXPECT_EQ(bad.validate().size(), 6u);
  EXPECT_THROW(core::Engine(*sta_, bad), util::CheckError);
}

/// evaluate() refuses dirty parents and invalid delta-sets, and stays
/// usable after a rejected call.
TEST_P(ScenarioBatchTest, EvaluateGuards) {
  core::Engine engine(*sta_, {});
  ScenarioBatch batch(engine);
  const std::vector<std::vector<ArcDelta>> empty_scen{{}};
  EXPECT_THROW((void)batch.evaluate(empty_scen), util::CheckError);

  engine.run_forward();
  ArcDelta bad;
  bad.arc = static_cast<timing::ArcId>(graph_->num_arcs());
  const std::vector<std::vector<ArcDelta>> bad_scen{{bad}};
  EXPECT_THROW((void)batch.evaluate(bad_scen), util::CheckError);

  const auto ok = batch.evaluate(empty_scen);
  EXPECT_EQ(ok.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioBatchTest,
                         ::testing::Values(161u, 162u, 163u));

/// Two-domain clock designs: CPPR credits cross clock-tree boundaries, and
/// the overlaid scenario evaluation must still match sequentially exactly.
TEST(ScenarioBatchMulticlock, MatchesSequentialBitIdentical) {
  for (const std::uint64_t seed : {241u, 242u}) {
    gen::LogicBlockSpec spec = gen::tiny_spec(seed);
    spec.num_extra_clocks = 1;
    spec.extra_clock_ratio = 2.0;
    gen::GeneratedDesign gd = gen::build_logic_block(spec);
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_roots());
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.1);
    ref::GoldenSta sta(graph, gd.constraints, delays);
    sta.update_full();

    for (const ScenarioStrategy strat : {ScenarioStrategy::kScenarioParallel,
                                         ScenarioStrategy::kLevelParallel}) {
      core::Engine engine(sta, {});
      engine.run_forward();
      ScenarioBatchOptions opt;
      opt.strategy = strat;
      opt.collect_endpoints = true;
      ScenarioBatch batch(engine, opt);

      util::Rng rng(seed * 13 + 7);
      const auto changes = gen::random_changelist(*gd.design, graph, rng, 8);
      std::vector<std::vector<ArcDelta>> scen;
      for (const auto& ch : changes) {
        scen.push_back(calc.estimate_eco(ch.cell, ch.new_libcell));
      }
      ASSERT_FALSE(scen.empty());
      expect_scenarios_match(engine, batch, scen);
    }
  }
}

/// Hold analysis: both the setup and hold summaries and both slack arrays
/// ride the overlays. Thresholds forced to zero so the level-parallel
/// strategy exercises the thread-pool kernels even on a tiny design.
TEST(ScenarioBatchHold, MatchesSequentialBitIdentical) {
  for (const std::uint64_t seed : {251u, 252u}) {
    gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(seed));
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.1);
    ref::GoldenOptions gopt;
    gopt.enable_hold = true;
    ref::GoldenSta sta(graph, gd.constraints, delays, gopt);
    sta.update_full();

    core::EngineOptions eopt;
    eopt.enable_hold = true;
    eopt.parallel_threshold = 0;
    eopt.parallel_grain = 1;
    eopt.endpoint_grain = 1;
    for (const ScenarioStrategy strat : {ScenarioStrategy::kScenarioParallel,
                                         ScenarioStrategy::kLevelParallel}) {
      core::Engine engine(sta, eopt);
      engine.run_forward();
      ScenarioBatchOptions opt;
      opt.strategy = strat;
      opt.collect_endpoints = true;
      ScenarioBatch batch(engine, opt);

      util::Rng rng(seed * 17 + 9);
      const auto changes = gen::random_changelist(*gd.design, graph, rng, 8);
      std::vector<std::vector<ArcDelta>> scen;
      for (const auto& ch : changes) {
        scen.push_back(calc.estimate_eco(ch.cell, ch.new_libcell));
      }
      ASSERT_FALSE(scen.empty());
      expect_scenarios_match(engine, batch, scen);
    }
  }
}

}  // namespace
}  // namespace insta
