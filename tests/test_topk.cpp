#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/topk.hpp"
#include "util/rng.hpp"

namespace insta {
namespace {

/// A test harness around one Top-K store.
struct Store {
  std::vector<float> arr, mu, sig;
  std::vector<std::int32_t> sp;
  std::int32_t count = 0;
  std::int32_t k;

  explicit Store(std::int32_t k_in) : k(k_in) {
    arr.resize(static_cast<std::size_t>(k));
    mu.resize(static_cast<std::size_t>(k));
    sig.resize(static_cast<std::size_t>(k));
    sp.resize(static_cast<std::size_t>(k));
  }
  core::TopKView view() {
    return {arr.data(), mu.data(), sig.data(), sp.data(), k, &count};
  }
  void insert(float a, std::int32_t s) {
    core::topk_insert(view(), a, a - 1.0f, 1.0f, s);
  }
};

TEST(TopK, InsertIntoEmpty) {
  Store st(4);
  st.insert(10.0f, 7);
  EXPECT_EQ(st.count, 1);
  EXPECT_EQ(st.arr[0], 10.0f);
  EXPECT_EQ(st.sp[0], 7);
}

TEST(TopK, MaintainsDescendingOrder) {
  Store st(4);
  st.insert(5.0f, 1);
  st.insert(9.0f, 2);
  st.insert(7.0f, 3);
  ASSERT_EQ(st.count, 3);
  EXPECT_EQ(st.arr[0], 9.0f);
  EXPECT_EQ(st.arr[1], 7.0f);
  EXPECT_EQ(st.arr[2], 5.0f);
  EXPECT_EQ(st.sp[0], 2);
  EXPECT_EQ(st.sp[1], 3);
  EXPECT_EQ(st.sp[2], 1);
}

TEST(TopK, DuplicateStartpointKeepsMax) {
  Store st(4);
  st.insert(5.0f, 1);
  st.insert(9.0f, 1);  // same SP, larger: replaces and bubbles up
  st.insert(3.0f, 1);  // same SP, smaller: ignored
  EXPECT_EQ(st.count, 1);
  EXPECT_EQ(st.arr[0], 9.0f);
}

TEST(TopK, DuplicateStartpointBubblesUp) {
  Store st(4);
  st.insert(9.0f, 1);
  st.insert(5.0f, 2);
  st.insert(4.0f, 3);
  st.insert(12.0f, 3);  // SP 3 jumps to the front
  ASSERT_EQ(st.count, 3);
  EXPECT_EQ(st.sp[0], 3);
  EXPECT_EQ(st.arr[0], 12.0f);
  EXPECT_EQ(st.sp[1], 1);
  EXPECT_EQ(st.sp[2], 2);
}

TEST(TopK, FullListDropsSmallest) {
  Store st(2);
  st.insert(5.0f, 1);
  st.insert(9.0f, 2);
  st.insert(7.0f, 3);  // evicts 5.0 (SP 1)
  ASSERT_EQ(st.count, 2);
  EXPECT_EQ(st.arr[0], 9.0f);
  EXPECT_EQ(st.arr[1], 7.0f);
  st.insert(1.0f, 4);  // smaller than the smallest kept: rejected
  EXPECT_EQ(st.arr[1], 7.0f);
}

TEST(TopK, K1DegeneratesToMax) {
  Store st(1);
  for (const float v : {3.0f, 8.0f, 5.0f, 11.0f, 2.0f}) {
    st.insert(v, static_cast<std::int32_t>(v));
  }
  EXPECT_EQ(st.count, 1);
  EXPECT_EQ(st.arr[0], 11.0f);
}

/// Oracle: per startpoint keep the max arrival; then the Top-K list must be
/// exactly the K largest of those, in descending order.
class TopKOracle : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopKOracle, MatchesMapOracle) {
  const auto [k, num_sps] = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    Store list(k);
    std::map<std::int32_t, float> oracle;
    for (int i = 0; i < 500; ++i) {
      const auto sp = static_cast<std::int32_t>(rng.uniform_int(0, num_sps - 1));
      const auto a = static_cast<float>(rng.uniform(0.0, 100.0));
      list.insert(a, sp);
      auto [it, inserted] = oracle.try_emplace(sp, a);
      if (!inserted && a > it->second) it->second = a;
    }

    std::vector<std::pair<float, std::int32_t>> expect;
    for (const auto& [sp, a] : oracle) expect.emplace_back(a, sp);
    std::sort(expect.begin(), expect.end(), std::greater<>());
    if (expect.size() > static_cast<std::size_t>(k)) {
      expect.resize(static_cast<std::size_t>(k));
    }

    ASSERT_EQ(list.count, static_cast<std::int32_t>(expect.size()));
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(list.arr[i], expect[i].first) << "seed " << seed << " i " << i;
      EXPECT_EQ(list.sp[i], expect[i].second);
    }
    // The auxiliary mu/sig payloads travel with their entry.
    for (std::int32_t i = 0; i < list.count; ++i) {
      EXPECT_EQ(list.mu[static_cast<std::size_t>(i)],
                list.arr[static_cast<std::size_t>(i)] - 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKOracle,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 32),
                       ::testing::Values(3, 16, 64)));

/// With K large enough to hold every startpoint, the list is exactly the
/// per-SP maxima (the property the K >= #startpoints engine tests rely on).
TEST(TopKOracle, ExactWhenKCoversAllStartpoints) {
  util::Rng rng(99);
  Store st(64);
  std::map<std::int32_t, float> oracle;
  for (int i = 0; i < 2000; ++i) {
    const auto sp = static_cast<std::int32_t>(rng.uniform_int(0, 49));
    const auto a = static_cast<float>(rng.uniform(0.0, 1000.0));
    st.insert(a, sp);
    auto [it, inserted] = oracle.try_emplace(sp, a);
    if (!inserted && a > it->second) it->second = a;
  }
  ASSERT_EQ(st.count, static_cast<std::int32_t>(oracle.size()));
  for (std::int32_t i = 0; i < st.count; ++i) {
    EXPECT_EQ(st.arr[static_cast<std::size_t>(i)],
              oracle.at(st.sp[static_cast<std::size_t>(i)]));
  }
}

}  // namespace
}  // namespace insta
