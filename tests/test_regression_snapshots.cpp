#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

/// Snapshot regression tests: exact metric values for fixed seeds, pinned
/// at the time the semantics were validated against the brute-force oracle.
/// A change to any of these numbers means the timing semantics moved — if
/// intentional (delay model retune, generator change), re-pin deliberately;
/// if not, something broke in a way the property tests may rationalize.
struct Snapshot {
  std::uint64_t seed;
  std::size_t num_cells;
  std::size_t num_pins;
  std::size_t num_startpoints;
};

class Snapshots : public ::testing::Test {
 protected:
  struct World {
    gen::GeneratedDesign gd;
    std::unique_ptr<timing::TimingGraph> graph;
    std::unique_ptr<timing::DelayCalculator> calc;
    timing::ArcDelays delays;
    std::unique_ptr<ref::GoldenSta> sta;
  };

  static World build(std::uint64_t seed) {
    World w;
    w.gd = gen::build_logic_block(gen::tiny_spec(seed));
    w.graph = std::make_unique<timing::TimingGraph>(
        *w.gd.design, w.gd.constraints.clock_root);
    w.calc = std::make_unique<timing::DelayCalculator>(*w.gd.design, *w.graph);
    w.calc->compute_all(w.delays);
    gen::tune_clock_period(*w.graph, w.gd.constraints, w.delays, 0.1);
    ref::GoldenOptions opt;
    opt.enable_hold = true;
    w.sta = std::make_unique<ref::GoldenSta>(*w.graph, w.gd.constraints,
                                             w.delays, opt);
    w.sta->update_full();
    return w;
  }
};

TEST_F(Snapshots, StructureIsStable) {
  const World w = build(1);
  // Generator determinism pin: these change only if the generator or the
  // library changes.
  EXPECT_EQ(w.gd.design->num_cells(), 270u);
  EXPECT_EQ(w.gd.design->flip_flops().size(), 24u);
  EXPECT_EQ(w.graph->startpoints().size(), 32u);
  EXPECT_EQ(w.graph->endpoints().size(), 32u);
}

TEST_F(Snapshots, MetricsAreStable) {
  const World w = build(1);
  // Timing semantics pin (validated against the brute-force oracle).
  // Readers updating the delay model or generator must re-pin these values.
  RecordProperty("period", w.gd.constraints.clock_period);
  RecordProperty("tns", w.sta->tns());
  const double period = w.gd.constraints.clock_period;
  const double tns = w.sta->tns();
  const double wns = w.sta->wns();
  const double ths = w.sta->ths();

  // Self-consistency regardless of exact pins.
  EXPECT_GT(period, 0.0);
  EXPECT_LE(wns, 0.0);
  EXPECT_LE(tns, wns);

  // Cross-engine agreement at tight tolerance.
  core::EngineOptions opt;
  opt.top_k = 64;
  opt.enable_hold = true;
  core::Engine engine(*w.sta, opt);
  engine.run_forward();
  EXPECT_NEAR(engine.tns(), tns, std::abs(tns) * 1e-5 + 0.05);
  EXPECT_NEAR(engine.wns(), wns, 0.02);
  EXPECT_NEAR(engine.ths(), ths, std::abs(ths) * 1e-5 + 0.05);

  // The frozen snapshot itself (re-pin deliberately when semantics move):
  EXPECT_NEAR(period, 1108.36, 0.2);
  EXPECT_NEAR(tns, -173.03, 0.5);
  EXPECT_NEAR(wns, -71.65, 0.2);
}

TEST_F(Snapshots, SecondBuildBitIdentical) {
  const World a = build(9);
  const World b = build(9);
  for (std::size_t e = 0; e < a.graph->endpoints().size(); ++e) {
    const double sa = a.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const double sb = b.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(sa)) {
      EXPECT_EQ(sa, sb);
    } else {
      EXPECT_FALSE(std::isfinite(sb));
    }
  }
}

}  // namespace
}  // namespace insta
