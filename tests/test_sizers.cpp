#include <gtest/gtest.h>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "size/baseline_sizer.hpp"
#include "size/insta_size.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gen::LogicBlockSpec spec = gen::tiny_spec(seed);
    spec.num_gates = 600;
    spec.num_ffs = 60;
    spec.false_path_frac = 0.0;
    spec.multicycle_frac = 0.0;
    gd = gen::build_logic_block(spec);
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.12);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

class Sizers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sizers, InstaSizeImprovesTns) {
  Fixture f(GetParam());
  size::InstaSizeOptions opt;
  opt.max_passes = 6;
  size::InstaSizer sizer(*f.gd.design, *f.graph, *f.calc, *f.sta, opt);
  const size::SizerResult r = sizer.run();
  EXPECT_LT(r.initial_tns, 0.0);
  EXPECT_GT(r.final_tns, r.initial_tns) << "INSTA-Size should improve TNS";
  EXPECT_GT(r.cells_sized, 0);
  EXPECT_GT(r.backward_sec, 0.0);
  // The golden engine was left consistent with the committed netlist.
  ref::GoldenSta fresh(*f.graph, f.gd.constraints, f.delays);
  fresh.update_full();
  EXPECT_DOUBLE_EQ(fresh.tns(), f.sta->tns());
}

TEST_P(Sizers, BaselineSizerReducesViolations) {
  Fixture f(GetParam());
  size::BaselineSizerOptions opt;
  opt.max_passes = 6;
  size::BaselineSizer sizer(*f.gd.design, *f.graph, *f.calc, *f.sta, opt);
  const size::SizerResult r = sizer.run();
  EXPECT_GT(r.cells_sized, 0);
  // WNS-first acceptance: WNS never degrades.
  EXPECT_GE(r.final_wns, r.initial_wns - 1e-6);
}

TEST_P(Sizers, BothSizersProduceConsistentState) {
  // The paper's Table II comparison (fewer cells, better TNS) is a
  // benchmark-scale property measured by bench_table2_sizing; at unit-test
  // scale we assert the integrity both flows must uphold: identical initial
  // state, TNS not degraded by INSTA-Size, and a golden engine left exactly
  // in sync with the committed netlists.
  Fixture fa(GetParam());
  size::InstaSizer a(*fa.gd.design, *fa.graph, *fa.calc, *fa.sta, {});
  const auto ra = a.run();

  Fixture fb(GetParam());
  size::BaselineSizer b(*fb.gd.design, *fb.graph, *fb.calc, *fb.sta, {});
  const auto rb = b.run();

  EXPECT_DOUBLE_EQ(ra.initial_tns, rb.initial_tns);
  EXPECT_GE(ra.final_tns, ra.initial_tns);
  EXPECT_GE(rb.final_wns, rb.initial_wns - 1e-6);

  for (auto* f : {&fa, &fb}) {
    timing::ArcDelays fresh_delays;
    timing::DelayCalculator fresh_calc(*f->gd.design, *f->graph);
    fresh_calc.compute_all(fresh_delays);
    ref::GoldenSta fresh(*f->graph, f->gd.constraints, fresh_delays);
    fresh.update_full();
    EXPECT_NEAR(fresh.tns(), f->sta->tns(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sizers, ::testing::Values(41u, 42u, 43u));

}  // namespace
}  // namespace insta
