#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/report.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.15);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

class Report : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Report, TracedPathsAreStructurallySound) {
  Fixture f(GetParam());
  const auto paths = ref::worst_paths(*f.sta, 20);
  ASSERT_FALSE(paths.empty());
  for (const ref::TimingPath& p : paths) {
    ASSERT_GE(p.stages.size(), 2u);
    // Slack matches the engine's endpoint slack.
    EXPECT_NEAR(p.slack, f.sta->endpoint_slack(p.endpoint), 1e-9);
    // First stage is the startpoint's source pin; last is the endpoint pin.
    EXPECT_EQ(p.stages.front().arc, timing::kNullArc);
    EXPECT_EQ(
        p.stages.front().pin,
        f.graph->startpoints()[static_cast<std::size_t>(p.startpoint)].pin);
    EXPECT_EQ(p.stages.back().pin,
              f.graph->endpoints()[static_cast<std::size_t>(p.endpoint)].pin);
    // Stages chain along real arcs, arrivals are monotone in mean terms.
    for (std::size_t i = 1; i < p.stages.size(); ++i) {
      const auto& st = p.stages[i];
      ASSERT_NE(st.arc, timing::kNullArc);
      const auto& rec = f.graph->arc(st.arc);
      EXPECT_EQ(rec.to, st.pin);
      EXPECT_EQ(rec.from, p.stages[i - 1].pin);
      // Negative-unate arcs flip the transition.
      if (rec.sense == timing::ArcSense::kNegative) {
        EXPECT_NE(st.rf, p.stages[i - 1].rf);
      } else {
        EXPECT_EQ(st.rf, p.stages[i - 1].rf);
      }
    }
    // The endpoint arrival equals the path's final stage arrival.
    EXPECT_NEAR(p.stages.back().arrival, p.arrival, 1e-9);
    // Required decomposition reproduces the slack.
    EXPECT_NEAR(p.base_required + p.cppr_credit + p.exception_shift -
                    p.arrival,
                p.slack, 1e-9);
  }
  // worst_paths is sorted by ascending slack.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].slack, paths[i].slack);
  }
}

TEST_P(Report, FormatContainsKeyFields) {
  Fixture f(GetParam());
  const auto paths = ref::worst_paths(*f.sta, 1);
  ASSERT_EQ(paths.size(), 1u);
  const std::string text = ref::format_path(*f.sta, paths[0]);
  EXPECT_NE(text.find("Startpoint:"), std::string::npos);
  EXPECT_NE(text.find("Endpoint:"), std::string::npos);
  EXPECT_NE(text.find("slack"), std::string::npos);
  EXPECT_NE(text.find(paths[0].slack < 0 ? "VIOLATED" : "MET"),
            std::string::npos);
  EXPECT_NE(text.find("CPPR credit"), std::string::npos);
}

TEST_P(Report, WorstPathMatchesWns) {
  Fixture f(GetParam());
  const auto paths = ref::worst_paths(*f.sta, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].slack, f.sta->wns(), 1e-9);
}

TEST_P(Report, NWorstPathsAreDistinctAndOrdered) {
  Fixture f(GetParam());
  int checked = 0;
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const auto ep = static_cast<timing::EndpointId>(e);
    if (!std::isfinite(f.sta->endpoint_slack(ep))) continue;
    const auto paths = ref::trace_paths(*f.sta, ep, 4);
    ASSERT_FALSE(paths.empty());
    // Worst path first; it matches the endpoint slack.
    EXPECT_NEAR(paths[0].slack, f.sta->endpoint_slack(ep), 1e-9);
    std::set<std::pair<timing::StartpointId, netlist::PinId>> seen;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(paths[i].slack, paths[i - 1].slack);
      }
      ASSERT_GE(paths[i].stages.size(), 2u);
      // Each path is a genuine startpoint-to-endpoint trace.
      EXPECT_EQ(paths[i].stages.back().pin, f.graph->endpoints()[e].pin);
      // Distinct (startpoint, transition at endpoint) per path.
      // (Transition is encoded in the last stage.)
      const auto key = std::make_pair(paths[i].startpoint,
                                      static_cast<netlist::PinId>(
                                          netlist::rf_index(paths[i].stages.back().rf)));
      // startpoint+rf pairs may repeat across different rf only.
      (void)key;
      EXPECT_NEAR(paths[i].base_required + paths[i].cppr_credit +
                      paths[i].exception_shift - paths[i].arrival,
                  paths[i].slack, 1e-9);
    }
    if (++checked >= 8) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_P(Report, HoldPathTracingMatchesHoldSlack) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(GetParam()));
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays, 0.15);
  ref::GoldenOptions opt;
  opt.enable_hold = true;
  ref::GoldenSta sta(graph, gd.constraints, delays, opt);
  sta.update_full();

  int traced = 0;
  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const auto ep = static_cast<timing::EndpointId>(e);
    if (!std::isfinite(sta.hold_slack(ep))) continue;
    const ref::TimingPath p = ref::trace_worst_hold_path(sta, ep);
    ASSERT_GE(p.stages.size(), 2u);
    EXPECT_TRUE(p.hold);
    EXPECT_NEAR(p.slack, sta.hold_slack(ep), 1e-9);
    EXPECT_NEAR(p.arrival - (p.base_required - p.cppr_credit), p.slack, 1e-9);
    // Hold paths chain along real arcs just like setup paths.
    for (std::size_t i = 1; i < p.stages.size(); ++i) {
      const auto& rec = graph.arc(p.stages[i].arc);
      EXPECT_EQ(rec.to, p.stages[i].pin);
      EXPECT_EQ(rec.from, p.stages[i - 1].pin);
    }
    const std::string text = ref::format_path(sta, p);
    EXPECT_NE(text.find("hold check"), std::string::npos);
    if (++traced >= 10) break;
  }
  EXPECT_GT(traced, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Report, ::testing::Values(101u, 102u, 103u));

}  // namespace
}  // namespace insta
