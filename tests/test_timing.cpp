#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "ref/golden_sta.hpp"
#include "timing/clock.hpp"
#include "timing/constraints.hpp"
#include "timing/delay_calc.hpp"
#include "timing/graph.hpp"
#include "util/check.hpp"

namespace insta {
namespace {

using netlist::CellFunc;
using netlist::CellId;
using netlist::Library;
using netlist::NetId;
using netlist::PinId;
using timing::ArcDelays;
using timing::ArcId;
using timing::DelayCalculator;
using timing::TimingGraph;

/// A hand-built two-flop pipeline with a shared clock buffer:
///   clk -> ckbuf -> {ff1/CK, ff2/CK};  ff1/Q -> inv -> ff2/D.
/// Small enough that every timing quantity can be composed by hand from the
/// annotated arc delays, independently validating clock analysis, CPPR
/// credit, startpoint initialization, and the endpoint slack formula.
struct HandBuilt {
  Library lib = netlist::make_default_library();
  netlist::Design d{lib};
  CellId clk, din, ckbuf, ff1, ff2, inv;
  std::unique_ptr<TimingGraph> graph;
  std::unique_ptr<DelayCalculator> calc;
  ArcDelays delays;
  timing::Constraints cx;

  HandBuilt() {
    clk = d.add_input_port("clk");
    din = d.add_input_port("din");
    ckbuf = d.add_cell("ckbuf", lib.find(CellFunc::kBuf, 8));
    ff1 = d.add_cell("ff1", lib.find(CellFunc::kDff, 2));
    ff2 = d.add_cell("ff2", lib.find(CellFunc::kDff, 2));
    inv = d.add_cell("inv", lib.find(CellFunc::kInv, 2));
    auto wire = [&](PinId drv, std::initializer_list<PinId> sinks,
                    double len) {
      const NetId n = d.add_net("w" + std::to_string(d.num_nets()));
      d.connect_driver(n, drv);
      for (const PinId s : sinks) d.connect_sink(n, s);
      d.net(n).length_hint = len;
    };
    wire(d.output_pin(din), {d.input_pin(ff1, 0)}, 12.0);
    wire(d.output_pin(clk), {d.input_pin(ckbuf, 0)}, 10.0);
    wire(d.output_pin(ckbuf), {d.clock_pin(ff1), d.clock_pin(ff2)}, 20.0);
    wire(d.output_pin(ff1), {d.input_pin(inv, 0)}, 15.0);
    wire(d.output_pin(inv), {d.input_pin(ff2, 0)}, 15.0);
    d.validate();
    graph = std::make_unique<TimingGraph>(d, clk);
    calc = std::make_unique<DelayCalculator>(d, *graph);
    calc->compute_all(delays);
    cx.clock_root = clk;
    cx.clock_period = 400.0;
    cx.nsigma = 3.0;
  }

  double mu(ArcId a, int rf) const { return delays.mu[rf][static_cast<std::size_t>(a)]; }
  double sig(ArcId a, int rf) const { return delays.sigma[rf][static_cast<std::size_t>(a)]; }
  ArcId only_net_arc(NetId n, PinId to) const {
    const auto [f, l] = graph->net_arcs(n);
    for (ArcId a = f; a < l; ++a) {
      if (graph->arc(a).to == to) return a;
    }
    return timing::kNullArc;
  }
};

TEST(HandBuilt, ClockArrivalsComposeFromArcDelays) {
  HandBuilt h;
  const timing::ClockAnalysis clock(*h.graph, h.delays, 3.0);
  ASSERT_TRUE(clock.has_clock());

  // Path to ff1/CK: net(clk->ckbuf) + cell(ckbuf) + net(ckbuf->ff1/CK),
  // all at the rising edge (rf index 0).
  const NetId n0 = h.d.pin(h.d.output_pin(h.clk)).net;
  const NetId n1 = h.d.pin(h.d.output_pin(h.ckbuf)).net;
  const ArcId a0 = h.only_net_arc(n0, h.d.input_pin(h.ckbuf, 0));
  const auto [bf, bl] = h.graph->cell_arcs(h.ckbuf);
  ASSERT_EQ(bl - bf, 1);
  const ArcId a1 = bf;
  const ArcId a2 = h.only_net_arc(n1, h.d.clock_pin(h.ff1));
  const double mu_expect = h.mu(a0, 0) + h.mu(a1, 0) + h.mu(a2, 0);
  const double sig2_expect = h.sig(a0, 0) * h.sig(a0, 0) +
                             h.sig(a1, 0) * h.sig(a1, 0) +
                             h.sig(a2, 0) * h.sig(a2, 0);
  EXPECT_NEAR(clock.ck_mu(h.ff1), mu_expect, 1e-12);
  EXPECT_NEAR(clock.ck_sig2(h.ff1), sig2_expect, 1e-12);
  EXPECT_NEAR(clock.late_ck(h.ff1), mu_expect + 3.0 * std::sqrt(sig2_expect),
              1e-12);
  EXPECT_NEAR(clock.early_ck(h.ff1), mu_expect - 3.0 * std::sqrt(sig2_expect),
              1e-12);
}

TEST(HandBuilt, CpprCreditIsLcaSpread) {
  HandBuilt h;
  const timing::ClockAnalysis clock(*h.graph, h.delays, 3.0);
  // LCA of ff1 and ff2 is the ckbuf output node: the common path is
  // net(clk->ckbuf) + cell(ckbuf).
  const NetId n0 = h.d.pin(h.d.output_pin(h.clk)).net;
  const ArcId a0 = h.only_net_arc(n0, h.d.input_pin(h.ckbuf, 0));
  const auto [bf, bl] = h.graph->cell_arcs(h.ckbuf);
  const double sig2_common =
      h.sig(a0, 0) * h.sig(a0, 0) + h.sig(bf, 0) * h.sig(bf, 0);
  EXPECT_NEAR(clock.credit(h.ff1, h.ff2), 2.0 * 3.0 * std::sqrt(sig2_common),
              1e-12);
  // Self-credit removes the whole clock path pessimism.
  EXPECT_NEAR(clock.credit(h.ff1, h.ff1),
              2.0 * 3.0 * std::sqrt(clock.ck_sig2(h.ff1)), 1e-12);
  // Symmetric; null cells yield zero.
  EXPECT_DOUBLE_EQ(clock.credit(h.ff1, h.ff2), clock.credit(h.ff2, h.ff1));
  EXPECT_DOUBLE_EQ(clock.credit(netlist::kNullCell, h.ff2), 0.0);
  EXPECT_GE(clock.max_credit(), clock.credit(h.ff1, h.ff2));
}

TEST(HandBuilt, EndpointSlackComposesFromParts) {
  HandBuilt h;
  ref::GoldenSta sta(*h.graph, h.cx, h.delays);
  sta.update_full();
  const timing::ClockAnalysis& clock = sta.clock();

  // Launch arrival at ff2/D (worst transition): ff1 launch + net + inv arc
  // + net. Compose with the RSS rules per transition and take the worst
  // corner.
  const NetId q_net = h.d.pin(h.d.output_pin(h.ff1)).net;
  const NetId inv_net = h.d.pin(h.d.output_pin(h.inv)).net;
  const ArcId a_q = h.only_net_arc(q_net, h.d.input_pin(h.inv, 0));
  const auto [invf, invl] = h.graph->cell_arcs(h.inv);
  ASSERT_EQ(invl - invf, 1);
  const ArcId a_d = h.only_net_arc(inv_net, h.d.input_pin(h.ff2, 0));
  const timing::StartpointId sp =
      h.graph->startpoint_of_pin(h.d.output_pin(h.ff1));
  const ref::GoldenSta::SpInit init = sta.sp_init(sp);

  double worst = -1e30;
  for (const int rf : {0, 1}) {
    // The inverter flips: output rf comes from input ~rf.
    const int qrf = 1 - rf;
    const double mu = init.mu[static_cast<std::size_t>(qrf)] + h.mu(a_q, qrf) +
                      h.mu(invf, rf) + h.mu(a_d, rf);
    const double sig2 =
        init.sigma[static_cast<std::size_t>(qrf)] *
            init.sigma[static_cast<std::size_t>(qrf)] +
        h.sig(a_q, qrf) * h.sig(a_q, qrf) + h.sig(invf, rf) * h.sig(invf, rf) +
        h.sig(a_d, rf) * h.sig(a_d, rf);
    worst = std::max(worst, mu + 3.0 * std::sqrt(sig2));
  }
  const timing::EndpointId ep =
      h.graph->endpoint_of_pin(h.d.input_pin(h.ff2, 0));
  EXPECT_NEAR(sta.worst_arrival(h.d.input_pin(h.ff2, 0)), worst, 1e-9);

  const netlist::LibCell& ff_lc = h.d.libcell_of(h.ff2);
  const double required = h.cx.clock_period + clock.early_ck(h.ff2) -
                          ff_lc.setup + clock.credit(h.ff1, h.ff2);
  EXPECT_NEAR(sta.endpoint_slack(ep), required - worst, 1e-9);
}

TEST(HandBuilt, ExceptionsChangeSlackAsSpecified) {
  HandBuilt h;
  const PinId sp_pin = h.d.output_pin(h.ff1);
  const PinId ep_pin = h.d.input_pin(h.ff2, 0);

  ref::GoldenSta plain(*h.graph, h.cx, h.delays);
  plain.update_full();
  const timing::EndpointId ep = h.graph->endpoint_of_pin(ep_pin);
  const double base_slack = plain.endpoint_slack(ep);
  ASSERT_TRUE(std::isfinite(base_slack));

  // Multicycle x2 adds exactly one period of slack.
  timing::Constraints mcp = h.cx;
  mcp.exceptions.push_back({timing::ExceptionKind::kMulticycle, sp_pin,
                            ep_pin, 2});
  ref::GoldenSta with_mcp(*h.graph, mcp, h.delays);
  with_mcp.update_full();
  EXPECT_NEAR(with_mcp.endpoint_slack(ep), base_slack + h.cx.clock_period,
              1e-9);

  // A false path on the only startpoint unconstrains the endpoint.
  timing::Constraints fp = h.cx;
  fp.exceptions.push_back({timing::ExceptionKind::kFalsePath, sp_pin, ep_pin,
                           2});
  ref::GoldenSta with_fp(*h.graph, fp, h.delays);
  with_fp.update_full();
  EXPECT_FALSE(std::isfinite(with_fp.endpoint_slack(ep)));
}

TEST(DelayCalc, MonotoneInLoadAndDrive) {
  HandBuilt h;
  // Resizing the inverter up must reduce its own arc delay (same load,
  // lower resistance) and increase the upstream net/driver load.
  const auto [invf, invl] = h.graph->cell_arcs(h.inv);
  const double before = h.mu(invf, 0);
  const NetId in_net = h.d.pin(h.d.input_pin(h.inv, 0)).net;
  const double load_before = h.calc->load(in_net);
  h.d.resize_cell(h.inv, h.lib.find(CellFunc::kInv, 16));
  h.calc->update_for_resize(h.inv, h.delays);
  EXPECT_LT(h.mu(invf, 0), before);
  EXPECT_GT(h.calc->load(in_net), load_before);
}

TEST(DelayCalc, ResizeUpdateMatchesFromScratch) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(71));
  TimingGraph graph(*gd.design, gd.constraints.clock_root);
  DelayCalculator calc(*gd.design, graph);
  ArcDelays delays;
  calc.compute_all(delays);

  util::Rng rng(5);
  for (int step = 0; step < 10; ++step) {
    // Random legal resize.
    CellId cell = netlist::kNullCell;
    while (cell == netlist::kNullCell) {
      const auto cand = static_cast<CellId>(
          rng.uniform_int(0, static_cast<std::int64_t>(gd.design->num_cells()) - 1));
      const auto& lc = gd.design->libcell_of(cand);
      if (!netlist::is_sequential(lc.func) && netlist::has_output(lc.func) &&
          netlist::num_data_inputs(lc.func) > 0 && !graph.is_clock_cell(cand)) {
        cell = cand;
      }
    }
    const auto family = gd.design->library().family(
        gd.design->libcell_of(cell).func);
    gd.design->resize_cell(
        cell, family[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(family.size()) - 1))]);
    calc.update_for_resize(cell, delays);
  }

  // The incrementally maintained delays must equal a from-scratch pass.
  DelayCalculator fresh(*gd.design, graph);
  ArcDelays scratch;
  fresh.compute_all(scratch);
  for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
    for (const int rf : {0, 1}) {
      EXPECT_NEAR(delays.mu[rf][a], scratch.mu[rf][a], 1e-9)
          << "arc " << a << " rf " << rf;
      EXPECT_NEAR(delays.sigma[rf][a], scratch.sigma[rf][a], 1e-9);
    }
  }
}

TEST(DelayCalc, EstimateEcoIsLocalAndFrozen) {
  HandBuilt h;
  const auto before_delays = h.delays;  // copy
  const auto deltas = h.calc->estimate_eco(h.inv, h.lib.find(CellFunc::kInv, 16));
  // estimate_eco must not mutate anything.
  for (std::size_t a = 0; a < h.graph->num_arcs(); ++a) {
    EXPECT_EQ(h.delays.mu[0][a], before_delays.mu[0][a]);
  }
  // It must cover the cell's own arc, the input net arc and the driver
  // (ff1 launch) arc.
  std::unordered_map<ArcId, timing::ArcDelta> by_arc;
  for (const auto& d : deltas) by_arc[d.arc] = d;
  const auto [invf, invl] = h.graph->cell_arcs(h.inv);
  EXPECT_TRUE(by_arc.count(invf));
  const NetId q_net = h.d.pin(h.d.output_pin(h.ff1)).net;
  const ArcId a_q = h.only_net_arc(q_net, h.d.input_pin(h.inv, 0));
  EXPECT_TRUE(by_arc.count(a_q));
  const auto [ff1f, ff1l] = h.graph->cell_arcs(h.ff1);
  EXPECT_TRUE(by_arc.count(ff1f)) << "driver launch arc must be re-estimated";

  // Against the exact committed update: net arcs carry no slew term, so the
  // eco estimate is exact there; the cell's own arc differs by precisely
  // the frozen-slew error (the resize raises the driver's load, hence its
  // output slew, hence the cell's input slew — which estimate_eco froze).
  const double frozen_in_slew_fall =
      h.calc->slew(h.d.input_pin(h.inv, 0), netlist::RiseFall::kFall);
  h.d.resize_cell(h.inv, h.lib.find(CellFunc::kInv, 16));
  const auto changed = h.calc->update_for_resize(h.inv, h.delays);
  EXPECT_NEAR(by_arc[a_q].mu[0], h.mu(a_q, 0), 1e-9);
  const double new_in_slew_fall =
      h.calc->slew(h.d.input_pin(h.inv, 0), netlist::RiseFall::kFall);
  EXPECT_GT(new_in_slew_fall, frozen_in_slew_fall);
  const double slew_sens = h.d.libcell_of(h.inv).slew_sens;
  // Inverter rise output comes from the falling input transition.
  EXPECT_NEAR(h.mu(invf, 0) - by_arc[invf].mu[0],
              slew_sens * (new_in_slew_fall - frozen_in_slew_fall), 1e-9);
  EXPECT_GE(changed.size(), deltas.size());
}

TEST(ExceptionTable, ResolvesAndRejects) {
  HandBuilt h;
  timing::TimingException good{timing::ExceptionKind::kMulticycle,
                               h.d.output_pin(h.ff1),
                               h.d.input_pin(h.ff2, 0), 3};
  const timing::ExceptionTable table(*h.graph, {&good, 1});
  const auto sp = h.graph->startpoint_of_pin(h.d.output_pin(h.ff1));
  const auto ep = h.graph->endpoint_of_pin(h.d.input_pin(h.ff2, 0));
  EXPECT_FALSE(table.is_false_path(sp, ep));
  EXPECT_DOUBLE_EQ(table.required_shift(sp, ep, 100.0), 200.0);
  // Pairs without an exception get no shift.
  const auto other_ep = h.graph->endpoint_of_pin(h.d.input_pin(h.ff1, 0));
  EXPECT_DOUBLE_EQ(table.required_shift(sp, other_ep, 100.0), 0.0);
  EXPECT_FALSE(table.is_false_path(sp, other_ep));

  timing::TimingException bad = good;
  bad.sp_pin = h.d.input_pin(h.inv, 0);  // not a startpoint
  EXPECT_THROW(timing::ExceptionTable(*h.graph, {&bad, 1}), util::CheckError);
}

}  // namespace
}  // namespace insta
