// Tests for the telemetry subsystem: metrics registry (concurrency,
// histogram bucketing, snapshot consistency), trace export (JSON validity,
// B/E balance, nesting across parallel_for), the JSON parser/validators,
// and the pluggable log sink.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/validate.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace insta {
namespace {

#if INSTA_TELEMETRY_ENABLED

TEST(Metrics, CounterBasics) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("test.basic");
  c.inc();
  c.add(41);
  EXPECT_EQ(reg.snapshot().counter_or("test.basic", 0), 42u);
  EXPECT_EQ(reg.snapshot().counter_or("test.missing", 7), 7u);

  // Registration is idempotent: the same name maps to the same counter.
  telemetry::Counter c2 = reg.counter("test.basic");
  c2.inc();
  EXPECT_EQ(reg.snapshot().counter_or("test.basic", 0), 43u);

  reg.reset();
  EXPECT_EQ(reg.snapshot().counter_or("test.basic", 0), 0u);
}

TEST(Metrics, DefaultHandlesAreNoOps) {
  telemetry::Counter c;
  telemetry::Gauge g;
  telemetry::Histogram h;
  c.inc();
  g.set(1.0);
  h.observe(1.0);  // must not crash
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() mutable {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counter_or("test.concurrent", 0),
            kThreads * kPerThread);
}

TEST(Metrics, ConcurrentIncrementsFromPoolSumExactly) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("test.pool");
  constexpr std::size_t kItems = 200000;
  util::ThreadPool::global().parallel_for_chunks(
      0, kItems,
      [c](std::size_t lo, std::size_t hi) mutable {
        for (std::size_t i = lo; i < hi; ++i) c.inc();
      },
      64);
  EXPECT_EQ(reg.snapshot().counter_or("test.pool", 0), kItems);
}

TEST(Metrics, GaugeSetAndMax) {
  telemetry::MetricsRegistry reg;
  telemetry::Gauge g = reg.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_or("test.gauge", 0.0), 2.5);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_or("test.gauge", 0.0), 2.5);
  g.set_max(9.0);  // higher: taken
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_or("test.gauge", 0.0), 9.0);
}

TEST(Metrics, HistogramBucketBoundaries) {
  telemetry::MetricsRegistry reg;
  // base 1, growth 2: bucket 0 <= 1, bucket 1 (1, 2], bucket 2 (2, 4], ...
  telemetry::Histogram h = reg.histogram("test.hist", {1.0, 2.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1 (boundary lands in the lower bucket)
  h.observe(2.001); // bucket 2
  h.observe(4.0);   // bucket 2
  h.observe(1e30);  // clamped into the last (unbounded) bucket

  const telemetry::HistogramSnapshot hs =
      reg.snapshot().histograms.at("test.hist");
  ASSERT_EQ(hs.buckets.size(),
            static_cast<std::size_t>(telemetry::MetricsRegistry::kNumBuckets));
  ASSERT_EQ(hs.bounds.size(), hs.buckets.size() - 1);
  EXPECT_EQ(hs.buckets[0], 2u);
  EXPECT_EQ(hs.buckets[1], 2u);
  EXPECT_EQ(hs.buckets[2], 2u);
  EXPECT_EQ(hs.buckets.back(), 1u);
  EXPECT_EQ(hs.count, 7u);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 1e30);
  EXPECT_DOUBLE_EQ(hs.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(hs.bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(hs.bounds[2], 4.0);

  // Re-registering with a different spec is an error.
  EXPECT_THROW(reg.histogram("test.hist", {1.0, 3.0}), std::runtime_error);
}

TEST(Metrics, SnapshotWhileWritingIsConsistent) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram h = reg.histogram("test.live", {1.0, 2.0});
  std::atomic<bool> stop{false};
  std::thread writer([h, &stop]() mutable {
    double v = 0.1;
    while (!stop.load(std::memory_order_relaxed)) {
      h.observe(v);
      v = v > 1e6 ? 0.1 : v * 1.7;
    }
  });
  for (int i = 0; i < 200; ++i) {
    const telemetry::MetricsSnapshot snap = reg.snapshot();
    const telemetry::HistogramSnapshot& hs = snap.histograms.at("test.live");
    std::uint64_t sum = 0;
    for (const std::uint64_t b : hs.buckets) sum += b;
    // The invariant the JSON checker enforces: count is derived from the
    // buckets, never torn against them.
    EXPECT_EQ(hs.count, sum);
  }
  stop.store(true);
  writer.join();
}

TEST(Metrics, SnapshotJsonValidates) {
  telemetry::MetricsRegistry reg;
  reg.counter("c.one").add(3);
  reg.gauge("g.one").set(1.25);
  reg.histogram("h.one", {1.0, 2.0}).observe(5.0);
  const std::string json = reg.snapshot().to_json();
  const telemetry::ValidationResult r = telemetry::validate_metrics_json(json);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
}

TEST(Trace, ExportIsValidAndBalanced) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    telemetry::TraceSpan outer("test.outer", 7);
    telemetry::TraceSpan inner("test.inner");
    { INSTA_TRACE_SCOPE("test.leaf", 42); }
  }
  tracer.set_enabled(false);

  const std::string json = tracer.chrome_trace_json();
  std::size_t events = 0;
  const telemetry::ValidationResult r =
      telemetry::validate_chrome_trace(json, &events);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  // 3 spans -> 3 B + 3 E, plus one thread_name metadata event.
  EXPECT_EQ(events, 7u);

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(json, doc, error)) << error;
  const telemetry::JsonValue* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  int balance = 0;
  bool saw_arg = false;
  for (const telemetry::JsonValue& ev : evs->array) {
    const std::string& ph = ev.find("ph")->string;
    if (ph == "B") {
      ++balance;
      const telemetry::JsonValue* a = ev.find("args");
      if (a != nullptr && ev.find("name")->string == "test.leaf") {
        saw_arg = a->find("v")->number == 42.0;
      }
    } else if (ph == "E") {
      ASSERT_GT(balance, 0);
      --balance;
    }
  }
  EXPECT_EQ(balance, 0);
  EXPECT_TRUE(saw_arg);
  tracer.clear();
}

TEST(Trace, SpansNestAcrossParallelFor) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    INSTA_TRACE_SCOPE("test.parallel_phase");
    util::ThreadPool::global().parallel_for_chunks(
        0, 10000,
        [](std::size_t lo, std::size_t hi) {
          INSTA_TRACE_SCOPE("test.chunk",
                            static_cast<std::int64_t>(hi - lo));
          volatile double sink = 0.0;
          for (std::size_t i = lo; i < hi; ++i) sink = sink + 1.0;
        },
        8);
  }
  tracer.set_enabled(false);

  const std::string json = tracer.chrome_trace_json();
  std::size_t events = 0;
  const telemetry::ValidationResult r =
      telemetry::validate_chrome_trace(json, &events);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(json, doc, error)) << error;
  int chunks = 0;
  bool saw_phase = false;
  for (const telemetry::JsonValue& ev : doc.find("traceEvents")->array) {
    if (ev.find("ph")->string != "B") continue;
    const std::string& name = ev.find("name")->string;
    if (name == "test.chunk") ++chunks;
    if (name == "test.parallel_phase") saw_phase = true;
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_GT(chunks, 0);  // worker threads recorded their own spans
  tracer.clear();
}

TEST(Trace, DisabledTracerRecordsNothing) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  { INSTA_TRACE_SCOPE("test.invisible"); }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.find("test.invisible"), std::string::npos);
}

#else  // !INSTA_TELEMETRY_ENABLED

TEST(Metrics, StubsCompileAndReturnEmpty) {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  reg.counter("x").inc();
  reg.gauge("y").set(1.0);
  reg.histogram("z").observe(2.0);
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_TRUE(telemetry::validate_metrics_json(reg.snapshot().to_json()).ok);
}

TEST(Trace, StubEmitsEmptyValidTrace) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.set_enabled(true);  // no-op
  { INSTA_TRACE_SCOPE("test.invisible"); }
  const telemetry::ValidationResult r =
      telemetry::validate_chrome_trace(tracer.chrome_trace_json());
  EXPECT_TRUE(r.ok);
}

#endif  // INSTA_TELEMETRY_ENABLED

TEST(JsonParse, RoundTripsBasics) {
  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null})",
      doc, error))
      << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->array[2].number, -300.0);
  EXPECT_EQ(doc.find("b")->find("c")->string, "x\ny");
  EXPECT_FALSE(telemetry::json_parse("{broken", doc, error));
  EXPECT_FALSE(error.empty());
}

TEST(Validate, RejectsMalformedTraces) {
  EXPECT_FALSE(telemetry::validate_chrome_trace("not json").ok);
  EXPECT_FALSE(telemetry::validate_chrome_trace(R"({"x": 1})").ok);
  // E without a matching B.
  EXPECT_FALSE(
      telemetry::validate_chrome_trace(
          R"({"traceEvents": [{"ph": "E", "pid": 1, "tid": 1, "ts": 0,)"
          R"( "name": "x"}]})")
          .ok);
  // Unclosed B.
  EXPECT_FALSE(
      telemetry::validate_chrome_trace(
          R"({"traceEvents": [{"ph": "B", "pid": 1, "tid": 1, "ts": 0,)"
          R"( "name": "x"}]})")
          .ok);
  EXPECT_TRUE(telemetry::validate_chrome_trace(R"({"traceEvents": []})").ok);
}

TEST(Validate, RejectsMalformedMetrics) {
  EXPECT_FALSE(telemetry::validate_metrics_json("[]").ok);
  EXPECT_FALSE(
      telemetry::validate_metrics_json(
          R"({"counters": {"c": -1}, "gauges": {}, "histograms": {}})")
          .ok);
  // count != sum(buckets).
  EXPECT_FALSE(
      telemetry::validate_metrics_json(
          R"({"counters": {}, "gauges": {}, "histograms": {"h":)"
          R"( {"bounds": [1.0], "buckets": [1, 2], "count": 4,)"
          R"( "sum": 3.0, "min": 0.5, "max": 2.0}}})")
          .ok);
  EXPECT_TRUE(
      telemetry::validate_metrics_json(
          R"({"counters": {"c": 3}, "gauges": {"g": 1.5}, "histograms": {}})")
          .ok);
}

TEST(Validate, WhatifSchema) {
  // A complete scenario with setup + hold summaries validates.
  const char* good =
      R"({"scenarios": [{"label": "resize-0", "num_deltas": 4,)"
      R"( "frontier_pins": 12, "early_terminations": 3,)"
      R"( "endpoints_evaluated": 5, "overlay_bytes": 2048,)"
      R"( "setup": {"tns": -12.5, "wns": -3.25, "violations": 4},)"
      R"( "hold": {"tns": 0.0, "wns": 0.0, "violations": 0}}]})";
  std::size_t n = 0;
  EXPECT_TRUE(telemetry::validate_whatif_json(good, &n).ok);
  EXPECT_EQ(n, 1u);

  // Hold is optional; an empty batch is legal.
  EXPECT_TRUE(
      telemetry::validate_whatif_json(R"({"scenarios": []})", &n).ok);
  EXPECT_EQ(n, 0u);

  EXPECT_FALSE(telemetry::validate_whatif_json("not json").ok);
  EXPECT_FALSE(telemetry::validate_whatif_json("[]").ok);
  EXPECT_FALSE(telemetry::validate_whatif_json(R"({"x": 1})").ok);
  // Positive TNS contradicts "sum of negative slacks".
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          R"({"scenarios": [{"label": "s", "num_deltas": 0,)"
          R"( "frontier_pins": 0, "early_terminations": 0,)"
          R"( "endpoints_evaluated": 0, "overlay_bytes": 0,)"
          R"( "setup": {"tns": 5.0, "wns": 0.0, "violations": 0}}]})")
          .ok);
  // Missing counters and fractional violation counts are structural errors.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          R"({"scenarios": [{"label": "s",)"
          R"( "setup": {"tns": 0.0, "wns": 0.0, "violations": 0}}]})")
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          R"({"scenarios": [{"label": "s", "num_deltas": 0,)"
          R"( "frontier_pins": 0, "early_terminations": 0,)"
          R"( "endpoints_evaluated": 0, "overlay_bytes": 0,)"
          R"( "setup": {"tns": 0.0, "wns": 0.0, "violations": 1.5}}]})")
          .ok);
}

TEST(Validate, WhatifSchemaFailureModes) {
  // Builds a scenario with one field replaced (or dropped when the
  // replacement is empty), so each required field is probed in isolation.
  const auto scenario_with = [](const std::string& field,
                                const std::string& json) {
    std::vector<std::pair<std::string, std::string>> fields = {
        {"label", R"("s")"},
        {"num_deltas", "1"},
        {"frontier_pins", "2"},
        {"early_terminations", "0"},
        {"endpoints_evaluated", "3"},
        {"overlay_bytes", "64"},
        {"setup", R"({"tns": -1.0, "wns": -0.5, "violations": 1})"},
    };
    std::string body = "{\"scenarios\": [{";
    bool first = true;
    for (const auto& [name, value] : fields) {
      const std::string& v = name == field ? json : value;
      if (v.empty()) continue;
      if (!first) body += ", ";
      first = false;
      body += "\"" + name + "\": " + v;
    }
    body += "}]}";
    return body;
  };

  // The all-defaults document is valid (sanity for the helper).
  std::size_t n = 0;
  EXPECT_TRUE(telemetry::validate_whatif_json(scenario_with("", ""), &n).ok);
  EXPECT_EQ(n, 1u);

  // Each required field missing is its own structural error.
  for (const char* field :
       {"label", "num_deltas", "frontier_pins", "early_terminations",
        "endpoints_evaluated", "overlay_bytes", "setup"}) {
    const telemetry::ValidationResult r =
        telemetry::validate_whatif_json(scenario_with(field, ""));
    EXPECT_FALSE(r.ok) << "missing " << field;
    EXPECT_FALSE(r.errors.empty()) << "missing " << field;
  }

  // Wrong types are rejected even when the field is present.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("label", "42")).ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("num_deltas", R"("4")"))
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("num_deltas", "-1")).ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("overlay_bytes", "1.5"))
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("setup", "[]")).ok);
  EXPECT_FALSE(telemetry::validate_whatif_json(
                   scenario_with("setup", R"({"tns": -1.0, "wns": -0.5})"))
                   .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          scenario_with(
              "setup", R"({"tns": "x", "wns": -0.5, "violations": 1})"))
          .ok);

  // Scenario-list shape: must be an array of objects under "scenarios".
  EXPECT_FALSE(telemetry::validate_whatif_json(R"({"scenarios": null})").ok);
  EXPECT_FALSE(telemetry::validate_whatif_json(R"({"scenarios": {}})").ok);
  EXPECT_FALSE(telemetry::validate_whatif_json(R"({"scenarios": [1]})").ok);
  // Empty list is legal and reports zero scenarios.
  n = 99;
  EXPECT_TRUE(telemetry::validate_whatif_json(R"({"scenarios": []})", &n).ok);
  EXPECT_EQ(n, 0u);
}

TEST(LogSink, CaptureSinkReceivesLines) {
  auto capture = std::make_shared<util::CaptureLogSink>();
  std::shared_ptr<util::LogSink> previous = util::set_log_sink(capture);
  const util::LogLevel old_level = util::log_level();
  util::set_log_level(util::LogLevel::kDebug);

  util::log(util::LogLevel::kInfo, "hello 42");
  util::log(util::LogLevel::kWarn, "watch out");
  util::set_log_level(util::LogLevel::kError);
  util::log(util::LogLevel::kInfo, "filtered away");

  const auto lines = capture->lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, util::LogLevel::kInfo);
  EXPECT_NE(lines[0].second.find("hello 42"), std::string::npos);
  EXPECT_NE(lines[0].second.find("INFO"), std::string::npos);
  EXPECT_EQ(lines[1].first, util::LogLevel::kWarn);
  EXPECT_NE(lines[1].second.find("watch out"), std::string::npos);

  capture->clear();
  EXPECT_TRUE(capture->lines().empty());

  util::set_log_level(old_level);
  util::set_log_sink(std::move(previous));
}

TEST(LogSink, ParseLogLevel) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("INFO"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("Warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("warning"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("none"), util::LogLevel::kOff);
  EXPECT_FALSE(util::parse_log_level("loud").has_value());
}

}  // namespace
}  // namespace insta
