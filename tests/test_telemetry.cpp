// Tests for the telemetry subsystem: metrics registry (concurrency,
// histogram bucketing, percentile estimation, snapshot consistency), trace
// export (JSON validity, B/E balance, flow events, nesting across
// parallel_for), the flight recorder (ring semantics, wrap, concurrent
// writers), the JSON parser/validators, and the pluggable log sink.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/validate.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace insta {
namespace {

#if INSTA_TELEMETRY_ENABLED

TEST(Metrics, CounterBasics) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("test.basic");
  c.inc();
  c.add(41);
  EXPECT_EQ(reg.snapshot().counter_or("test.basic", 0), 42u);
  EXPECT_EQ(reg.snapshot().counter_or("test.missing", 7), 7u);

  // Registration is idempotent: the same name maps to the same counter.
  telemetry::Counter c2 = reg.counter("test.basic");
  c2.inc();
  EXPECT_EQ(reg.snapshot().counter_or("test.basic", 0), 43u);

  reg.reset();
  EXPECT_EQ(reg.snapshot().counter_or("test.basic", 0), 0u);
}

TEST(Metrics, DefaultHandlesAreNoOps) {
  telemetry::Counter c;
  telemetry::Gauge g;
  telemetry::Histogram h;
  c.inc();
  g.set(1.0);
  h.observe(1.0);  // must not crash
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() mutable {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counter_or("test.concurrent", 0),
            kThreads * kPerThread);
}

TEST(Metrics, ConcurrentIncrementsFromPoolSumExactly) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("test.pool");
  constexpr std::size_t kItems = 200000;
  util::ThreadPool::global().parallel_for_chunks(
      0, kItems,
      [c](std::size_t lo, std::size_t hi) mutable {
        for (std::size_t i = lo; i < hi; ++i) c.inc();
      },
      64);
  EXPECT_EQ(reg.snapshot().counter_or("test.pool", 0), kItems);
}

TEST(Metrics, GaugeSetAndMax) {
  telemetry::MetricsRegistry reg;
  telemetry::Gauge g = reg.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_or("test.gauge", 0.0), 2.5);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_or("test.gauge", 0.0), 2.5);
  g.set_max(9.0);  // higher: taken
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_or("test.gauge", 0.0), 9.0);
}

TEST(Metrics, HistogramBucketBoundaries) {
  telemetry::MetricsRegistry reg;
  // base 1, growth 2: bucket 0 <= 1, bucket 1 (1, 2], bucket 2 (2, 4], ...
  telemetry::Histogram h = reg.histogram("test.hist", {1.0, 2.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1 (boundary lands in the lower bucket)
  h.observe(2.001); // bucket 2
  h.observe(4.0);   // bucket 2
  h.observe(1e30);  // clamped into the last (unbounded) bucket

  const telemetry::HistogramSnapshot hs =
      reg.snapshot().histograms.at("test.hist");
  ASSERT_EQ(hs.buckets.size(),
            static_cast<std::size_t>(telemetry::MetricsRegistry::kNumBuckets));
  ASSERT_EQ(hs.bounds.size(), hs.buckets.size() - 1);
  EXPECT_EQ(hs.buckets[0], 2u);
  EXPECT_EQ(hs.buckets[1], 2u);
  EXPECT_EQ(hs.buckets[2], 2u);
  EXPECT_EQ(hs.buckets.back(), 1u);
  EXPECT_EQ(hs.count, 7u);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 1e30);
  EXPECT_DOUBLE_EQ(hs.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(hs.bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(hs.bounds[2], 4.0);

  // Re-registering with a different spec is an error.
  EXPECT_THROW(reg.histogram("test.hist", {1.0, 3.0}), std::runtime_error);
}

TEST(Metrics, SnapshotWhileWritingIsConsistent) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram h = reg.histogram("test.live", {1.0, 2.0});
  std::atomic<bool> stop{false};
  std::thread writer([h, &stop]() mutable {
    double v = 0.1;
    while (!stop.load(std::memory_order_relaxed)) {
      h.observe(v);
      v = v > 1e6 ? 0.1 : v * 1.7;
    }
  });
  for (int i = 0; i < 200; ++i) {
    const telemetry::MetricsSnapshot snap = reg.snapshot();
    const telemetry::HistogramSnapshot& hs = snap.histograms.at("test.live");
    std::uint64_t sum = 0;
    for (const std::uint64_t b : hs.buckets) sum += b;
    // The invariant the JSON checker enforces: count is derived from the
    // buckets, never torn against them.
    EXPECT_EQ(hs.count, sum);
  }
  stop.store(true);
  writer.join();
}

TEST(Metrics, SnapshotJsonValidates) {
  telemetry::MetricsRegistry reg;
  reg.counter("c.one").add(3);
  reg.gauge("g.one").set(1.25);
  reg.histogram("h.one", {1.0, 2.0}).observe(5.0);
  const std::string json = reg.snapshot().to_json();
  const telemetry::ValidationResult r = telemetry::validate_metrics_json(json);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
}

TEST(Metrics, PercentilesMatchKnownDistributions) {
  telemetry::MetricsRegistry reg;

  // Empty histogram: all percentiles are 0.
  telemetry::Histogram empty = reg.histogram("test.pct_empty", {1.0, 2.0});
  (void)empty;
  EXPECT_DOUBLE_EQ(
      reg.snapshot().histograms.at("test.pct_empty").percentile(0.5), 0.0);

  // Single value: every quantile is that value (clamping to [min, max]).
  telemetry::Histogram one = reg.histogram("test.pct_one", {1.0, 2.0});
  one.observe(7.0);
  {
    const telemetry::HistogramSnapshot hs =
        reg.snapshot().histograms.at("test.pct_one");
    EXPECT_DOUBLE_EQ(hs.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(hs.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(hs.percentile(1.0), 7.0);
  }

  // Uniform 1..1000: the exact quantile q is ~1000q; interpolation inside
  // an exponential bucket is off by at most the bucket width (a factor of
  // `growth` = 2 here), so check within [exact / 2, exact * 2].
  telemetry::Histogram uni = reg.histogram("test.pct_uniform", {1.0, 2.0});
  for (int v = 1; v <= 1000; ++v) uni.observe(static_cast<double>(v));
  {
    const telemetry::HistogramSnapshot hs =
        reg.snapshot().histograms.at("test.pct_uniform");
    for (const double q : {0.50, 0.95, 0.99}) {
      const double exact = 1000.0 * q;
      const double est = hs.percentile(q);
      EXPECT_GE(est, exact / 2.0) << "q=" << q;
      EXPECT_LE(est, exact * 2.0) << "q=" << q;
      EXPECT_GE(est, hs.min);
      EXPECT_LE(est, hs.max);
    }
    // Monotone in q.
    EXPECT_LE(hs.percentile(0.50), hs.percentile(0.95));
    EXPECT_LE(hs.percentile(0.95), hs.percentile(0.99));
  }

  // Two-point mass: 90% at ~1, 10% at ~1000. p50 sits in the low bucket,
  // p99 in the high one.
  telemetry::Histogram bi = reg.histogram("test.pct_bimodal", {1.0, 2.0});
  for (int i = 0; i < 90; ++i) bi.observe(1.0);
  for (int i = 0; i < 10; ++i) bi.observe(1000.0);
  {
    const telemetry::HistogramSnapshot hs =
        reg.snapshot().histograms.at("test.pct_bimodal");
    EXPECT_LE(hs.percentile(0.50), 2.0);
    EXPECT_GE(hs.percentile(0.99), 500.0);
  }
}

TEST(Metrics, SnapshotJsonCarriesOrderedPercentiles) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram h = reg.histogram("test.pct_json", {1.0, 2.0});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(telemetry::validate_metrics_json(json).ok);

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(json, doc, error)) << error;
  const telemetry::JsonValue* hist =
      doc.find("histograms")->find("test.pct_json");
  ASSERT_NE(hist, nullptr);
  const telemetry::JsonValue* p50 = hist->find("p50");
  const telemetry::JsonValue* p95 = hist->find("p95");
  const telemetry::JsonValue* p99 = hist->find("p99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p95, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_LE(p50->number, p95->number);
  EXPECT_LE(p95->number, p99->number);
  EXPECT_LE(p99->number, hist->find("max")->number);
}

TEST(FlightRecorder, RecordRecentAndJsonRoundTrip) {
  telemetry::FlightRecorder& fr = telemetry::FlightRecorder::global();
  fr.clear();
  EXPECT_EQ(fr.total(), 0u);
  EXPECT_TRUE(fr.recent().empty());

  fr.record(telemetry::FlightEventType::kAdmit, 11, 0, 3);
  fr.record(telemetry::FlightEventType::kEnqueue, 11, 0, 2);
  fr.record(telemetry::FlightEventType::kReply, 11, 5, 0);
  EXPECT_EQ(fr.total(), 3u);

  const std::vector<telemetry::FlightEvent> events = fr.recent();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, telemetry::FlightEventType::kAdmit);
  EXPECT_EQ(events[0].request_id, 11u);
  EXPECT_EQ(events[0].detail, 3u);
  EXPECT_EQ(events[2].type, telemetry::FlightEventType::kReply);
  EXPECT_EQ(events[2].generation, 5u);
  EXPECT_LE(events[0].ts_ns, events[2].ts_ns);

  // recent(max) keeps the newest events.
  const std::vector<telemetry::FlightEvent> last = fr.recent(1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].type, telemetry::FlightEventType::kReply);

  // The JSON dump validates against its schema and counts every event.
  std::size_t n = 0;
  const telemetry::ValidationResult r =
      telemetry::validate_flightrec_json(fr.to_json(), &n);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(n, 3u);

  fr.clear();
  EXPECT_EQ(fr.total(), 0u);
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEvents) {
  telemetry::FlightRecorder& fr = telemetry::FlightRecorder::global();
  fr.clear();
  const std::size_t cap = telemetry::FlightRecorder::kCapacity;
  const std::size_t total = cap + 100;
  for (std::size_t i = 0; i < total; ++i) {
    fr.record(telemetry::FlightEventType::kAdmit, i);
  }
  EXPECT_EQ(fr.total(), total);
  const std::vector<telemetry::FlightEvent> events = fr.recent();
  ASSERT_EQ(events.size(), cap);
  // Chronological, and exactly the newest `cap` ids survive.
  EXPECT_EQ(events.front().request_id, 100u);
  EXPECT_EQ(events.back().request_id, total - 1);
  fr.clear();
}

TEST(FlightRecorder, ConcurrentWritersNeverTearReads) {
  telemetry::FlightRecorder& fr = telemetry::FlightRecorder::global();
  fr.clear();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fr, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // detail encodes the writer so torn slots would show impossible
        // (id, detail) pairs below.
        fr.record(telemetry::FlightEventType::kEval,
                  static_cast<std::uint64_t>(t) * kPerThread + i, 0,
                  static_cast<std::uint32_t>(t));
      }
    });
  }
  // Concurrent reads may legitimately find few publishable slots (the
  // hottest ones are mid-overwrite), but whatever they surface must be
  // untorn. The post-join pass below then checks a full quiescent read.
  for (int i = 0; i < 50; ++i) {
    for (const telemetry::FlightEvent& ev : fr.recent(256)) {
      EXPECT_EQ(ev.request_id / kPerThread, ev.detail);
    }
  }
  for (std::thread& t : threads) t.join();
  const std::vector<telemetry::FlightEvent> settled = fr.recent();
  EXPECT_EQ(settled.size(), telemetry::FlightRecorder::kCapacity);
  for (const telemetry::FlightEvent& ev : settled) {
    EXPECT_EQ(ev.request_id / kPerThread, ev.detail);
  }
  EXPECT_EQ(fr.total(), kThreads * kPerThread);
  EXPECT_TRUE(telemetry::validate_flightrec_json(fr.to_json()).ok);
  fr.clear();
}

TEST(Trace, FlowEventsExportAndValidate) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    telemetry::TraceSpan request("test.request");
    tracer.flow(7, 's');
  }
  {
    telemetry::TraceSpan leader("test.leader");
    tracer.flow(7, 't');
    tracer.flow(8, 't');
  }
  {
    telemetry::TraceSpan request("test.request");
    tracer.flow(7, 'f');
  }
  tracer.set_enabled(false);

  const std::string json = tracer.chrome_trace_json();
  const telemetry::ValidationResult r = telemetry::validate_chrome_trace(json);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(json, doc, error)) << error;
  std::set<std::string> phases;
  std::set<std::uint64_t> step_ids;
  for (const telemetry::JsonValue& ev : doc.find("traceEvents")->array) {
    const std::string& ph = ev.find("ph")->string;
    if (ph != "s" && ph != "t" && ph != "f") continue;
    phases.insert(ph);
    EXPECT_EQ(ev.find("name")->string, "req");
    if (ph == "t") {
      step_ids.insert(static_cast<std::uint64_t>(ev.find("id")->number));
    }
    if (ph == "f") {
      ASSERT_NE(ev.find("bp"), nullptr);
      EXPECT_EQ(ev.find("bp")->string, "e");
    }
  }
  EXPECT_EQ(phases.size(), 3u);
  EXPECT_TRUE(step_ids.count(7));
  EXPECT_TRUE(step_ids.count(8));
  tracer.clear();
}

TEST(Trace, ExportIsValidAndBalanced) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    telemetry::TraceSpan outer("test.outer", 7);
    telemetry::TraceSpan inner("test.inner");
    { INSTA_TRACE_SCOPE("test.leaf", 42); }
  }
  tracer.set_enabled(false);

  const std::string json = tracer.chrome_trace_json();
  std::size_t events = 0;
  const telemetry::ValidationResult r =
      telemetry::validate_chrome_trace(json, &events);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  // 3 spans -> 3 B + 3 E, plus one thread_name metadata event.
  EXPECT_EQ(events, 7u);

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(json, doc, error)) << error;
  const telemetry::JsonValue* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  int balance = 0;
  bool saw_arg = false;
  for (const telemetry::JsonValue& ev : evs->array) {
    const std::string& ph = ev.find("ph")->string;
    if (ph == "B") {
      ++balance;
      const telemetry::JsonValue* a = ev.find("args");
      if (a != nullptr && ev.find("name")->string == "test.leaf") {
        saw_arg = a->find("v")->number == 42.0;
      }
    } else if (ph == "E") {
      ASSERT_GT(balance, 0);
      --balance;
    }
  }
  EXPECT_EQ(balance, 0);
  EXPECT_TRUE(saw_arg);
  tracer.clear();
}

TEST(Trace, SpansNestAcrossParallelFor) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    INSTA_TRACE_SCOPE("test.parallel_phase");
    util::ThreadPool::global().parallel_for_chunks(
        0, 10000,
        [](std::size_t lo, std::size_t hi) {
          INSTA_TRACE_SCOPE("test.chunk",
                            static_cast<std::int64_t>(hi - lo));
          volatile double sink = 0.0;
          for (std::size_t i = lo; i < hi; ++i) sink = sink + 1.0;
        },
        8);
  }
  tracer.set_enabled(false);

  const std::string json = tracer.chrome_trace_json();
  std::size_t events = 0;
  const telemetry::ValidationResult r =
      telemetry::validate_chrome_trace(json, &events);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(json, doc, error)) << error;
  int chunks = 0;
  bool saw_phase = false;
  for (const telemetry::JsonValue& ev : doc.find("traceEvents")->array) {
    if (ev.find("ph")->string != "B") continue;
    const std::string& name = ev.find("name")->string;
    if (name == "test.chunk") ++chunks;
    if (name == "test.parallel_phase") saw_phase = true;
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_GT(chunks, 0);  // worker threads recorded their own spans
  tracer.clear();
}

TEST(Trace, DisabledTracerRecordsNothing) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  { INSTA_TRACE_SCOPE("test.invisible"); }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.find("test.invisible"), std::string::npos);
}

#else  // !INSTA_TELEMETRY_ENABLED

TEST(Metrics, StubsCompileAndReturnEmpty) {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  reg.counter("x").inc();
  reg.gauge("y").set(1.0);
  reg.histogram("z").observe(2.0);
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_TRUE(telemetry::validate_metrics_json(reg.snapshot().to_json()).ok);
}

TEST(Trace, StubEmitsEmptyValidTrace) {
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  tracer.set_enabled(true);  // no-op
  { INSTA_TRACE_SCOPE("test.invisible"); }
  const telemetry::ValidationResult r =
      telemetry::validate_chrome_trace(tracer.chrome_trace_json());
  EXPECT_TRUE(r.ok);
}

#endif  // INSTA_TELEMETRY_ENABLED

TEST(JsonParse, RoundTripsBasics) {
  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null})",
      doc, error))
      << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->array[2].number, -300.0);
  EXPECT_EQ(doc.find("b")->find("c")->string, "x\ny");
  EXPECT_FALSE(telemetry::json_parse("{broken", doc, error));
  EXPECT_FALSE(error.empty());
}

TEST(Validate, RejectsMalformedTraces) {
  EXPECT_FALSE(telemetry::validate_chrome_trace("not json").ok);
  EXPECT_FALSE(telemetry::validate_chrome_trace(R"({"x": 1})").ok);
  // E without a matching B.
  EXPECT_FALSE(
      telemetry::validate_chrome_trace(
          R"({"traceEvents": [{"ph": "E", "pid": 1, "tid": 1, "ts": 0,)"
          R"( "name": "x"}]})")
          .ok);
  // Unclosed B.
  EXPECT_FALSE(
      telemetry::validate_chrome_trace(
          R"({"traceEvents": [{"ph": "B", "pid": 1, "tid": 1, "ts": 0,)"
          R"( "name": "x"}]})")
          .ok);
  EXPECT_TRUE(telemetry::validate_chrome_trace(R"({"traceEvents": []})").ok);
}

TEST(Validate, RejectsMalformedMetrics) {
  EXPECT_FALSE(telemetry::validate_metrics_json("[]").ok);
  EXPECT_FALSE(
      telemetry::validate_metrics_json(
          R"({"counters": {"c": -1}, "gauges": {}, "histograms": {}})")
          .ok);
  // count != sum(buckets).
  EXPECT_FALSE(
      telemetry::validate_metrics_json(
          R"({"counters": {}, "gauges": {}, "histograms": {"h":)"
          R"( {"bounds": [1.0], "buckets": [1, 2], "count": 4,)"
          R"( "sum": 3.0, "min": 0.5, "max": 2.0}}})")
          .ok);
  EXPECT_TRUE(
      telemetry::validate_metrics_json(
          R"({"counters": {"c": 3}, "gauges": {"g": 1.5}, "histograms": {}})")
          .ok);
}

TEST(Validate, WhatifSchema) {
  // The generation/corner-set stamp every whatif report must carry.
  const std::string stamp =
      R"("generation": 7, "corners": [{"name": "default",)"
      R"( "delay_scale": 1.0, "sigma_scale": 1.0}], )";
  // A complete scenario with setup + hold summaries validates.
  const std::string good =
      "{" + stamp +
      R"("scenarios": [{"label": "resize-0", "num_deltas": 4,)"
      R"( "frontier_pins": 12, "early_terminations": 3,)"
      R"( "endpoints_evaluated": 5, "overlay_bytes": 2048,)"
      R"( "setup": {"tns": -12.5, "wns": -3.25, "violations": 4},)"
      R"( "hold": {"tns": 0.0, "wns": 0.0, "violations": 0}}]})";
  std::size_t n = 0;
  EXPECT_TRUE(telemetry::validate_whatif_json(good, &n).ok);
  EXPECT_EQ(n, 1u);

  // Hold is optional; an empty batch is legal.
  EXPECT_TRUE(
      telemetry::validate_whatif_json("{" + stamp + R"("scenarios": []})", &n)
          .ok);
  EXPECT_EQ(n, 0u);

  EXPECT_FALSE(telemetry::validate_whatif_json("not json").ok);
  EXPECT_FALSE(telemetry::validate_whatif_json("[]").ok);
  EXPECT_FALSE(telemetry::validate_whatif_json(R"({"x": 1})").ok);
  // The stamps themselves are required; an unstamped report is rejected.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(R"({"scenarios": []})").ok);
  EXPECT_FALSE(telemetry::validate_whatif_json(
                   R"({"generation": 7, "scenarios": []})")
                   .ok);
  // Bad corner entries are structural errors.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          R"({"generation": 1, "corners": [], "scenarios": []})")
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          R"({"generation": 1, "corners": [{"name": "",)"
          R"( "delay_scale": 1.0, "sigma_scale": 1.0}], "scenarios": []})")
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          R"({"generation": 1, "corners": [{"name": "bad",)"
          R"( "delay_scale": -1.0, "sigma_scale": 1.0}], "scenarios": []})")
          .ok);
  // Positive TNS contradicts "sum of negative slacks".
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          "{" + stamp +
          R"("scenarios": [{"label": "s", "num_deltas": 0,)"
          R"( "frontier_pins": 0, "early_terminations": 0,)"
          R"( "endpoints_evaluated": 0, "overlay_bytes": 0,)"
          R"( "setup": {"tns": 5.0, "wns": 0.0, "violations": 0}}]})")
          .ok);
  // Missing counters and fractional violation counts are structural errors.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          "{" + stamp +
          R"("scenarios": [{"label": "s",)"
          R"( "setup": {"tns": 0.0, "wns": 0.0, "violations": 0}}]})")
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          "{" + stamp +
          R"("scenarios": [{"label": "s", "num_deltas": 0,)"
          R"( "frontier_pins": 0, "early_terminations": 0,)"
          R"( "endpoints_evaluated": 0, "overlay_bytes": 0,)"
          R"( "setup": {"tns": 0.0, "wns": 0.0, "violations": 1.5}}]})")
          .ok);
}

TEST(Validate, WhatifSchemaPerCornerSummaries) {
  // Two stamped corners; per-corner summary arrays must match their count
  // and every element must be a well-formed summary.
  const std::string stamp =
      R"("generation": 3, "corners": [)"
      R"({"name": "fast", "delay_scale": 0.9, "sigma_scale": 0.95},)"
      R"( {"name": "slow", "delay_scale": 1.1, "sigma_scale": 1.05}], )";
  const auto doc = [&](const std::string& by_corner) {
    return "{" + stamp +
           R"("scenarios": [{"label": "s", "num_deltas": 1,)"
           R"( "frontier_pins": 0, "early_terminations": 0,)"
           R"( "endpoints_evaluated": 0, "overlay_bytes": 0,)"
           R"( "setup": {"tns": -2.0, "wns": -1.0, "violations": 1})" +
           by_corner + "}]}";
  };
  EXPECT_TRUE(telemetry::validate_whatif_json(doc("")).ok);
  EXPECT_TRUE(
      telemetry::validate_whatif_json(
          doc(R"(, "setup_by_corner": [)"
              R"({"tns": -1.0, "wns": -1.0, "violations": 1},)"
              R"( {"tns": -2.0, "wns": -1.5, "violations": 1}])"))
          .ok);
  // Wrong cardinality: one summary for two corners.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          doc(R"(, "setup_by_corner": [)"
              R"({"tns": -1.0, "wns": -1.0, "violations": 1}])"))
          .ok);
  // Malformed element inside the per-corner array.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          doc(R"(, "hold_by_corner": [{"tns": -1.0}, 42])"))
          .ok);
}

TEST(Validate, WhatifSchemaFailureModes) {
  // Builds a scenario with one field replaced (or dropped when the
  // replacement is empty), so each required field is probed in isolation.
  const auto scenario_with = [](const std::string& field,
                                const std::string& json) {
    std::vector<std::pair<std::string, std::string>> fields = {
        {"label", R"("s")"},
        {"num_deltas", "1"},
        {"frontier_pins", "2"},
        {"early_terminations", "0"},
        {"endpoints_evaluated", "3"},
        {"overlay_bytes", "64"},
        {"setup", R"({"tns": -1.0, "wns": -0.5, "violations": 1})"},
    };
    std::string body =
        R"({"generation": 1, "corners": [{"name": "default",)"
        R"( "delay_scale": 1.0, "sigma_scale": 1.0}], "scenarios": [{)";
    bool first = true;
    for (const auto& [name, value] : fields) {
      const std::string& v = name == field ? json : value;
      if (v.empty()) continue;
      if (!first) body += ", ";
      first = false;
      body += "\"" + name + "\": " + v;
    }
    body += "}]}";
    return body;
  };

  // The all-defaults document is valid (sanity for the helper).
  std::size_t n = 0;
  EXPECT_TRUE(telemetry::validate_whatif_json(scenario_with("", ""), &n).ok);
  EXPECT_EQ(n, 1u);

  // Each required field missing is its own structural error.
  for (const char* field :
       {"label", "num_deltas", "frontier_pins", "early_terminations",
        "endpoints_evaluated", "overlay_bytes", "setup"}) {
    const telemetry::ValidationResult r =
        telemetry::validate_whatif_json(scenario_with(field, ""));
    EXPECT_FALSE(r.ok) << "missing " << field;
    EXPECT_FALSE(r.errors.empty()) << "missing " << field;
  }

  // Wrong types are rejected even when the field is present.
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("label", "42")).ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("num_deltas", R"("4")"))
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("num_deltas", "-1")).ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("overlay_bytes", "1.5"))
          .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(scenario_with("setup", "[]")).ok);
  EXPECT_FALSE(telemetry::validate_whatif_json(
                   scenario_with("setup", R"({"tns": -1.0, "wns": -0.5})"))
                   .ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(
          scenario_with(
              "setup", R"({"tns": "x", "wns": -0.5, "violations": 1})"))
          .ok);

  // Scenario-list shape: must be an array of objects under "scenarios".
  const std::string stamp =
      R"({"generation": 1, "corners": [{"name": "default",)"
      R"( "delay_scale": 1.0, "sigma_scale": 1.0}], )";
  EXPECT_FALSE(
      telemetry::validate_whatif_json(stamp + R"("scenarios": null})").ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(stamp + R"("scenarios": {}})").ok);
  EXPECT_FALSE(
      telemetry::validate_whatif_json(stamp + R"("scenarios": [1]})").ok);
  // Empty list is legal and reports zero scenarios.
  n = 99;
  EXPECT_TRUE(
      telemetry::validate_whatif_json(stamp + R"("scenarios": []})", &n).ok);
  EXPECT_EQ(n, 0u);
}

TEST(Validate, FlightrecSchema) {
  const char* good =
      R"({"total": 3, "events": [)"
      R"({"ts_us": 1.5, "type": "admit", "id": 11, "generation": 0,)"
      R"( "detail": 3},)"
      R"({"ts_us": 2.0, "type": "enqueue", "id": 11, "generation": 0,)"
      R"( "detail": 1},)"
      R"({"ts_us": 1.9, "type": "reply", "id": 11, "generation": 5,)"
      R"( "detail": 0}]})";
  std::size_t n = 0;
  const telemetry::ValidationResult r =
      telemetry::validate_flightrec_json(good, &n);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  // Note the third event's ts_us regressing: claim order is not timestamp
  // order for a writer preempted between its ticket and its clock sample.
  EXPECT_EQ(n, 3u);

  // Empty document is legal.
  EXPECT_TRUE(
      telemetry::validate_flightrec_json(R"({"total": 0, "events": []})").ok);

  EXPECT_FALSE(telemetry::validate_flightrec_json("not json").ok);
  EXPECT_FALSE(telemetry::validate_flightrec_json("[]").ok);
  EXPECT_FALSE(
      telemetry::validate_flightrec_json(R"({"events": []})").ok);
  EXPECT_FALSE(
      telemetry::validate_flightrec_json(R"({"total": -1, "events": []})").ok);
  EXPECT_FALSE(
      telemetry::validate_flightrec_json(R"({"total": 0.5, "events": []})")
          .ok);
  EXPECT_FALSE(
      telemetry::validate_flightrec_json(R"({"total": 0, "events": {}})").ok);
  // Per-event failures: unknown type, negative ts, fractional id.
  EXPECT_FALSE(telemetry::validate_flightrec_json(
                   R"({"total": 1, "events": [{"ts_us": 1.0,)"
                   R"( "type": "teleport", "id": 1, "generation": 0,)"
                   R"( "detail": 0}]})")
                   .ok);
  EXPECT_FALSE(telemetry::validate_flightrec_json(
                   R"({"total": 1, "events": [{"ts_us": -1.0,)"
                   R"( "type": "admit", "id": 1, "generation": 0,)"
                   R"( "detail": 0}]})")
                   .ok);
  EXPECT_FALSE(telemetry::validate_flightrec_json(
                   R"({"total": 1, "events": [{"ts_us": 1.0,)"
                   R"( "type": "admit", "id": 1.5, "generation": 0,)"
                   R"( "detail": 0}]})")
                   .ok);
}

TEST(Validate, ServeReportSchema) {
  const auto report_with = [](const std::string& field,
                              const std::string& json) {
    std::vector<std::pair<std::string, std::string>> fields = {
        {"clients", "4"},
        {"requests_per_client", "50"},
        {"ok", "198"},
        {"shed", "2"},
        {"rejected", "0"},
        {"failed", "0"},
        {"commits", "1"},
        {"wall_sec", "1.5"},
        {"qps", "133.3"},
        {"latency_ms",
         R"({"p50": 1.0, "p95": 2.0, "p99": 3.0, "max": 4.0})"},
    };
    std::string body = "{";
    bool first = true;
    for (const auto& [name, value] : fields) {
      const std::string& v = name == field ? json : value;
      if (v.empty()) continue;
      if (!first) body += ", ";
      first = false;
      body += "\"" + name + "\": " + v;
    }
    body += "}";
    return body;
  };

  // The all-defaults report is valid (sanity for the helper).
  const telemetry::ValidationResult r =
      telemetry::validate_serve_report(report_with("", ""));
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());

  EXPECT_FALSE(telemetry::validate_serve_report("not json").ok);
  EXPECT_FALSE(telemetry::validate_serve_report("[]").ok);

  // Each required field missing is a structural error.
  for (const char* field :
       {"clients", "requests_per_client", "ok", "shed", "rejected", "failed",
        "commits", "wall_sec", "qps", "latency_ms"}) {
    EXPECT_FALSE(telemetry::validate_serve_report(report_with(field, "")).ok)
        << "missing " << field;
  }

  // Type and range violations.
  EXPECT_FALSE(
      telemetry::validate_serve_report(report_with("clients", "-1")).ok);
  EXPECT_FALSE(
      telemetry::validate_serve_report(report_with("ok", "1.5")).ok);
  EXPECT_FALSE(
      telemetry::validate_serve_report(report_with("qps", "-2.0")).ok);
  EXPECT_FALSE(
      telemetry::validate_serve_report(report_with("latency_ms", "[]")).ok);
  // Percentiles must be non-decreasing and non-negative.
  EXPECT_FALSE(telemetry::validate_serve_report(
                   report_with("latency_ms", R"({"p50": 3.0, "p95": 2.0,)"
                                             R"( "p99": 4.0, "max": 5.0})"))
                   .ok);
  EXPECT_FALSE(telemetry::validate_serve_report(
                   report_with("latency_ms", R"({"p50": -1.0, "p95": 2.0,)"
                                             R"( "p99": 3.0, "max": 4.0})"))
                   .ok);
  EXPECT_FALSE(telemetry::validate_serve_report(
                   report_with("latency_ms",
                               R"({"p50": 1.0, "p95": 2.0, "p99": 3.0})"))
                   .ok);
}

TEST(LogSink, CaptureSinkReceivesLines) {
  auto capture = std::make_shared<util::CaptureLogSink>();
  std::shared_ptr<util::LogSink> previous = util::set_log_sink(capture);
  const util::LogLevel old_level = util::log_level();
  util::set_log_level(util::LogLevel::kDebug);

  util::log(util::LogLevel::kInfo, "hello 42");
  util::log(util::LogLevel::kWarn, "watch out");
  util::set_log_level(util::LogLevel::kError);
  util::log(util::LogLevel::kInfo, "filtered away");

  const auto lines = capture->lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, util::LogLevel::kInfo);
  EXPECT_NE(lines[0].second.find("hello 42"), std::string::npos);
  EXPECT_NE(lines[0].second.find("INFO"), std::string::npos);
  EXPECT_EQ(lines[1].first, util::LogLevel::kWarn);
  EXPECT_NE(lines[1].second.find("watch out"), std::string::npos);

  capture->clear();
  EXPECT_TRUE(capture->lines().empty());

  util::set_log_level(old_level);
  util::set_log_sink(std::move(previous));
}

TEST(LogSink, ParseLogLevel) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("INFO"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("Warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("warning"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("none"), util::LogLevel::kOff);
  EXPECT_FALSE(util::parse_log_level("loud").has_value());
}

}  // namespace
}  // namespace insta
