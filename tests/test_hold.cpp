#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/brute_force.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    ref::GoldenOptions opt;
    opt.enable_hold = true;
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays, opt);
    sta->update_full();
  }
};

class Hold : public ::testing::TestWithParam<std::uint64_t> {};

/// Golden hold slacks equal exhaustive min-path enumeration with exact
/// CPPR credits.
TEST_P(Hold, GoldenMatchesBruteForce) {
  Fixture f(GetParam());
  const auto brute =
      ref::brute_force_hold_slacks(*f.graph, f.gd.constraints, f.delays);
  ASSERT_EQ(brute.size(), f.sta->hold_slacks().size());
  for (std::size_t e = 0; e < brute.size(); ++e) {
    const double mine = f.sta->hold_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(brute[e])) {
      EXPECT_FALSE(std::isfinite(mine)) << "endpoint " << e;
      continue;
    }
    EXPECT_NEAR(brute[e], mine, 1e-7) << "endpoint " << e;
  }
}

/// INSTA with K >= #startpoints reproduces golden hold slacks to float
/// precision.
TEST_P(Hold, EngineMatchesGolden) {
  Fixture f(GetParam());
  core::EngineOptions opt;
  opt.top_k = static_cast<int>(f.graph->startpoints().size());
  opt.enable_hold = true;
  core::Engine engine(*f.sta, opt);
  engine.run_forward();
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const double g = f.sta->hold_slack(static_cast<timing::EndpointId>(e));
    const float m = engine.endpoint_hold_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(g)) {
      EXPECT_FALSE(std::isfinite(m)) << "endpoint " << e;
      continue;
    }
    EXPECT_NEAR(g, static_cast<double>(m), 2e-2) << "endpoint " << e;
  }
  EXPECT_NEAR(f.sta->ths(), engine.ths(), std::abs(f.sta->ths()) * 1e-4 + 0.1);
  EXPECT_NEAR(f.sta->whs(), engine.whs(), 2e-2);
}

/// Early arrivals never exceed late arrivals (per pin, per transition):
/// the min over paths at the -3sigma corner is at most the max at +3sigma.
TEST_P(Hold, EarlyNeverExceedsLate) {
  Fixture f(GetParam());
  for (const netlist::PinId p : f.graph->level_order()) {
    for (const auto rf : netlist::kBothTransitions) {
      const auto late = f.sta->arrivals(p, rf);
      const auto early = f.sta->early_arrivals(p, rf);
      if (late.empty() || early.empty()) {
        EXPECT_EQ(late.empty(), early.empty());
        continue;
      }
      EXPECT_LE(early.front().corner, late.front().corner) << "pin " << p;
    }
  }
}

/// Hold slacks are period-independent: changing the clock period moves
/// setup slacks one-for-one but leaves hold slacks untouched.
TEST_P(Hold, HoldIsPeriodIndependent) {
  Fixture f(GetParam());
  timing::Constraints faster = f.gd.constraints;
  faster.clock_period *= 0.5;
  ref::GoldenOptions opt;
  opt.enable_hold = true;
  ref::GoldenSta sta2(*f.graph, faster, f.delays, opt);
  sta2.update_full();
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const double a = f.sta->hold_slack(static_cast<timing::EndpointId>(e));
    const double b = sta2.hold_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(a)) continue;
    EXPECT_DOUBLE_EQ(a, b) << "endpoint " << e;
  }
  EXPECT_LT(sta2.wns(), f.sta->wns());
}

/// Incremental updates keep hold state consistent with a full update.
TEST_P(Hold, IncrementalKeepsHoldConsistent) {
  Fixture f(GetParam());
  util::Rng rng(GetParam() * 13 + 5);
  for (int step = 0; step < 4; ++step) {
    std::vector<netlist::CellId> candidates;
    for (std::size_t c = 0; c < f.gd.design->num_cells(); ++c) {
      const auto id = static_cast<netlist::CellId>(c);
      const auto& lc = f.gd.design->libcell_of(id);
      if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
          netlist::num_data_inputs(lc.func) == 0 ||
          f.graph->is_clock_cell(id)) {
        continue;
      }
      candidates.push_back(id);
    }
    const auto cell = candidates[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1))];
    const auto family =
        f.gd.design->library().family(f.gd.design->libcell_of(cell).func);
    netlist::LibCellId nl = f.gd.design->cell(cell).libcell;
    while (nl == f.gd.design->cell(cell).libcell) {
      nl = family[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(family.size()) - 1))];
    }
    f.gd.design->resize_cell(cell, nl);
    const auto changed = f.calc->update_for_resize(cell, f.sta->mutable_delays());
    f.sta->update_incremental(changed);
  }
  ref::GoldenOptions opt;
  opt.enable_hold = true;
  ref::GoldenSta fresh(*f.graph, f.gd.constraints, f.delays, opt);
  fresh.update_full();
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const double a = f.sta->hold_slack(static_cast<timing::EndpointId>(e));
    const double b = fresh.hold_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(b)) {
      EXPECT_FALSE(std::isfinite(a));
    } else {
      EXPECT_DOUBLE_EQ(a, b) << "endpoint " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hold, ::testing::Values(121u, 122u, 123u,
                                                        124u));

}  // namespace
}  // namespace insta
