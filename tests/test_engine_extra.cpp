#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

class EngineExtra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineExtra, AnnotateReadRoundTrip) {
  Fixture f(GetParam());
  core::Engine engine(*f.sta, {});
  // Data arc round trip.
  timing::ArcId data_arc = timing::kNullArc;
  timing::ArcId launch_arc = timing::kNullArc;
  for (std::size_t a = 0; a < f.graph->num_arcs(); ++a) {
    const auto& rec = f.graph->arc(static_cast<timing::ArcId>(a));
    if (rec.kind == timing::ArcKind::kLaunch && launch_arc == timing::kNullArc) {
      launch_arc = static_cast<timing::ArcId>(a);
    }
    if (rec.kind == timing::ArcKind::kCell && data_arc == timing::kNullArc &&
        !f.graph->is_clock_cell(rec.cell)) {
      data_arc = static_cast<timing::ArcId>(a);
    }
  }
  ASSERT_NE(data_arc, timing::kNullArc);
  ASSERT_NE(launch_arc, timing::kNullArc);

  for (const timing::ArcId arc : {data_arc, launch_arc}) {
    timing::ArcDelta d;
    d.arc = arc;
    d.mu = {123.0, 77.0};
    d.sigma = {4.0, 2.5};
    engine.annotate({&d, 1});
    const timing::ArcDelta back = engine.read_annotation(arc);
    for (const int rf : {0, 1}) {
      EXPECT_NEAR(back.mu[static_cast<std::size_t>(rf)],
                  d.mu[static_cast<std::size_t>(rf)], 1e-3)
          << "arc " << arc;
      EXPECT_NEAR(back.sigma[static_cast<std::size_t>(rf)],
                  d.sigma[static_cast<std::size_t>(rf)], 1e-3);
    }
  }
}

TEST_P(EngineExtra, LaunchAnnotationShiftsDownstreamArrivals) {
  Fixture f(GetParam());
  core::Engine engine(*f.sta, {});
  engine.run_forward();
  const auto& sp = f.graph->startpoints()[0].clocked
                       ? f.graph->startpoints()[0]
                       : f.graph->startpoints().back();
  ASSERT_TRUE(sp.clocked);
  const float before = engine.worst_arrival(sp.pin);

  const auto [first, last] = f.graph->cell_arcs(sp.cell);
  ASSERT_EQ(last - first, 1);
  timing::ArcDelta d = engine.read_annotation(first);
  d.mu[0] += 50.0;
  d.mu[1] += 50.0;
  engine.annotate({&d, 1});
  engine.run_forward();
  EXPECT_NEAR(engine.worst_arrival(sp.pin), before + 50.0f, 0.01f);
}

TEST_P(EngineExtra, ArrivalListsAreSortedWithUniqueStartpoints) {
  Fixture f(GetParam());
  core::EngineOptions opt;
  opt.top_k = 8;
  core::Engine engine(*f.sta, opt);
  engine.run_forward();
  for (std::size_t p = 0; p < f.gd.design->num_pins(); ++p) {
    for (const auto rf : netlist::kBothTransitions) {
      const auto entries = engine.arrivals(static_cast<netlist::PinId>(p), rf);
      std::set<std::int32_t> sps;
      for (std::size_t k = 0; k < entries.size(); ++k) {
        EXPECT_TRUE(sps.insert(entries[k].sp).second)
            << "duplicate startpoint at pin " << p;
        if (k > 0) {
          EXPECT_LE(entries[k].arr, entries[k - 1].arr);
        }
        EXPECT_NEAR(entries[k].arr, entries[k].mu + 3.0f * entries[k].sig,
                    0.01f);
      }
    }
  }
}

TEST_P(EngineExtra, ParallelAndSerialForwardAgree) {
  Fixture f(GetParam());
  core::EngineOptions par;
  par.parallel = true;
  core::EngineOptions ser;
  ser.parallel = false;
  core::Engine a(*f.sta, par);
  core::Engine b(*f.sta, ser);
  a.run_forward();
  b.run_forward();
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const float sa = a.endpoint_slack(static_cast<timing::EndpointId>(e));
    const float sb = b.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(sa)) {
      EXPECT_FALSE(std::isfinite(sb));
    } else {
      EXPECT_EQ(sa, sb);
    }
  }
  a.run_backward(core::GradientMetric::kTns);
  b.run_backward(core::GradientMetric::kTns);
  for (std::size_t arc = 0; arc < f.graph->num_arcs(); ++arc) {
    EXPECT_EQ(a.arc_gradient(static_cast<timing::ArcId>(arc)),
              b.arc_gradient(static_cast<timing::ArcId>(arc)));
  }
}

/// Larger K monotonically refines accuracy against the golden reference:
/// the worst-case slack mismatch is non-increasing in K.
TEST_P(EngineExtra, TopKMonotonicallyRefinesAccuracy) {
  Fixture f(GetParam());
  double prev_worst = std::numeric_limits<double>::infinity();
  for (const int k : {1, 2, 4, 64}) {
    core::EngineOptions opt;
    opt.top_k = k;
    core::Engine engine(*f.sta, opt);
    engine.run_forward();
    double worst = 0.0;
    for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
      const double g = f.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
      const float m = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
      if (!std::isfinite(g) || !std::isfinite(m)) continue;
      worst = std::max(worst, std::abs(g - static_cast<double>(m)));
    }
    EXPECT_LE(worst, prev_worst + 0.01) << "K=" << k;
    prev_worst = worst;
  }
  // And K large enough is exact to float precision.
  EXPECT_LT(prev_worst, 0.05);
}

TEST_P(EngineExtra, MemoryScalesWithK) {
  Fixture f(GetParam());
  core::EngineOptions small;
  small.top_k = 2;
  core::EngineOptions big;
  big.top_k = 64;
  core::Engine a(*f.sta, small);
  core::Engine b(*f.sta, big);
  EXPECT_GT(a.memory_bytes(), 0u);
  EXPECT_GT(b.memory_bytes(), 4 * a.memory_bytes());
}

TEST_P(EngineExtra, RejectsClockArcAnnotation) {
  Fixture f(GetParam());
  core::Engine engine(*f.sta, {});
  // Find a clock-network net arc.
  timing::ArcId clock_arc = timing::kNullArc;
  for (std::size_t a = 0; a < f.graph->num_arcs(); ++a) {
    const auto& rec = f.graph->arc(static_cast<timing::ArcId>(a));
    if (rec.kind == timing::ArcKind::kNet &&
        f.graph->is_clock_network(rec.to)) {
      clock_arc = static_cast<timing::ArcId>(a);
      break;
    }
  }
  ASSERT_NE(clock_arc, timing::kNullArc);
  timing::ArcDelta d;
  d.arc = clock_arc;
  EXPECT_THROW(engine.annotate({&d, 1}), util::CheckError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineExtra,
                         ::testing::Values(91u, 92u, 93u, 94u));

}  // namespace
}  // namespace insta
