#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

class EngineVsGolden : public ::testing::TestWithParam<std::uint64_t> {};

/// With K at least the number of startpoints, INSTA's Top-K propagation is
/// exhaustive and must reproduce the golden slacks to float precision.
TEST_P(EngineVsGolden, ExactWithLargeK) {
  Fixture f(GetParam());
  core::EngineOptions opt;
  opt.top_k = static_cast<int>(f.graph->startpoints().size());
  core::Engine engine(*f.sta, opt);
  engine.run_forward();
  const auto golden = f.sta->endpoint_slacks();
  for (std::size_t e = 0; e < golden.size(); ++e) {
    const float mine = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(golden[e])) {
      EXPECT_FALSE(std::isfinite(mine)) << "endpoint " << e;
      continue;
    }
    // float32 arithmetic over ~1e3 ps magnitudes: allow ~1e-2 ps.
    EXPECT_NEAR(golden[e], static_cast<double>(mine), 2e-2) << "endpoint " << e;
  }
  EXPECT_NEAR(f.sta->tns(), engine.tns(), std::abs(f.sta->tns()) * 1e-4 + 0.1);
  EXPECT_NEAR(f.sta->wns(), engine.wns(), 2e-2);
}

/// K=1 (no CPPR handling) must be pessimistic-or-equal against full K:
/// dropping startpoint diversity can only lose CPPR credit at an endpoint.
TEST_P(EngineVsGolden, TopK1IsConservativeOnCredit) {
  Fixture f(GetParam());
  core::EngineOptions big;
  big.top_k = static_cast<int>(f.graph->startpoints().size());
  core::EngineOptions one;
  one.top_k = 1;
  core::Engine eb(*f.sta, big);
  core::Engine e1(*f.sta, one);
  eb.run_forward();
  e1.run_forward();
  int mismatches = 0;
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const float sb = eb.endpoint_slack(static_cast<timing::EndpointId>(e));
    const float s1 = e1.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(sb) || !std::isfinite(s1)) continue;
    if (s1 != sb) ++mismatches;
    // The worst arrivals agree closely but not exactly: picking the
    // max-corner entry at each pin (K=1) is not monotone under RSS — an
    // entry with a slightly lower corner but smaller sigma can produce a
    // larger corner downstream, which a larger K retains. The discrepancy
    // is bounded by the sigma spread per stage.
    EXPECT_NEAR(eb.worst_arrival(f.graph->endpoints()[e].pin),
                e1.worst_arrival(f.graph->endpoints()[e].pin), 0.5f);
  }
  (void)mismatches;  // informational; CPPR differences are expected
}

/// Incremental golden update after a resize must equal a full update.
TEST_P(EngineVsGolden, GoldenIncrementalEqualsFull) {
  Fixture f(GetParam());
  util::Rng rng(GetParam() * 77 + 1);
  // Apply five random resizes incrementally.
  for (int step = 0; step < 5; ++step) {
    std::vector<netlist::CellId> candidates;
    for (std::size_t c = 0; c < f.gd.design->num_cells(); ++c) {
      const auto id = static_cast<netlist::CellId>(c);
      const auto& lc = f.gd.design->libcell_of(id);
      if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
          netlist::num_data_inputs(lc.func) == 0 || f.graph->is_clock_cell(id)) {
        continue;
      }
      candidates.push_back(id);
    }
    const auto cell = candidates[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1))];
    const auto& lc = f.gd.design->libcell_of(cell);
    const auto family = f.gd.design->library().family(lc.func);
    netlist::LibCellId nl = lc.id;
    while (nl == lc.id) {
      nl = family[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(family.size()) - 1))];
    }
    f.gd.design->resize_cell(cell, nl);
    const auto changed = f.calc->update_for_resize(cell, f.delays);
    f.sta->update_incremental(changed);
  }
  // Compare against a fresh engine doing a full update on the same state.
  ref::GoldenSta fresh(*f.graph, f.gd.constraints, f.delays);
  fresh.update_full();
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const double a = f.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const double b = fresh.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(b)) {
      EXPECT_FALSE(std::isfinite(a));
      continue;
    }
    EXPECT_DOUBLE_EQ(a, b) << "endpoint " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsGolden,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace insta
