#include <gtest/gtest.h>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "size/power_recovery.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed, double violate) {
    gen::LogicBlockSpec spec = gen::tiny_spec(seed);
    spec.num_gates = 800;
    spec.num_ffs = 64;
    spec.false_path_frac = 0.0;
    spec.multicycle_frac = 0.0;
    gd = gen::build_logic_block(spec);
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, violate);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

class PowerRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PowerRecovery, RecoversLeakageWithoutTimingDamage) {
  Fixture f(GetParam(), 0.05);
  size::PowerRecovery recovery(*f.gd.design, *f.graph, *f.calc, *f.sta, {});
  const size::PowerRecoveryResult r = recovery.run();
  EXPECT_GT(r.cells_downsized, 0);
  EXPECT_LT(r.final_leakage, r.initial_leakage);
  EXPECT_LE(r.final_area, r.initial_area);
  // Timing-constrained: WNS/TNS must not materially degrade. Individual
  // moves were validated on INSTA (float, estimate_eco); allow a small
  // double-vs-float + eco-drift band on the final exact measurement.
  EXPECT_GE(r.final_tns, r.initial_tns - 5.0);
  EXPECT_GE(r.final_wns, r.initial_wns - 5.0);
  // The golden engine reflects the committed netlist exactly.
  timing::ArcDelays fresh_delays;
  timing::DelayCalculator fresh_calc(*f.gd.design, *f.graph);
  fresh_calc.compute_all(fresh_delays);
  ref::GoldenSta fresh(*f.graph, f.gd.constraints, fresh_delays);
  fresh.update_full();
  EXPECT_NEAR(fresh.tns(), f.sta->tns(), 1e-6);
}

TEST_P(PowerRecovery, FrozenWhenEverythingIsCritical) {
  // With a period that violates everywhere, every stage carries gradient
  // and nothing may be downsized.
  Fixture f(GetParam(), 0.05);
  timing::Constraints brutal = f.gd.constraints;
  brutal.clock_period *= 0.3;
  ref::GoldenSta sta2(*f.graph, brutal, f.delays);
  sta2.update_full();
  size::PowerRecoveryOptions opt;
  opt.tau = 50.0f;
  size::PowerRecovery recovery(*f.gd.design, *f.graph, *f.calc, sta2, opt);
  const size::PowerRecoveryResult r = recovery.run();
  // Downsizing may still find gradient-free corners, but the TNS guard must
  // hold them harmless.
  EXPECT_GE(r.final_tns, r.initial_tns - 5.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerRecovery,
                         ::testing::Values(141u, 142u, 143u));

}  // namespace
}  // namespace insta
