#include <gtest/gtest.h>

#include <cmath>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "size/insta_buffer.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

TEST(InsertBuffer, RewiresStructurallyCorrectly) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(7));
  netlist::Design& d = *gd.design;
  // Pick a multi-sink data net.
  netlist::NetId net = netlist::kNullNet;
  for (std::size_t n = 0; n < d.num_nets(); ++n) {
    const auto& rec = d.net(static_cast<netlist::NetId>(n));
    if (rec.sinks.size() >= 2 &&
        d.pin(rec.sinks[0]).role == netlist::PinRole::kData &&
        d.pin(rec.sinks[1]).role == netlist::PinRole::kData) {
      net = static_cast<netlist::NetId>(n);
      break;
    }
  }
  ASSERT_NE(net, netlist::kNullNet);
  const std::size_t sinks_before = d.net(net).sinks.size();
  const netlist::PinId sink = d.net(net).sinks[0];
  const std::size_t cells_before = d.num_cells();

  const netlist::CellId buf = size::insert_buffer(
      d, net, sink, d.library().find(netlist::CellFunc::kBuf, 8), 0.25);

  EXPECT_EQ(d.num_cells(), cells_before + 1);
  EXPECT_EQ(d.net(net).sinks.size(), sinks_before);  // sink swapped for buffer
  const netlist::NetId stub = d.pin(d.output_pin(buf)).net;
  ASSERT_NE(stub, netlist::kNullNet);
  ASSERT_EQ(d.net(stub).sinks.size(), 1u);
  EXPECT_EQ(d.net(stub).sinks[0], sink);
  EXPECT_EQ(d.pin(sink).net, stub);
  d.validate();
  // The graph still builds (no loops, clock cone intact).
  EXPECT_NO_THROW(timing::TimingGraph(d, gd.constraints.clock_root));
}

TEST(InstaBuffer, ImprovesTnsOnWireDominatedDesigns) {
  // Long nets make buffering profitable (quadratic RC term).
  gen::LogicBlockSpec spec = gen::tiny_spec(17);
  spec.num_gates = 900;
  spec.num_ffs = 90;
  spec.net_length_mean = 120.0;
  spec.false_path_frac = 0.0;
  spec.multicycle_frac = 0.0;
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  {
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.15);
  }

  size::InstaBuffer buffering(*gd.design, gd.constraints, {});
  const size::BufferResult r = buffering.run();
  EXPECT_LT(r.initial_tns, 0.0);
  EXPECT_GE(r.final_tns, r.initial_tns)
      << "a rejected pass must leave TNS untouched";
  if (r.buffers_inserted > 0) {
    EXPECT_GT(r.final_tns, r.initial_tns);
    EXPECT_GT(r.passes_kept, 0);
  }
  // The committed design is structurally valid and re-analyzable.
  gd.design->validate();
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  ref::GoldenSta sta(graph, gd.constraints, delays);
  sta.update_full();
  EXPECT_NEAR(sta.tns(), r.final_tns, 1e-6);
}

TEST(InstaBuffer, RejectedRunRestoresDesignExactly) {
  gen::LogicBlockSpec spec = gen::tiny_spec(18);
  spec.net_length_mean = 10.0;  // short nets: buffering cannot help
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  {
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.1);
  }
  const std::size_t cells_before = gd.design->num_cells();
  size::InstaBufferOptions opt;
  opt.min_length = 1e9;  // no candidate qualifies
  size::InstaBuffer buffering(*gd.design, gd.constraints, opt);
  const size::BufferResult r = buffering.run();
  EXPECT_EQ(r.buffers_inserted, 0);
  EXPECT_EQ(gd.design->num_cells(), cells_before);
  EXPECT_DOUBLE_EQ(r.initial_tns, r.final_tns);
}

}  // namespace
}  // namespace insta
