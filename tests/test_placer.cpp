#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "gen/placement_bench.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "place/hpwl.hpp"
#include "place/legalizer.hpp"
#include "place/pin_slacks.hpp"
#include "place/placer.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

gen::PlacementBenchSpec small_spec(std::uint64_t seed) {
  gen::PlacementBenchSpec spec;
  spec.logic = gen::tiny_spec(seed);
  spec.logic.num_gates = 800;
  spec.logic.num_ffs = 80;
  spec.logic.false_path_frac = 0.0;
  spec.logic.multicycle_frac = 0.0;
  return spec;
}

void tune_bench(gen::PlacementBench& bench, double violate_frac) {
  timing::TimingGraph graph(*bench.gd.design, bench.gd.constraints.clock_root);
  timing::DelayModelParams dm;
  dm.use_placement = true;
  timing::DelayCalculator calc(*bench.gd.design, graph, dm);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, bench.gd.constraints, delays, violate_frac);
}

class Placer : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Placer, LegalizerProducesLegalRows) {
  gen::PlacementBench bench = gen::build_placement_bench(small_spec(GetParam()));
  netlist::Design& d = *bench.gd.design;
  const place::CoreGeometry core{bench.core_width, bench.core_height,
                                 bench.row_height, bench.num_rows};
  place::legalize_rows(d, core);

  // Every movable cell sits on a row center and inside the core; per-row
  // intervals do not overlap.
  std::unordered_map<int, std::vector<std::pair<double, double>>> rows;
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    const netlist::Cell& cell = d.cell(id);
    if (cell.fixed || d.libcell_of(id).area <= 0.0) continue;
    const double w = std::max(0.2, d.libcell_of(id).area / bench.row_height);
    EXPECT_GE(cell.x - w * 0.5, -1e-6);
    EXPECT_LE(cell.x + w * 0.5, bench.core_width + 1e-6);
    const double row_f = cell.y / bench.row_height - 0.5;
    const int row = static_cast<int>(std::lround(row_f));
    EXPECT_NEAR(row_f, row, 1e-9) << "cell not on a row center";
    rows[row].emplace_back(cell.x - w * 0.5, cell.x + w * 0.5);
  }
  for (auto& [row, spans] : rows) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9)
          << "overlap in row " << row;
    }
  }
}

TEST_P(Placer, PinSlacksMatchEndpointSlacks) {
  gen::PlacementBench bench = gen::build_placement_bench(small_spec(GetParam()));
  tune_bench(bench, 0.1);
  timing::TimingGraph graph(*bench.gd.design, bench.gd.constraints.clock_root);
  timing::DelayModelParams dm;
  dm.use_placement = true;
  timing::DelayCalculator calc(*bench.gd.design, graph, dm);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  ref::GoldenSta sta(graph, bench.gd.constraints, delays);
  sta.update_full();
  const auto slacks = place::compute_pin_slacks(sta);
  for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
    const double eps = sta.endpoint_slack(static_cast<timing::EndpointId>(e));
    const double pin = slacks[static_cast<std::size_t>(graph.endpoints()[e].pin)];
    if (!std::isfinite(eps)) continue;
    EXPECT_NEAR(eps, pin, 1e-9) << "endpoint " << e;
  }
  // The scalar backward view adds corner delays while the forward arrival
  // RSSes sigmas, so intermediate pin slacks are pessimistic: the global
  // minimum pin slack can only be at or below the WNS, never above it.
  double min_slack = std::numeric_limits<double>::infinity();
  for (const netlist::PinId p : graph.level_order()) {
    min_slack = std::min(min_slack, slacks[static_cast<std::size_t>(p)]);
  }
  EXPECT_LE(min_slack, sta.wns() + 1e-6);
}

TEST_P(Placer, PlacementReducesHpwl) {
  gen::PlacementBench bench = gen::build_placement_bench(small_spec(GetParam()));
  tune_bench(bench, 0.1);
  const double initial = place::total_hpwl(*bench.gd.design);
  place::PlacerOptions opt;
  opt.iterations = 120;
  place::GlobalPlacer placer(bench, opt);
  const place::PlaceResult res = placer.run();
  EXPECT_LT(res.hpwl, initial) << "placement should beat a random scatter";
  EXPECT_GT(res.hpwl, 0.0);
}

TEST_P(Placer, DensityForceSpreadsClumps) {
  gen::PlacementBench bench = gen::build_placement_bench(small_spec(GetParam()));
  tune_bench(bench, 0.1);
  place::PlacerOptions opt;
  opt.iterations = 150;
  place::GlobalPlacer placer(bench, opt);
  (void)placer.run();

  // After placement + legalization, no density bin may hold a gross clump:
  // max bin utilization stays within a small multiple of the average.
  constexpr int kBins = 8;
  const double bw = bench.core_width / kBins;
  const double bh = bench.core_height / kBins;
  std::vector<double> area(kBins * kBins, 0.0);
  double total = 0.0;
  const netlist::Design& d = *bench.gd.design;
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    const double a = d.libcell_of(id).area;
    if (a <= 0.0) continue;
    const int bx = std::clamp(static_cast<int>(d.cell(id).x / bw), 0, kBins - 1);
    const int by = std::clamp(static_cast<int>(d.cell(id).y / bh), 0, kBins - 1);
    area[static_cast<std::size_t>(by * kBins + bx)] += a;
    total += a;
  }
  const double avg = total / (kBins * kBins);
  double worst = 0.0;
  for (const double a : area) worst = std::max(worst, a);
  EXPECT_LT(worst, 4.0 * avg) << "placement left a gross density clump";
}

TEST_P(Placer, InstaPlaceModeRunsAndRecordsPhases) {
  gen::PlacementBench bench = gen::build_placement_bench(small_spec(GetParam()));
  tune_bench(bench, 0.1);
  place::PlacerOptions opt;
  opt.iterations = 60;
  opt.mode = place::TimingMode::kInstaPlace;
  place::GlobalPlacer placer(bench, opt);
  const place::PlaceResult res = placer.run();
  EXPECT_GT(res.phases.refreshes, 0);
  EXPECT_GT(res.phases.timer_sec, 0.0);
  EXPECT_GT(res.phases.transfer_sec, 0.0);
  EXPECT_GT(res.phases.backward_sec, 0.0);
  EXPECT_GT(res.hpwl, 0.0);
}

TEST_P(Placer, NetWeightModeRuns) {
  gen::PlacementBench bench = gen::build_placement_bench(small_spec(GetParam()));
  tune_bench(bench, 0.1);
  place::PlacerOptions opt;
  opt.iterations = 60;
  opt.mode = place::TimingMode::kNetWeight;
  place::GlobalPlacer placer(bench, opt);
  const place::PlaceResult res = placer.run();
  EXPECT_GT(res.phases.refreshes, 0);
  EXPECT_GT(res.hpwl, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Placer, ::testing::Values(51u, 52u, 53u));

}  // namespace
}  // namespace insta
