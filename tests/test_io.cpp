#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "io/design_io.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"

namespace insta {
namespace {

class DesignIo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesignIo, RoundTripPreservesTiming) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(GetParam()));
  {
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.1);
  }

  std::stringstream ss;
  io::save_design(*gd.design, gd.constraints, ss);
  io::LoadedDesign loaded = io::load_design(ss);

  ASSERT_EQ(loaded.design->num_cells(), gd.design->num_cells());
  ASSERT_EQ(loaded.design->num_nets(), gd.design->num_nets());
  ASSERT_EQ(loaded.design->num_pins(), gd.design->num_pins());
  EXPECT_EQ(loaded.constraints.clock_root, gd.constraints.clock_root);
  EXPECT_DOUBLE_EQ(loaded.constraints.clock_period,
                   gd.constraints.clock_period);
  EXPECT_EQ(loaded.constraints.exceptions.size(),
            gd.constraints.exceptions.size());

  auto slacks = [](const netlist::Design& d, const timing::Constraints& cx) {
    timing::TimingGraph graph(d, cx.clock_root);
    timing::DelayCalculator calc(d, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    ref::GoldenSta sta(graph, cx, delays);
    sta.update_full();
    return std::vector<double>(sta.endpoint_slacks().begin(),
                               sta.endpoint_slacks().end());
  };
  const auto original = slacks(*gd.design, gd.constraints);
  const auto reloaded = slacks(*loaded.design, loaded.constraints);
  ASSERT_EQ(original.size(), reloaded.size());
  for (std::size_t e = 0; e < original.size(); ++e) {
    if (!std::isfinite(original[e])) {
      EXPECT_FALSE(std::isfinite(reloaded[e]));
    } else {
      EXPECT_DOUBLE_EQ(original[e], reloaded[e]) << "endpoint " << e;
    }
  }
}

TEST_P(DesignIo, RoundTripPreservesPlacementAndFixedness) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(GetParam()));
  gd.design->cell(3).x = 123.5;
  gd.design->cell(3).y = 42.25;
  gd.design->cell(3).fixed = true;
  std::stringstream ss;
  io::save_design(*gd.design, gd.constraints, ss);
  const io::LoadedDesign loaded = io::load_design(ss);
  EXPECT_DOUBLE_EQ(loaded.design->cell(3).x, 123.5);
  EXPECT_DOUBLE_EQ(loaded.design->cell(3).y, 42.25);
  EXPECT_TRUE(loaded.design->cell(3).fixed);
  EXPECT_EQ(loaded.design->cell(3).name, gd.design->cell(3).name);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesignIo, ::testing::Values(111u, 112u));

TEST(DesignIoErrors, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(io::load_design(empty), util::CheckError);

  std::stringstream bad_header("hello 1\n");
  EXPECT_THROW(io::load_design(bad_header), util::CheckError);

  std::stringstream bad_version("inet 99\n");
  EXPECT_THROW(io::load_design(bad_version), util::CheckError);

  std::stringstream truncated("inet 1\nlibrary 2\nlibcell x inv 1 1 1 1\n");
  EXPECT_THROW(io::load_design(truncated), util::CheckError);
}

TEST(DesignIoErrors, RejectsUnknownLibcellReference) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(1));
  std::stringstream ss;
  io::save_design(*gd.design, gd.constraints, ss);
  std::string text = ss.str();
  const auto pos = text.find("cell g0 ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "cell g0x");  // mangles the libcell name field
  std::stringstream mangled(text);
  EXPECT_THROW(io::load_design(mangled), util::CheckError);
}

TEST(DesignIoErrors, CommentsAreIgnored) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(2));
  std::stringstream ss;
  ss << "# a comment before the header\n";
  io::save_design(*gd.design, gd.constraints, ss);
  EXPECT_NO_THROW(io::load_design(ss));
}

}  // namespace
}  // namespace insta
