#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "timing/graph.hpp"
#include "util/check.hpp"

namespace insta {
namespace {

using netlist::CellFunc;
using netlist::CellId;
using netlist::Library;
using netlist::NetId;
using netlist::PinId;
using timing::ArcId;
using timing::ArcKind;
using timing::ArcRecord;
using timing::ArcSense;
using timing::TimingGraph;

TEST(Graph, ArcEnumerationPerFunction) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId a = d.add_input_port("a");
  const CellId b = d.add_input_port("b");
  const CellId x = d.add_cell("x", lib.find(CellFunc::kXor2, 1));
  const CellId n = d.add_cell("n", lib.find(CellFunc::kNand2, 1));
  const CellId out = d.add_output_port("o");
  auto wire = [&](PinId drv, std::initializer_list<PinId> sinks) {
    const NetId net = d.add_net("w" + std::to_string(d.num_nets()));
    d.connect_driver(net, drv);
    for (const PinId s : sinks) d.connect_sink(net, s);
  };
  wire(d.output_pin(a), {d.input_pin(x, 0), d.input_pin(n, 0)});
  wire(d.output_pin(b), {d.input_pin(x, 1), d.input_pin(n, 1)});
  wire(d.output_pin(x), {d.input_pin(out, 0)});
  d.validate();

  const TimingGraph g(d, netlist::kNullCell);
  // XOR contributes 2 inputs x 2 senses = 4 cell arcs; NAND2 2 negative
  // arcs; 5 net arcs.
  const auto [xf, xl] = g.cell_arcs(x);
  EXPECT_EQ(xl - xf, 4);
  int pos = 0, neg = 0;
  for (ArcId aid = xf; aid < xl; ++aid) {
    (g.arc(aid).sense == ArcSense::kPositive ? pos : neg) += 1;
    EXPECT_EQ(g.arc(aid).kind, ArcKind::kCell);
    EXPECT_EQ(g.arc(aid).cell, x);
  }
  EXPECT_EQ(pos, 2);
  EXPECT_EQ(neg, 2);
  const auto [nf, nl] = g.cell_arcs(n);
  EXPECT_EQ(nl - nf, 2);
  for (ArcId aid = nf; aid < nl; ++aid) {
    EXPECT_EQ(g.arc(aid).sense, ArcSense::kNegative);
  }
  int net_arcs = 0;
  for (const ArcRecord& rec : g.arcs()) {
    if (rec.kind == ArcKind::kNet) ++net_arcs;
  }
  EXPECT_EQ(net_arcs, 5);
  // Startpoints: a and b; endpoints: the output port pin.
  EXPECT_EQ(g.startpoints().size(), 2u);
  EXPECT_EQ(g.endpoints().size(), 1u);
}

TEST(Graph, CombinationalLoopDetected) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId i1 = d.add_cell("i1", lib.find(CellFunc::kInv, 1));
  const CellId i2 = d.add_cell("i2", lib.find(CellFunc::kInv, 1));
  const NetId n1 = d.add_net("n1");
  const NetId n2 = d.add_net("n2");
  d.connect_driver(n1, d.output_pin(i1));
  d.connect_sink(n1, d.input_pin(i2, 0));
  d.connect_driver(n2, d.output_pin(i2));
  d.connect_sink(n2, d.input_pin(i1, 0));
  EXPECT_THROW(TimingGraph(d, netlist::kNullCell), util::CheckError);
}

class GraphOnGenerated : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    gd_ = gen::build_logic_block(gen::tiny_spec(GetParam()));
    graph_ = std::make_unique<TimingGraph>(*gd_.design,
                                           gd_.constraints.clock_root);
  }
  gen::GeneratedDesign gd_;
  std::unique_ptr<TimingGraph> graph_;
};

TEST_P(GraphOnGenerated, LevelsAreTopological) {
  const auto& g = *graph_;
  for (const ArcRecord& rec : g.arcs()) {
    if (rec.kind == ArcKind::kLaunch) continue;
    if (g.is_clock_network(rec.from) || g.is_clock_network(rec.to)) continue;
    EXPECT_LT(g.level_of(rec.from), g.level_of(rec.to));
  }
  // Levels partition exactly the non-clock pins.
  std::size_t in_levels = 0;
  for (std::size_t l = 0; l < g.num_levels(); ++l) in_levels += g.level(l).size();
  std::size_t data_pins = 0;
  for (std::size_t p = 0; p < gd_.design->num_pins(); ++p) {
    if (!g.is_clock_network(static_cast<PinId>(p))) ++data_pins;
  }
  EXPECT_EQ(in_levels, data_pins);
  EXPECT_EQ(g.level_order().size(), data_pins);
}

TEST_P(GraphOnGenerated, FaninFanoutAreConsistent) {
  const auto& g = *graph_;
  std::size_t fanin_total = 0, fanout_total = 0;
  for (std::size_t p = 0; p < gd_.design->num_pins(); ++p) {
    for (const ArcId aid : g.fanin(static_cast<PinId>(p))) {
      EXPECT_EQ(g.arc(aid).to, static_cast<PinId>(p));
      ++fanin_total;
    }
    for (const ArcId aid : g.fanout(static_cast<PinId>(p))) {
      EXPECT_EQ(g.arc(aid).from, static_cast<PinId>(p));
      ++fanout_total;
    }
  }
  EXPECT_EQ(fanin_total, fanout_total);
  EXPECT_GT(fanin_total, 0u);
}

TEST_P(GraphOnGenerated, ClockConeIsBuffersAndClockPins) {
  const auto& g = *graph_;
  const auto& d = *gd_.design;
  // Every FF clock pin is in the clock network; no FF D pin or Q pin is.
  for (const CellId ff : d.flip_flops()) {
    EXPECT_TRUE(g.is_clock_network(d.clock_pin(ff)));
    EXPECT_FALSE(g.is_clock_network(d.input_pin(ff, 0)));
    EXPECT_FALSE(g.is_clock_network(d.output_pin(ff)));
  }
  // Clock cells are the root port plus buffers only.
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    if (!g.is_clock_cell(static_cast<CellId>(c))) continue;
    const CellFunc f = d.libcell_of(static_cast<CellId>(c)).func;
    EXPECT_TRUE(f == CellFunc::kBuf || f == CellFunc::kInv ||
                f == CellFunc::kPortIn);
  }
}

TEST_P(GraphOnGenerated, StartpointsAndEndpointsComplete) {
  const auto& g = *graph_;
  const auto& d = *gd_.design;
  // Every FF is both a startpoint (at Q) and an endpoint (at D); every data
  // PI is a startpoint; every PO is an endpoint; the clock root is neither.
  EXPECT_EQ(g.startpoints().size(),
            d.flip_flops().size() + d.input_ports().size() - 1);
  EXPECT_EQ(g.endpoints().size(),
            d.flip_flops().size() + d.output_ports().size());
  for (const CellId ff : d.flip_flops()) {
    EXPECT_NE(g.startpoint_of_pin(d.output_pin(ff)), timing::kNullStartpoint);
    EXPECT_NE(g.endpoint_of_pin(d.input_pin(ff, 0)), timing::kNullEndpoint);
  }
  EXPECT_EQ(g.startpoint_of_pin(d.output_pin(g.clock_root())),
            timing::kNullStartpoint);
}

TEST_P(GraphOnGenerated, CellAndNetArcRangesCoverAllArcs) {
  const auto& g = *graph_;
  const auto& d = *gd_.design;
  std::unordered_set<ArcId> seen;
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    const auto [f, l] = g.cell_arcs(static_cast<CellId>(c));
    for (ArcId a = f; a < l; ++a) EXPECT_TRUE(seen.insert(a).second);
  }
  for (std::size_t n = 0; n < d.num_nets(); ++n) {
    const auto [f, l] = g.net_arcs(static_cast<NetId>(n));
    for (ArcId a = f; a < l; ++a) EXPECT_TRUE(seen.insert(a).second);
  }
  EXPECT_EQ(seen.size(), g.num_arcs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphOnGenerated,
                         ::testing::Values(61u, 62u, 63u, 64u));

}  // namespace
}  // namespace insta
