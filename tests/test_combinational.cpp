#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/tune.hpp"
#include "ref/brute_force.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

/// Purely combinational designs (no flip-flops, no clock tree) must work
/// through the whole stack: PI startpoints, PO endpoints, no CPPR credits.
class Combinational : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    gen::LogicBlockSpec spec;
    spec.name = "comb";
    spec.seed = GetParam();
    spec.num_gates = 300;
    spec.num_ffs = 0;
    spec.num_inputs = 16;
    spec.num_outputs = 16;
    spec.depth = 10;
    spec.false_path_frac = 0.0;
    spec.multicycle_frac = 0.0;
    gd_ = gen::build_logic_block(spec);
    graph_ = std::make_unique<timing::TimingGraph>(*gd_.design,
                                                   gd_.constraints.clock_root);
    calc_ = std::make_unique<timing::DelayCalculator>(*gd_.design, *graph_);
    calc_->compute_all(delays_);
    gen::tune_clock_period(*graph_, gd_.constraints, delays_, 0.2);
  }
  gen::GeneratedDesign gd_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::unique_ptr<timing::DelayCalculator> calc_;
  timing::ArcDelays delays_;
};

TEST_P(Combinational, NoClockArtifacts) {
  EXPECT_EQ(gd_.design->flip_flops().size(), 0u);
  EXPECT_EQ(graph_->startpoints().size(), 16u);
  EXPECT_EQ(graph_->endpoints().size(), 16u);
  const timing::ClockAnalysis clock(*graph_, delays_, 3.0);
  // The design has a clock root port but no clocked elements.
  EXPECT_DOUBLE_EQ(clock.max_credit(), 0.0);
}

TEST_P(Combinational, GoldenMatchesBruteForce) {
  ref::GoldenSta sta(*graph_, gd_.constraints, delays_);
  sta.update_full();
  const auto brute =
      ref::brute_force_endpoint_slacks(*graph_, gd_.constraints, delays_);
  for (std::size_t e = 0; e < brute.size(); ++e) {
    if (!std::isfinite(brute[e])) continue;
    EXPECT_NEAR(brute[e], sta.endpoint_slack(static_cast<timing::EndpointId>(e)),
                1e-9);
  }
  EXPECT_GT(sta.num_violations(), 0);
}

TEST_P(Combinational, EngineMatchesGolden) {
  ref::GoldenSta sta(*graph_, gd_.constraints, delays_);
  sta.update_full();
  core::EngineOptions opt;
  opt.top_k = 16;
  core::Engine engine(sta, opt);
  engine.run_forward();
  for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
    const double g = sta.endpoint_slack(static_cast<timing::EndpointId>(e));
    const float m = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(g)) continue;
    EXPECT_NEAR(g, static_cast<double>(m), 0.02) << "endpoint " << e;
  }
  engine.run_backward(core::GradientMetric::kTns);
  double total = 0.0;
  for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
    for (const timing::ArcId a :
         graph_->fanin(graph_->endpoints()[e].pin)) {
      total += static_cast<double>(engine.arc_gradient(a));
    }
  }
  EXPECT_NEAR(total, engine.num_violations(), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Combinational, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace insta
