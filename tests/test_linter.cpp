// Tests of the analysis/ linter subsystem: each rule fires on a crafted
// broken design with its exact rule id, and clean generated designs lint
// with zero diagnostics.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "analysis/engine_audit.hpp"
#include "analysis/linter.hpp"
#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"
#include "timing/graph.hpp"

namespace insta {
namespace {

using analysis::LintOptions;
using analysis::LintReport;
using analysis::Linter;
using analysis::Severity;
using netlist::CellFunc;
using netlist::CellId;
using netlist::Library;
using netlist::NetId;
using netlist::PinId;
using timing::TimingGraph;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Wires `drv` to `sinks` through a fresh net.
NetId wire(netlist::Design& d, PinId drv, std::initializer_list<PinId> sinks) {
  const NetId net = d.add_net("w" + std::to_string(d.num_nets()));
  d.connect_driver(net, drv);
  for (const PinId s : sinks) d.connect_sink(net, s);
  return net;
}

// ---- clean designs ---------------------------------------------------------

/// Lints a generated design with every stage bound; expects zero diagnostics.
void expect_clean(const gen::GeneratedDesign& gd) {
  TimingGraph graph(*gd.design, gd.constraints.clock_roots());
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  Linter linter(*gd.design);
  linter.with_constraints(gd.constraints).with_graph(graph).with_delays(delays);
  const LintReport report = linter.run();
  EXPECT_TRUE(report.empty()) << gd.name << ":\n" << report.str();
}

TEST(LinterClean, TinyPresets) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    expect_clean(gen::build_logic_block(gen::tiny_spec(seed)));
  }
}

TEST(LinterClean, Table2Presets) {
  for (const gen::LogicBlockSpec& spec : gen::table2_iwls_specs()) {
    expect_clean(gen::build_logic_block(spec));
  }
}

TEST(LinterClean, Fig7Preset) {
  expect_clean(gen::build_logic_block(gen::fig7_block_spec()));
}

TEST(LinterClean, Table1Presets) {
  for (const gen::LogicBlockSpec& spec : gen::table1_block_specs()) {
    expect_clean(gen::build_logic_block(spec));
  }
}

// ---- combinational-loop -----------------------------------------------------

TEST(LinterRules, CombinationalLoop) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId i1 = d.add_cell("i1", lib.find(CellFunc::kInv, 1));
  const CellId i2 = d.add_cell("i2", lib.find(CellFunc::kInv, 1));
  wire(d, d.output_pin(i1), {d.input_pin(i2, 0)});
  wire(d, d.output_pin(i2), {d.input_pin(i1, 0)});

  const LintReport report = Linter(d).run();
  EXPECT_EQ(report.count_rule("combinational-loop"), 1u);
  EXPECT_TRUE(report.has_errors());
  // The two-inverter ring violates nothing else.
  EXPECT_EQ(report.size(), report.count_rule("combinational-loop"));
}

TEST(LinterRules, TwoIndependentLoops) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  for (int ring = 0; ring < 2; ++ring) {
    const CellId a = d.add_cell("a" + std::to_string(ring),
                                lib.find(CellFunc::kBuf, 1));
    const CellId b = d.add_cell("b" + std::to_string(ring),
                                lib.find(CellFunc::kBuf, 1));
    wire(d, d.output_pin(a), {d.input_pin(b, 0)});
    wire(d, d.output_pin(b), {d.input_pin(a, 0)});
  }
  const LintReport report = Linter(d).run();
  EXPECT_EQ(report.count_rule("combinational-loop"), 2u);
}

// ---- undriven-pin + unconstrained-endpoint ----------------------------------

TEST(LinterRules, UndrivenPinAndUnconstrainedEndpoint) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId buf = d.add_cell("u1", lib.find(CellFunc::kBuf, 1));
  const CellId po = d.add_output_port("o");
  // u1/A is left unconnected, and the net feeding the output port has no
  // driver: both are undriven-pin findings, and the output port's endpoint
  // is unreachable from any startpoint.
  const NetId n = d.add_net("floating");
  d.connect_sink(n, d.input_pin(po, 0));
  static_cast<void>(buf);

  const LintReport report = Linter(d).run();
  EXPECT_EQ(report.count_rule("undriven-pin"), 2u);  // u1/A + net "floating"
  EXPECT_EQ(report.count_rule("unconstrained-endpoint"), 1u);
  EXPECT_GE(report.count(Severity::kError), 2u);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
}

// ---- multi-driver -----------------------------------------------------------

TEST(LinterRules, MultiDriver) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId a = d.add_input_port("a");
  const CellId b = d.add_input_port("b");
  const CellId buf = d.add_cell("u1", lib.find(CellFunc::kBuf, 1));
  const NetId n = wire(d, d.output_pin(a), {d.input_pin(buf, 0)});
  // Corrupt the net: a second output pin in the sink list.
  d.net(n).sinks.push_back(d.output_pin(b));

  const LintReport report = Linter(d).run();
  EXPECT_GE(report.count_rule("multi-driver"), 1u);
  EXPECT_TRUE(report.has_errors());
}

TEST(LinterRules, PinReferencedTwice) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId a = d.add_input_port("a");
  const CellId b1 = d.add_cell("u1", lib.find(CellFunc::kBuf, 1));
  const CellId b2 = d.add_cell("u2", lib.find(CellFunc::kBuf, 1));
  wire(d, d.output_pin(a), {d.input_pin(b1, 0)});
  const NetId n2 = wire(d, d.output_pin(b2), {});
  // u1/A now appears in two sink lists (its back-link still names the first
  // net): both the multi-driver ref count and the mismatch rule fire.
  d.net(n2).sinks.push_back(d.input_pin(b1, 0));

  const LintReport report = Linter(d).run();
  EXPECT_GE(report.count_rule("multi-driver"), 1u);
  EXPECT_GE(report.count_rule("pin-net-mismatch"), 1u);
}

// ---- liberty-value ----------------------------------------------------------

TEST(LinterRules, LibertyNaN) {
  Library lib;
  netlist::LibCell lc;
  lc.name = "bad_buf";
  lc.func = CellFunc::kBuf;
  lc.intrinsic = {kNaN, 4.0};
  lib.add(lc);
  netlist::Design d(lib);

  const LintReport report = Linter(d).run();
  EXPECT_EQ(report.count_rule("liberty-value"), 1u);
  EXPECT_TRUE(report.has_errors());
}

TEST(LinterRules, LibertyNegativeSigma) {
  Library lib;
  netlist::LibCell lc;
  lc.name = "bad_sigma";
  lc.func = CellFunc::kInv;
  lc.sigma_ratio = -0.05;
  lib.add(lc);
  netlist::Design d(lib);

  const LintReport report = Linter(d).run();
  EXPECT_EQ(report.count_rule("liberty-value"), 1u);
  EXPECT_TRUE(report.has_errors());
}

// ---- no-capture-clock / clock-tree-topology ---------------------------------

TEST(LinterRules, NoClockRootDeclared) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(1));
  timing::Constraints broken = gd.constraints;
  broken.clock_root = netlist::kNullCell;
  broken.extra_clocks.clear();
  const LintReport report =
      Linter(*gd.design).with_constraints(broken).run();
  EXPECT_GE(report.count_rule("no-capture-clock"), 1u);
  EXPECT_TRUE(report.has_errors());
}

TEST(LinterRules, ClockPinOutsideClockTree) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId clk = d.add_input_port("clk");
  const CellId other = d.add_input_port("other");
  const CellId din = d.add_input_port("din");
  const CellId ff = d.add_cell("ff1", lib.find(CellFunc::kDff, 1));
  const CellId po = d.add_output_port("q");
  // The FF clock pin hangs off "other", not the declared root "clk".
  wire(d, d.output_pin(other), {d.clock_pin(ff)});
  wire(d, d.output_pin(din), {d.input_pin(ff, 0)});
  wire(d, d.output_pin(ff), {d.input_pin(po, 0)});
  timing::Constraints cons;
  cons.clock_root = clk;

  const LintReport report = Linter(d).with_constraints(cons).run();
  EXPECT_EQ(report.count_rule("no-capture-clock"), 1u);
}

TEST(LinterRules, ClockTreeThroughNand) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  const CellId clk = d.add_input_port("clk");
  const CellId din = d.add_input_port("din");
  const CellId gate = d.add_cell("g1", lib.find(CellFunc::kNand2, 1));
  const CellId ff = d.add_cell("ff1", lib.find(CellFunc::kDff, 1));
  const CellId po = d.add_output_port("q");
  // Clock net fans out into a NAND input: gated clock, which the graph
  // builder rejects outright; the linter reports it instead.
  wire(d, d.output_pin(clk), {d.clock_pin(ff), d.input_pin(gate, 0)});
  wire(d, d.output_pin(din), {d.input_pin(ff, 0), d.input_pin(gate, 1)});
  wire(d, d.output_pin(ff), {d.input_pin(po, 0)});
  wire(d, d.output_pin(gate), {});
  timing::Constraints cons;
  cons.clock_root = clk;

  const LintReport report = Linter(d).with_constraints(cons).run();
  EXPECT_EQ(report.count_rule("clock-tree-topology"), 1u);
}

// ---- delay-value ------------------------------------------------------------

TEST(LinterRules, PoisonedDelays) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(2));
  TimingGraph graph(*gd.design, gd.constraints.clock_roots());
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  delays.mu[0][3] = kNaN;     // error
  delays.mu[1][4] = -12.0;    // warning
  delays.sigma[0][5] = -1.0;  // error

  Linter linter(*gd.design);
  linter.with_constraints(gd.constraints).with_graph(graph).with_delays(delays);
  const LintReport report = linter.run();
  EXPECT_EQ(report.count_rule("delay-value"), 3u);
  EXPECT_EQ(report.count(Severity::kError), 2u);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
}

// ---- level-inversion --------------------------------------------------------

TEST(LinterRules, FindLevelInversions) {
  const std::vector<std::pair<int, int>> edges = {
      {0, 1},   // ok
      {2, 2},   // not strictly increasing
      {-1, 3},  // unleveled tail
      {3, 1},   // decreasing
      {5, 9},   // ok
  };
  const std::vector<std::size_t> bad = analysis::find_level_inversions(edges);
  EXPECT_EQ(bad, (std::vector<std::size_t>{1, 2, 3}));
}

// ---- topk-invariant ---------------------------------------------------------

TEST(LinterAudit, TopkEntriesViolations) {
  using Entry = core::Engine::TopKEntry;
  // Sorted, unique, finite: clean.
  {
    LintReport report;
    const std::vector<Entry> ok = {{10.0f, 9.0f, 0.3f, 0},
                                   {8.0f, 7.5f, 0.2f, 1}};
    analysis::audit_topk_entries(ok, 4, "pin", report);
    EXPECT_TRUE(report.empty()) << report.str();
  }
  // Overfull list.
  {
    LintReport report;
    const std::vector<Entry> over = {{3.0f, 3.0f, 0.0f, 0},
                                     {2.0f, 2.0f, 0.0f, 1},
                                     {1.0f, 1.0f, 0.0f, 2}};
    analysis::audit_topk_entries(over, 2, "pin", report);
    EXPECT_EQ(report.count_rule("topk-invariant"), 1u);
  }
  // Duplicate startpoint tag.
  {
    LintReport report;
    const std::vector<Entry> dup = {{3.0f, 3.0f, 0.0f, 7},
                                    {2.0f, 2.0f, 0.0f, 7}};
    analysis::audit_topk_entries(dup, 4, "pin", report);
    EXPECT_EQ(report.count_rule("topk-invariant"), 1u);
  }
  // Unsorted arrivals.
  {
    LintReport report;
    const std::vector<Entry> unsorted = {{2.0f, 2.0f, 0.0f, 0},
                                         {3.0f, 3.0f, 0.0f, 1}};
    analysis::audit_topk_entries(unsorted, 4, "pin", report);
    EXPECT_EQ(report.count_rule("topk-invariant"), 1u);
  }
  // NaN arrival, negative sigma, invalid tag: one finding each.
  {
    LintReport report;
    const std::vector<Entry> bad = {
        {std::numeric_limits<float>::quiet_NaN(), 1.0f, 0.1f, 0},
        {0.5f, 0.5f, -0.1f, -3}};
    analysis::audit_topk_entries(bad, 4, "pin", report);
    EXPECT_EQ(report.count_rule("topk-invariant"), 3u);
  }
}

TEST(LinterAudit, EngineCleanAfterForward) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(3));
  TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  ref::GoldenSta sta(graph, gd.constraints, delays, {});
  sta.update_full();
  core::Engine engine(sta, {});
  engine.run_forward();

  const LintReport report = analysis::audit_engine(engine);
  EXPECT_TRUE(report.empty()) << report.str();
}

// ---- reporting mechanics ----------------------------------------------------

TEST(LinterReport, SuppressionKeepsExactCounts) {
  Library lib = netlist::make_default_library();
  netlist::Design d(lib);
  // Ten unconnected buffer inputs, reporting capped at three.
  for (int i = 0; i < 10; ++i) {
    d.add_cell("u" + std::to_string(i), lib.find(CellFunc::kBuf, 1));
  }
  LintOptions opt;
  opt.max_reports_per_rule = 3;
  const LintReport report = Linter(d).with_options(opt).run();
  EXPECT_EQ(report.count(Severity::kError), 3u);       // listed
  EXPECT_EQ(report.count_rule("undriven-pin"), 10u);   // exact, with elided
  EXPECT_NE(report.str().find("7 further"), std::string::npos) << report.str();
}

TEST(LinterReport, DiagnosticRendering) {
  analysis::Diagnostic diag;
  diag.rule = "combinational-loop";
  diag.severity = Severity::kError;
  diag.kind = analysis::ObjectKind::kPin;
  diag.object = 4;
  diag.where = "u1/A";
  diag.message = "cycle";
  EXPECT_EQ(diag.str(), "error[combinational-loop] u1/A: cycle");

  LintReport report;
  report.add(std::move(diag));
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.count(Severity::kWarning), 0u);
  EXPECT_NE(report.str().find("1 error"), std::string::npos);
}

}  // namespace
}  // namespace insta
