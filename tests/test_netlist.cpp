#include <gtest/gtest.h>

#include "netlist/design.hpp"
#include "netlist/liberty.hpp"
#include "util/check.hpp"

namespace insta::netlist {
namespace {

TEST(Liberty, FunctionMetadata) {
  EXPECT_EQ(num_data_inputs(CellFunc::kInv), 1);
  EXPECT_EQ(num_data_inputs(CellFunc::kNand3), 3);
  EXPECT_EQ(num_data_inputs(CellFunc::kDff), 1);
  EXPECT_EQ(num_data_inputs(CellFunc::kPortIn), 0);
  EXPECT_TRUE(has_output(CellFunc::kPortIn));
  EXPECT_FALSE(has_output(CellFunc::kPortOut));
  EXPECT_EQ(unateness(CellFunc::kNand2), Unateness::kNegative);
  EXPECT_EQ(unateness(CellFunc::kAnd2), Unateness::kPositive);
  EXPECT_EQ(unateness(CellFunc::kXor2), Unateness::kNonUnate);
  EXPECT_TRUE(is_sequential(CellFunc::kDff));
  EXPECT_FALSE(is_sequential(CellFunc::kBuf));
  EXPECT_EQ(opposite(RiseFall::kRise), RiseFall::kFall);
  EXPECT_EQ(rf_index(RiseFall::kFall), 1);
}

TEST(Liberty, DefaultLibraryFamilies) {
  const Library lib = make_default_library();
  const auto invs = lib.family(CellFunc::kInv);
  ASSERT_EQ(invs.size(), 5u);  // drives 1, 2, 4, 8, 16
  // Sorted ascending by drive; resistance falls, cap rises with drive.
  for (std::size_t i = 1; i < invs.size(); ++i) {
    const LibCell& lo = lib.cell(invs[i - 1]);
    const LibCell& hi = lib.cell(invs[i]);
    EXPECT_LT(lo.drive, hi.drive);
    EXPECT_GT(lo.drive_res[0], hi.drive_res[0]);
    EXPECT_LT(lo.input_cap, hi.input_cap);
    EXPECT_LT(lo.area, hi.area);
    EXPECT_LT(lo.leakage, hi.leakage);
  }
  EXPECT_EQ(lib.find(CellFunc::kNand2, 4),
            lib.family(CellFunc::kNand2)[2]);
  EXPECT_EQ(lib.find(CellFunc::kNand2, 3), kNullLibCell);
  // DFFs carry sequential attributes.
  const LibCell& dff = lib.cell(lib.find(CellFunc::kDff, 1));
  EXPECT_GT(dff.setup, 0.0);
  EXPECT_GT(dff.clk2q[0], 0.0);
}

struct Mini {
  Library lib = make_default_library();
  Design d{lib};
};

TEST(Design, PinLayoutPerFunction) {
  Mini m;
  const CellId nand = m.d.add_cell("n1", m.lib.find(CellFunc::kNand2, 1));
  EXPECT_EQ(m.d.cell(nand).num_pins, 3);
  EXPECT_EQ(m.d.pin(m.d.input_pin(nand, 0)).dir, PinDir::kInput);
  EXPECT_EQ(m.d.pin(m.d.input_pin(nand, 1)).input_index, 1);
  EXPECT_EQ(m.d.pin(m.d.output_pin(nand)).dir, PinDir::kOutput);
  EXPECT_EQ(m.d.clock_pin(nand), kNullPin);

  const CellId ff = m.d.add_cell("f1", m.lib.find(CellFunc::kDff, 1));
  EXPECT_EQ(m.d.cell(ff).num_pins, 3);  // D, CK, Q
  EXPECT_EQ(m.d.pin(m.d.clock_pin(ff)).role, PinRole::kClock);
  EXPECT_EQ(m.d.pin_name(m.d.clock_pin(ff)), "f1/CK");
  EXPECT_EQ(m.d.pin_name(m.d.output_pin(ff)), "f1/Y");
  EXPECT_EQ(m.d.pin_name(m.d.input_pin(ff, 0)), "f1/A0");
}

TEST(Design, ConnectivityRules) {
  Mini m;
  const CellId a = m.d.add_input_port("a");
  const CellId inv = m.d.add_cell("i1", m.lib.find(CellFunc::kInv, 1));
  const NetId n = m.d.add_net("n");
  m.d.connect_driver(n, m.d.output_pin(a));
  m.d.connect_sink(n, m.d.input_pin(inv, 0));
  // Double-driving or re-connecting must fail loudly.
  EXPECT_THROW(m.d.connect_driver(n, m.d.output_pin(inv)), util::CheckError);
  EXPECT_THROW(m.d.connect_sink(n, m.d.input_pin(inv, 0)), util::CheckError);
  // Direction misuse must fail.
  const NetId n2 = m.d.add_net("n2");
  EXPECT_THROW(m.d.connect_driver(n2, m.d.input_pin(inv, 0)), util::CheckError);
  EXPECT_THROW(m.d.connect_sink(n2, m.d.output_pin(a)), util::CheckError);
}

TEST(Design, ValidateCatchesDanglingInput) {
  Mini m;
  m.d.add_cell("i1", m.lib.find(CellFunc::kInv, 1));  // input unconnected
  EXPECT_THROW(m.d.validate(), util::CheckError);
}

TEST(Design, ValidateCatchesDriverlessNet) {
  Mini m;
  const CellId inv = m.d.add_cell("i1", m.lib.find(CellFunc::kInv, 1));
  const NetId n = m.d.add_net("n");
  m.d.connect_sink(n, m.d.input_pin(inv, 0));
  EXPECT_THROW(m.d.validate(), util::CheckError);
}

TEST(Design, ResizeKeepsFunction) {
  Mini m;
  const CellId inv = m.d.add_cell("i1", m.lib.find(CellFunc::kInv, 1));
  m.d.resize_cell(inv, m.lib.find(CellFunc::kInv, 8));
  EXPECT_EQ(m.d.libcell_of(inv).drive, 8);
  EXPECT_THROW(m.d.resize_cell(inv, m.lib.find(CellFunc::kBuf, 1)),
               util::CheckError);
}

TEST(Design, PortsAndRosterTracking) {
  Mini m;
  const CellId in = m.d.add_input_port("in");
  const CellId out = m.d.add_output_port("out");
  const CellId ff = m.d.add_cell("ff", m.lib.find(CellFunc::kDff, 2));
  EXPECT_EQ(m.d.input_ports().size(), 1u);
  EXPECT_EQ(m.d.output_ports().size(), 1u);
  EXPECT_EQ(m.d.flip_flops().size(), 1u);
  EXPECT_EQ(m.d.input_ports()[0], in);
  EXPECT_EQ(m.d.output_ports()[0], out);
  EXPECT_EQ(m.d.flip_flops()[0], ff);
  EXPECT_TRUE(m.d.cell(in).fixed);   // ports are placement-fixed
  EXPECT_FALSE(m.d.cell(ff).fixed);
}

TEST(Design, AreaAndLeakageTotals) {
  Mini m;
  m.d.add_cell("i1", m.lib.find(CellFunc::kInv, 1));
  m.d.add_cell("i2", m.lib.find(CellFunc::kInv, 2));
  const double expect = m.lib.cell(m.lib.find(CellFunc::kInv, 1)).area +
                        m.lib.cell(m.lib.find(CellFunc::kInv, 2)).area;
  EXPECT_DOUBLE_EQ(m.d.total_area(), expect);
  EXPECT_GT(m.d.total_leakage(), 0.0);
}

}  // namespace
}  // namespace insta::netlist
