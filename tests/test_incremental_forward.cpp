#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

class IncrementalForward : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    gd_ = gen::build_logic_block(gen::tiny_spec(GetParam()));
    graph_ = std::make_unique<timing::TimingGraph>(*gd_.design,
                                                   gd_.constraints.clock_root);
    calc_ = std::make_unique<timing::DelayCalculator>(*gd_.design, *graph_);
    calc_->compute_all(delays_);
    gen::tune_clock_period(*graph_, gd_.constraints, delays_, 0.1);
    sta_ = std::make_unique<ref::GoldenSta>(*graph_, gd_.constraints, delays_);
    sta_->update_full();
  }
  gen::GeneratedDesign gd_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::unique_ptr<timing::DelayCalculator> calc_;
  timing::ArcDelays delays_;
  std::unique_ptr<ref::GoldenSta> sta_;
};

/// After any sequence of annotations, run_forward_incremental() must leave
/// the engine in exactly the state run_forward() would.
TEST_P(IncrementalForward, MatchesFullForwardAfterAnnotations) {
  core::Engine inc(*sta_, {});
  core::Engine full(*sta_, {});
  inc.run_forward();
  full.run_forward();

  util::Rng rng(GetParam() * 3 + 1);
  const auto changes = gen::random_changelist(*gd_.design, *graph_, rng, 30);
  for (const auto& ch : changes) {
    const auto deltas = calc_->estimate_eco(ch.cell, ch.new_libcell);
    inc.annotate(deltas);
    full.annotate(deltas);
    inc.run_forward_incremental();
    full.run_forward();
    for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
      const float a = inc.endpoint_slack(static_cast<timing::EndpointId>(e));
      const float b = full.endpoint_slack(static_cast<timing::EndpointId>(e));
      if (!std::isfinite(b)) {
        EXPECT_FALSE(std::isfinite(a));
      } else {
        EXPECT_EQ(a, b) << "endpoint " << e;
      }
    }
  }
}

/// With nothing annotated, the incremental pass re-processes no levels but
/// still produces valid (unchanged) slacks.
TEST_P(IncrementalForward, CleanIncrementalIsIdempotent) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  const std::vector<float> before(engine.endpoint_slacks().begin(),
                                  engine.endpoint_slacks().end());
  engine.run_forward_incremental();  // nothing dirty
  for (std::size_t e = 0; e < before.size(); ++e) {
    const float after = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(before[e])) {
      EXPECT_EQ(before[e], after);
    } else {
      EXPECT_FALSE(std::isfinite(after));
    }
  }
}

/// The first forward pass after construction must be full even if called
/// through the incremental entry point (everything starts dirty).
TEST_P(IncrementalForward, FirstPassIsFull) {
  core::Engine a(*sta_, {});
  a.run_forward_incremental();
  core::Engine b(*sta_, {});
  b.run_forward();
  for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
    const float sa = a.endpoint_slack(static_cast<timing::EndpointId>(e));
    const float sb = b.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(sb)) {
      EXPECT_EQ(sa, sb);
    } else {
      EXPECT_FALSE(std::isfinite(sa));
    }
  }
}

/// The sparse pass must maintain dirty bookkeeping exactly: clean after any
/// pass, dirty after annotate, and a clean incremental pass is a true no-op
/// (empty frontier, no endpoints re-evaluated).
TEST_P(IncrementalForward, SparseBookkeepingAndStats) {
  core::Engine engine(*sta_, {});
  EXPECT_FALSE(engine.timing_clean());  // everything starts dirty
  engine.run_forward();
  EXPECT_TRUE(engine.timing_clean());
  EXPECT_FALSE(engine.last_pass_stats().sparse);

  util::Rng rng(GetParam() * 7 + 5);
  const auto changes = gen::random_changelist(*gd_.design, *graph_, rng, 1);
  ASSERT_FALSE(changes.empty());
  const auto deltas =
      calc_->estimate_eco(changes[0].cell, changes[0].new_libcell);
  engine.annotate(deltas);
  EXPECT_FALSE(engine.timing_clean());

  engine.run_forward_incremental();
  EXPECT_TRUE(engine.timing_clean());
  const core::Engine::SparseStats st = engine.last_pass_stats();
  EXPECT_TRUE(st.sparse);
  EXPECT_GT(st.frontier_pins, 0u);
  EXPECT_GT(st.levels_touched, 0u);

  // A second incremental pass with nothing annotated touches nothing.
  engine.run_forward_incremental();
  EXPECT_TRUE(engine.last_pass_stats().sparse);
  EXPECT_EQ(engine.last_pass_stats().frontier_pins, 0u);
  EXPECT_EQ(engine.last_pass_stats().endpoints_evaluated, 0u);
}

/// Delta-maintained aggregates must track a fresh engine's scan-built ones
/// through a long randomized ECO sequence.
TEST_P(IncrementalForward, AggregatesTrackFullForward) {
  core::Engine inc(*sta_, {});
  core::Engine full(*sta_, {});
  inc.run_forward();
  full.run_forward();

  util::Rng rng(GetParam() * 11 + 3);
  const auto changes = gen::random_changelist(*gd_.design, *graph_, rng, 25);
  for (const auto& ch : changes) {
    const auto deltas = calc_->estimate_eco(ch.cell, ch.new_libcell);
    inc.annotate(deltas);
    full.annotate(deltas);
    inc.run_forward_incremental();
    full.run_forward();
    // Slacks are bit-identical, so WNS and the violation count are exact;
    // TNS is accumulated in a different order (delta vs scan), so it may
    // differ in the last double bits.
    EXPECT_EQ(inc.wns(), full.wns());
    EXPECT_EQ(inc.num_violations(), full.num_violations());
    EXPECT_NEAR(inc.tns(), full.tns(), 1e-6 * (1.0 + std::abs(full.tns())));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalForward,
                         ::testing::Values(131u, 132u, 133u));

/// Compares every Top-K store entry of two engines bit-for-bit.
void expect_identical_stores(const core::Engine& inc, const core::Engine& full,
                             const netlist::Design& design) {
  for (std::size_t p = 0; p < design.num_pins(); ++p) {
    for (const auto rf : {netlist::RiseFall::kRise, netlist::RiseFall::kFall}) {
      const auto a = inc.arrivals(static_cast<netlist::PinId>(p), rf);
      const auto b = full.arrivals(static_cast<netlist::PinId>(p), rf);
      ASSERT_EQ(a.size(), b.size()) << "pin " << p;
      for (std::size_t k = 0; k < a.size(); ++k) {
        ASSERT_EQ(a[k].arr, b[k].arr) << "pin " << p << " entry " << k;
        ASSERT_EQ(a[k].mu, b[k].mu) << "pin " << p << " entry " << k;
        ASSERT_EQ(a[k].sig, b[k].sig) << "pin " << p << " entry " << k;
        ASSERT_EQ(a[k].sp, b[k].sp) << "pin " << p << " entry " << k;
      }
    }
  }
}

/// Randomized ECO sequences on a two-domain clock design: sparse incremental
/// slacks and Top-K stores must stay bit-identical to a fresh full sweep
/// (CPPR credits cross clock-tree boundaries here).
TEST(IncrementalForwardMulticlock, MatchesFullForwardBitIdentical) {
  for (const std::uint64_t seed : {141u, 142u}) {
    gen::LogicBlockSpec spec = gen::tiny_spec(seed);
    spec.num_extra_clocks = 1;
    spec.extra_clock_ratio = 2.0;
    gen::GeneratedDesign gd = gen::build_logic_block(spec);
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_roots());
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.1);
    ref::GoldenSta sta(graph, gd.constraints, delays);
    sta.update_full();

    core::Engine inc(sta, {});
    core::Engine full(sta, {});
    inc.run_forward();
    full.run_forward();

    util::Rng rng(seed * 13 + 7);
    const auto changes = gen::random_changelist(*gd.design, graph, rng, 20);
    for (const auto& ch : changes) {
      const auto deltas = calc.estimate_eco(ch.cell, ch.new_libcell);
      inc.annotate(deltas);
      full.annotate(deltas);
      inc.run_forward_incremental();
      full.run_forward();
      ASSERT_TRUE(inc.timing_clean());
      for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
        const float a = inc.endpoint_slack(static_cast<timing::EndpointId>(e));
        const float b = full.endpoint_slack(static_cast<timing::EndpointId>(e));
        if (!std::isfinite(b)) {
          ASSERT_FALSE(std::isfinite(a)) << "endpoint " << e;
        } else {
          ASSERT_EQ(a, b) << "endpoint " << e;
        }
      }
      expect_identical_stores(inc, full, *gd.design);
    }
  }
}

/// Randomized ECO sequences with hold analysis enabled: both the late
/// (setup) and negated-early (hold) stores ride the same frontier, and both
/// slack arrays must stay bit-identical. Thresholds are forced to zero so
/// the sparse pass exercises the thread-pool path even on a tiny design.
TEST(IncrementalForwardHold, MatchesFullForwardBitIdentical) {
  for (const std::uint64_t seed : {151u, 152u}) {
    gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(seed));
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.1);
    ref::GoldenOptions gopt;
    gopt.enable_hold = true;
    ref::GoldenSta sta(graph, gd.constraints, delays, gopt);
    sta.update_full();

    core::EngineOptions eopt;
    eopt.enable_hold = true;
    eopt.parallel_threshold = 0;
    eopt.parallel_grain = 1;
    eopt.endpoint_grain = 1;
    core::Engine inc(sta, eopt);
    core::Engine full(sta, eopt);
    inc.run_forward();
    full.run_forward();

    util::Rng rng(seed * 17 + 9);
    const auto changes = gen::random_changelist(*gd.design, graph, rng, 20);
    for (const auto& ch : changes) {
      const auto deltas = calc.estimate_eco(ch.cell, ch.new_libcell);
      inc.annotate(deltas);
      full.annotate(deltas);
      inc.run_forward_incremental();
      full.run_forward();
      for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
        const auto ep = static_cast<timing::EndpointId>(e);
        const float a = inc.endpoint_slack(ep);
        const float b = full.endpoint_slack(ep);
        if (!std::isfinite(b)) {
          ASSERT_FALSE(std::isfinite(a)) << "endpoint " << e;
        } else {
          ASSERT_EQ(a, b) << "endpoint " << e;
        }
        const float ha = inc.endpoint_hold_slack(ep);
        const float hb = full.endpoint_hold_slack(ep);
        if (!std::isfinite(hb)) {
          ASSERT_FALSE(std::isfinite(ha)) << "hold endpoint " << e;
        } else {
          ASSERT_EQ(ha, hb) << "hold endpoint " << e;
        }
      }
      EXPECT_EQ(inc.whs(), full.whs());
      EXPECT_EQ(inc.num_hold_violations(), full.num_hold_violations());
      EXPECT_NEAR(inc.ths(), full.ths(),
                  1e-6 * (1.0 + std::abs(full.ths())));
    }
  }
}

}  // namespace
}  // namespace insta
