#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

class IncrementalForward : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    gd_ = gen::build_logic_block(gen::tiny_spec(GetParam()));
    graph_ = std::make_unique<timing::TimingGraph>(*gd_.design,
                                                   gd_.constraints.clock_root);
    calc_ = std::make_unique<timing::DelayCalculator>(*gd_.design, *graph_);
    calc_->compute_all(delays_);
    gen::tune_clock_period(*graph_, gd_.constraints, delays_, 0.1);
    sta_ = std::make_unique<ref::GoldenSta>(*graph_, gd_.constraints, delays_);
    sta_->update_full();
  }
  gen::GeneratedDesign gd_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::unique_ptr<timing::DelayCalculator> calc_;
  timing::ArcDelays delays_;
  std::unique_ptr<ref::GoldenSta> sta_;
};

/// After any sequence of annotations, run_forward_incremental() must leave
/// the engine in exactly the state run_forward() would.
TEST_P(IncrementalForward, MatchesFullForwardAfterAnnotations) {
  core::Engine inc(*sta_, {});
  core::Engine full(*sta_, {});
  inc.run_forward();
  full.run_forward();

  util::Rng rng(GetParam() * 3 + 1);
  const auto changes = gen::random_changelist(*gd_.design, *graph_, rng, 30);
  for (const auto& ch : changes) {
    const auto deltas = calc_->estimate_eco(ch.cell, ch.new_libcell);
    inc.annotate(deltas);
    full.annotate(deltas);
    inc.run_forward_incremental();
    full.run_forward();
    for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
      const float a = inc.endpoint_slack(static_cast<timing::EndpointId>(e));
      const float b = full.endpoint_slack(static_cast<timing::EndpointId>(e));
      if (!std::isfinite(b)) {
        EXPECT_FALSE(std::isfinite(a));
      } else {
        EXPECT_EQ(a, b) << "endpoint " << e;
      }
    }
  }
}

/// With nothing annotated, the incremental pass re-processes no levels but
/// still produces valid (unchanged) slacks.
TEST_P(IncrementalForward, CleanIncrementalIsIdempotent) {
  core::Engine engine(*sta_, {});
  engine.run_forward();
  const std::vector<float> before(engine.endpoint_slacks().begin(),
                                  engine.endpoint_slacks().end());
  engine.run_forward_incremental();  // nothing dirty
  for (std::size_t e = 0; e < before.size(); ++e) {
    const float after = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(before[e])) {
      EXPECT_EQ(before[e], after);
    } else {
      EXPECT_FALSE(std::isfinite(after));
    }
  }
}

/// The first forward pass after construction must be full even if called
/// through the incremental entry point (everything starts dirty).
TEST_P(IncrementalForward, FirstPassIsFull) {
  core::Engine a(*sta_, {});
  a.run_forward_incremental();
  core::Engine b(*sta_, {});
  b.run_forward();
  for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
    const float sa = a.endpoint_slack(static_cast<timing::EndpointId>(e));
    const float sb = b.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(sb)) {
      EXPECT_EQ(sa, sb);
    } else {
      EXPECT_FALSE(std::isfinite(sa));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalForward,
                         ::testing::Values(131u, 132u, 133u));

}  // namespace
}  // namespace insta
