// Lock-hierarchy validator and annotated-wrapper behavior tests.
//
// Two layers under test:
//  * analysis/lock_hierarchy — the debug-build rank validator: acquiring
//    out of rank order, re-entrantly, or upgrading shared->exclusive must
//    abort with a diagnostic (death tests, compiled only when
//    INSTA_LOCK_CHECK is on).
//  * util/mutex wrappers — must add no behavioral change over the raw
//    std:: primitives. The multi-threaded tests here mirror the serve
//    layer's RCU snapshot-publish and reader/writer disciplines and are run
//    under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/lock_hierarchy.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta {
namespace {

using util::CondVar;
using util::LockGuard;
using util::Mutex;
using util::SharedLock;
using util::SharedMutex;
using util::UniqueLock;
using util::WriteLock;

#if INSTA_LOCK_CHECK_ENABLED

class LockHierarchyDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Worker threads (the global pool) may exist; fork-per-death-test keeps
    // the child single-threaded enough to abort deterministically.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockHierarchyDeathTest, OutOfOrderAcquisitionAborts) {
  Mutex outer("test.outer", 10);
  Mutex inner("test.inner", 20);
  EXPECT_DEATH(
      {
        const LockGuard lo(outer);  // rank 10
        const LockGuard li(inner);  // rank 20 >= 10: must abort
      },
      "lock-hierarchy violation");
}

TEST_F(LockHierarchyDeathTest, EqualRankAcquisitionAborts) {
  // Strict descent: equal ranks are an ordering violation too (two locks of
  // the same rank could otherwise be taken in either order by two threads).
  Mutex a("test.a", 10);
  Mutex b("test.b", 10);
  EXPECT_DEATH(
      {
        const LockGuard la(a);
        const LockGuard lb(b);
      },
      "lock-hierarchy violation");
}

TEST_F(LockHierarchyDeathTest, ReentrantAcquisitionAborts) {
  Mutex mu("test.reentrant", 10);
  EXPECT_DEATH(
      {
        const LockGuard l1(mu);
        const LockGuard l2(mu);  // self-deadlock on std::mutex
      },
      "re-entrant acquisition");
}

TEST_F(LockHierarchyDeathTest, SharedReentrantAcquisitionAborts) {
  // shared_mutex does not guarantee recursive shared locking either (a
  // writer waiting between the two acquisitions deadlocks both).
  SharedMutex mu("test.shared_reentrant", 10);
  EXPECT_DEATH(
      {
        const SharedLock l1(mu);
        const SharedLock l2(mu);
      },
      "re-entrant acquisition");
}

TEST_F(LockHierarchyDeathTest, SharedToExclusiveUpgradeAborts) {
  SharedMutex mu("test.upgrade", 10);
  EXPECT_DEATH(
      {
        const SharedLock reader(mu);
        const WriteLock writer(mu);  // upgrade: guaranteed self-deadlock
      },
      "shared->exclusive upgrade");
}

TEST(LockHierarchyTest, DescendingAcquisitionIsAccepted) {
  Mutex outer("test.outer", 20);
  Mutex inner("test.inner", 10);
  SharedMutex mid("test.mid", 15);
  ASSERT_EQ(analysis::lock_check_held_count(), 0U);
  {
    const LockGuard lo(outer);
    EXPECT_EQ(analysis::lock_check_held_count(), 1U);
    const SharedLock lm(mid);
    EXPECT_EQ(analysis::lock_check_held_count(), 2U);
    const LockGuard li(inner);
    EXPECT_EQ(analysis::lock_check_held_count(), 3U);
  }
  EXPECT_EQ(analysis::lock_check_held_count(), 0U);
}

TEST(LockHierarchyTest, ExclusiveThenSharedReleaseTracksBoth) {
  SharedMutex mu("test.rw", 10);
  {
    const WriteLock w(mu);
    EXPECT_EQ(analysis::lock_check_held_count(), 1U);
  }
  {
    const SharedLock r(mu);
    EXPECT_EQ(analysis::lock_check_held_count(), 1U);
  }
  EXPECT_EQ(analysis::lock_check_held_count(), 0U);
}

#else  // !INSTA_LOCK_CHECK_ENABLED

TEST(LockHierarchyTest, ValidatorDisabledInThisBuild) {
  // The stubs must compile away: no held-lock tracking at all.
  Mutex mu("test.stub", 10);
  const LockGuard l(mu);
  EXPECT_EQ(analysis::lock_check_held_count(), 0U);
  GTEST_SKIP() << "INSTA_LOCK_CHECK is OFF; death tests not built";
}

#endif  // INSTA_LOCK_CHECK_ENABLED

// ---- wrapper behavior (always on; exercised under TSan in CI) --------------

TEST(MutexWrapperTest, TryLockSemantics) {
  Mutex mu("test.trylock", 10);
  ASSERT_TRUE(mu.try_lock());
  std::atomic<bool> other_failed{false};
  std::thread t([&] { other_failed.store(!mu.try_lock()); });
  t.join();
  EXPECT_TRUE(other_failed.load());
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

/// Mirrors serve::TimingService's RCU discipline: a writer republishes an
/// immutable snapshot through a micro-mutex-guarded shared_ptr swap while
/// readers copy the pointer and read the pointee lock-free. Versions must
/// be observed monotonically and every payload must match its version.
TEST(MutexWrapperTest, RcuStylePublishCopyIsRaceFree) {
  struct Snapshot {
    std::uint64_t version = 0;
    std::uint64_t payload = 0;  ///< version * 3 + 1; checked by readers
  };
  Mutex snap_mu("test.snap", 10);
  std::shared_ptr<const Snapshot> snap INSTA_GUARDED_BY(snap_mu) =
      std::make_shared<Snapshot>();

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr std::uint64_t kPublishes = 2000;
  std::atomic<std::uint64_t> next_version{1};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        const std::uint64_t v = next_version.fetch_add(1);
        if (v > kPublishes) return;
        auto fresh = std::make_shared<Snapshot>();
        fresh->version = v;
        fresh->payload = v * 3 + 1;
        const LockGuard sl(snap_mu);
        if (snap->version < v) snap = std::move(fresh);
      }
    });
  }
  std::atomic<bool> ok{true};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      std::uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const Snapshot> s;
        {
          const LockGuard sl(snap_mu);
          s = snap;
        }
        if (s->payload != s->version * 3 + 1 || s->version < last_seen) {
          ok.store(false);
          return;
        }
        last_seen = s->version;
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  EXPECT_TRUE(ok.load());
}

/// Writers keep (a, b) moving in lockstep under the exclusive lock; readers
/// under the shared lock must never observe a half-updated pair.
TEST(MutexWrapperTest, SharedMutexReadersSeeConsistentPairs) {
  SharedMutex mu("test.pair", 10);
  std::uint64_t a INSTA_GUARDED_BY(mu) = 0;
  std::uint64_t b INSTA_GUARDED_BY(mu) = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 5000; ++i) {
      const WriteLock w(mu);
      a = i;
      b = i;
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const SharedLock s(mu);
        if (a != b) {
          ok.store(false);
          return;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(ok.load());
}

/// UniqueLock + CondVar ping-pong, including a manual unlock()/lock() round
/// trip — the exact shape of the serve micro-batcher's leader/waiter dance.
TEST(MutexWrapperTest, CondVarPingPong) {
  Mutex mu("test.pingpong", 10);
  CondVar cv;
  int turn INSTA_GUARDED_BY(mu) = 0;  // 0 = main's turn, 1 = helper's turn
  constexpr int kRounds = 200;
  int helper_runs = 0;

  std::thread helper([&] {
    for (int i = 0; i < kRounds; ++i) {
      UniqueLock lk(mu);
      while (turn != 1) cv.wait(lk);
      ++helper_runs;  // benign: only written with turn == 1 held by us
      turn = 0;
      lk.unlock();
      cv.notify_all();
      lk.lock();  // manual re-lock exercises the validator bookkeeping
      EXPECT_TRUE(lk.owns_lock());
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    {
      UniqueLock lk(mu);
      while (turn != 0) cv.wait(lk);
      turn = 1;
    }
    cv.notify_all();
  }
  {
    // Drain: wait until the helper has yielded its last turn back.
    UniqueLock lk(mu);
    while (turn != 0) cv.wait(lk);
  }
  helper.join();
  EXPECT_EQ(helper_runs, kRounds);
}

/// Nested ranked acquisition across many threads, shaped like the real
/// stack: serve-state (60) -> telemetry-registry (30) -> log (20).
TEST(MutexWrapperTest, NestedRankedAcquisitionUnderContention) {
  Mutex state("test.state", util::lockrank::kServeState);
  Mutex registry("test.registry", util::lockrank::kTelemetryRegistry);
  Mutex log("test.log", util::lockrank::kLog);
  std::uint64_t counter INSTA_GUARDED_BY(log) = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const LockGuard ls(state);
        const LockGuard lr(registry);
        const LockGuard ll(log);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LockGuard ll(log);
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace insta
