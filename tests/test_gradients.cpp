#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed) {
    gd = gen::build_logic_block(gen::tiny_spec(seed));
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.15);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

/// Evaluates TNS after shifting one arc's delay mean by `dmu`.
double tns_with_shift(core::Engine& engine, const timing::ArcDelays& delays,
                      timing::ArcId arc, double dmu) {
  timing::ArcDelta d;
  d.arc = arc;
  for (const int rf : {0, 1}) {
    d.mu[static_cast<std::size_t>(rf)] =
        delays.mu[rf][static_cast<std::size_t>(arc)] + dmu;
    d.sigma[static_cast<std::size_t>(rf)] =
        delays.sigma[rf][static_cast<std::size_t>(arc)];
  }
  engine.annotate({&d, 1});
  engine.run_forward();
  const double tns = engine.tns();
  // Restore.
  for (const int rf : {0, 1}) {
    d.mu[static_cast<std::size_t>(rf)] =
        delays.mu[rf][static_cast<std::size_t>(arc)];
  }
  engine.annotate({&d, 1});
  return tns;
}

class Gradients : public ::testing::TestWithParam<std::uint64_t> {};

/// The fanin net arc of every violating endpoint carries a TNS gradient of
/// exactly its seed weight: 1.0 for TNS mode (single candidate -> softmax
/// weight 1), summing to the violation count.
TEST_P(Gradients, EndpointSeedsAreConserved) {
  Fixture f(GetParam());
  core::Engine engine(*f.sta, {});
  engine.run_forward();
  engine.run_backward(core::GradientMetric::kTns);
  double total = 0.0;
  int checked = 0;
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const float s = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(s)) continue;
    float g = 0.0f;
    for (const timing::ArcId a : f.graph->fanin(f.graph->endpoints()[e].pin)) {
      g += engine.arc_gradient(a);
    }
    if (s < 0.0f) {
      EXPECT_NEAR(g, 1.0f, 1e-4f) << "violating endpoint " << e;
      ++checked;
    } else {
      EXPECT_NEAR(g, 0.0f, 1e-5f) << "passing endpoint " << e;
    }
    total += static_cast<double>(g);
  }
  EXPECT_GT(checked, 0);
  EXPECT_NEAR(total, static_cast<double>(engine.num_violations()), 1e-3);
}

/// WNS-mode seeds form a soft-min distribution: endpoint fanin gradients sum
/// to ~1 over the violating endpoints, concentrated on the worst one.
TEST_P(Gradients, WnsSeedsSumToOne) {
  Fixture f(GetParam());
  core::EngineOptions opt;
  opt.wns_tau = 5.0f;
  core::Engine engine(*f.sta, opt);
  engine.run_forward();
  engine.run_backward(core::GradientMetric::kWns);
  double total = 0.0;
  double worst_seed = 0.0;
  float wns = 0.0f;
  std::size_t worst_ep = 0;
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const float s = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(s) && s < wns) {
      wns = s;
      worst_ep = e;
    }
  }
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    float g = 0.0f;
    for (const timing::ArcId a : f.graph->fanin(f.graph->endpoints()[e].pin)) {
      g += engine.arc_gradient(a);
    }
    total += static_cast<double>(g);
    if (e == worst_ep) worst_seed = static_cast<double>(g);
  }
  EXPECT_NEAR(total, 1.0, 1e-3);
  EXPECT_GT(worst_seed, 1.0 / static_cast<double>(engine.num_violations() + 1));
}

/// Central finite differences of the (hard-max) forward TNS match the
/// backward gradients on average when tau is small. Individual arcs may sit
/// on kinks of the piecewise-linear TNS, so the property is aggregate.
TEST_P(Gradients, FiniteDifferenceAgreement) {
  Fixture f(GetParam());
  core::EngineOptions opt;
  opt.tau = 0.05f;  // near-hard softmax
  core::Engine engine(*f.sta, opt);
  engine.run_forward();
  engine.run_backward(core::GradientMetric::kTns);

  // Test the highest-gradient arcs (the ones optimization would act on).
  std::vector<std::pair<float, timing::ArcId>> ranked;
  for (std::size_t a = 0; a < f.graph->num_arcs(); ++a) {
    const float g = engine.arc_gradient(static_cast<timing::ArcId>(a));
    if (g > 0.25f) ranked.emplace_back(g, static_cast<timing::ArcId>(a));
  }
  ASSERT_FALSE(ranked.empty());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  if (ranked.size() > 12) ranked.resize(12);

  const double h = 0.5;  // ps
  double rel_err_sum = 0.0;
  for (const auto& [g, arc] : ranked) {
    const double up = tns_with_shift(engine, f.delays, arc, h);
    const double dn = tns_with_shift(engine, f.delays, arc, -h);
    const double fd = -(up - dn) / (2.0 * h);  // d(-TNS)/dmu
    rel_err_sum += std::abs(fd - static_cast<double>(g)) /
                   std::max(1.0, std::abs(fd));
  }
  EXPECT_LT(rel_err_sum / static_cast<double>(ranked.size()), 0.25);
}

/// All timing gradients are non-negative (criticality semantics) and zero
/// when nothing violates.
TEST_P(Gradients, NonNegativeAndZeroWhenClean) {
  Fixture f(GetParam());
  core::Engine engine(*f.sta, {});
  engine.run_forward();
  engine.run_backward(core::GradientMetric::kTns);
  for (std::size_t a = 0; a < f.graph->num_arcs(); ++a) {
    EXPECT_GE(engine.arc_gradient(static_cast<timing::ArcId>(a)), 0.0f);
  }

  // Relax the clock so nothing violates; gradients must vanish.
  timing::Constraints relaxed = f.gd.constraints;
  relaxed.clock_period *= 10.0;
  ref::GoldenSta sta2(*f.graph, relaxed, f.delays);
  sta2.update_full();
  ASSERT_EQ(sta2.num_violations(), 0);
  core::Engine clean(sta2, {});
  clean.run_forward();
  clean.run_backward(core::GradientMetric::kTns);
  for (std::size_t a = 0; a < f.graph->num_arcs(); ++a) {
    EXPECT_EQ(clean.arc_gradient(static_cast<timing::ArcId>(a)), 0.0f);
  }
}

/// Larger tau spreads gradient over sub-critical paths: the number of arcs
/// with non-trivial gradient grows with tau (Eq. 4's motivation).
TEST_P(Gradients, LseTemperatureSpreadsGradient) {
  Fixture f(GetParam());
  auto count_active = [&](float tau) {
    core::EngineOptions opt;
    opt.tau = tau;
    core::Engine engine(*f.sta, opt);
    engine.run_forward();
    engine.run_backward(core::GradientMetric::kTns);
    int n = 0;
    for (std::size_t a = 0; a < f.graph->num_arcs(); ++a) {
      if (engine.arc_gradient(static_cast<timing::ArcId>(a)) > 1e-3f) ++n;
    }
    return n;
  };
  const int sharp = count_active(0.01f);
  const int smooth = count_active(50.0f);
  EXPECT_GE(smooth, sharp);
  EXPECT_GT(smooth, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gradients,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

}  // namespace
}  // namespace insta
