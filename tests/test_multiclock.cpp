#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "io/design_io.hpp"
#include "ref/brute_force.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

struct Fixture {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit Fixture(std::uint64_t seed, int extra_clocks = 1,
                   double ratio = 2.0) {
    gen::LogicBlockSpec spec = gen::tiny_spec(seed);
    spec.num_extra_clocks = extra_clocks;
    spec.extra_clock_ratio = ratio;
    gd = gen::build_logic_block(spec);
    graph = std::make_unique<timing::TimingGraph>(
        *gd.design, gd.constraints.clock_roots());
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.1);
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays);
    sta->update_full();
  }
};

class MultiClock : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiClock, StructureSpansAllDomains) {
  Fixture f(GetParam());
  const auto& d = *f.gd.design;
  ASSERT_EQ(f.graph->clock_roots().size(), 2u);
  // Neither clock root is a data startpoint; every FF clock pin is in the
  // clock network of one of the trees.
  for (const netlist::CellId root : f.graph->clock_roots()) {
    EXPECT_EQ(f.graph->startpoint_of_pin(d.output_pin(root)),
              timing::kNullStartpoint);
    EXPECT_TRUE(f.graph->is_clock_network(d.output_pin(root)));
  }
  const timing::ClockAnalysis& clock = f.sta->clock();
  int domain_counts[2] = {0, 0};
  for (const netlist::CellId ff : d.flip_flops()) {
    const std::int32_t dom = clock.domain_of_ff(ff);
    ASSERT_GE(dom, 0);
    ASSERT_LT(dom, 2);
    ++domain_counts[dom];
  }
  EXPECT_GT(domain_counts[0], 0);
  EXPECT_GT(domain_counts[1], 0);
}

TEST_P(MultiClock, CrossDomainCreditIsZero) {
  Fixture f(GetParam());
  const auto& d = *f.gd.design;
  const timing::ClockAnalysis& clock = f.sta->clock();
  netlist::CellId a = netlist::kNullCell, b = netlist::kNullCell;
  for (const netlist::CellId ff : d.flip_flops()) {
    if (clock.domain_of_ff(ff) == 0 && a == netlist::kNullCell) a = ff;
    if (clock.domain_of_ff(ff) == 1 && b == netlist::kNullCell) b = ff;
  }
  ASSERT_NE(a, netlist::kNullCell);
  ASSERT_NE(b, netlist::kNullCell);
  EXPECT_DOUBLE_EQ(clock.credit(a, b), 0.0);
  EXPECT_GT(clock.credit(a, a), 0.0);
  EXPECT_GT(clock.credit(b, b), 0.0);
}

TEST_P(MultiClock, PerDomainRequiredPeriods) {
  Fixture f(GetParam(), 1, 2.0);
  const timing::ClockAnalysis& clock = f.sta->clock();
  int checked = 0;
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const timing::Endpoint& ep = f.graph->endpoints()[e];
    if (!ep.clocked) continue;
    const double period = f.sta->ep_period(static_cast<timing::EndpointId>(e));
    if (clock.domain_of_ff(ep.cell) == 0) {
      EXPECT_DOUBLE_EQ(period, f.gd.constraints.clock_period);
    } else {
      EXPECT_DOUBLE_EQ(period, 2.0 * f.gd.constraints.clock_period);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_P(MultiClock, GoldenMatchesBruteForce) {
  Fixture f(GetParam());
  const auto brute =
      ref::brute_force_endpoint_slacks(*f.graph, f.gd.constraints, f.delays);
  for (std::size_t e = 0; e < brute.size(); ++e) {
    const double mine =
        f.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(brute[e])) {
      EXPECT_FALSE(std::isfinite(mine));
      continue;
    }
    EXPECT_NEAR(brute[e], mine, 1e-7) << "endpoint " << e;
  }
}

TEST_P(MultiClock, EngineMatchesGolden) {
  Fixture f(GetParam());
  core::EngineOptions opt;
  opt.top_k = static_cast<int>(f.graph->startpoints().size());
  core::Engine engine(*f.sta, opt);
  engine.run_forward();
  for (std::size_t e = 0; e < f.graph->endpoints().size(); ++e) {
    const double g = f.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const float m = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(g)) continue;
    EXPECT_NEAR(g, static_cast<double>(m), 0.05) << "endpoint " << e;
  }
  EXPECT_NEAR(f.sta->tns(), engine.tns(), std::abs(f.sta->tns()) * 1e-4 + 0.1);
}

TEST_P(MultiClock, IoRoundTripKeepsDomains) {
  Fixture f(GetParam());
  std::stringstream ss;
  io::save_design(*f.gd.design, f.gd.constraints, ss);
  const io::LoadedDesign loaded = io::load_design(ss);
  ASSERT_EQ(loaded.constraints.extra_clocks.size(), 1u);
  EXPECT_EQ(loaded.constraints.extra_clocks[0].root,
            f.gd.constraints.extra_clocks[0].root);
  EXPECT_DOUBLE_EQ(loaded.constraints.extra_clocks[0].period_ratio, 2.0);

  timing::TimingGraph graph2(*loaded.design, loaded.constraints.clock_roots());
  timing::DelayCalculator calc2(*loaded.design, graph2);
  timing::ArcDelays delays2;
  calc2.compute_all(delays2);
  ref::GoldenSta sta2(graph2, loaded.constraints, delays2);
  sta2.update_full();
  EXPECT_NEAR(sta2.tns(), f.sta->tns(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiClock,
                         ::testing::Values(151u, 152u, 153u, 154u));

}  // namespace
}  // namespace insta
