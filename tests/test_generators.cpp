#include <gtest/gtest.h>

#include <cmath>

#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/placement_bench.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta {
namespace {

TEST(Generators, DeterministicPerSeed) {
  const gen::GeneratedDesign a = gen::build_logic_block(gen::tiny_spec(5));
  const gen::GeneratedDesign b = gen::build_logic_block(gen::tiny_spec(5));
  ASSERT_EQ(a.design->num_cells(), b.design->num_cells());
  ASSERT_EQ(a.design->num_nets(), b.design->num_nets());
  for (std::size_t c = 0; c < a.design->num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    EXPECT_EQ(a.design->cell(id).libcell, b.design->cell(id).libcell);
    EXPECT_EQ(a.design->cell(id).name, b.design->cell(id).name);
  }
  for (std::size_t n = 0; n < a.design->num_nets(); ++n) {
    const auto id = static_cast<netlist::NetId>(n);
    EXPECT_EQ(a.design->net(id).driver, b.design->net(id).driver);
    EXPECT_EQ(a.design->net(id).sinks, b.design->net(id).sinks);
    EXPECT_DOUBLE_EQ(a.design->net(id).length_hint,
                     b.design->net(id).length_hint);
  }
  EXPECT_EQ(a.constraints.exceptions.size(), b.constraints.exceptions.size());

  const gen::GeneratedDesign c = gen::build_logic_block(gen::tiny_spec(6));
  EXPECT_NE(a.design->cell(50).libcell == c.design->cell(50).libcell &&
                a.design->net(20).sinks == c.design->net(20).sinks,
            true)
      << "different seeds should differ somewhere";
}

TEST(Generators, RequestedStructureIsDelivered) {
  gen::LogicBlockSpec spec = gen::tiny_spec(9);
  spec.num_gates = 500;
  spec.num_ffs = 40;
  spec.num_inputs = 12;
  spec.num_outputs = 10;
  const gen::GeneratedDesign gd = gen::build_logic_block(spec);
  EXPECT_EQ(gd.design->flip_flops().size(), 40u);
  EXPECT_EQ(gd.design->input_ports().size(), 13u);  // + clock root
  EXPECT_EQ(gd.design->output_ports().size(), 10u);
  gd.design->validate();
  // The clock root is an input port and referenced by the constraints.
  EXPECT_EQ(gd.design->libcell_of(gd.constraints.clock_root).func,
            netlist::CellFunc::kPortIn);
}

TEST(Generators, PresizeBoundsElectricalEffort) {
  gen::LogicBlockSpec spec = gen::tiny_spec(10);
  spec.num_gates = 800;
  spec.presize = true;
  spec.target_effort = 4.0;
  const gen::GeneratedDesign gd = gen::build_logic_block(spec);
  const timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);

  int checked = 0, overloaded = 0;
  for (std::size_t c = 0; c < gd.design->num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    const auto& lc = gd.design->libcell_of(id);
    if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
        netlist::num_data_inputs(lc.func) == 0 || graph.is_clock_cell(id)) {
      continue;
    }
    const auto out_net = gd.design->pin(gd.design->output_pin(id)).net;
    if (out_net == netlist::kNullNet) continue;
    const auto family = gd.design->library().family(lc.func);
    const double cap_x1 =
        gd.design->library().cell(family.front()).input_cap;
    const double effort = calc.load(out_net) / (cap_x1 * lc.drive);
    ++checked;
    // Cells at the max drive may still exceed the target; everything else
    // must be within it (that is what presize promises).
    if (effort > spec.target_effort + 1e-9 && lc.id != family.back()) {
      ++overloaded;
    }
  }
  EXPECT_GT(checked, 100);
  EXPECT_EQ(overloaded, 0);
}

TEST(Generators, PlacementBenchGeometry) {
  gen::PlacementBenchSpec spec;
  spec.logic = gen::tiny_spec(11);
  spec.logic.num_gates = 600;
  spec.logic.num_ffs = 60;
  const gen::PlacementBench bench = gen::build_placement_bench(spec);
  const auto& d = *bench.gd.design;
  EXPECT_GT(bench.core_width, 0.0);
  EXPECT_NEAR(bench.core_height, bench.num_rows * bench.row_height, 1e-9);
  // The core fits the design at the requested density.
  EXPECT_NEAR(bench.core_width * bench.core_height,
              d.total_area() / spec.target_density,
              d.total_area() * 0.05);
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    const auto& cell = d.cell(static_cast<netlist::CellId>(c));
    EXPECT_GE(cell.x, -1e-9);
    EXPECT_LE(cell.x, bench.core_width + 1e-9);
    EXPECT_GE(cell.y, -1e-9);
    EXPECT_LE(cell.y, bench.core_height + 1e-9);
  }
  // Ports and clock buffers fixed, gates and FFs movable.
  for (const auto id : d.input_ports()) EXPECT_TRUE(d.cell(id).fixed);
  for (const auto id : d.flip_flops()) EXPECT_FALSE(d.cell(id).fixed);
  int fixed_bufs = 0;
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    const auto id = static_cast<netlist::CellId>(c);
    if (d.cell(id).name.rfind("ckbuf", 0) == 0) {
      EXPECT_TRUE(d.cell(id).fixed);
      ++fixed_bufs;
    }
  }
  EXPECT_GT(fixed_bufs, 0);
}

TEST(Generators, TuneHitsViolationTarget) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(12));
  const timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  const double period =
      gen::tune_clock_period(graph, gd.constraints, delays, 0.2);
  EXPECT_EQ(period, gd.constraints.clock_period);
  ref::GoldenSta sta(graph, gd.constraints, delays);
  sta.update_full();
  int finite = 0;
  for (const double s : sta.endpoint_slacks()) {
    if (std::isfinite(s)) ++finite;
  }
  const double frac =
      static_cast<double>(sta.num_violations()) / std::max(1, finite);
  // Exceptions make the quantile approximate; accept a generous band.
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.35);
}

TEST(Generators, ChangelistIsLegalAndDeterministic) {
  gen::GeneratedDesign gd = gen::build_logic_block(gen::tiny_spec(13));
  const timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  util::Rng rng_a(3), rng_b(3);
  const auto a = gen::random_changelist(*gd.design, graph, rng_a, 40);
  const auto b = gen::random_changelist(*gd.design, graph, rng_b, 40);
  ASSERT_EQ(a.size(), 40u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell, b[i].cell);
    EXPECT_EQ(a[i].new_libcell, b[i].new_libcell);
    const auto& lc = gd.design->libcell_of(a[i].cell);
    const auto& nl = gd.design->library().cell(a[i].new_libcell);
    EXPECT_EQ(lc.func, nl.func);
    EXPECT_NE(lc.id, nl.id);
    EXPECT_FALSE(graph.is_clock_cell(a[i].cell));
    EXPECT_FALSE(netlist::is_sequential(lc.func));
  }
}

TEST(Generators, PresetRostersHaveExpectedShapes) {
  EXPECT_EQ(gen::table1_block_specs().size(), 5u);
  EXPECT_EQ(gen::table2_iwls_specs().size(), 4u);
  EXPECT_EQ(gen::table3_superblue_specs().size(), 8u);
  // Block-1 is the largest Table-I block; superblue10 the largest bench.
  const auto blocks = gen::table1_block_specs();
  for (const auto& s : blocks) {
    EXPECT_LE(s.num_gates, blocks[0].num_gates);
  }
  const auto sb = gen::table3_superblue_specs();
  for (const auto& s : sb) {
    EXPECT_LE(s.logic.num_gates, sb[5].logic.num_gates);
  }
}

}  // namespace
}  // namespace insta
