// Tests of the timing-query service layer: option validation at the CLI
// trust boundary, protocol parse/serialize round-trips, snapshot-isolated
// reads, what-if bit-identity against direct ScenarioBatch evaluation,
// exclusive-edit workflow, admission control, a concurrent reader/what-if/
// commit stress (the TSan target), and socket end-to-end equivalence.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "replica/codec.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace insta {
namespace {

using core::Mode;
using core::SlackSummary;
using serve::ErrorCode;
using serve::TimingService;
using timing::ArcDelta;

bool has_problem(const std::vector<std::string>& problems,
                 const std::string& needle) {
  for (const std::string& p : problems) {
    if (p.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool has_rule(const analysis::LintReport& report, const std::string& rule) {
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

// ---- options validation (the CLI trust boundary) ---------------------------

TEST(ServeOptions, ServiceValidateReportsEveryProblemAtOnce) {
  serve::ServiceOptions opt;
  EXPECT_TRUE(opt.validate().empty());

  opt.batch_window_us = -1;
  opt.max_batch = 0;
  opt.max_queue = 0;
  opt.max_inflight_per_session = 0;
  opt.max_sessions = 0;
  const std::vector<std::string> problems = opt.validate();
  EXPECT_TRUE(has_problem(problems, "batch_window_us"));
  EXPECT_TRUE(has_problem(problems, "max_batch"));
  EXPECT_TRUE(has_problem(problems, "max_queue"));
  EXPECT_TRUE(has_problem(problems, "max_inflight_per_session"));
  EXPECT_TRUE(has_problem(problems, "max_sessions"));
  EXPECT_GE(problems.size(), 5u);
}

TEST(ServeOptions, ServiceValidateRejectsQueueSmallerThanBatch) {
  serve::ServiceOptions opt;
  opt.max_batch = 32;
  opt.max_queue = 8;
  EXPECT_TRUE(has_problem(opt.validate(), "max_queue must be >= max_batch"));
  opt.max_queue = 32;
  EXPECT_TRUE(opt.validate().empty());
  opt.batch_window_us = 20'000'000;  // > 10 s window makes no sense
  EXPECT_FALSE(opt.validate().empty());
}

TEST(ServeOptions, ServerValidateChecksEndpointAndConnectionKnobs) {
  serve::ServerOptions opt;
  EXPECT_TRUE(opt.validate().empty());
  opt.port = 70000;
  opt.max_connections = 0;
  const std::vector<std::string> problems = opt.validate();
  EXPECT_TRUE(has_problem(problems, "port"));
  EXPECT_TRUE(has_problem(problems, "max_connections"));

  serve::ServerOptions unix_opt;
  unix_opt.unix_path = std::string(200, 'x');  // longer than sun_path
  EXPECT_TRUE(has_problem(unix_opt.validate(), "unix_path"));
}

/// The engine knobs the serve CLI forwards (top_k etc.) are rejected with
/// one message per bad field, not a first-failure abort.
TEST(ServeOptions, EngineValidateRejectsBadKnobs) {
  core::EngineOptions eopt;
  EXPECT_TRUE(eopt.validate().empty());

  eopt.top_k = 0;
  eopt.tau = 0.0f;
  eopt.wns_tau = std::numeric_limits<float>::infinity();
  eopt.parallel_threshold = -1;
  eopt.parallel_grain = 0;
  eopt.endpoint_grain = 0;
  const std::vector<std::string> problems = eopt.validate();
  EXPECT_TRUE(has_problem(problems, "top_k"));
  EXPECT_TRUE(has_problem(problems, "tau"));
  EXPECT_TRUE(has_problem(problems, "wns_tau"));
  EXPECT_TRUE(has_problem(problems, "parallel_threshold"));
  EXPECT_TRUE(has_problem(problems, "parallel_grain"));
  EXPECT_TRUE(has_problem(problems, "endpoint_grain"));
  EXPECT_EQ(problems.size(), 6u);
}

// ---- protocol parsing ------------------------------------------------------

TEST(Protocol, ParseRequestReportsJsonErrorsViaTelemetryParser) {
  serve::Request req;
  analysis::LintReport report;
  EXPECT_FALSE(serve::parse_request("{not json", req, report));
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(has_rule(report, "req-json"));
}

TEST(Protocol, ParseRequestReportsShapeErrors) {
  {
    serve::Request req;
    analysis::LintReport report;
    EXPECT_FALSE(serve::parse_request("[1, 2]", req, report));
    EXPECT_TRUE(has_rule(report, "req-shape"));
  }
  {
    serve::Request req;
    analysis::LintReport report;
    EXPECT_FALSE(serve::parse_request(R"({"id": 1})", req, report));
    EXPECT_TRUE(has_rule(report, "req-shape"));  // no op
  }
  {
    serve::Request req;
    analysis::LintReport report;
    EXPECT_FALSE(serve::parse_request(
        R"({"id": 1.5, "op": "summary"})", req, report));
    EXPECT_TRUE(has_rule(report, "req-shape"));  // fractional id
  }
  {
    serve::Request req;
    analysis::LintReport report;
    EXPECT_FALSE(serve::parse_request(
        R"({"op": "endpoints", "worst": -3})", req, report));
    EXPECT_TRUE(has_rule(report, "req-shape"));
  }
}

TEST(Protocol, ParseRequestAcceptsFullWhatif) {
  serve::Request req;
  analysis::LintReport report;
  ASSERT_TRUE(serve::parse_request(
      R"({"id": 7, "op": "whatif", "session": 3, "scenarios":)"
      R"( [{"label": "a", "deltas": [{"arc": 5, "mu": [1.5, 2.5],)"
      R"( "sigma": [0.1, 0.2]}]}, {"deltas": []}]})",
      req, report))
      << report.str();
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.op, "whatif");
  EXPECT_EQ(req.session, 3);
  ASSERT_EQ(req.scenarios.size(), 2u);
  ASSERT_EQ(req.labels.size(), 2u);
  EXPECT_EQ(req.labels[0], "a");
  EXPECT_EQ(req.labels[1], "scenario-1");
  ASSERT_EQ(req.scenarios[0].size(), 1u);
  EXPECT_EQ(req.scenarios[0][0].arc, 5);
  EXPECT_EQ(req.scenarios[0][0].mu[1], 2.5);
  EXPECT_EQ(req.scenarios[0][0].sigma[0], 0.1);
  EXPECT_TRUE(req.scenarios[1].empty());
}

TEST(Protocol, ParseScenariosJsonFailureModes) {
  const auto parse = [](const char* text, analysis::LintReport& report) {
    telemetry::JsonValue doc;
    std::string error;
    EXPECT_TRUE(telemetry::json_parse(text, doc, error)) << error;
    std::vector<std::vector<ArcDelta>> scenarios;
    std::vector<std::string> labels;
    return serve::parse_scenarios_json(doc, scenarios, labels, report);
  };
  {
    analysis::LintReport report;
    EXPECT_FALSE(parse(R"({"no_scenarios": 1})", report));
    EXPECT_TRUE(has_rule(report, "whatif-shape"));
  }
  {
    analysis::LintReport report;
    EXPECT_FALSE(parse(R"([42])", report));  // scenario is not an object
    EXPECT_TRUE(has_rule(report, "whatif-shape"));
  }
  {
    analysis::LintReport report;
    EXPECT_FALSE(parse(R"([{"label": "x"}])", report));  // no deltas
    EXPECT_TRUE(has_rule(report, "whatif-shape"));
  }
  {
    analysis::LintReport report;
    EXPECT_FALSE(parse(R"([{"deltas": [{"mu": [1, 2]}]}])", report));
    EXPECT_TRUE(has_rule(report, "whatif-shape"));  // delta without arc
  }
  {
    analysis::LintReport report;
    EXPECT_FALSE(parse(R"([{"deltas": [{"arc": 1, "mu": [1]}]}])", report));
    EXPECT_TRUE(has_rule(report, "whatif-shape"));  // mu is not a pair
  }
  {
    // An empty scenario list is structurally fine (the service layer
    // decides whether to reject it).
    analysis::LintReport report;
    EXPECT_TRUE(parse(R"({"scenarios": []})", report));
    EXPECT_FALSE(report.has_errors());
  }
}

TEST(Protocol, ReplyBuildersEmitParseableJson) {
  {
    telemetry::JsonValue doc;
    std::string error;
    ASSERT_TRUE(telemetry::json_parse(
        serve::ok_reply(12, "{\"x\": 1}"), doc, error))
        << error;
    EXPECT_EQ(doc.find("id")->number, 12.0);
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("result")->find("x")->number, 1.0);
  }
  {
    analysis::LintReport report;
    analysis::Diagnostic d;
    d.rule = "req-json";
    d.severity = analysis::Severity::kError;
    d.message = "broken \"quoted\" input";
    report.add(std::move(d));
    telemetry::JsonValue doc;
    std::string error;
    ASSERT_TRUE(telemetry::json_parse(
        serve::error_reply(3, ErrorCode::kBadRequest, "malformed", &report),
        doc, error))
        << error;
    EXPECT_FALSE(doc.find("ok")->boolean);
    const telemetry::JsonValue* err = doc.find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->find("code")->string, "bad-request");
    ASSERT_NE(err->find("diagnostics"), nullptr);
    ASSERT_EQ(err->find("diagnostics")->array.size(), 1u);
    EXPECT_EQ(err->find("diagnostics")->array[0].find("rule")->string,
              "req-json");
  }
}

// ---- service fixture -------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { build(7); }

  void build(std::uint64_t seed) {
    gd_ = gen::build_logic_block(gen::tiny_spec(seed));
    graph_ = std::make_unique<timing::TimingGraph>(*gd_.design,
                                                   gd_.constraints.clock_root);
    calc_ = std::make_unique<timing::DelayCalculator>(*gd_.design, *graph_);
    calc_->compute_all(delays_);
    gen::tune_clock_period(*graph_, gd_.constraints, delays_, 0.1);
    sta_ = std::make_unique<ref::GoldenSta>(*graph_, gd_.constraints, delays_);
    sta_->update_full();
  }

  std::unique_ptr<core::Engine> make_engine(bool hold = false) {
    core::EngineOptions eopt;
    eopt.enable_hold = hold;
    auto engine = std::make_unique<core::Engine>(*sta_, eopt);
    engine->run_forward();
    return engine;
  }

  std::vector<std::vector<ArcDelta>> make_scenarios(util::Rng& rng,
                                                    std::size_t n) {
    const auto changes = gen::random_changelist(*gd_.design, *graph_, rng,
                                                static_cast<int>(n));
    std::vector<std::vector<ArcDelta>> scen;
    for (const auto& ch : changes) {
      scen.push_back(calc_->estimate_eco(ch.cell, ch.new_libcell));
    }
    for (std::size_t i = 0; scen.size() < n && !scen.empty(); ++i) {
      scen.push_back(scen[i % changes.size()]);
    }
    return scen;
  }

  gen::GeneratedDesign gd_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::unique_ptr<timing::DelayCalculator> calc_;
  timing::ArcDelays delays_;
  std::unique_ptr<ref::GoldenSta> sta_;
};

TEST_F(ServeTest, SnapshotMatchesEngineStateAndVersion) {
  auto engine = make_engine(/*hold=*/true);
  TimingService service(*engine);
  const auto snap = service.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, engine->generation());
  EXPECT_TRUE(snap->has_hold);
  // The snapshot's headline summaries are the cross-corner merged view
  // (identical to corner 0 on this single-corner engine).
  EXPECT_EQ(snap->setup, engine->merged_summary(Mode::kSetup));
  EXPECT_EQ(snap->hold, engine->merged_summary(Mode::kHold));
  ASSERT_EQ(snap->slack.size(), graph_->endpoints().size());
  ASSERT_EQ(snap->hold_slack.size(), graph_->endpoints().size());
  for (std::size_t e = 0; e < snap->slack.size(); ++e) {
    const auto ep = static_cast<timing::EndpointId>(e);
    if (std::isfinite(engine->endpoint_slack(ep))) {
      EXPECT_EQ(snap->slack[e], engine->endpoint_slack(ep));
    }
    if (std::isfinite(engine->endpoint_hold_slack(ep))) {
      EXPECT_EQ(snap->hold_slack[e], engine->endpoint_hold_slack(ep));
    }
  }
  EXPECT_EQ(service.stats().snapshots_published, 1u);
}

TEST_F(ServeTest, ConstructorRejectsInvalidOptionsAndDirtyEngine) {
  auto engine = make_engine();
  serve::ServiceOptions bad;
  bad.max_batch = 0;
  EXPECT_THROW(TimingService(*engine, bad), util::CheckError);

  util::Rng rng(3);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_FALSE(scen.empty());
  engine->annotate(scen[0]);  // pending annotations → not timing-clean
  EXPECT_THROW(TimingService{*engine}, util::CheckError);
}

/// The service's what-if replies must be exactly what a direct
/// ScenarioBatch::evaluate over the same engine produces.
TEST_F(ServeTest, WhatifMatchesDirectScenarioBatchExactly) {
  auto engine = make_engine(/*hold=*/true);
  util::Rng rng(11);
  const auto scen = make_scenarios(rng, 6);
  ASSERT_EQ(scen.size(), 6u);

  core::ScenarioBatch direct(*engine);
  const std::vector<core::ScenarioResult> expect = direct.evaluate(scen);

  TimingService service(*engine);
  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());
  TimingService::WhatifReply reply;
  const serve::Error err = service.whatif(sid, scen, reply);
  ASSERT_TRUE(err.ok()) << err.message;
  EXPECT_EQ(reply.version, engine->generation());
  ASSERT_EQ(reply.results.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(reply.results[i].setup, expect[i].setup) << "scenario " << i;
    EXPECT_EQ(reply.results[i].hold, expect[i].hold) << "scenario " << i;
  }
  const serve::ServiceStats st = service.stats();
  EXPECT_EQ(st.whatif_requests, 1u);
  EXPECT_EQ(st.whatif_scenarios, 6u);
  EXPECT_GE(st.batches, 1u);
  EXPECT_TRUE(service.close_session(sid).ok());
}

TEST_F(ServeTest, WhatifRejectsBadInput) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());

  TimingService::WhatifReply reply;
  EXPECT_EQ(service.whatif(sid, {}, reply).code, ErrorCode::kBadRequest);
  EXPECT_EQ(service.whatif(sid + 999, {{ArcDelta{}}}, reply).code,
            ErrorCode::kBadSession);

  // An out-of-range arc is rejected before it can reach the evaluator, with
  // the check_deltas diagnostics attached.
  ArcDelta bad;
  bad.arc = static_cast<timing::ArcId>(graph_->num_arcs() + 100);
  const serve::Error err = service.whatif(sid, {{bad}}, reply);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_TRUE(has_rule(err.diagnostics, "delta-arc-range"));
}

TEST_F(ServeTest, CommitPublishesNewSnapshotAndOldOneStaysIsolated) {
  auto engine = make_engine();
  util::Rng rng(17);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);

  // Ground truth of the committed world: the same transactional edit run
  // directly, summaries recorded, then rolled back to the pre-edit bytes.
  SlackSummary committed_setup;
  {
    core::Engine::Transaction tx = engine->begin_edit();
    tx.annotate(scen[0]);
    engine->run_forward_incremental();
    committed_setup = engine->summary(Mode::kSetup, 0);
    tx.rollback();
  }
  const SlackSummary baseline_setup = engine->summary(Mode::kSetup, 0);

  TimingService service(*engine);
  const auto before = service.snapshot();
  EXPECT_EQ(before->setup, baseline_setup);

  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());
  ASSERT_TRUE(service.begin_edit(sid).ok());
  ASSERT_TRUE(service.annotate(sid, scen[0]).ok());
  // Buffered, not yet applied: readers still see the baseline.
  EXPECT_EQ(service.snapshot()->setup, baseline_setup);

  TimingService::CommitReply reply;
  ASSERT_TRUE(service.commit(sid, reply).ok());
  EXPECT_EQ(reply.setup, committed_setup);
  EXPECT_GT(reply.version, before->version);

  const auto after = service.snapshot();
  EXPECT_EQ(after->version, reply.version);
  EXPECT_EQ(after->setup, committed_setup);
  // Snapshot isolation: the pre-commit snapshot still reads its own world.
  EXPECT_EQ(before->setup, baseline_setup);
  EXPECT_LT(before->version, after->version);
  EXPECT_EQ(service.stats().commits, 1u);
}

TEST_F(ServeTest, EditSlotIsExclusiveAndRollbackReleasesIt) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::SessionId a = -1, b = -1;
  ASSERT_TRUE(service.open_session(a).ok());
  ASSERT_TRUE(service.open_session(b).ok());

  EXPECT_EQ(service.annotate(a, {}).code, ErrorCode::kBadSession);
  TimingService::CommitReply creply;
  EXPECT_EQ(service.commit(a, creply).code, ErrorCode::kBadSession);

  ASSERT_TRUE(service.begin_edit(a).ok());
  EXPECT_EQ(service.begin_edit(b).code, ErrorCode::kEditConflict);
  EXPECT_EQ(service.begin_edit(a).code, ErrorCode::kBadSession);  // re-entry

  // Invalid deltas are rejected as a whole with diagnostics; the edit
  // stays open with nothing buffered.
  ArcDelta bad;
  bad.arc = -5;
  const serve::Error err = service.annotate(a, std::vector<ArcDelta>{bad});
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_TRUE(has_rule(err.diagnostics, "delta-arc-range"));

  ASSERT_TRUE(service.rollback(a).ok());
  EXPECT_EQ(service.rollback(a).code, ErrorCode::kBadSession);
  ASSERT_TRUE(service.begin_edit(b).ok());  // slot was released

  // Closing a session with an open edit rolls it back implicitly.
  ASSERT_TRUE(service.close_session(b).ok());
  EXPECT_EQ(service.stats().rollbacks, 2u);
  ASSERT_TRUE(service.begin_edit(a).ok());
  // A commit with no buffered deltas succeeds without republishing.
  const std::uint64_t published = service.stats().snapshots_published;
  ASSERT_TRUE(service.commit(a, creply).ok());
  EXPECT_EQ(service.stats().snapshots_published, published);
}

TEST_F(ServeTest, AdmissionControlShedsWithStructuredErrors) {
  auto engine = make_engine();
  serve::ServiceOptions opt;
  opt.max_sessions = 2;
  opt.max_queue = 2;
  opt.max_batch = 2;
  opt.max_inflight_per_session = 1;
  opt.batch_window_us = 0;
  TimingService service(*engine, opt);

  serve::SessionId a = -1, b = -1, c = -1;
  ASSERT_TRUE(service.open_session(a).ok());
  ASSERT_TRUE(service.open_session(b).ok());
  const serve::Error err = service.open_session(c);
  EXPECT_EQ(err.code, ErrorCode::kOverloaded);
  EXPECT_FALSE(err.message.empty());

  // A request larger than the whole queue bound can never be admitted:
  // structural shedding, no stall.
  util::Rng rng(5);
  const auto scen = make_scenarios(rng, 3);
  ASSERT_EQ(scen.size(), 3u);
  TimingService::WhatifReply reply;
  EXPECT_EQ(service.whatif(a, scen, reply).code, ErrorCode::kOverloaded);
  EXPECT_GE(service.stats().shed, 2u);

  // The same scenarios fit in two admitted requests.
  ASSERT_TRUE(service
                  .whatif(a, {scen.begin(), scen.begin() + 2}, reply)
                  .ok());
  ASSERT_TRUE(service.whatif(b, {scen.begin() + 2, scen.end()}, reply).ok());
}

TEST_F(ServeTest, InflightCapShedsConcurrentRequestsOnOneSession) {
  auto engine = make_engine();
  serve::ServiceOptions opt;
  opt.max_inflight_per_session = 1;
  // A long window keeps the first request collecting while the second
  // arrives (max_batch larger than the queued scenario count, so the
  // leader sleeps out the window).
  opt.batch_window_us = 300'000;
  opt.max_batch = 64;
  opt.max_queue = 64;
  TimingService service(*engine, opt);

  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());
  util::Rng rng(23);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);

  serve::Error first_err;
  TimingService::WhatifReply first_reply;
  std::thread first([&] {
    first_err = service.whatif(sid, scen, first_reply);
  });
  // Wait until the first request is admitted (whatif_requests increments
  // only after its inflight slot is taken and it is queued), then collide
  // while its batch leader sleeps out the 300 ms window. Colliding before
  // this point could win the inflight slot and shed the first request.
  for (int spin = 0; spin < 2000; ++spin) {
    if (service.stats().whatif_requests >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().whatif_requests, 1u);
  serve::Error second_err;
  TimingService::WhatifReply second_reply;
  second_err = service.whatif(sid, scen, second_reply);
  EXPECT_EQ(second_err.code, ErrorCode::kOverloaded);
  first.join();
  EXPECT_TRUE(first_err.ok()) << first_err.message;
  EXPECT_GE(service.stats().shed, 1u);
}

/// The TSan target: concurrent snapshot readers and what-if sessions racing
/// one exclusive edit commit. Every reply must be internally consistent —
/// results bit-identical to the pre-commit or post-commit ground truth
/// matching its reported version, never a mix.
TEST_F(ServeTest, ConcurrentReadersWhatifsAndCommitStayConsistent) {
  auto engine = make_engine();
  util::Rng rng(29);
  const auto scen = make_scenarios(rng, 4);
  ASSERT_EQ(scen.size(), 4u);
  const auto edit = make_scenarios(rng, 1);
  ASSERT_EQ(edit.size(), 1u);

  // Ground truth at both baselines, computed with the engine offline.
  core::ScenarioBatch direct(*engine);
  const std::vector<core::ScenarioResult> ref1 = direct.evaluate(scen);
  const SlackSummary s1 = engine->summary(Mode::kSetup, 0);
  std::vector<core::ScenarioResult> ref2;
  SlackSummary s2;
  {
    core::Engine::Transaction tx = engine->begin_edit();
    tx.annotate(edit[0]);
    engine->run_forward_incremental();
    s2 = engine->summary(Mode::kSetup, 0);
    ref2 = direct.evaluate(scen);
    tx.rollback();
  }
  ASSERT_EQ(engine->summary(Mode::kSetup, 0), s1);  // rollback restored bytes

  serve::ServiceOptions opt;
  opt.batch_window_us = 100;  // small window → many leader hand-offs
  TimingService service(*engine, opt);
  const std::uint64_t v1 = service.snapshot()->version;

  std::atomic<int> failures{0};
  constexpr int kIters = 40;

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {  // readers
      for (int i = 0; i < kIters; ++i) {
        const auto snap = service.snapshot();
        const SlackSummary& want = snap->version == v1 ? s1 : s2;
        if (!(snap->setup == want)) failures.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {  // what-if sessions
      serve::SessionId sid = -1;
      if (!service.open_session(sid).ok()) {
        failures.fetch_add(1);
        return;
      }
      util::Rng pick(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        const auto which = static_cast<std::size_t>(pick() % scen.size());
        TimingService::WhatifReply reply;
        const serve::Error err =
            service.whatif(sid, {scen[which]}, reply);
        if (!err.ok() && err.code != ErrorCode::kOverloaded) {
          failures.fetch_add(1);
          continue;
        }
        if (!err.ok()) continue;  // shed under load is legal
        const core::ScenarioResult& want =
            reply.version == v1 ? ref1[which] : ref2[which];
        if (!(reply.results[0].setup == want.setup)) failures.fetch_add(1);
      }
      if (!service.close_session(sid).ok()) failures.fetch_add(1);
    });
  }
  threads.emplace_back([&] {  // one exclusive edit commit mid-flight
    serve::SessionId sid = -1;
    if (!service.open_session(sid).ok()) {
      failures.fetch_add(1);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    TimingService::CommitReply reply;
    if (!service.begin_edit(sid).ok() ||
        !service.annotate(sid, edit[0]).ok() ||
        !service.commit(sid, reply).ok() || !(reply.setup == s2)) {
      failures.fetch_add(1);
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.snapshot()->setup, s2);
  EXPECT_EQ(service.stats().commits, 1u);
}

// ---- dispatcher + socket ---------------------------------------------------

TEST_F(ServeTest, DispatcherHandlesCoreOpsAndErrors) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::Dispatcher dispatcher(service);

  const auto parse = [](const std::string& line) {
    telemetry::JsonValue doc;
    std::string error;
    EXPECT_TRUE(telemetry::json_parse(line, doc, error)) << error << line;
    return doc;
  };

  {
    const auto doc = parse(dispatcher.dispatch(R"({"id": 1, "op": "ping"})"));
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_TRUE(doc.find("result")->find("pong")->boolean);
  }
  {
    const auto doc = parse(dispatcher.dispatch("{garbage"));
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("error")->find("code")->string, "bad-request");
    const telemetry::JsonValue* diags = doc.find("error")->find("diagnostics");
    ASSERT_NE(diags, nullptr);
    EXPECT_EQ(diags->array[0].find("rule")->string, "req-json");
  }
  {
    const auto doc =
        parse(dispatcher.dispatch(R"({"id": 2, "op": "launch_missiles"})"));
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("error")->find("code")->string, "bad-request");
  }
  {
    const auto doc = parse(dispatcher.dispatch(R"({"id": 3, "op": "info"})"));
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("result")->find("endpoints")->number,
              static_cast<double>(graph_->endpoints().size()));
    EXPECT_EQ(doc.find("result")->find("arcs")->number,
              static_cast<double>(graph_->num_arcs()));
  }
  {
    const auto doc =
        parse(dispatcher.dispatch(R"({"id": 4, "op": "summary"})"));
    EXPECT_TRUE(doc.find("ok")->boolean);
    const SlackSummary s = engine->summary(Mode::kSetup, 0);
    EXPECT_EQ(doc.find("result")->find("setup")->find("tns")->number, s.tns);
    EXPECT_EQ(doc.find("result")->find("setup")->find("wns")->number, s.wns);
  }
  {
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 5, "op": "endpoints", "ids": [999999]})"));
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("error")->find("code")->string, "bad-request");
  }
  {
    // Worst-N endpoints arrive sorted ascending by snapshot slack.
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 6, "op": "endpoints", "worst": 4})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& eps = *doc.find("result")->find("endpoints");
    ASSERT_EQ(eps.array.size(), 4u);
    const auto snap = service.snapshot();
    double prev = -std::numeric_limits<double>::infinity();
    for (const telemetry::JsonValue& ep : eps.array) {
      const auto e = static_cast<std::size_t>(ep.find("ep")->number);
      const telemetry::JsonValue* slack = ep.find("slack");
      ASSERT_LT(e, snap->slack.size());
      if (slack->is_number()) {
        EXPECT_EQ(slack->number, static_cast<double>(snap->slack[e]));
        EXPECT_GE(slack->number, prev);
        prev = slack->number;
      }
    }
  }
  {
    const auto doc = parse(dispatcher.dispatch(R"({"id": 7, "op": "stats"})"));
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_GE(doc.find("result")->find("sessions_opened")->number, 0.0);
  }
  {
    bool shutdown = false;
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 8, "op": "shutdown"})", &shutdown));
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_TRUE(shutdown);
  }
}

/// Protocol 3: the replication verbs (sync, delta_stream) and the extended
/// stats identity block (protocol, generation, corners, read_only,
/// whatif_cache) — and their protocol gate on downgraded connections.
TEST_F(ServeTest, ReplicationProtocolSyncDeltaStreamAndStats) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::Dispatcher dispatcher(service);

  const auto parse = [](const std::string& line) {
    telemetry::JsonValue doc;
    std::string error;
    EXPECT_TRUE(telemetry::json_parse(line, doc, error)) << error << line;
    return doc;
  };
  const std::uint64_t base = service.snapshot()->version;

  {
    const auto doc = parse(dispatcher.dispatch(R"({"id": 1, "op": "stats"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& r = *doc.find("result");
    EXPECT_EQ(r.find("protocol")->number,
              static_cast<double>(serve::kProtocolVersion));
    EXPECT_EQ(r.find("generation")->number, static_cast<double>(base));
    ASSERT_TRUE(r.find("corners")->is_array());
    ASSERT_EQ(r.find("corners")->array.size(), 1u);
    EXPECT_EQ(r.find("corners")->array[0].string,
              service.snapshot()->corners[0]);
    EXPECT_FALSE(r.find("read_only")->boolean);
    ASSERT_NE(r.find("whatif_cache"), nullptr);
    EXPECT_EQ(r.find("whatif_cache")->find("hits")->number, 0.0);
    // Not a replica: no replication block.
    EXPECT_EQ(r.find("replication"), nullptr);
  }
  {
    // sync ships the full engine state as one base64 binary frame.
    const auto doc = parse(dispatcher.dispatch(R"({"id": 2, "op": "sync"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& r = *doc.find("result");
    EXPECT_EQ(r.find("generation")->number, static_cast<double>(base));
    std::string frame;
    ASSERT_TRUE(replica::base64_decode(r.find("snapshot")->string, frame));
    core::EngineState st;
    ASSERT_TRUE(replica::decode_snapshot(frame, st).empty());
    EXPECT_EQ(st.generation, base);
  }
  {
    // Up to date: an empty, non-resync delta stream.
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 3, "op": "delta_stream", "from": )" + std::to_string(base) +
        "}"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& r = *doc.find("result");
    EXPECT_FALSE(r.find("resync")->boolean);
    EXPECT_TRUE(r.find("deltas")->array.empty());
    EXPECT_EQ(r.find("generation")->number, static_cast<double>(base));
  }

  // One committed edit becomes one decodable, chaining delta.
  util::Rng rng(17);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_FALSE(scen.empty());
  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());
  ASSERT_TRUE(service.begin_edit(sid).ok());
  ASSERT_TRUE(service.annotate(sid, scen[0]).ok());
  TimingService::CommitReply cr;
  ASSERT_TRUE(service.commit(sid, cr).ok());

  {
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 4, "op": "delta_stream", "from": )" + std::to_string(base) +
        "}"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& r = *doc.find("result");
    EXPECT_FALSE(r.find("resync")->boolean);
    EXPECT_EQ(r.find("generation")->number, static_cast<double>(cr.version));
    ASSERT_EQ(r.find("deltas")->array.size(), 1u);
    std::string frame;
    ASSERT_TRUE(
        replica::base64_decode(r.find("deltas")->array[0].string, frame));
    replica::CommitRecord rec;
    ASSERT_TRUE(replica::decode_delta(frame, rec).empty());
    EXPECT_EQ(rec.parent_generation, base);
    EXPECT_EQ(rec.generation, cr.version);
    ASSERT_EQ(rec.sets.size(), 1u);
    EXPECT_TRUE(timing::deltas_equal(rec.sets[0].deltas, scen[0]));
  }
  {
    // A generation below the retained window demands a full resync.
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 5, "op": "delta_stream", "from": 0})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    EXPECT_TRUE(doc.find("result")->find("resync")->boolean);
    EXPECT_TRUE(doc.find("result")->find("deltas")->array.empty());
  }
  {
    // Downgraded connections (protocol < 3) cannot reach the replication
    // verbs; the stats identity block still reports the negotiated version.
    const auto pin = parse(dispatcher.dispatch(
        R"({"id": 6, "op": "ping", "protocol": 2})"));
    EXPECT_TRUE(pin.find("ok")->boolean);
    const auto sync = parse(dispatcher.dispatch(R"({"id": 7, "op": "sync"})"));
    EXPECT_FALSE(sync.find("ok")->boolean);
    EXPECT_EQ(sync.find("error")->find("code")->string, "bad-request");
    const auto ds = parse(dispatcher.dispatch(
        R"({"id": 8, "op": "delta_stream", "from": 0})"));
    EXPECT_FALSE(ds.find("ok")->boolean);
    const auto stats =
        parse(dispatcher.dispatch(R"({"id": 9, "op": "stats"})"));
    EXPECT_EQ(stats.find("result")->find("protocol")->number, 2.0);
  }
}

/// Protocol 2: the optional "corner" field selects one corner's view on
/// summary/endpoints/whatif; absent means merged; unknown names/ids are
/// "unknown-corner"; a {"protocol": 1} pin suppresses the feature for the
/// rest of the connection.
TEST_F(ServeTest, CornerSelectionAndProtocolNegotiation) {
  core::EngineOptions eopt;
  eopt.enable_hold = true;
  eopt.corners = {core::CornerSpec{"typ", 1.0f, 1.0f},
                  core::CornerSpec{"fast", 0.9f, 0.95f},
                  core::CornerSpec{"slow", 1.12f, 1.05f}};
  core::Engine engine(*sta_, eopt);
  engine.run_forward();
  TimingService service(engine);
  serve::Dispatcher dispatcher(service);

  const auto parse = [](const std::string& line) {
    telemetry::JsonValue doc;
    std::string error;
    EXPECT_TRUE(telemetry::json_parse(line, doc, error)) << error << line;
    return doc;
  };

  {
    // info advertises the negotiated protocol and the corner-name list.
    const auto doc = parse(dispatcher.dispatch(R"({"id": 1, "op": "info"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("result")->find("protocol")->number,
              static_cast<double>(serve::kProtocolVersion));
    const telemetry::JsonValue* corners = doc.find("result")->find("corners");
    ASSERT_NE(corners, nullptr);
    ASSERT_EQ(corners->array.size(), 3u);
    EXPECT_EQ(corners->array[0].string, "typ");
    EXPECT_EQ(corners->array[1].string, "fast");
    EXPECT_EQ(corners->array[2].string, "slow");
  }
  {
    // No corner field: the merged cross-corner view.
    const auto doc =
        parse(dispatcher.dispatch(R"({"id": 2, "op": "summary"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const SlackSummary merged = engine.merged_summary(Mode::kSetup);
    EXPECT_EQ(doc.find("result")->find("setup")->find("tns")->number,
              merged.tns);
    EXPECT_EQ(doc.find("result")->find("corner"), nullptr);
  }
  {
    // Corner by name.
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 3, "op": "summary", "corner": "fast"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("result")->find("corner")->string, "fast");
    const SlackSummary s = engine.summary(Mode::kSetup, 1);
    EXPECT_EQ(doc.find("result")->find("setup")->find("tns")->number, s.tns);
    EXPECT_EQ(doc.find("result")->find("setup")->find("wns")->number, s.wns);
    const SlackSummary h = engine.summary(Mode::kHold, 1);
    EXPECT_EQ(doc.find("result")->find("hold")->find("tns")->number, h.tns);
  }
  {
    // Corner by integer id.
    const auto doc = parse(
        dispatcher.dispatch(R"({"id": 4, "op": "summary", "corner": 2})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("result")->find("corner")->string, "slow");
    EXPECT_EQ(doc.find("result")->find("setup")->find("tns")->number,
              engine.summary(Mode::kSetup, 2).tns);
  }
  {
    // endpoints: the selected corner's slack plane, not the merged one.
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 5, "op": "endpoints", "ids": [0, 1], "corner": "slow"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& eps = *doc.find("result")->find("endpoints");
    ASSERT_EQ(eps.array.size(), 2u);
    const auto slow = engine.endpoint_slacks(2);
    for (const telemetry::JsonValue& ep : eps.array) {
      const auto e = static_cast<std::size_t>(ep.find("ep")->number);
      const telemetry::JsonValue* slack = ep.find("slack");
      if (slack->is_number()) {
        EXPECT_EQ(slack->number, static_cast<double>(slow[e]));
      } else {
        EXPECT_FALSE(std::isfinite(slow[e]));
      }
    }
  }
  {
    // whatif with a corner returns that corner's per-scenario summaries.
    util::Rng rng(17);
    const auto scen = make_scenarios(rng, 1);
    ASSERT_FALSE(scen.empty());
    core::ScenarioBatch direct(engine);
    const auto expect = direct.evaluate({scen[0]});
    std::string req = R"({"id": 6, "op": "whatif", "corner": "fast", )";
    req += R"("scenarios": [{"deltas": [)";
    for (std::size_t i = 0; i < scen[0].size(); ++i) {
      if (i) req += ", ";
      const auto& d = scen[0][i];
      req += "{\"arc\": " + std::to_string(d.arc) + ", \"mu\": [" +
             std::to_string(d.mu[0]) + ", " + std::to_string(d.mu[1]) +
             "], \"sigma\": [" + std::to_string(d.sigma[0]) + ", " +
             std::to_string(d.sigma[1]) + "]}";
    }
    req += "]}]}";
    const auto doc = parse(dispatcher.dispatch(req));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& results = *doc.find("result")->find("results");
    ASSERT_EQ(results.array.size(), 1u);
    EXPECT_EQ(results.array[0].find("setup")->find("tns")->number,
              expect[0].setup_by_corner[1].tns);
  }
  {
    // Unknown corner name and out-of-range id → "unknown-corner".
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 7, "op": "summary", "corner": "ss0p72vn40c"})"));
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("error")->find("code")->string, "unknown-corner");
    const auto doc2 = parse(
        dispatcher.dispatch(R"({"id": 8, "op": "summary", "corner": 3})"));
    EXPECT_FALSE(doc2.find("ok")->boolean);
    EXPECT_EQ(doc2.find("error")->find("code")->string, "unknown-corner");
  }
  {
    // Pinning protocol 1 suppresses corner selection for the connection.
    const auto doc = parse(dispatcher.dispatch(
        R"({"id": 9, "op": "ping", "protocol": 1})"));
    EXPECT_TRUE(doc.find("ok")->boolean);
    const auto rejected = parse(dispatcher.dispatch(
        R"({"id": 10, "op": "summary", "corner": "fast"})"));
    EXPECT_FALSE(rejected.find("ok")->boolean);
    EXPECT_EQ(rejected.find("error")->find("code")->string, "bad-request");
    // A version-1 info reply omits the corner members entirely.
    const auto info = parse(dispatcher.dispatch(R"({"id": 11, "op": "info"})"));
    ASSERT_TRUE(info.find("ok")->boolean);
    EXPECT_EQ(info.find("result")->find("corners"), nullptr);
    EXPECT_EQ(info.find("result")->find("protocol")->number, 1.0);
    // Renegotiating back up restores them.
    const auto info2 = parse(dispatcher.dispatch(
        R"({"id": 12, "op": "info", "protocol": 2})"));
    ASSERT_TRUE(info2.find("ok")->boolean);
    ASSERT_NE(info2.find("result")->find("corners"), nullptr);
  }
}

/// Minimal blocking NDJSON client for the socket tests.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  std::string request(const std::string& line) {
    const std::string framed = line + "\n";
    EXPECT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
    return recv_line();
  }

  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string test_socket_path(const char* tag) {
  return "/tmp/insta_test_serve_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

TEST_F(ServeTest, SocketEndToEndMatchesInProcessExactly) {
  auto engine = make_engine();
  util::Rng rng(31);
  const auto scen = make_scenarios(rng, 2);
  ASSERT_EQ(scen.size(), 2u);
  core::ScenarioBatch direct(*engine);
  const std::vector<core::ScenarioResult> expect = direct.evaluate(scen);

  TimingService service(*engine);
  serve::ServerOptions sopt;
  sopt.unix_path = test_socket_path("e2e");
  serve::Server server(service, sopt);
  server.start();

  TestClient client(sopt.unix_path);
  ASSERT_TRUE(client.connected());
  const auto parse = [](const std::string& line) {
    telemetry::JsonValue doc;
    std::string error;
    EXPECT_TRUE(telemetry::json_parse(line, doc, error)) << error << line;
    return doc;
  };

  // summary over the wire is exactly the in-process snapshot.
  {
    const auto doc = parse(client.request(R"({"id": 1, "op": "summary"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const auto snap = service.snapshot();
    EXPECT_EQ(doc.find("result")->find("version")->number,
              static_cast<double>(snap->version));
    EXPECT_EQ(doc.find("result")->find("setup")->find("tns")->number,
              snap->setup.tns);
    EXPECT_EQ(doc.find("result")->find("setup")->find("wns")->number,
              snap->setup.wns);
  }
  // every endpoint slack round-trips bit-exactly (%.17g doubles).
  {
    std::string ids = "[";
    for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
      if (e != 0) ids += ", ";
      ids += std::to_string(e);
    }
    ids += "]";
    const auto doc = parse(client.request(
        R"({"id": 2, "op": "endpoints", "ids": )" + ids + "}"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue& eps = *doc.find("result")->find("endpoints");
    ASSERT_EQ(eps.array.size(), graph_->endpoints().size());
    const auto snap = service.snapshot();
    for (std::size_t e = 0; e < eps.array.size(); ++e) {
      const telemetry::JsonValue* slack = eps.array[e].find("slack");
      const double local = static_cast<double>(snap->slack[e]);
      if (std::isfinite(local)) {
        EXPECT_EQ(slack->number, local) << "endpoint " << e;
      } else {
        EXPECT_EQ(slack->type, telemetry::JsonValue::Type::kNull);
      }
    }
  }
  // whatif over the wire equals direct ScenarioBatch evaluation.
  {
    std::string body = R"({"id": 3, "op": "whatif", "scenarios": [)";
    for (std::size_t i = 0; i < scen.size(); ++i) {
      if (i != 0) body += ", ";
      body += R"({"deltas": [)";
      for (std::size_t j = 0; j < scen[i].size(); ++j) {
        if (j != 0) body += ", ";
        const ArcDelta& d = scen[i][j];
        body += "{\"arc\": " + std::to_string(d.arc) + ", \"mu\": [" +
                telemetry::json_number(d.mu[0]) + ", " +
                telemetry::json_number(d.mu[1]) + "], \"sigma\": [" +
                telemetry::json_number(d.sigma[0]) + ", " +
                telemetry::json_number(d.sigma[1]) + "]}";
      }
      body += "]}";
    }
    body += "]}";
    const auto doc = parse(client.request(body));
    ASSERT_TRUE(doc.find("ok")->boolean) << client.request(body);
    const telemetry::JsonValue& results = *doc.find("result")->find("results");
    ASSERT_EQ(results.array.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      const telemetry::JsonValue* setup = results.array[i].find("setup");
      ASSERT_NE(setup, nullptr);
      EXPECT_EQ(setup->find("tns")->number, expect[i].setup.tns)
          << "scenario " << i;
      EXPECT_EQ(setup->find("wns")->number, expect[i].setup.wns)
          << "scenario " << i;
      EXPECT_EQ(setup->find("violations")->number,
                static_cast<double>(expect[i].setup.violations))
          << "scenario " << i;
    }
  }
  // A malformed line gets a structured reply, not a dropped connection.
  {
    const auto doc = parse(client.request("{oops"));
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("error")->find("code")->string, "bad-request");
  }
  // shutdown op unblocks wait().
  {
    const auto doc = parse(client.request(R"({"id": 9, "op": "shutdown"})"));
    EXPECT_TRUE(doc.find("ok")->boolean);
  }
  server.wait();
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
}

TEST_F(ServeTest, ServerShedsConnectionsBeyondTheCap) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::ServerOptions sopt;
  sopt.unix_path = test_socket_path("cap");
  sopt.max_connections = 1;
  serve::Server server(service, sopt);
  server.start();

  TestClient first(sopt.unix_path);
  ASSERT_TRUE(first.connected());
  // A reply proves the first connection's handler thread is registered.
  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(
      first.request(R"({"id": 1, "op": "ping"})"), doc, error));

  TestClient second(sopt.unix_path);
  ASSERT_TRUE(second.connected());
  const std::string line = second.recv_line();
  ASSERT_TRUE(telemetry::json_parse(line, doc, error)) << line;
  EXPECT_FALSE(doc.find("ok")->boolean);
  EXPECT_EQ(doc.find("error")->find("code")->string, "overloaded");

  server.stop();
}

// ---- observability: request ids, server_us, introspection ops --------------

/// Parses one reply line into a JSON DOM (shared by the tests below).
telemetry::JsonValue parse_reply_line(const std::string& line) {
  telemetry::JsonValue doc;
  std::string error;
  EXPECT_TRUE(telemetry::json_parse(line, doc, error)) << error << " " << line;
  return doc;
}

/// Asserts the reply carries a server_us breakdown whose parts are
/// non-negative and never sum to more than the total.
void expect_server_us(const telemetry::JsonValue& doc) {
  const telemetry::JsonValue* su = doc.find("server_us");
  ASSERT_NE(su, nullptr) << "reply lacks server_us";
  double parts = 0.0;
  for (const char* key : {"queue", "batch", "eval", "serialize"}) {
    const telemetry::JsonValue* v = su->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_GE(v->number, 0.0) << key;
    parts += v->number;
  }
  const telemetry::JsonValue* total = su->find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->number, 0.0);
  EXPECT_LE(parts, total->number);
}

TEST_F(ServeTest, ReplyIdsRoundTripAndServerUsIsSelfConsistent) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::Dispatcher dispatcher(service);

  // A client-numbered request echoes its id verbatim.
  {
    const auto doc =
        parse_reply_line(dispatcher.dispatch(R"({"id": 41, "op": "ping"})"));
    EXPECT_EQ(doc.find("id")->number, 41.0);
    expect_server_us(doc);
  }
  // Requests without an id (or id 0) get fresh positive server-assigned
  // ids, distinct across requests.
  {
    const auto a = parse_reply_line(dispatcher.dispatch(R"({"op": "ping"})"));
    const auto b =
        parse_reply_line(dispatcher.dispatch(R"({"id": 0, "op": "ping"})"));
    EXPECT_GT(a.find("id")->number, 0.0);
    EXPECT_GT(b.find("id")->number, a.find("id")->number);
  }
  // Error replies are timed too — a malformed line still gets an id and a
  // breakdown.
  {
    const auto doc = parse_reply_line(dispatcher.dispatch("{broken"));
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_GT(doc.find("id")->number, 0.0);
    expect_server_us(doc);
  }
  // A whatif reply fills the batching-pipeline parts; queue/batch/eval and
  // serialize must stay within the measured total.
  {
    util::Rng rng(43);
    const auto scen = make_scenarios(rng, 1);
    ASSERT_EQ(scen.size(), 1u);
    std::string body =
        R"({"id": 7, "op": "whatif", "scenarios": [{"deltas": [)";
    for (std::size_t j = 0; j < scen[0].size(); ++j) {
      if (j != 0) body += ", ";
      body += "{\"arc\": " + std::to_string(scen[0][j].arc) + ", \"mu\": [" +
              telemetry::json_number(scen[0][j].mu[0]) + ", " +
              telemetry::json_number(scen[0][j].mu[1]) + "]}";
    }
    body += "]}]}";
    const auto doc = parse_reply_line(dispatcher.dispatch(body));
    ASSERT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("id")->number, 7.0);
    expect_server_us(doc);
  }
}

TEST_F(ServeTest, TraceAndFlightrecOpsReturnValidDocuments) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::Dispatcher dispatcher(service);

  // trace: an introspection doc with the enablement flag and a spans list.
  {
    const auto doc =
        parse_reply_line(dispatcher.dispatch(R"({"id": 1, "op": "trace"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue* result = doc.find("result");
    ASSERT_NE(result, nullptr);
    ASSERT_NE(result->find("enabled"), nullptr);
    ASSERT_NE(result->find("spans"), nullptr);
    EXPECT_TRUE(result->find("spans")->is_array());
    EXPECT_GE(result->find("dropped")->number, 0.0);
  }
  // flightrec: the recorder's own JSON schema, embedded as the result. The
  // dispatcher records an admit event per request, so after the trace op
  // above the ring cannot be empty (in telemetry-on builds).
  {
    const auto doc = parse_reply_line(
        dispatcher.dispatch(R"({"id": 2, "op": "flightrec"})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    const telemetry::JsonValue* result = doc.find("result");
    ASSERT_NE(result, nullptr);
    ASSERT_NE(result->find("total"), nullptr);
    ASSERT_NE(result->find("events"), nullptr);
    EXPECT_TRUE(result->find("events")->is_array());
#if INSTA_TELEMETRY_ENABLED
    EXPECT_GE(result->find("total")->number, 1.0);
    ASSERT_FALSE(result->find("events")->array.empty());
    const telemetry::JsonValue& ev = result->find("events")->array.back();
    EXPECT_NE(ev.find("ts_us"), nullptr);
    EXPECT_NE(ev.find("type"), nullptr);
    EXPECT_NE(ev.find("id"), nullptr);
#endif
  }
  // max caps the number of events returned.
  {
    const auto doc = parse_reply_line(
        dispatcher.dispatch(R"({"id": 3, "op": "flightrec", "max": 1})"));
    ASSERT_TRUE(doc.find("ok")->boolean);
    EXPECT_LE(doc.find("result")->find("events")->array.size(), 1u);
  }
}

TEST_F(ServeTest, StatsOpReportsQueueDepthSessionsAndLatency) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());
  serve::Dispatcher dispatcher(service);

  const auto doc =
      parse_reply_line(dispatcher.dispatch(R"({"id": 1, "op": "stats"})"));
  ASSERT_TRUE(doc.find("ok")->boolean);
  const telemetry::JsonValue* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("queue_depth")->number, 0.0);
  EXPECT_GE(result->find("open_sessions")->number, 1.0);
  const telemetry::JsonValue* lat = result->find("latency_us");
  ASSERT_NE(lat, nullptr);
  for (const char* key : {"count", "p50", "p95", "p99", "max"}) {
    ASSERT_NE(lat->find(key), nullptr) << key;
    EXPECT_GE(lat->find(key)->number, 0.0) << key;
  }
  EXPECT_TRUE(service.close_session(sid).ok());
}

TEST_F(ServeTest, SlowRequestLogFiresAtThresholdZero) {
  auto engine = make_engine();
  TimingService service(*engine);
  serve::Dispatcher dispatcher(service, serve::DispatcherOptions{.slow_us = 0});

  auto capture = std::make_shared<util::CaptureLogSink>();
  std::shared_ptr<util::LogSink> previous = util::set_log_sink(capture);
  const util::LogLevel old_level = util::log_level();
  util::set_log_level(util::LogLevel::kWarn);

  (void)dispatcher.dispatch(R"({"id": 5, "op": "ping"})");

  util::set_log_level(old_level);
  util::set_log_sink(std::move(previous));

  bool found = false;
  for (const auto& [level, line] : capture->lines()) {
    if (line.find("slow request") != std::string::npos &&
        line.find("id=5") != std::string::npos &&
        line.find("op=ping") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

#if INSTA_TELEMETRY_ENABLED

/// The acceptance criterion of the tracing tentpole: a concurrent run's
/// Chrome trace contains a batch-leader span whose flow steps parent-link
/// at least two distinct request ids into it.
TEST_F(ServeTest, BatchLeaderTraceLinksMultipleRequestIds) {
  auto engine = make_engine();
  util::Rng rng(47);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);

  serve::ServiceOptions opt;
  // A long window keeps the first request's leader collecting while the
  // second joins the same batch (max_batch far above the queued count).
  opt.batch_window_us = 300'000;
  opt.max_batch = 64;
  opt.max_queue = 64;
  TimingService service(*engine, opt);

  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool was_enabled = tracer.enabled();
  tracer.clear();
  tracer.set_enabled(true);

  serve::SessionId a = -1, b = -1;
  ASSERT_TRUE(service.open_session(a).ok());
  ASSERT_TRUE(service.open_session(b).ok());
  serve::Error first_err;
  TimingService::WhatifReply first_reply;
  std::thread first([&] {
    first_err = service.whatif(a, scen, first_reply, /*request_id=*/101);
  });
  for (int spin = 0; spin < 2000; ++spin) {
    if (service.stats().whatif_requests >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().whatif_requests, 1u);
  TimingService::WhatifReply second_reply;
  const serve::Error second_err =
      service.whatif(b, scen, second_reply, /*request_id=*/102);
  first.join();
  ASSERT_TRUE(first_err.ok()) << first_err.message;
  ASSERT_TRUE(second_err.ok()) << second_err.message;
  EXPECT_EQ(first_reply.request_id, 101u);
  EXPECT_EQ(second_reply.request_id, 102u);
  // Both were served by one ScenarioBatch evaluation.
  EXPECT_EQ(service.stats().batches, 1u);

  const std::string trace = tracer.chrome_trace_json();
  tracer.set_enabled(was_enabled);

  telemetry::JsonValue doc;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(trace, doc, error)) << error;
  const telemetry::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_batch_span = false;
  std::set<std::uint64_t> step_ids;
  for (const telemetry::JsonValue& ev : events->array) {
    const telemetry::JsonValue* ph = ev.find("ph");
    const telemetry::JsonValue* name = ev.find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->string == "B" && name->string == "serve.batch") {
      saw_batch_span = true;
    }
    if (ph->string == "t" && name->string == "req") {
      step_ids.insert(static_cast<std::uint64_t>(ev.find("id")->number));
    }
  }
  EXPECT_TRUE(saw_batch_span);
  EXPECT_TRUE(step_ids.count(101));
  EXPECT_TRUE(step_ids.count(102));
  EXPECT_GE(step_ids.size(), 2u);

  // The flight recorder saw the full lifecycle of both requests.
  bool batched_101 = false, batched_102 = false;
  for (const telemetry::FlightEvent& ev :
       telemetry::FlightRecorder::global().recent()) {
    if (ev.type == telemetry::FlightEventType::kBatch) {
      if (ev.request_id == 101) batched_101 = true;
      if (ev.request_id == 102) batched_102 = true;
    }
  }
  EXPECT_TRUE(batched_101);
  EXPECT_TRUE(batched_102);
}

/// The shed-accounting fix: rejected replies still count into the
/// serve.whatif_latency_us histogram and leave a shed flight event.
TEST_F(ServeTest, ShedRepliesAreObservedInLatencyHistogramAndRecorder) {
  auto engine = make_engine();
  serve::ServiceOptions opt;
  opt.max_queue = 2;
  opt.max_batch = 2;
  TimingService service(*engine, opt);
  serve::SessionId sid = -1;
  ASSERT_TRUE(service.open_session(sid).ok());

  const auto latency_count = [] {
    const telemetry::MetricsSnapshot snap =
        telemetry::MetricsRegistry::global().snapshot();
    const auto it = snap.histograms.find("serve.whatif_latency_us");
    return it == snap.histograms.end() ? std::uint64_t{0} : it->second.count;
  };
  const std::uint64_t count_before = latency_count();

  // Three single-delta scenarios can never fit the 2-deep queue: a
  // structural shed, delivered synchronously.
  util::Rng rng(53);
  const auto scen = make_scenarios(rng, 3);
  ASSERT_EQ(scen.size(), 3u);
  TimingService::WhatifReply reply;
  ASSERT_EQ(service.whatif(sid, scen, reply, /*request_id=*/777).code,
            ErrorCode::kOverloaded);

  EXPECT_EQ(latency_count(), count_before + 1);
  bool shed_777 = false;
  for (const telemetry::FlightEvent& ev :
       telemetry::FlightRecorder::global().recent()) {
    if (ev.type == telemetry::FlightEventType::kShed && ev.request_id == 777) {
      shed_777 = true;
    }
  }
  EXPECT_TRUE(shed_777);
}

#endif  // INSTA_TELEMETRY_ENABLED

TEST_F(ServeTest, EngineGenerationCountsForwardPasses) {
  auto engine = make_engine();
  const std::uint64_t g0 = engine->generation();
  engine->run_forward();
  EXPECT_EQ(engine->generation(), g0 + 1);
  util::Rng rng(41);
  const auto scen = make_scenarios(rng, 1);
  ASSERT_EQ(scen.size(), 1u);
  engine->annotate(scen[0]);
  engine->run_forward_incremental();
  EXPECT_EQ(engine->generation(), g0 + 2);
}

}  // namespace
}  // namespace insta
