// telemetry_check — structural validator for the JSON artifacts the
// telemetry subsystem emits. CI runs it against the files produced by
// `insta_cli ... --metrics-json m.json --trace t.json --flightrec-json
// f.json` and `serve_client --load --out report.json`.
//
//   telemetry_check [--trace t.json] [--metrics m.json] [--whatif w.json]
//                   [--flightrec f.json] [--serve-report r.json]
//
// Exit 0 when every given file validates, 1 on any violation (each is
// printed), 2 on usage/IO errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/validate.hpp"

namespace {

constexpr const char* kUsage =
    "usage: telemetry_check [--trace t.json] [--metrics m.json] "
    "[--whatif w.json] [--flightrec f.json] [--serve-report r.json]\n";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return f.good() || f.eof();
}

int report(const char* kind, const std::string& path,
           const insta::telemetry::ValidationResult& r, std::size_t items,
           const char* noun = "events") {
  if (r.ok) {
    if (items > 0) {
      std::printf("%s %s: OK (%zu %s)\n", kind, path.c_str(), items, noun);
    } else {
      std::printf("%s %s: OK\n", kind, path.c_str());
    }
    return 0;
  }
  for (const std::string& e : r.errors) {
    std::fprintf(stderr, "%s %s: %s\n", kind, path.c_str(), e.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int rc = 0;
  bool did_anything = false;
  for (int i = 1; i < argc; ++i) {
    const bool is_trace = std::strcmp(argv[i], "--trace") == 0;
    const bool is_metrics = std::strcmp(argv[i], "--metrics") == 0;
    const bool is_whatif = std::strcmp(argv[i], "--whatif") == 0;
    const bool is_flightrec = std::strcmp(argv[i], "--flightrec") == 0;
    const bool is_report = std::strcmp(argv[i], "--serve-report") == 0;
    if ((!is_trace && !is_metrics && !is_whatif && !is_flightrec &&
         !is_report) ||
        i + 1 >= argc) {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    const std::string path = argv[++i];
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "telemetry_check: cannot read %s\n", path.c_str());
      return 2;
    }
    did_anything = true;
    if (is_trace) {
      std::size_t events = 0;
      const insta::telemetry::ValidationResult r =
          insta::telemetry::validate_chrome_trace(text, &events);
      rc |= report("trace", path, r, events);
    } else if (is_whatif) {
      std::size_t scenarios = 0;
      const insta::telemetry::ValidationResult r =
          insta::telemetry::validate_whatif_json(text, &scenarios);
      rc |= report("whatif", path, r, scenarios, "scenarios");
    } else if (is_flightrec) {
      std::size_t events = 0;
      const insta::telemetry::ValidationResult r =
          insta::telemetry::validate_flightrec_json(text, &events);
      rc |= report("flightrec", path, r, events);
    } else if (is_report) {
      rc |= report("serve-report", path,
                   insta::telemetry::validate_serve_report(text), 0);
    } else {
      rc |= report("metrics", path,
                   insta::telemetry::validate_metrics_json(text), 0);
    }
  }
  if (!did_anything) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  return rc;
}
