// serve_client — client, verifier, and load generator for `insta_cli serve`.
//
//   serve_client --connect <unix:/path | host:port> --script f.ndjson
//                                  send each request line, print each reply
//   serve_client --connect ... --verify 1 --in d.inet [--hold 1] [--topk K]
//                [--samples N] [--seed S]
//                                  load the same design in-process, replay
//                                  identical summary/endpoints/whatif
//                                  queries over the wire, and require
//                                  bit-exact agreement; exit 1 on mismatch
//   serve_client --connect ... --load 1 --clients N --requests M
//                [--deltas D] [--seed S] [--edit 1]
//                                  closed-loop mixed read/what-if load from
//                                  N concurrent connections (plus one edit
//                                  commit when --edit); prints queries/sec
//                                  and latency percentiles
//   serve_client --connect ... --commit N --in d.inet [--deltas D]
//                [--seed S]
//                                  send N edit commits (begin_edit /
//                                  annotate / commit) built from random
//                                  design changelists — the writer-side
//                                  driver for replication tests
//   serve_client --connect <A> --compare <B> [--in d.inet]
//                [--timeout-sec T] [--samples N] [--seed S]
//                                  wait until A and B report the same
//                                  generation, then replay identical
//                                  summary / endpoints / whatif requests to
//                                  both and require byte-identical result
//                                  payloads; exit 1 on any drift
//   serve_client --connect ... --shutdown 1
//                                  ask the server to shut down
//
// Modes combine left to right in one run: --script, then --verify, then
// --load, then --commit, then --compare, then --shutdown.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "io/design_io.hpp"
#include "ref/golden_sta.hpp"
#include "telemetry/json.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace insta;

/// Minimal --key value argument parser (the insta_cli convention).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      util::check(key.rfind("--", 0) == 0, "expected --option, got " + key);
      util::check(i + 1 < argc, "missing value for " + key);
      values_[key.substr(2)] = argv[++i];
    }
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// errno rendered through the single NOLINT'd strerror call site: the
/// static buffer is copied into the returned string immediately, and this
/// client is single-threaded.
std::string errno_text() {
  return std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
}

/// One blocking NDJSON connection: request() sends a line and returns the
/// matching reply line.
class Conn {
 public:
  explicit Conn(const std::string& endpoint) {
    if (endpoint.rfind("unix:", 0) == 0) {
      const std::string path = endpoint.substr(5);
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      util::check(fd_ >= 0, "socket: " + errno_text());
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      util::check(path.size() < sizeof(addr.sun_path),
                  "unix path too long: " + path);
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      util::check(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "connect " + endpoint + ": " + errno_text());
    } else {
      const std::size_t colon = endpoint.rfind(':');
      util::check(colon != std::string::npos,
                  "--connect must be unix:/path or host:port");
      const std::string host = endpoint.substr(0, colon);
      const int port = std::atoi(endpoint.c_str() + colon + 1);
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      util::check(fd_ >= 0, "socket: " + errno_text());
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      util::check(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  "cannot parse host address " + host);
      util::check(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "connect " + endpoint + ": " + errno_text());
    }
  }
  ~Conn() {
    if (fd_ >= 0) ::close(fd_);
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  std::string request(const std::string& line) {
    send_line(line);
    return recv_line();
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      util::check(n > 0 || errno == EINTR,
                  "send: " + errno_text());
      if (n > 0) off += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      util::check(n > 0, "server closed the connection");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Parses a reply line; fails hard on malformed JSON (the server always
/// sends well-formed replies, so this is a protocol bug, not user input).
telemetry::JsonValue parse_reply(const std::string& line) {
  telemetry::JsonValue doc;
  std::string error;
  util::check(telemetry::json_parse(line, doc, error),
              "malformed reply line: " + error + ": " + line);
  return doc;
}

bool reply_ok(const telemetry::JsonValue& reply) {
  const telemetry::JsonValue* ok = reply.find("ok");
  return ok != nullptr && ok->type == telemetry::JsonValue::Type::kBool &&
         ok->boolean;
}

std::string reply_error_code(const telemetry::JsonValue& reply) {
  if (const telemetry::JsonValue* err = reply.find("error");
      err != nullptr && err->is_object()) {
    if (const telemetry::JsonValue* code = err->find("code");
        code != nullptr && code->is_string()) {
      return code->string;
    }
  }
  return "";
}

/// Fetches reply.result.<path...>; throws on absence (verification mode
/// treats a missing field as a mismatch, not a soft skip).
const telemetry::JsonValue& result_field(const telemetry::JsonValue& reply,
                                         std::initializer_list<const char*>
                                             path) {
  const telemetry::JsonValue* v = reply.find("result");
  util::check(v != nullptr, "reply has no result");
  for (const char* key : path) {
    v = v->find(key);
    util::check(v != nullptr, std::string("reply result has no ") + key);
  }
  return *v;
}

std::string delta_json(const timing::ArcDelta& d) {
  return "{\"arc\": " + std::to_string(d.arc) +
         ", \"mu\": [" + telemetry::json_number(d.mu[0]) + ", " +
         telemetry::json_number(d.mu[1]) + "], \"sigma\": [" +
         telemetry::json_number(d.sigma[0]) + ", " +
         telemetry::json_number(d.sigma[1]) + "]}";
}

std::string scenarios_json(
    const std::vector<std::vector<timing::ArcDelta>>& scenarios) {
  std::string s = "[";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i != 0) s += ", ";
    s += "{\"deltas\": [";
    for (std::size_t j = 0; j < scenarios[i].size(); ++j) {
      if (j != 0) s += ", ";
      s += delta_json(scenarios[i][j]);
    }
    s += "]}";
  }
  return s + "]";
}

/// Exact double comparison against a wire number (json_number prints %.17g,
/// which round-trips; NaN/inf arrive as null and compare equal to any
/// non-finite local value).
bool wire_equals(const telemetry::JsonValue& v, double local) {
  if (v.type == telemetry::JsonValue::Type::kNull) {
    return !std::isfinite(local);
  }
  return v.is_number() && v.number == local;
}

int mismatch(const char* what, double local, const telemetry::JsonValue& wire) {
  std::fprintf(stderr, "verify: MISMATCH %s: local %.17g, wire %s\n", what,
               local, wire.is_number() ? "(number)" : "(non-number)");
  if (wire.is_number()) {
    std::fprintf(stderr, "  wire value %.17g\n", wire.number);
  }
  return 1;
}

/// Replays summary / endpoints / whatif against both the wire and a local
/// engine built from the same design file, requiring exact equality.
int run_verify(Conn& conn, const Args& args) {
  util::check(args.has("in"), "verify: --in is required");
  const bool hold = args.has("hold");

  io::LoadedDesign loaded = io::load_design_file(args.get("in", ""));
  timing::TimingGraph graph(*loaded.design, loaded.constraints.clock_root);
  timing::DelayCalculator calc(*loaded.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  ref::GoldenOptions gopt;
  gopt.enable_hold = hold;
  ref::GoldenSta sta(graph, loaded.constraints, delays, gopt);
  sta.update_full();
  core::EngineOptions eopt;
  eopt.top_k = static_cast<int>(args.get_num("topk", 32));
  eopt.enable_hold = hold;
  core::Engine engine(sta, eopt);
  engine.run_forward();

  int failures = 0;

  // summary: wire vs Engine::summary.
  {
    const auto reply =
        parse_reply(conn.request("{\"id\": 1, \"op\": \"summary\"}"));
    util::check(reply_ok(reply), "verify: summary failed on the wire");
    // The wire summary is the cross-corner merged view (== corner 0 on
    // single-corner engines), so compare against merged_summary.
    const core::SlackSummary s = engine.merged_summary(core::Mode::kSetup);
    if (!wire_equals(result_field(reply, {"setup", "tns"}), s.tns)) {
      failures += mismatch("summary.setup.tns", s.tns,
                           result_field(reply, {"setup", "tns"}));
    }
    if (!wire_equals(result_field(reply, {"setup", "wns"}), s.wns)) {
      failures += mismatch("summary.setup.wns", s.wns,
                           result_field(reply, {"setup", "wns"}));
    }
    if (hold) {
      const core::SlackSummary h = engine.merged_summary(core::Mode::kHold);
      if (!wire_equals(result_field(reply, {"hold", "tns"}), h.tns)) {
        failures += mismatch("summary.hold.tns", h.tns,
                             result_field(reply, {"hold", "tns"}));
      }
    }
  }

  // endpoints: every slack of the full range, exact float compare.
  {
    const std::size_t num_eps = graph.endpoints().size();
    std::string ids = "[";
    for (std::size_t e = 0; e < num_eps; ++e) {
      if (e != 0) ids += ", ";
      ids += std::to_string(e);
    }
    ids += "]";
    const auto reply = parse_reply(conn.request(
        "{\"id\": 2, \"op\": \"endpoints\", \"ids\": " + ids + "}"));
    util::check(reply_ok(reply), "verify: endpoints failed on the wire");
    const telemetry::JsonValue& eps = result_field(reply, {"endpoints"});
    util::check(eps.is_array() && eps.array.size() == num_eps,
                "verify: endpoints reply has wrong cardinality");
    for (std::size_t e = 0; e < num_eps; ++e) {
      const double local = static_cast<double>(
          engine.endpoint_slack(static_cast<timing::EndpointId>(e)));
      const telemetry::JsonValue* slack = eps.array[e].find("slack");
      util::check(slack != nullptr, "verify: endpoint entry has no slack");
      if (!wire_equals(*slack, local)) {
        failures += mismatch(
            ("endpoint " + std::to_string(e) + " slack").c_str(), local,
            *slack);
      }
    }
  }

  // whatif: identical scenarios through ScenarioBatch locally and through
  // the wire; setup/hold summaries must agree exactly.
  {
    const int samples = std::max(1, static_cast<int>(args.get_num("samples",
                                                                  8)));
    util::Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 7)));
    const std::vector<gen::Resize> changes =
        gen::random_changelist(*loaded.design, graph, rng, samples);
    std::vector<std::vector<timing::ArcDelta>> scenarios;
    for (const gen::Resize& rz : changes) {
      scenarios.push_back(calc.estimate_eco(rz.cell, rz.new_libcell));
    }

    core::ScenarioBatch batch(engine);
    const std::vector<core::ScenarioResult> local = batch.evaluate(scenarios);

    const auto reply = parse_reply(conn.request(
        "{\"id\": 3, \"op\": \"whatif\", \"scenarios\": " +
        scenarios_json(scenarios) + "}"));
    util::check(reply_ok(reply), "verify: whatif failed on the wire");
    const telemetry::JsonValue& results = result_field(reply, {"results"});
    util::check(results.is_array() && results.array.size() == local.size(),
                "verify: whatif reply has wrong cardinality");
    for (std::size_t i = 0; i < local.size(); ++i) {
      const telemetry::JsonValue& r = results.array[i];
      const telemetry::JsonValue* setup = r.find("setup");
      util::check(setup != nullptr, "verify: whatif result has no setup");
      const std::string tag = "whatif[" + std::to_string(i) + "]";
      const telemetry::JsonValue* tns = setup->find("tns");
      const telemetry::JsonValue* wns = setup->find("wns");
      util::check(tns != nullptr && wns != nullptr,
                  "verify: whatif summary is incomplete");
      if (!wire_equals(*tns, local[i].setup.tns)) {
        failures += mismatch((tag + ".setup.tns").c_str(),
                             local[i].setup.tns, *tns);
      }
      if (!wire_equals(*wns, local[i].setup.wns)) {
        failures += mismatch((tag + ".setup.wns").c_str(),
                             local[i].setup.wns, *wns);
      }
      if (hold) {
        const telemetry::JsonValue* hs = r.find("hold");
        util::check(hs != nullptr, "verify: whatif result has no hold");
        const telemetry::JsonValue* htns = hs->find("tns");
        util::check(htns != nullptr, "verify: hold summary is incomplete");
        if (!wire_equals(*htns, local[i].hold.tns)) {
          failures += mismatch((tag + ".hold.tns").c_str(),
                               local[i].hold.tns, *htns);
        }
      }
    }
  }

  if (failures == 0) {
    std::printf("verify: wire replies are bit-identical to in-process "
                "evaluation\n");
    return 0;
  }
  std::fprintf(stderr, "verify: %d mismatches\n", failures);
  return 1;
}

/// Latency percentile over a sorted sample set.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Closed-loop mixed workload from one client thread. Records per-request
/// latency (seconds); counts shed replies separately from failures.
struct LoadResult {
  std::vector<double> latencies;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;      ///< "overloaded" replies (admission control)
  std::uint64_t rejected = 0;  ///< "bad-request" replies (e.g. a random
                               ///< delta landing on a clock-network arc)
  std::uint64_t failed = 0;    ///< anything else — a real protocol failure
};

void run_load_client(const std::string& endpoint, int requests, int deltas,
                     std::uint64_t seed, std::int64_t num_arcs,
                     LoadResult& out) {
  Conn conn(endpoint);
  util::Rng rng(seed);
  for (int i = 0; i < requests; ++i) {
    std::string req;
    const std::uint64_t pick = rng() % 4;
    if (pick == 0) {
      req = "{\"id\": " + std::to_string(i) + ", \"op\": \"summary\"}";
    } else if (pick == 1) {
      req = "{\"id\": " + std::to_string(i) +
            ", \"op\": \"endpoints\", \"worst\": 8}";
    } else {
      std::string ds = "[";
      for (int j = 0; j < deltas; ++j) {
        if (j != 0) ds += ", ";
        const auto arc = static_cast<std::int64_t>(
            rng() % static_cast<std::uint64_t>(num_arcs));
        const double mu = 0.5 + 3.0 * rng.uniform();
        ds += "{\"arc\": " + std::to_string(arc) + ", \"mu\": [" +
              telemetry::json_number(mu) + ", " + telemetry::json_number(mu) +
              "]}";
      }
      ds += "]";
      req = "{\"id\": " + std::to_string(i) +
            ", \"op\": \"whatif\", \"scenarios\": [{\"deltas\": " + ds +
            "}]}";
    }
    util::Stopwatch sw;
    const std::string line = conn.request(req);
    out.latencies.push_back(sw.elapsed_sec());
    const auto reply = parse_reply(line);
    if (reply_ok(reply)) {
      ++out.ok;
    } else if (reply_error_code(reply) == "overloaded") {
      ++out.shed;
    } else if (reply_error_code(reply) == "bad-request") {
      ++out.rejected;
    } else {
      ++out.failed;
    }
  }
}

int run_load(const Args& args, const std::string& endpoint) {
  const int clients = std::max(1, static_cast<int>(args.get_num("clients",
                                                                4)));
  const int requests = std::max(1, static_cast<int>(args.get_num("requests",
                                                                 50)));
  const int deltas = std::max(1, static_cast<int>(args.get_num("deltas", 4)));
  const auto seed = static_cast<std::uint64_t>(args.get_num("seed", 11));

  std::int64_t num_arcs = 0;
  {
    Conn probe(endpoint);
    const auto reply =
        parse_reply(probe.request("{\"id\": 0, \"op\": \"info\"}"));
    util::check(reply_ok(reply), "load: info op failed");
    num_arcs = static_cast<std::int64_t>(
        result_field(reply, {"arcs"}).number);
    util::check(num_arcs > 0, "load: server reports no arcs");
  }

  std::vector<LoadResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  util::Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      run_load_client(endpoint, requests, deltas, seed + 1000u * c, num_arcs,
                      results[static_cast<std::size_t>(c)]);
    });
  }
  // One mid-run edit commit (small annotate) exercises snapshot
  // republication while readers and what-ifs are in flight.
  std::uint64_t commits = 0;
  if (args.has("edit")) {
    Conn edit(endpoint);
    util::check(reply_ok(parse_reply(edit.request(
                    "{\"id\": 90, \"op\": \"begin_edit\"}"))),
                "load: begin_edit failed");
    util::Rng rng(seed + 77);
    const auto arc = static_cast<std::int64_t>(
        rng() % static_cast<std::uint64_t>(num_arcs));
    util::check(
        reply_ok(parse_reply(edit.request(
            "{\"id\": 91, \"op\": \"annotate\", \"deltas\": [{\"arc\": " +
            std::to_string(arc) + ", \"mu\": [1.25, 1.25]}]}"))),
        "load: annotate failed");
    util::check(reply_ok(parse_reply(
                    edit.request("{\"id\": 92, \"op\": \"commit\"}"))),
                "load: commit failed");
    ++commits;
  }
  for (std::thread& t : threads) t.join();
  const double wall_sec = wall.elapsed_sec();

  std::vector<double> all;
  std::uint64_t ok = 0, shed = 0, rejected = 0, failed = 0;
  for (const LoadResult& r : results) {
    all.insert(all.end(), r.latencies.begin(), r.latencies.end());
    ok += r.ok;
    shed += r.shed;
    rejected += r.rejected;
    failed += r.failed;
  }
  std::sort(all.begin(), all.end());
  std::printf("load: %d clients x %d requests in %.2f s: %.0f q/s, "
              "%llu ok, %llu shed, %llu rejected, %llu failed, "
              "%llu commits\n",
              clients, requests, wall_sec,
              static_cast<double>(all.size()) / wall_sec,
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(commits));
  std::printf("load: latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, "
              "max %.2f ms\n",
              percentile(all, 0.50) * 1e3, percentile(all, 0.95) * 1e3,
              percentile(all, 0.99) * 1e3, all.empty() ? 0.0 : all.back() *
                                                                   1e3);
  if (args.has("out")) {
    // Machine-readable run report, in the shape
    // telemetry::validate_serve_report checks (telemetry_check
    // --serve-report).
    const std::string path = args.get("out", "");
    std::ofstream f(path, std::ios::binary);
    util::check(static_cast<bool>(f), "load: cannot write " + path);
    f << "{\n  \"clients\": " << clients
      << ",\n  \"requests_per_client\": " << requests << ",\n  \"ok\": " << ok
      << ",\n  \"shed\": " << shed << ",\n  \"rejected\": " << rejected
      << ",\n  \"failed\": " << failed << ",\n  \"commits\": " << commits
      << ",\n  \"wall_sec\": " << telemetry::json_number(wall_sec)
      << ",\n  \"qps\": "
      << telemetry::json_number(static_cast<double>(all.size()) / wall_sec)
      << ",\n  \"latency_ms\": {\"p50\": "
      << telemetry::json_number(percentile(all, 0.50) * 1e3) << ", \"p95\": "
      << telemetry::json_number(percentile(all, 0.95) * 1e3) << ", \"p99\": "
      << telemetry::json_number(percentile(all, 0.99) * 1e3) << ", \"max\": "
      << telemetry::json_number(all.empty() ? 0.0 : all.back() * 1e3)
      << "}\n}\n";
    util::check(f.good(), "load: short write to " + path);
    std::printf("load: wrote report to %s\n", path.c_str());
  }
  return failed == 0 ? 0 : 1;
}

/// Sends N edit commits built from random design changelists — the
/// writer-side driver the replication smoke test uses to advance the
/// generation chain.
int run_commit(Conn& conn, const Args& args) {
  util::check(args.has("in"), "commit: --in is required");
  const int commits = std::max(1, static_cast<int>(args.get_num("commit", 1)));
  const int resizes = std::max(1, static_cast<int>(args.get_num("deltas", 4)));
  io::LoadedDesign loaded = io::load_design_file(args.get("in", ""));
  timing::TimingGraph graph(*loaded.design, loaded.constraints.clock_root);
  timing::DelayCalculator calc(*loaded.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  util::Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 19)));

  for (int i = 0; i < commits; ++i) {
    util::check(reply_ok(parse_reply(conn.request(
                    "{\"id\": 70, \"op\": \"begin_edit\"}"))),
                "commit: begin_edit failed");
    const std::vector<gen::Resize> changes =
        gen::random_changelist(*loaded.design, graph, rng, resizes);
    for (const gen::Resize& rz : changes) {
      const std::vector<timing::ArcDelta> deltas =
          calc.estimate_eco(rz.cell, rz.new_libcell);
      if (deltas.empty()) continue;
      std::string ds = "[";
      for (std::size_t j = 0; j < deltas.size(); ++j) {
        if (j != 0) ds += ", ";
        ds += delta_json(deltas[j]);
      }
      ds += "]";
      util::check(
          reply_ok(parse_reply(conn.request(
              "{\"id\": 71, \"op\": \"annotate\", \"deltas\": " + ds + "}"))),
          "commit: annotate failed");
    }
    const auto reply =
        parse_reply(conn.request("{\"id\": 72, \"op\": \"commit\"}"));
    util::check(reply_ok(reply), "commit: commit failed");
    std::printf("commit %d/%d: version %.0f\n", i + 1, commits,
                result_field(reply, {"version"}).number);
  }
  return 0;
}

/// The reply's result payload as raw bytes, with the per-server
/// "server_us" timing object (the one legitimately deployment-variant
/// member) stripped: the unit of the replication bit-identity gate.
std::string result_bytes(const std::string& reply, const char* what) {
  const std::size_t lo = reply.find("\"result\": ");
  util::check(lo != std::string::npos,
              std::string("compare: ") + what + " reply has no result");
  const std::size_t hi = reply.rfind(", \"server_us\": ");
  util::check(hi != std::string::npos && hi > lo,
              std::string("compare: ") + what + " reply has no server_us");
  return reply.substr(lo, hi - lo);
}

/// Waits until two servers report the same generation, then requires
/// byte-identical result payloads for identical requests on both.
int run_compare(const Args& args, const std::string& a_ep) {
  const std::string b_ep = args.get("compare", "");
  Conn a(a_ep);
  Conn b(b_ep);
  const double timeout_sec = args.get_num("timeout-sec", 30);

  // Convergence gate: a replica is allowed to lag, not to drift, so poll
  // until both sides sit at one generation before comparing bytes.
  util::Stopwatch sw;
  double gen_a = -1.0;
  double gen_b = -2.0;
  for (;;) {
    const auto ra = parse_reply(a.request("{\"id\": 1, \"op\": \"stats\"}"));
    const auto rb = parse_reply(b.request("{\"id\": 1, \"op\": \"stats\"}"));
    util::check(reply_ok(ra) && reply_ok(rb), "compare: stats failed");
    gen_a = result_field(ra, {"generation"}).number;
    gen_b = result_field(rb, {"generation"}).number;
    if (gen_a == gen_b) break;
    util::check(sw.elapsed_sec() < timeout_sec,
                "compare: servers did not converge within " +
                    std::to_string(timeout_sec) + " s (generations " +
                    std::to_string(gen_a) + " vs " + std::to_string(gen_b) +
                    ")");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("compare: both servers at generation %.0f\n", gen_a);

  int failures = 0;
  const auto compare_req = [&](const std::string& req, const std::string&
                                                           what) {
    const std::string la = a.request(req);
    const std::string lb = b.request(req);
    util::check(reply_ok(parse_reply(la)) && reply_ok(parse_reply(lb)),
                "compare: " + what + " failed on the wire");
    if (result_bytes(la, what.c_str()) != result_bytes(lb, what.c_str())) {
      std::fprintf(stderr, "compare: MISMATCH %s\n  A: %s\n  B: %s\n",
                   what.c_str(), la.c_str(), lb.c_str());
      ++failures;
    }
  };

  compare_req("{\"id\": 2, \"op\": \"summary\"}", "summary");
  compare_req("{\"id\": 3, \"op\": \"endpoints\", \"worst\": 64}",
              "endpoints");
  // Per-corner views, from the corner list both sides advertise.
  {
    const auto info = parse_reply(a.request("{\"id\": 4, \"op\": \"info\"}"));
    util::check(reply_ok(info), "compare: info failed");
    const telemetry::JsonValue& corners = result_field(info, {"corners"});
    for (std::size_t c = 0; c < corners.array.size(); ++c) {
      compare_req("{\"id\": 5, \"op\": \"summary\", \"corner\": " +
                      std::to_string(c) + "}",
                  "summary[corner " + std::to_string(c) + "]");
    }
  }
  // What-if equivalence needs real deltas, which need the design file.
  if (args.has("in")) {
    const int samples =
        std::max(1, static_cast<int>(args.get_num("samples", 4)));
    io::LoadedDesign loaded = io::load_design_file(args.get("in", ""));
    timing::TimingGraph graph(*loaded.design, loaded.constraints.clock_root);
    timing::DelayCalculator calc(*loaded.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    util::Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 23)));
    const std::vector<gen::Resize> changes =
        gen::random_changelist(*loaded.design, graph, rng, samples);
    std::vector<std::vector<timing::ArcDelta>> scenarios;
    for (const gen::Resize& rz : changes) {
      scenarios.push_back(calc.estimate_eco(rz.cell, rz.new_libcell));
    }
    compare_req("{\"id\": 6, \"op\": \"whatif\", \"scenarios\": " +
                    scenarios_json(scenarios) + "}",
                "whatif");
  }

  if (failures == 0) {
    std::printf("compare: result payloads are byte-identical\n");
    return 0;
  }
  std::fprintf(stderr, "compare: %d mismatches\n", failures);
  return 1;
}

int run_script(Conn& conn, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  util::check(static_cast<bool>(f), "script: cannot read " + path);
  std::string line;
  int rc = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const std::string reply = conn.request(line);
    std::printf("%s\n", reply.c_str());
    if (!reply_ok(parse_reply(reply))) rc = 1;
  }
  return rc;
}

void usage() {
  std::fprintf(stderr,
               "usage: serve_client --connect <unix:/path | host:port>\n"
               "  [--script f.ndjson]                 replay request lines\n"
               "  [--verify 1 --in d.inet [--hold 1] [--topk K]\n"
               "   [--samples N] [--seed S]]          exact wire-vs-local "
               "check\n"
               "  [--load 1 [--clients N] [--requests M] [--deltas D]\n"
               "   [--seed S] [--edit 1]\n"
               "   [--out report.json]]               closed-loop load; --out\n"
               "                                      writes a JSON run "
               "report\n"
               "  [--commit N --in d.inet [--deltas D] [--seed S]]\n"
               "                                      send N random edit "
               "commits\n"
               "  [--compare <unix:/path | host:port> [--in d.inet]\n"
               "   [--timeout-sec T] [--samples N] [--seed S]]\n"
               "                                      byte-compare two "
               "servers\n"
               "  [--shutdown 1]                      stop the server\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv, 1);
    if (!args.has("connect")) {
      usage();
      return 2;
    }
    const std::string endpoint = args.get("connect", "");
    int rc = 0;
    if (args.has("script")) {
      Conn conn(endpoint);
      rc = std::max(rc, run_script(conn, args.get("script", "")));
    }
    if (args.has("verify")) {
      Conn conn(endpoint);
      rc = std::max(rc, run_verify(conn, args));
    }
    if (args.has("load")) {
      rc = std::max(rc, run_load(args, endpoint));
    }
    if (args.has("commit")) {
      Conn conn(endpoint);
      rc = std::max(rc, run_commit(conn, args));
    }
    if (args.has("compare")) {
      rc = std::max(rc, run_compare(args, endpoint));
    }
    if (args.has("shutdown")) {
      Conn conn(endpoint);
      const auto reply = parse_reply(
          conn.request("{\"id\": 99, \"op\": \"shutdown\"}"));
      util::check(reply_ok(reply), "shutdown op failed");
      std::printf("server shutting down\n");
    }
    if (!args.has("script") && !args.has("verify") && !args.has("load") &&
        !args.has("commit") && !args.has("compare") && !args.has("shutdown")) {
      usage();
      return 2;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
