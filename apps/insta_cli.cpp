// insta_cli — command-line front end to the library.
//
//   insta_cli generate --out d.inet [--gates N] [--ffs N] [--seed S]
//                      [--violate F]        generate + tune + save a design
//   insta_cli report --in d.inet [--paths N] [--hold] [--topk K]
//                    [--corner list]         golden + INSTA timing summary
//   insta_cli size --in d.inet --out o.inet [--method insta|baseline]
//                                            run a sizer and save the result
//   insta_cli buffer --in d.inet --out o.inet
//                                            run INSTA-Buffer and save
//   insta_cli lint --in d.inet [--max-reports N] [--strict 1] [--audit 1]
//                                            static design/graph checks;
//                                            exit 1 on errors (--strict:
//                                            also on warnings; --audit: run
//                                            the engines and audit Top-K
//                                            invariants post-propagation)
//   insta_cli profile [--preset tiny|block-1..5|fig7] [--iters N]
//                     [--topk K] [--resizes N] [--corner list]
//                                            timed end-to-end run with a
//                                            per-phase breakdown table
//   insta_cli whatif --in d.inet [--scenarios s.json | --sample N]
//                    [--seed S] [--hold 1] [--topk K] [--corner list]
//                    [--out results.json]
//                                            batch-evaluate what-if delta
//                                            scenarios without mutating the
//                                            engine; prints one summary row
//                                            per scenario. The scenarios
//                                            file is {"scenarios": [{"label":
//                                            ..., "deltas": [{"arc": N,
//                                            "mu": [r, f], "sigma": [r, f]}
//                                            ...]} ...]} (or a top-level
//                                            array); without --scenarios,
//                                            --sample N random resizes are
//                                            evaluated instead
//   insta_cli serve --in d.inet [--socket /path.sock | --host H --port P]
//                   [--hold 1] [--topk K] [--corner list]
//                   [--batch-window-us U]
//                   [--max-batch N] [--max-queue N] [--max-inflight N]
//                   [--max-sessions N] [--max-connections N] [--endpoints 1]
//                   [--max-seconds S] [--slow-us U]
//                   [--cache-entries N] [--delta-log N]
//                   [--replica-of <unix:/path | host:port>] [--poll-ms M]
//                   [--bootstrap-seconds S]
//                                            run the timing-query server
//                                            (newline-delimited JSON over a
//                                            Unix or TCP socket) until a
//                                            client sends {"op":"shutdown"}
//                                            or --max-seconds elapses;
//                                            --slow-us logs every request
//                                            slower than U microseconds
//                                            with its server_us breakdown.
//                                            --replica-of makes this server
//                                            a read-only replica converging
//                                            onto the given writer (same
//                                            --in design) via delta
//                                            replication; --poll-ms sets the
//                                            catch-up cadence
//   insta_cli top --connect <unix:/path | host:port> [--interval-sec S]
//                 [--iters N]
//                                            live serve dashboard: polls the
//                                            stats op and prints q/s, shed,
//                                            queue depth, open sessions and
//                                            what-if latency percentiles
//                                            once per interval (N polls,
//                                            0 = until the server goes away)
//   insta_cli selftest                       end-to-end smoke test (tmpfile)
//
// Corners: report/profile/whatif/serve accept --corner with a
// comma-separated analysis-corner list, each entry
// name[:delay_scale[:sigma_scale]] (e.g.
// --corner typ,fast:0.9:0.95,slow:1.12:1.05); all corners propagate in one
// engine and reports show the cross-corner merged view plus per-corner
// breakdowns. Without the flag the engine runs its single default corner.
//
// Global options (every subcommand):
//   --metrics-json <path>   write the telemetry metrics snapshot on exit
//   --trace <path>          record and write a Chrome trace_event JSON
//   --flightrec-json <path> write the flight-recorder event dump on exit
//   --log-level <level>     debug|info|warn|error|off (overrides
//                           INSTA_LOG_LEVEL)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/engine_audit.hpp"
#include "util/mutex.hpp"
#include "analysis/linter.hpp"
#include "analysis/rules.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "gen/logic_block.hpp"
#include "gen/presets.hpp"
#include "gen/tune.hpp"
#include "io/design_io.hpp"
#include "ref/golden_sta.hpp"
#include "ref/report.hpp"
#include "replica/replica.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "size/baseline_sizer.hpp"
#include "size/insta_buffer.hpp"
#include "size/insta_size.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/validate.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace insta;

/// Minimal --key value argument parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      util::check(key.rfind("--", 0) == 0, "expected --option, got " + key);
      util::check(i + 1 < argc, "missing value for " + key);
      values_[key.substr(2)] = argv[++i];
    }
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Parses the --corner flag — a comma-separated corner list, each entry
/// "name[:delay_scale[:sigma_scale]]" (e.g. "typ,fast:0.9:0.95,slow:1.12")
/// — into engine corner specs. Omitted scales default to 1.0. The list
/// crosses the CLI trust boundary, so it runs through the structured
/// analysis corner rules and every diagnostic is reported before failing.
/// An absent flag returns the empty list (the engine's implicit single
/// default corner).
std::vector<core::CornerSpec> parse_corner_flag(const Args& args,
                                                const char* cmd) {
  std::vector<core::CornerSpec> specs;
  if (!args.has("corner")) return specs;
  const std::string text = args.get("corner", "");
  std::size_t start = 0;
  for (;;) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(start, end - start);
    util::check(!entry.empty(),
                std::string(cmd) + ": empty entry in --corner list");
    core::CornerSpec spec;
    const std::size_t c1 = entry.find(':');
    spec.name = entry.substr(0, c1);
    try {
      if (c1 != std::string::npos) {
        const std::size_t c2 = entry.find(':', c1 + 1);
        spec.delay_scale = std::stof(entry.substr(c1 + 1, c2 - c1 - 1));
        if (c2 != std::string::npos) {
          spec.sigma_scale = std::stof(entry.substr(c2 + 1));
        }
      }
    } catch (const std::exception&) {
      throw util::CheckError(std::string(cmd) +
                             ": cannot parse --corner entry \"" + entry +
                             "\" (want name[:delay_scale[:sigma_scale]])");
    }
    specs.push_back(std::move(spec));
    if (end == text.size()) break;
    start = end + 1;
  }
  std::vector<analysis::CornerSetup> setup;
  setup.reserve(specs.size());
  for (const core::CornerSpec& s : specs) {
    setup.push_back({s.name, s.delay_scale, s.sigma_scale});
  }
  const analysis::LintReport report = analysis::check_corner_setup(setup);
  if (!report.empty()) std::printf("%s", report.str().c_str());
  util::check(!report.has_errors(),
              std::string(cmd) + ": invalid --corner list");
  return specs;
}

/// Prints one per-corner summary line per corner (report/whatif verbose
/// views; skipped on single-corner engines, whose merged view says it all).
void print_corner_summaries(const core::Engine& engine) {
  if (engine.num_corners() <= 1) return;
  for (std::size_t c = 0; c < engine.num_corners(); ++c) {
    const core::CornerSpec& spec = engine.corners()[c];
    const core::SlackSummary cs = engine.summary(
        core::Mode::kSetup, static_cast<core::CornerId>(c));
    std::printf("  corner %s (delay x%.3f, sigma x%.3f): TNS %.2f ps, "
                "WNS %.2f ps, %d violations\n",
                spec.name.c_str(), static_cast<double>(spec.delay_scale),
                static_cast<double>(spec.sigma_scale), cs.tns, cs.wns,
                cs.violations);
  }
}

/// Applies the global flags every subcommand honours: --log-level (falls
/// back to INSTA_LOG_LEVEL) and --trace (arms the tracer before the
/// subcommand runs; the file is written by finish_telemetry on exit).
void apply_global_flags(const Args& args) {
  if (args.has("log-level")) {
    const std::string text = args.get("log-level", "");
    const auto level = util::parse_log_level(text);
    util::check(level.has_value(), "unknown --log-level " + text);
    util::set_log_level(*level);
  } else {
    util::init_log_level_from_env();
  }
  if (args.has("trace")) telemetry::Tracer::global().set_enabled(true);
}

/// Writes the telemetry artifacts requested via the global flags. Pool
/// gauges are published first so the snapshot includes utilization.
void finish_telemetry(const Args& args) {
  if (args.has("metrics-json")) {
    util::ThreadPool::global().publish_metrics();
    const std::string path = args.get("metrics-json", "");
    std::ofstream f(path, std::ios::binary);
    util::check(static_cast<bool>(f), "cannot write " + path);
    f << telemetry::MetricsRegistry::global().snapshot().to_json();
    util::check(f.good(), "short write to " + path);
    std::printf("wrote metrics snapshot to %s\n", path.c_str());
  }
  if (args.has("trace")) {
    const std::string path = args.get("trace", "");
    util::check(telemetry::Tracer::global().write_chrome_trace(path),
                "cannot write " + path);
    std::printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                path.c_str());
  }
  if (args.has("flightrec-json")) {
    const std::string path = args.get("flightrec-json", "");
    std::ofstream f(path, std::ios::binary);
    util::check(static_cast<bool>(f), "cannot write " + path);
    f << telemetry::FlightRecorder::global().to_json();
    util::check(f.good(), "short write to " + path);
    std::printf("wrote flight-recorder dump to %s\n", path.c_str());
  }
}

/// Loads a design and prepares graph/delays/golden (hold optional).
struct World {
  io::LoadedDesign loaded;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;

  explicit World(const std::string& path, bool hold = false) {
    loaded = io::load_design_file(path);
    graph = std::make_unique<timing::TimingGraph>(
        *loaded.design, loaded.constraints.clock_root);
    calc = std::make_unique<timing::DelayCalculator>(*loaded.design, *graph);
    calc->compute_all(delays);
    ref::GoldenOptions opt;
    opt.enable_hold = hold;
    sta = std::make_unique<ref::GoldenSta>(*graph, loaded.constraints, delays,
                                           opt);
    sta->update_full();
  }
};

int cmd_generate(const Args& args) {
  util::check(args.has("out"), "generate: --out is required");
  gen::LogicBlockSpec spec;
  spec.name = args.get("name", "cli_design");
  spec.seed = static_cast<std::uint64_t>(args.get_num("seed", 1));
  spec.num_gates = static_cast<int>(args.get_num("gates", 5000));
  spec.num_ffs = static_cast<int>(args.get_num("ffs", 400));
  spec.depth = static_cast<int>(args.get_num("depth", 20));
  gen::GeneratedDesign gd = gen::build_logic_block(spec);
  timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
  timing::DelayCalculator calc(*gd.design, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  gen::tune_clock_period(graph, gd.constraints, delays,
                         args.get_num("violate", 0.1));
  io::save_design_file(*gd.design, gd.constraints, args.get("out", ""));
  std::printf("wrote %s: %zu cells, %zu nets, period %.1f ps\n",
              args.get("out", "").c_str(), gd.design->num_cells(),
              gd.design->num_nets(), gd.constraints.clock_period);
  return 0;
}

int cmd_report(const Args& args) {
  util::check(args.has("in"), "report: --in is required");
  const bool hold = args.has("hold");
  World w(args.get("in", ""), hold);
  std::printf("design: %zu cells, %zu pins, %zu endpoints, period %.1f ps\n",
              w.loaded.design->num_cells(), w.loaded.design->num_pins(),
              w.graph->endpoints().size(), w.loaded.constraints.clock_period);
  std::printf("reference: WNS %.2f ps, TNS %.2f ps, %d setup violations\n",
              w.sta->wns(), w.sta->tns(), w.sta->num_violations());
  if (hold) {
    std::printf("hold:      WHS %.2f ps, THS %.2f ps, %d hold violations\n",
                w.sta->whs(), w.sta->ths(), w.sta->num_hold_violations());
  }

  core::EngineOptions eopt;
  eopt.top_k = static_cast<int>(args.get_num("topk", 32));
  eopt.enable_hold = hold;
  eopt.corners = parse_corner_flag(args, "report");
  core::Engine engine(*w.sta, eopt);
  engine.run_forward();
  std::vector<double> a, b;
  for (std::size_t e = 0; e < w.graph->endpoints().size(); ++e) {
    const double g = w.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const float m = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (std::isfinite(g) && std::isfinite(m)) {
      a.push_back(g);
      b.push_back(static_cast<double>(m));
    }
  }
  const core::SlackSummary s = engine.merged_summary(core::Mode::kSetup);
  std::printf("INSTA (TopK=%d): TNS %.2f ps, correlation %s\n", eopt.top_k,
              s.tns, util::format_correlation(util::pearson(a, b)).c_str());
  print_corner_summaries(engine);

  const int num_paths = static_cast<int>(args.get_num("paths", 1));
  for (const auto& path : ref::worst_paths(*w.sta, num_paths)) {
    std::printf("\n%s", ref::format_path(*w.sta, path).c_str());
  }
  return 0;
}

int cmd_size(const Args& args) {
  util::check(args.has("in") && args.has("out"),
              "size: --in and --out are required");
  World w(args.get("in", ""));
  const std::string method = args.get("method", "insta");
  size::SizerResult r;
  if (method == "insta") {
    size::InstaSizer sizer(*w.loaded.design, *w.graph, *w.calc, *w.sta, {});
    r = sizer.run();
  } else if (method == "baseline") {
    size::BaselineSizer sizer(*w.loaded.design, *w.graph, *w.calc, *w.sta, {});
    r = sizer.run();
  } else {
    throw util::CheckError("size: unknown --method " + method);
  }
  std::printf("%s sizing: TNS %.2f -> %.2f ps, WNS %.2f -> %.2f ps, "
              "%d cells sized, %.2f s\n",
              method.c_str(), r.initial_tns, r.final_tns, r.initial_wns,
              r.final_wns, r.cells_sized, r.runtime_sec);
  io::save_design_file(*w.loaded.design, w.loaded.constraints,
                       args.get("out", ""));
  return 0;
}

int cmd_buffer(const Args& args) {
  util::check(args.has("in") && args.has("out"),
              "buffer: --in and --out are required");
  World w(args.get("in", ""));
  size::InstaBuffer buffering(*w.loaded.design, w.loaded.constraints, {});
  const size::BufferResult r = buffering.run();
  std::printf("INSTA-Buffer: TNS %.2f -> %.2f ps, %d buffers, %.2f s\n",
              r.initial_tns, r.final_tns, r.buffers_inserted, r.runtime_sec);
  io::save_design_file(*w.loaded.design, w.loaded.constraints,
                       args.get("out", ""));
  return 0;
}

int cmd_lint(const Args& args) {
  util::check(args.has("in"), "lint: --in is required");
  io::LoadedDesign loaded;
  try {
    // Skip the loader's validate(): it throws on the *first* structural
    // violation, while the linter reports them all as diagnostics.
    loaded = io::load_design_file(args.get("in", ""), /*validate=*/false);
  } catch (const util::CheckError& e) {
    analysis::LintReport report;
    analysis::Diagnostic d;
    d.rule = "design-load";
    d.severity = analysis::Severity::kError;
    d.message = std::string("design failed to load: ") + e.what();
    report.add(std::move(d));
    std::printf("%s", report.str().c_str());
    return 1;
  }

  analysis::LintOptions opt;
  opt.max_reports_per_rule =
      static_cast<std::size_t>(args.get_num("max-reports", 20));
  analysis::Linter linter(*loaded.design);
  linter.with_constraints(loaded.constraints).with_options(opt);

  // Design-stage rules run first. Graph construction and the delay
  // calculator assume a structurally valid design (the loader's validate()
  // was skipped above), so they only run once the design-stage report is
  // error-free; a CheckError during construction still becomes a diagnostic.
  analysis::LintReport report = linter.run();

  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  if (!report.has_errors()) {
    try {
      graph = std::make_unique<timing::TimingGraph>(
          *loaded.design, loaded.constraints.clock_roots());
      calc = std::make_unique<timing::DelayCalculator>(*loaded.design, *graph);
      calc->compute_all(delays);
      linter.with_graph(*graph).with_delays(delays);
      report = linter.run();
    } catch (const util::CheckError& e) {
      graph.reset();
      analysis::Diagnostic d;
      d.rule = "graph-construction";
      d.severity = analysis::Severity::kError;
      d.message = std::string("timing graph construction failed: ") + e.what();
      report.add(std::move(d));
    }
  }

  if (args.has("audit") && graph != nullptr && !report.has_errors()) {
    ref::GoldenSta sta(*graph, loaded.constraints, delays, {});
    sta.update_full();
    core::Engine engine(sta, {});
    engine.run_forward();
    report.merge(analysis::audit_engine(engine));
    util::ThreadPool::global().publish_metrics();
    report.merge(analysis::audit_metrics(
        telemetry::MetricsRegistry::global().snapshot()));
  }

  std::printf("%s", report.str().c_str());
  if (report.has_errors()) return 1;
  if (args.has("strict") && report.count(analysis::Severity::kWarning) > 0) {
    return 1;
  }
  return 0;
}

/// Resolves a --preset name to a generator spec. "tiny" is a sub-second
/// smoke preset; "block-1".."block-5" are the Table-I correlation blocks;
/// "fig7" is the incremental-study block.
gen::LogicBlockSpec resolve_preset(const std::string& name) {
  if (name == "tiny") return gen::tiny_spec(7);
  if (name == "fig7") return gen::fig7_block_spec();
  if (name.rfind("block-", 0) == 0) {
    const std::vector<gen::LogicBlockSpec> specs = gen::table1_block_specs();
    const int idx = std::atoi(name.c_str() + 6);
    util::check(idx >= 1 && idx <= static_cast<int>(specs.size()),
                "profile: --preset block-N with N in 1.." +
                    std::to_string(specs.size()));
    return specs[static_cast<std::size_t>(idx - 1)];
  }
  throw util::CheckError("profile: unknown --preset " + name +
                         " (tiny|block-1..5|fig7)");
}

int cmd_profile(const Args& args) {
  const std::string preset = args.get("preset", "tiny");
  const int iters = std::max(1, static_cast<int>(args.get_num("iters", 3)));
  const int resizes = std::max(1, static_cast<int>(args.get_num("resizes", 8)));
  const gen::LogicBlockSpec spec = resolve_preset(preset);

  struct Phase {
    const char* name;
    int calls;
    double sec;
  };
  std::vector<Phase> phases;
  const auto time_phase = [&phases](const char* name, int calls, auto&& fn) {
    const telemetry::TraceSpan span(name);
    util::Stopwatch sw;
    fn();
    phases.push_back({name, calls, sw.elapsed_sec()});
  };

  std::printf("profile: preset %s, %d iterations\n", preset.c_str(), iters);
  util::Stopwatch wall;

  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  time_phase("profile.generate", 1, [&] {
    gd = gen::build_logic_block(spec);
    graph = std::make_unique<timing::TimingGraph>(*gd.design,
                                                  gd.constraints.clock_root);
  });
  std::printf("design: %zu cells, %zu pins, %zu endpoints\n",
              gd.design->num_cells(), gd.design->num_pins(),
              graph->endpoints().size());

  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  time_phase("profile.delay_calc", 1, [&] {
    calc = std::make_unique<timing::DelayCalculator>(*gd.design, *graph);
    calc->compute_all(delays);
    gen::tune_clock_period(*graph, gd.constraints, delays, 0.08);
  });

  std::unique_ptr<ref::GoldenSta> sta;
  time_phase("profile.golden_full", 1, [&] {
    sta = std::make_unique<ref::GoldenSta>(*graph, gd.constraints, delays,
                                           ref::GoldenOptions{});
    sta->update_full();
  });

  core::EngineOptions eopt;
  eopt.top_k = static_cast<int>(args.get_num("topk", 8));
  eopt.corners = parse_corner_flag(args, "profile");
  std::unique_ptr<core::Engine> engine;
  time_phase("profile.engine_init", 1,
             [&] { engine = std::make_unique<core::Engine>(*sta, eopt); });

  time_phase("profile.forward", iters, [&] {
    for (int i = 0; i < iters; ++i) engine->run_forward();
  });

  util::Rng rng(2029);
  const std::vector<gen::Resize> changes =
      gen::random_changelist(*gd.design, *graph, rng, iters * resizes);
  time_phase("profile.incremental", iters, [&] {
    for (int it = 0; it < iters; ++it) {
      for (int i = 0; i < resizes; ++i) {
        const gen::Resize& rz =
            changes[static_cast<std::size_t>(it * resizes + i)];
        engine->annotate(calc->estimate_eco(rz.cell, rz.new_libcell));
        gd.design->resize_cell(rz.cell, rz.new_libcell);
        calc->update_for_resize(rz.cell, sta->mutable_delays());
      }
      engine->run_forward_incremental();
    }
  });

  time_phase("profile.backward", iters, [&] {
    for (int i = 0; i < iters; ++i) {
      engine->run_backward(core::GradientMetric::kTns);
    }
  });

  const double wall_sec = wall.elapsed_sec();
  double accounted = 0.0;
  for (const Phase& p : phases) accounted += p.sec;

  util::Table table({"phase", "calls", "total (ms)", "avg (ms)", "% wall"});
  for (const Phase& p : phases) {
    table.add_row({p.name, std::to_string(p.calls),
                   util::fmt("%.2f", p.sec * 1e3),
                   util::fmt("%.2f", p.sec * 1e3 / p.calls),
                   util::fmt("%.1f", 100.0 * p.sec / wall_sec)});
  }
  table.add_row({"(accounted)", "", util::fmt("%.2f", accounted * 1e3), "",
                 util::fmt("%.1f", 100.0 * accounted / wall_sec)});
  table.add_row({"(wall)", "", util::fmt("%.2f", wall_sec * 1e3), "", "100.0"});
  std::fputs(table.str().c_str(), stdout);
  const core::SlackSummary s = engine->merged_summary(core::Mode::kSetup);
  std::printf("TNS %.2f ps, WNS %.2f ps (TopK=%d, %zu corners)\n", s.tns,
              s.wns, eopt.top_k, engine->num_corners());
  return 0;
}

/// Parses a whatif scenarios file through the serve-layer parser (one
/// schema for files and the wire). Every JSON or shape problem becomes a
/// structured diagnostic in `report` instead of a thrown CheckError: the
/// file is untrusted input, so the caller prints the report and exits
/// nonzero rather than aborting mid-stack.
bool parse_whatif_scenarios_file(
    const std::string& path,
    std::vector<std::vector<timing::ArcDelta>>& scenarios,
    std::vector<std::string>& labels, analysis::LintReport& report) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    analysis::Diagnostic d;
    d.rule = "whatif-json";
    d.severity = analysis::Severity::kError;
    d.message = "cannot read scenarios file " + path;
    report.add(std::move(d));
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  telemetry::JsonValue doc;
  std::string error;
  if (!telemetry::json_parse(ss.str(), doc, error)) {
    analysis::Diagnostic d;
    d.rule = "whatif-json";
    d.severity = analysis::Severity::kError;
    d.message = "scenarios file " + path + " is not valid JSON: " + error;
    report.add(std::move(d));
    return false;
  }
  return serve::parse_scenarios_json(doc, scenarios, labels, report);
}

/// Emits one summary as a whatif-schema JSON object body.
std::string summary_json(const core::SlackSummary& s) {
  return "{\"tns\": " + telemetry::json_number(s.tns) +
         ", \"wns\": " + telemetry::json_number(s.wns) +
         ", \"violations\": " + std::to_string(s.violations) + "}";
}

int cmd_whatif(const Args& args) {
  util::check(args.has("in"), "whatif: --in is required");
  const bool hold = args.has("hold");
  World w(args.get("in", ""), hold);

  core::EngineOptions eopt;
  eopt.top_k = static_cast<int>(args.get_num("topk", 32));
  eopt.enable_hold = hold;
  eopt.corners = parse_corner_flag(args, "whatif");
  // CLI-sourced options go through the validation gate so every problem is
  // reported at once instead of dying on the first constructor check.
  const std::vector<std::string> problems = eopt.validate();
  for (const std::string& p : problems) {
    std::fprintf(stderr, "whatif: %s\n", p.c_str());
  }
  util::check(problems.empty(), "whatif: invalid engine options");
  core::Engine engine(*w.sta, eopt);
  engine.run_forward();

  std::vector<std::vector<timing::ArcDelta>> scenarios;
  std::vector<std::string> labels;
  if (args.has("scenarios")) {
    analysis::LintReport parse_report;
    if (!parse_whatif_scenarios_file(args.get("scenarios", ""), scenarios,
                                     labels, parse_report)) {
      std::printf("%s", parse_report.str().c_str());
      return 1;
    }
  } else {
    // Smoke mode (used by selftest and CI): sample random single-cell
    // resizes and evaluate their estimate_eco deltas as scenarios.
    const int n = std::max(1, static_cast<int>(args.get_num("sample", 8)));
    util::Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 1)));
    const std::vector<gen::Resize> changes =
        gen::random_changelist(*w.loaded.design, *w.graph, rng, n);
    for (std::size_t i = 0; i < changes.size(); ++i) {
      scenarios.push_back(
          w.calc->estimate_eco(changes[i].cell, changes[i].new_libcell));
      labels.push_back("resize-" + std::to_string(i));
    }
  }

  // The scenarios file is a trust boundary: run the structured delta
  // validation up front and report every diagnostic (ScenarioBatch would
  // otherwise throw on the first bad scenario).
  analysis::LintReport report;
  for (const std::vector<timing::ArcDelta>& s : scenarios) {
    report.merge(engine.check_deltas(s));
  }
  if (report.count(analysis::Severity::kWarning) > 0 || report.has_errors()) {
    std::printf("%s", report.str().c_str());
  }
  if (report.has_errors()) return 1;

  const core::SlackSummary base = engine.merged_summary(core::Mode::kSetup);
  std::printf("baseline: TNS %.2f ps, WNS %.2f ps, %d violations\n", base.tns,
              base.wns, base.violations);
  print_corner_summaries(engine);

  core::ScenarioBatch batch(engine);
  util::Stopwatch sw;
  const std::vector<core::ScenarioResult> results = batch.evaluate(scenarios);
  const double sec = sw.elapsed_sec();

  // Multi-corner runs append one merged-contribution column per corner
  // (the merged TNS/WNS columns stay first — they answer "is this scenario
  // safe across all corners").
  const std::size_t num_corners = engine.num_corners();
  std::vector<std::string> cols = {"scenario", "deltas",   "TNS (ps)",
                                   "WNS (ps)", "viol",     "frontier",
                                   "overlay (B)"};
  if (hold) cols.insert(cols.begin() + 5, {"THS (ps)", "hold viol"});
  if (num_corners > 1) {
    for (std::size_t c = 0; c < num_corners; ++c) {
      cols.push_back("TNS@" + engine.corners()[c].name);
    }
  }
  util::Table table(cols);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::ScenarioResult& r = results[i];
    std::vector<std::string> row = {
        labels[i],
        std::to_string(scenarios[i].size()),
        util::fmt("%.2f", r.setup.tns),
        util::fmt("%.2f", r.setup.wns),
        std::to_string(r.setup.violations),
        std::to_string(r.frontier_pins),
        std::to_string(r.overlay_bytes)};
    if (hold) {
      row.insert(row.begin() + 5,
                 {util::fmt("%.2f", r.hold.tns),
                  std::to_string(r.hold.violations)});
    }
    if (num_corners > 1) {
      for (std::size_t c = 0; c < num_corners; ++c) {
        row.push_back(util::fmt("%.2f", r.setup_by_corner[c].tns));
      }
    }
    table.add_row(row);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("%zu scenarios in %.2f ms (%.0f scenarios/sec)\n",
              results.size(), sec * 1e3,
              static_cast<double>(results.size()) / sec);

  if (args.has("out")) {
    std::ostringstream out;
    // The report is stamped with the producing engine's generation and
    // corner set so a consumer can tell which timing state and which
    // corner definitions the summaries were evaluated against.
    out << "{\n  \"generation\": " << engine.generation()
        << ",\n  \"corners\": [";
    for (std::size_t c = 0; c < num_corners; ++c) {
      const core::CornerSpec& spec = engine.corners()[c];
      out << (c == 0 ? "" : ", ") << "{\"name\": \""
          << telemetry::json_escape(spec.name) << "\", \"delay_scale\": "
          << telemetry::json_number(spec.delay_scale)
          << ", \"sigma_scale\": " << telemetry::json_number(spec.sigma_scale)
          << "}";
    }
    out << "],\n  \"scenarios\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const core::ScenarioResult& r = results[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"label\": \"" << telemetry::json_escape(labels[i])
          << "\", \"num_deltas\": " << scenarios[i].size()
          << ", \"setup\": " << summary_json(r.setup);
      if (hold) out << ", \"hold\": " << summary_json(r.hold);
      if (num_corners > 1) {
        out << ", \"setup_by_corner\": [";
        for (std::size_t c = 0; c < num_corners; ++c) {
          out << (c == 0 ? "" : ", ") << summary_json(r.setup_by_corner[c]);
        }
        out << "]";
        if (hold) {
          out << ", \"hold_by_corner\": [";
          for (std::size_t c = 0; c < num_corners; ++c) {
            out << (c == 0 ? "" : ", ") << summary_json(r.hold_by_corner[c]);
          }
          out << "]";
        }
      }
      out << ", \"frontier_pins\": " << r.frontier_pins
          << ", \"early_terminations\": " << r.early_terminations
          << ", \"endpoints_evaluated\": " << r.endpoints_evaluated
          << ", \"overlay_bytes\": " << r.overlay_bytes << "}";
    }
    out << "\n  ]\n}\n";
    const std::string path = args.get("out", "");
    std::ofstream f(path, std::ios::binary);
    util::check(static_cast<bool>(f), "whatif: cannot write " + path);
    f << out.str();
    util::check(f.good(), "whatif: short write to " + path);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

/// Starts the timing-query server on a design and blocks until a client
/// sends a shutdown op (or --max-seconds elapses). All knob sets that cross
/// the CLI trust boundary (engine, service, server) go through their
/// validate() gates so every bad flag is reported at once.
int cmd_serve(const Args& args) {
  util::check(args.has("in"), "serve: --in is required");
  // A crashing server should leave its last-N request lifecycle behind: dump
  // the flight recorder to stderr on fatal signals.
  telemetry::FlightRecorder::install_signal_dump();
  const bool hold = args.has("hold");
  World w(args.get("in", ""), hold);

  core::EngineOptions eopt;
  eopt.top_k = static_cast<int>(args.get_num("topk", 32));
  eopt.enable_hold = hold;
  eopt.corners = parse_corner_flag(args, "serve");

  serve::ServiceOptions sopt;
  sopt.batch_window_us = static_cast<int>(args.get_num("batch-window-us", 200));
  sopt.max_batch = static_cast<int>(args.get_num("max-batch", 64));
  sopt.max_queue = static_cast<int>(args.get_num("max-queue", 256));
  sopt.max_inflight_per_session =
      static_cast<int>(args.get_num("max-inflight", 8));
  sopt.max_sessions = static_cast<int>(args.get_num("max-sessions", 64));
  sopt.collect_endpoints = args.has("endpoints");
  sopt.whatif_cache_entries =
      static_cast<int>(args.get_num("cache-entries", 256));
  sopt.delta_log_capacity = static_cast<int>(args.get_num("delta-log", 1024));
  const std::string replica_of = args.get("replica-of", "");
  // A replica serves reads only; every edit goes to the writer and arrives
  // here as a replicated commit delta.
  sopt.read_only = !replica_of.empty();

  serve::ServerOptions nopt;
  nopt.unix_path = args.get("socket", "");
  nopt.host = args.get("host", "127.0.0.1");
  nopt.port = static_cast<int>(args.get_num("port", 0));
  nopt.max_connections = static_cast<int>(args.get_num("max-connections", 32));
  nopt.slow_us = static_cast<std::int64_t>(args.get_num("slow-us", -1));

  std::vector<std::string> problems = eopt.validate();
  for (const std::string& p : sopt.validate()) problems.push_back(p);
  for (const std::string& p : nopt.validate()) problems.push_back(p);
  for (const std::string& p : problems) {
    std::fprintf(stderr, "serve: %s\n", p.c_str());
  }
  util::check(problems.empty(), "serve: invalid options");

  core::Engine engine(*w.sta, eopt);
  engine.run_forward();
  serve::TimingService service(engine, sopt);

  std::unique_ptr<replica::Replicator> replicator;
  if (!replica_of.empty()) {
    replica::ReplicatorOptions ropt;
    ropt.upstream = replica_of;
    ropt.poll_ms = static_cast<int>(args.get_num("poll-ms", 50));
    replicator = std::make_unique<replica::Replicator>(service, ropt);
    // Converge before accepting clients. The writer may still be starting
    // (CI launches both at once), so retry the bootstrap for a while.
    const double bootstrap_sec = args.get_num("bootstrap-seconds", 10);
    util::Stopwatch bsw;
    for (;;) {
      try {
        replicator->bootstrap();
        break;
      } catch (const util::CheckError& e) {
        util::check(bsw.elapsed_sec() < bootstrap_sec,
                    std::string("serve: replica bootstrap failed: ") +
                        e.what());
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    }
    service.set_replication_info(&replicator->info());
    replicator->start();
    std::printf("replicating from %s (generation %llu)\n", replica_of.c_str(),
                static_cast<unsigned long long>(service.snapshot()->version));
  }

  serve::Server server(service, nopt);
  server.start();
  // The endpoint line is the startup handshake scripts wait for; flush so a
  // pipe-reading supervisor sees it before the first client connects.
  std::printf("serving on %s (%zu endpoints, %zu corners, snapshot v%llu)\n",
              server.endpoint().c_str(), w.graph->endpoints().size(),
              engine.num_corners(),
              static_cast<unsigned long long>(service.snapshot()->version));
  std::fflush(stdout);

  // --max-seconds arms a watchdog so unattended runs (CI smoke jobs) cannot
  // hang forever if no client ever sends the shutdown op.
  const double max_sec = args.get_num("max-seconds", 0);
  util::Mutex wd_mu("cli.watchdog", util::lockrank::kCliWatchdog);
  util::CondVar wd_cv;
  bool finished = false;
  std::thread watchdog;
  if (max_sec > 0) {
    watchdog = std::thread([&] {
      bool timed_out = false;
      {
        util::UniqueLock lk(wd_mu);
        timed_out = !wd_cv.wait_for(
            lk, std::chrono::duration<double>(max_sec),
            [&finished] { return finished; });
      }
      // stop() joins connection threads and takes the server's locks;
      // never call it while holding wd_mu.
      if (timed_out) {
        std::fprintf(stderr, "serve: --max-seconds %.1f elapsed, stopping\n",
                     max_sec);
        server.stop();
      }
    });
  }

  server.wait();
  server.stop();
  if (replicator != nullptr) replicator->stop();
  if (watchdog.joinable()) {
    {
      const util::LockGuard lk(wd_mu);
      finished = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  }

  const serve::ServiceStats st = service.stats();
  std::printf("served %llu what-if requests (%llu scenarios, %llu batches, "
              "%llu shed), %llu commits\n",
              static_cast<unsigned long long>(st.whatif_requests),
              static_cast<unsigned long long>(st.whatif_scenarios),
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.shed),
              static_cast<unsigned long long>(st.commits));
  return 0;
}

/// Minimal blocking NDJSON client used by the `top` dashboard. serve_client
/// carries the full-featured client; this one stays small enough to live in
/// the CLI without sharing socket code across binaries.
class StatsConn {
 public:
  explicit StatsConn(const std::string& target) {
    if (target.rfind("unix:", 0) == 0) {
      const std::string path = target.substr(5);
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      util::check(fd_ >= 0, "top: socket: " + std::string(strerror(errno)));
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      util::check(path.size() < sizeof(addr.sun_path),
                  "top: socket path too long: " + path);
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      util::check(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "top: connect " + target + ": " +
                      std::string(strerror(errno)));
    } else {
      const auto colon = target.rfind(':');
      util::check(colon != std::string::npos,
                  "top: --connect wants unix:/path or host:port, got " +
                      target);
      const std::string host = target.substr(0, colon);
      const int port = static_cast<int>(std::stod(target.substr(colon + 1)));
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      util::check(fd_ >= 0, "top: socket: " + std::string(strerror(errno)));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      util::check(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  "top: bad host " + host);
      util::check(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "top: connect " + target + ": " +
                      std::string(strerror(errno)));
    }
  }
  ~StatsConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  StatsConn(const StatsConn&) = delete;
  StatsConn& operator=(const StatsConn&) = delete;

  /// Sends one request line and returns the reply line (no newline).
  [[nodiscard]] std::string request(const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
      util::check(n > 0, "top: send: " + std::string(strerror(errno)));
      sent += static_cast<std::size_t>(n);
    }
    std::string reply;
    for (;;) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        reply = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      util::check(n > 0, "top: server closed the connection");
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// Numeric field lookup with a default, for the loosely-coupled dashboard
/// (older servers may lack newer stats fields).
double stat_num(const telemetry::JsonValue& obj, std::string_view key,
                double fallback = 0.0) {
  const telemetry::JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

/// Polls the serve stats op and prints a one-line-per-interval dashboard:
/// q/s (from whatif_requests deltas), shed, queue depth, open sessions, and
/// what-if latency percentiles.
int cmd_top(const Args& args) {
  util::check(args.has("connect"), "top: --connect is required");
  const double interval = std::max(0.05, args.get_num("interval-sec", 1.0));
  const int iters = static_cast<int>(args.get_num("iters", 0));
  StatsConn conn(args.get("connect", ""));

  std::printf("%10s %10s %8s %8s %10s %10s %10s\n", "q/s", "reqs", "shed",
              "queue", "sessions", "p50_us", "p99_us");
  double prev_requests = 0.0;
  bool have_prev = false;
  auto prev_t = std::chrono::steady_clock::now();
  for (int i = 0; iters == 0 || i < iters; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
    const std::string reply = conn.request("{\"op\": \"stats\"}");
    telemetry::JsonValue doc;
    std::string err;
    util::check(telemetry::json_parse(reply, doc, err),
                "top: bad stats reply: " + err);
    const telemetry::JsonValue* ok = doc.find("ok");
    util::check(ok != nullptr && ok->boolean, "top: stats op failed");
    const telemetry::JsonValue* result = doc.find("result");
    util::check(result != nullptr && result->is_object(),
                "top: stats reply lacks result");

    const auto now = std::chrono::steady_clock::now();
    const double requests = stat_num(*result, "whatif_requests");
    double qps = 0.0;
    if (have_prev) {
      const double dt = std::chrono::duration<double>(now - prev_t).count();
      if (dt > 0) qps = std::max(0.0, requests - prev_requests) / dt;
    }
    prev_requests = requests;
    prev_t = now;
    have_prev = true;

    double p50 = 0.0;
    double p99 = 0.0;
    const telemetry::JsonValue* lat = result->find("latency_us");
    if (lat != nullptr && lat->is_object()) {
      p50 = stat_num(*lat, "p50");
      p99 = stat_num(*lat, "p99");
    }
    std::printf("%10.1f %10.0f %8.0f %8.0f %10.0f %10.0f %10.0f\n", qps,
                requests, stat_num(*result, "shed"),
                stat_num(*result, "queue_depth"),
                stat_num(*result, "open_sessions"), p50, p99);
    std::fflush(stdout);
  }
  return 0;
}

int cmd_selftest() {
  const std::string path = "/tmp/insta_cli_selftest.inet";
  {
    const char* argv[] = {"--out", path.c_str(), "--gates", "800", "--ffs",
                          "64",    "--seed",     "3"};
    Args args(8, const_cast<char**>(argv), 0);
    util::check(cmd_generate(args) == 0, "selftest: generate failed");
  }
  {
    const char* argv[] = {"--in", path.c_str(), "--paths", "2", "--hold", "1"};
    Args args(6, const_cast<char**>(argv), 0);
    util::check(cmd_report(args) == 0, "selftest: report failed");
  }
  {
    const std::string out = "/tmp/insta_cli_selftest_sized.inet";
    const char* argv[] = {"--in", path.c_str(), "--out", out.c_str()};
    Args args(4, const_cast<char**>(argv), 0);
    util::check(cmd_size(args) == 0, "selftest: size failed");
  }
  {
    const char* argv[] = {"--in", path.c_str(), "--audit", "1"};
    Args args(4, const_cast<char**>(argv), 0);
    util::check(cmd_lint(args) == 0, "selftest: lint failed");
  }
  {
    const char* argv[] = {"--preset", "tiny", "--iters", "1"};
    Args args(4, const_cast<char**>(argv), 0);
    util::check(cmd_profile(args) == 0, "selftest: profile failed");
  }
  {
    const std::string out = "/tmp/insta_cli_selftest_whatif.json";
    // Three corners so the selftest covers the multi-corner cross product
    // and the per-corner report schema end to end.
    const char* argv[] = {"--in",   path.c_str(), "--sample", "4",
                          "--hold", "1",          "--out",    out.c_str(),
                          "--corner", "typ,fast:0.9:0.95,slow:1.08:1.04"};
    Args args(10, const_cast<char**>(argv), 0);
    util::check(cmd_whatif(args) == 0, "selftest: whatif failed");
    std::ifstream f(out, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    const telemetry::ValidationResult vr =
        telemetry::validate_whatif_json(ss.str());
    for (const std::string& e : vr.errors) {
      std::fprintf(stderr, "selftest: whatif schema: %s\n", e.c_str());
    }
    util::check(vr.ok, "selftest: whatif output failed schema validation");
  }
  std::printf("selftest passed\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: insta_cli "
               "<generate|report|size|buffer|lint|profile|whatif|serve|top|"
               "selftest> "
               "[--option value ...]\n"
               "global: [--metrics-json m.json] [--trace t.json] "
               "[--flightrec-json f.json] "
               "[--log-level debug|info|warn|error|off]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    apply_global_flags(args);
    int rc;
    if (cmd == "generate") {
      rc = cmd_generate(args);
    } else if (cmd == "report") {
      rc = cmd_report(args);
    } else if (cmd == "size") {
      rc = cmd_size(args);
    } else if (cmd == "buffer") {
      rc = cmd_buffer(args);
    } else if (cmd == "lint") {
      rc = cmd_lint(args);
    } else if (cmd == "profile") {
      rc = cmd_profile(args);
    } else if (cmd == "whatif") {
      rc = cmd_whatif(args);
    } else if (cmd == "serve") {
      rc = cmd_serve(args);
    } else if (cmd == "top") {
      rc = cmd_top(args);
    } else if (cmd == "selftest") {
      rc = cmd_selftest();
    } else {
      usage();
      return 2;
    }
    finish_telemetry(args);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
