// Closed-loop load generator for the timing-query service layer.
//
// C client threads each run a closed loop of single-scenario what-if
// queries against one TimingService (in-process: no sockets, so the
// numbers isolate the batcher + snapshot machinery from kernel I/O). The
// sweep crosses client count with the micro-batcher's collection window:
// window 0 approximates one-batch-per-request dispatch, larger windows
// trade per-request latency for bigger ScenarioBatch::evaluate calls.
//
// Every reply is also a correctness gate: with no concurrent edits the
// service must return bit-identical SlackSummary values to a direct
// ScenarioBatch evaluation of the same scenario, and the binary exits
// non-zero on any mismatch. CI runs it with --small.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto idx = static_cast<std::size_t>(
      std::min(n - 1.0, std::max(0.0, p * n - 0.5)));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace insta;

  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  bench::print_header(
      "Timing-query service throughput vs client count and batch window\n"
      "C closed-loop clients issue single-scenario what-if queries against\n"
      "one TimingService; the micro-batcher coalesces concurrent requests\n"
      "into ScenarioBatch::evaluate calls. Every reply is gated bitwise\n"
      "against a direct in-process evaluation.");

  gen::LogicBlockSpec spec = gen::fig7_block_spec();
  if (small) {
    spec.name = "block-2-small";
    spec.num_gates = 6000;
    spec.num_ffs = 600;
    spec.depth = 14;
  }
  bench::Bundle world = bench::make_bundle(spec, 0.08);
  std::printf("design: %zu cells, %zu pins%s\n", world.gd.design->num_cells(),
              world.gd.design->num_pins(), small ? " (--small preset)" : "");

  core::EngineOptions eopt;
  eopt.top_k = 8;
  core::Engine engine(*world.sta, eopt);
  engine.run_forward();

  // Scenario pool + its direct-evaluation ground truth (computed once; the
  // service never commits an edit here, so the baseline stays fixed).
  constexpr std::size_t kPool = 32;
  util::Rng rng(2029);
  const auto changes = gen::random_changelist(*world.gd.design, *world.graph,
                                              rng, static_cast<int>(kPool));
  std::vector<std::vector<timing::ArcDelta>> pool;
  for (const auto& ch : changes) {
    pool.push_back(world.calc->estimate_eco(ch.cell, ch.new_libcell));
  }
  for (std::size_t i = 0; pool.size() < kPool && !pool.empty(); ++i) {
    pool.push_back(pool[i % changes.size()]);
  }
  core::ScenarioBatch direct(engine);
  std::vector<core::ScenarioResult> ref;
  for (const auto& deltas : pool) {
    ref.push_back(direct.evaluate({deltas})[0]);
  }

  const std::vector<int> client_counts = small ? std::vector<int>{1, 4}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> windows_us = small ? std::vector<int>{0, 200}
                                            : std::vector<int>{0, 100, 500};
  const int requests_per_client = small ? 40 : 150;

  util::Table table({"clients", "window (us)", "q/s", "p50 (ms)", "p95 (ms)",
                     "p99 (ms)", "max (ms)", "batches", "mean batch",
                     "mismatches"});
  bench::BenchReport report("serve");
  std::size_t total_mismatches = 0;

  // One measured configuration: C closed-loop clients against a fresh
  // service. `tag` suffixes the row label (the observability rerun below).
  const auto run_config = [&](int clients, int window,
                              const std::string& tag) {
    serve::ServiceOptions sopt;
    sopt.batch_window_us = window;
    sopt.max_batch = 64;
    sopt.max_queue = 256;
    sopt.max_sessions = clients + 2;
    serve::TimingService service(engine, sopt);

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<std::size_t> mismatches{0};
    std::atomic<std::size_t> shed{0};

    util::Stopwatch wall;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::SessionId sid = -1;
        if (!service.open_session(sid).ok()) {
          mismatches.fetch_add(1);
          return;
        }
        util::Rng pick(7000 + static_cast<std::uint64_t>(c));
        auto& lat = latencies[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(requests_per_client));
        for (int r = 0; r < requests_per_client; ++r) {
          const std::size_t which =
              static_cast<std::size_t>(pick() % pool.size());
          serve::TimingService::WhatifReply reply;
          util::Stopwatch sw;
          const serve::Error err = service.whatif(sid, {pool[which]}, reply);
          if (!err.ok()) {
            // Shedding is legal under load but excluded from latency.
            if (err.code == serve::ErrorCode::kOverloaded) {
              shed.fetch_add(1);
            } else {
              mismatches.fetch_add(1);
            }
            continue;
          }
          lat.push_back(sw.elapsed_sec() * 1e3);
          if (!(reply.results[0].setup == ref[which].setup)) {
            mismatches.fetch_add(1);
          }
        }
        (void)service.close_session(sid);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_sec = wall.elapsed_sec();

    std::vector<double> all;
    for (const auto& lat : latencies) {
      all.insert(all.end(), lat.begin(), lat.end());
    }
    std::sort(all.begin(), all.end());
    const double qps =
        wall_sec > 0.0 ? static_cast<double>(all.size()) / wall_sec : 0.0;
    const serve::ServiceStats st = service.stats();
    const double mean_batch =
        st.batches > 0 ? static_cast<double>(st.whatif_scenarios) /
                             static_cast<double>(st.batches)
                       : 0.0;
    total_mismatches += mismatches.load();

    table.add_row(
        {std::to_string(clients) + tag, std::to_string(window),
         util::fmt("%.0f", qps), util::fmt("%.2f", percentile(all, 0.50)),
         util::fmt("%.2f", percentile(all, 0.95)),
         util::fmt("%.2f", percentile(all, 0.99)),
         util::fmt("%.2f", all.empty() ? 0.0 : all.back()),
         std::to_string(st.batches), util::fmt("%.1f", mean_batch),
         std::to_string(mismatches.load())});
    report.add_row(
        "C=" + std::to_string(clients) + ",W=" + std::to_string(window) + tag,
        {{"clients", static_cast<double>(clients)},
         {"batch_window_us", static_cast<double>(window)},
         {"queries_per_sec", qps},
         {"p50_ms", percentile(all, 0.50)},
         {"p95_ms", percentile(all, 0.95)},
         {"p99_ms", percentile(all, 0.99)},
         {"max_ms", all.empty() ? 0.0 : all.back()},
         {"batches", static_cast<double>(st.batches)},
         {"mean_batch_occupancy", mean_batch},
         {"shed", static_cast<double>(shed.load())},
         {"mismatches", static_cast<double>(mismatches.load())}});
  };

  for (const int window : windows_us) {
    for (const int clients : client_counts) {
      run_config(clients, window, "");
    }
  }

  // Observability cost row: rerun the busiest configuration with the tracer
  // armed (the flight recorder is always on). Request-scoped spans, flow
  // events, and ring writes must keep throughput within noise of the plain
  // run above — this row makes a regression show up in the artifact diff.
  const bool tracer_was_enabled = telemetry::Tracer::global().enabled();
  telemetry::Tracer::global().set_enabled(true);
  run_config(client_counts.back(), windows_us.back(), " +obs");
  telemetry::Tracer::global().set_enabled(tracer_was_enabled);

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nlarger windows trade per-request latency for batch "
              "occupancy; window 0 dispatches near one batch per request\n");
  report.write();

  if (total_mismatches != 0) {
    std::printf("\nFAILED: %zu service replies differ from direct "
                "ScenarioBatch evaluation\n",
                total_mismatches);
    return 1;
  }
  return 0;
}
