// Closed-loop load generator for the timing-query service layer.
//
// C client threads each run a closed loop of single-scenario what-if
// queries against one TimingService (in-process: no sockets, so the
// numbers isolate the batcher + snapshot machinery from kernel I/O). The
// sweep crosses client count with the micro-batcher's collection window:
// window 0 approximates one-batch-per-request dispatch, larger windows
// trade per-request latency for bigger ScenarioBatch::evaluate calls.
//
// Every reply is also a correctness gate: with no concurrent edits the
// service must return bit-identical SlackSummary values to a direct
// ScenarioBatch evaluation of the same scenario, and the binary exits
// non-zero on any mismatch. CI runs it with --small.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"
#include "replica/replica.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto idx = static_cast<std::size_t>(
      std::min(n - 1.0, std::max(0.0, p * n - 0.5)));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace insta;

  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  bench::print_header(
      "Timing-query service throughput vs client count and batch window\n"
      "C closed-loop clients issue single-scenario what-if queries against\n"
      "one TimingService; the micro-batcher coalesces concurrent requests\n"
      "into ScenarioBatch::evaluate calls. Every reply is gated bitwise\n"
      "against a direct in-process evaluation.");

  gen::LogicBlockSpec spec = gen::fig7_block_spec();
  if (small) {
    spec.name = "block-2-small";
    spec.num_gates = 6000;
    spec.num_ffs = 600;
    spec.depth = 14;
  }
  bench::Bundle world = bench::make_bundle(spec, 0.08);
  std::printf("design: %zu cells, %zu pins%s\n", world.gd.design->num_cells(),
              world.gd.design->num_pins(), small ? " (--small preset)" : "");

  core::EngineOptions eopt;
  eopt.top_k = 8;
  core::Engine engine(*world.sta, eopt);
  engine.run_forward();

  // Scenario pool + its direct-evaluation ground truth (computed once; the
  // service never commits an edit here, so the baseline stays fixed).
  constexpr std::size_t kPool = 32;
  util::Rng rng(2029);
  const auto changes = gen::random_changelist(*world.gd.design, *world.graph,
                                              rng, static_cast<int>(kPool));
  std::vector<std::vector<timing::ArcDelta>> pool;
  for (const auto& ch : changes) {
    pool.push_back(world.calc->estimate_eco(ch.cell, ch.new_libcell));
  }
  for (std::size_t i = 0; pool.size() < kPool && !pool.empty(); ++i) {
    pool.push_back(pool[i % changes.size()]);
  }
  core::ScenarioBatch direct(engine);
  std::vector<core::ScenarioResult> ref;
  for (const auto& deltas : pool) {
    ref.push_back(direct.evaluate({deltas})[0]);
  }

  const std::vector<int> client_counts = small ? std::vector<int>{1, 4}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> windows_us = small ? std::vector<int>{0, 200}
                                            : std::vector<int>{0, 100, 500};
  const int requests_per_client = small ? 40 : 150;

  util::Table table({"clients", "window (us)", "q/s", "p50 (ms)", "p95 (ms)",
                     "p99 (ms)", "max (ms)", "batches", "mean batch",
                     "mismatches"});
  bench::BenchReport report("serve");
  std::size_t total_mismatches = 0;

  // One measured configuration: C closed-loop clients against a fresh
  // service. `tag` suffixes the row label (the observability rerun below).
  const auto run_config = [&](int clients, int window,
                              const std::string& tag) {
    serve::ServiceOptions sopt;
    sopt.batch_window_us = window;
    sopt.max_batch = 64;
    sopt.max_queue = 256;
    sopt.max_sessions = clients + 2;
    serve::TimingService service(engine, sopt);

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<std::size_t> mismatches{0};
    std::atomic<std::size_t> shed{0};

    util::Stopwatch wall;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::SessionId sid = -1;
        if (!service.open_session(sid).ok()) {
          mismatches.fetch_add(1);
          return;
        }
        util::Rng pick(7000 + static_cast<std::uint64_t>(c));
        auto& lat = latencies[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(requests_per_client));
        for (int r = 0; r < requests_per_client; ++r) {
          const std::size_t which =
              static_cast<std::size_t>(pick() % pool.size());
          serve::TimingService::WhatifReply reply;
          util::Stopwatch sw;
          const serve::Error err = service.whatif(sid, {pool[which]}, reply);
          if (!err.ok()) {
            // Shedding is legal under load but excluded from latency.
            if (err.code == serve::ErrorCode::kOverloaded) {
              shed.fetch_add(1);
            } else {
              mismatches.fetch_add(1);
            }
            continue;
          }
          lat.push_back(sw.elapsed_sec() * 1e3);
          if (!(reply.results[0].setup == ref[which].setup)) {
            mismatches.fetch_add(1);
          }
        }
        (void)service.close_session(sid);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_sec = wall.elapsed_sec();

    std::vector<double> all;
    for (const auto& lat : latencies) {
      all.insert(all.end(), lat.begin(), lat.end());
    }
    std::sort(all.begin(), all.end());
    const double qps =
        wall_sec > 0.0 ? static_cast<double>(all.size()) / wall_sec : 0.0;
    const serve::ServiceStats st = service.stats();
    const double mean_batch =
        st.batches > 0 ? static_cast<double>(st.whatif_scenarios) /
                             static_cast<double>(st.batches)
                       : 0.0;
    total_mismatches += mismatches.load();

    table.add_row(
        {std::to_string(clients) + tag, std::to_string(window),
         util::fmt("%.0f", qps), util::fmt("%.2f", percentile(all, 0.50)),
         util::fmt("%.2f", percentile(all, 0.95)),
         util::fmt("%.2f", percentile(all, 0.99)),
         util::fmt("%.2f", all.empty() ? 0.0 : all.back()),
         std::to_string(st.batches), util::fmt("%.1f", mean_batch),
         std::to_string(mismatches.load())});
    report.add_row(
        "C=" + std::to_string(clients) + ",W=" + std::to_string(window) + tag,
        {{"clients", static_cast<double>(clients)},
         {"batch_window_us", static_cast<double>(window)},
         {"queries_per_sec", qps},
         {"p50_ms", percentile(all, 0.50)},
         {"p95_ms", percentile(all, 0.95)},
         {"p99_ms", percentile(all, 0.99)},
         {"max_ms", all.empty() ? 0.0 : all.back()},
         {"batches", static_cast<double>(st.batches)},
         {"mean_batch_occupancy", mean_batch},
         {"shed", static_cast<double>(shed.load())},
         {"mismatches", static_cast<double>(mismatches.load())}});
  };

  for (const int window : windows_us) {
    for (const int clients : client_counts) {
      run_config(clients, window, "");
    }
  }

  // Observability cost row: rerun the busiest configuration with the tracer
  // armed (the flight recorder is always on). Request-scoped spans, flow
  // events, and ring writes must keep throughput within noise of the plain
  // run above — this row makes a regression show up in the artifact diff.
  const bool tracer_was_enabled = telemetry::Tracer::global().enabled();
  telemetry::Tracer::global().set_enabled(true);
  run_config(client_counts.back(), windows_us.back(), " +obs");
  telemetry::Tracer::global().set_enabled(tracer_was_enabled);

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nlarger windows trade per-request latency for batch "
              "occupancy; window 0 dispatches near one batch per request\n");

  // ---- replication: delta shipping, convergence lag, fleet read scaling ----
  //
  // One writer service behind a Unix socket, two replica stacks (own engine
  // over the same design) converging through the Replicator's delta path.
  // Every commit measures per-replica catch-up lag; after convergence the
  // replicas must be byte-identical to the writer (hard gate); the what-if
  // cache must show hits on a repeated-query workload (hard gate); and a
  // round-robin read fleet reports aggregate q/s at 0/1/2 replicas.
  {
    std::printf("\nreplication: 1 writer + 2 replicas over a Unix socket\n");
    const std::string sock =
        "/tmp/bench_serve_repl_" + std::to_string(::getpid()) + ".sock";

    core::Engine writer_engine(*world.sta, eopt);
    writer_engine.run_forward();
    serve::ServiceOptions wopt;
    wopt.whatif_cache_entries = 256;
    serve::TimingService writer(writer_engine, wopt);
    serve::ServerOptions nopt;
    nopt.unix_path = sock;
    serve::Server server(writer, nopt);
    server.start();

    struct ReplicaStack {
      std::unique_ptr<core::Engine> engine;
      std::unique_ptr<serve::TimingService> service;
      std::unique_ptr<replica::Replicator> replicator;
    };
    constexpr int kReplicas = 2;
    std::vector<ReplicaStack> replicas;
    for (int i = 0; i < kReplicas; ++i) {
      ReplicaStack rs;
      rs.engine = std::make_unique<core::Engine>(*world.sta, eopt);
      rs.engine->run_forward();
      serve::ServiceOptions ropt;
      ropt.read_only = true;
      ropt.whatif_cache_entries = 256;
      rs.service = std::make_unique<serve::TimingService>(*rs.engine, ropt);
      replica::ReplicatorOptions rro;
      rro.upstream = "unix:" + sock;
      rro.poll_ms = 2;
      rs.replicator =
          std::make_unique<replica::Replicator>(*rs.service, rro);
      rs.replicator->bootstrap();
      rs.replicator->start();
      replicas.push_back(std::move(rs));
    }

    // Scripted commits; per-replica convergence lag (commit return to
    // version match, so it includes the poll cadence).
    std::size_t repl_mismatches = 0;
    const int commits = small ? 4 : 10;
    std::vector<double> lag_ms;
    serve::SessionId wsid = -1;
    (void)writer.open_session(wsid);
    for (int k = 0; k < commits; ++k) {
      (void)writer.begin_edit(wsid);
      (void)writer.annotate(wsid, pool[static_cast<std::size_t>(k) %
                                       pool.size()]);
      serve::TimingService::CommitReply cr;
      if (!writer.commit(wsid, cr).ok()) {
        ++repl_mismatches;
        continue;
      }
      for (auto& rs : replicas) {
        util::Stopwatch lsw;
        while (rs.service->snapshot()->version < cr.version) {
          if (lsw.elapsed_sec() > 15.0) break;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (rs.service->snapshot()->version < cr.version) {
          ++repl_mismatches;  // replica never converged
        } else {
          lag_ms.push_back(lsw.elapsed_sec() * 1e3);
        }
      }
    }

    // Bit-identity gate: converged replicas must match the writer to the
    // byte — merged summaries, every per-corner endpoint slack plane, and a
    // live what-if — or the whole benchmark fails.
    const auto wsnap = writer.snapshot();
    serve::TimingService::WhatifReply wref;
    (void)writer.whatif(wsid, {pool[0]}, wref);
    for (auto& rs : replicas) {
      const auto rsnap = rs.service->snapshot();
      if (rsnap->version != wsnap->version ||
          rsnap->slack.size() != wsnap->slack.size() ||
          std::memcmp(rsnap->slack.data(), wsnap->slack.data(),
                      wsnap->slack.size() * sizeof(float)) != 0 ||
          std::memcmp(rsnap->slack_by_corner.data(),
                      wsnap->slack_by_corner.data(),
                      wsnap->slack_by_corner.size() * sizeof(float)) != 0 ||
          !(rsnap->setup == wsnap->setup)) {
        ++repl_mismatches;
      }
      serve::SessionId rsid = -1;
      (void)rs.service->open_session(rsid);
      serve::TimingService::WhatifReply rrep;
      if (!rs.service->whatif(rsid, {pool[0]}, rrep).ok() ||
          !(rrep.results[0].setup == wref.results[0].setup)) {
        ++repl_mismatches;
      }
      (void)rs.service->close_session(rsid);
    }

    // Cache gate: a repeated query on the writer must hit.
    serve::TimingService::WhatifReply again;
    (void)writer.whatif(wsid, {pool[0]}, again);
    const replica::WhatifCacheStats cs = writer.cache_stats();
    if (cs.hits == 0) ++repl_mismatches;
    const double hit_rate =
        cs.hits + cs.misses > 0
            ? static_cast<double>(cs.hits) /
                  static_cast<double>(cs.hits + cs.misses)
            : 0.0;

    std::sort(lag_ms.begin(), lag_ms.end());
    std::uint64_t applied = 0;
    std::uint64_t full_syncs = 0;
    for (const auto& rs : replicas) {
      applied += rs.replicator->info().applied_deltas.load();
      full_syncs += rs.replicator->info().full_syncs.load();
    }
    std::printf(
        "replication: %d commits, lag p50 %.2f ms p95 %.2f ms max %.2f ms, "
        "%llu deltas applied, %llu full syncs, cache hit rate %.2f, "
        "%zu mismatches\n",
        commits, percentile(lag_ms, 0.50), percentile(lag_ms, 0.95),
        lag_ms.empty() ? 0.0 : lag_ms.back(),
        static_cast<unsigned long long>(applied),
        static_cast<unsigned long long>(full_syncs), hit_rate,
        repl_mismatches);
    report.add_row("replication,lag",
                   {{"replicas", static_cast<double>(kReplicas)},
                    {"commits", static_cast<double>(commits)},
                    {"lag_p50_ms", percentile(lag_ms, 0.50)},
                    {"lag_p95_ms", percentile(lag_ms, 0.95)},
                    {"lag_max_ms", lag_ms.empty() ? 0.0 : lag_ms.back()},
                    {"applied_deltas", static_cast<double>(applied)},
                    {"full_syncs", static_cast<double>(full_syncs)},
                    {"cache_hit_rate", hit_rate},
                    {"mismatches", static_cast<double>(repl_mismatches)}});

    // Read scaling: closed-loop what-if clients round-robined across the
    // writer plus the first N replicas (all converged, so every stack
    // answers from identical state).
    const auto run_fleet = [&](int nrep) {
      std::vector<serve::TimingService*> targets{&writer};
      for (int i = 0; i < nrep; ++i) {
        targets.push_back(replicas[static_cast<std::size_t>(i)].service.get());
      }
      const int clients = small ? 4 : 8;
      const int per_client = small ? 30 : 100;
      std::atomic<std::size_t> ok{0};
      std::atomic<std::size_t> errors{0};
      util::Stopwatch wall;
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          serve::TimingService& svc =
              *targets[static_cast<std::size_t>(c) % targets.size()];
          serve::SessionId sid = -1;
          if (!svc.open_session(sid).ok()) {
            errors.fetch_add(1);
            return;
          }
          util::Rng pick(9100 + static_cast<std::uint64_t>(c));
          for (int r = 0; r < per_client; ++r) {
            const std::size_t which =
                static_cast<std::size_t>(pick() % pool.size());
            serve::TimingService::WhatifReply reply;
            if (svc.whatif(sid, {pool[which]}, reply).ok()) {
              ok.fetch_add(1);
            } else {
              errors.fetch_add(1);
            }
          }
          (void)svc.close_session(sid);
        });
      }
      for (std::thread& t : threads) t.join();
      const double qps = ok.load() > 0
                             ? static_cast<double>(ok.load()) /
                                   wall.elapsed_sec()
                             : 0.0;
      std::printf("replication: fleet of 1+%d: %.0f q/s aggregate "
                  "(%zu ok, %zu errors)\n",
                  nrep, qps, ok.load(), errors.load());
      report.add_row("replication,fleet,N=" + std::to_string(nrep),
                     {{"replicas", static_cast<double>(nrep)},
                      {"queries_per_sec", qps},
                      {"errors", static_cast<double>(errors.load())}});
      if (errors.load() != 0) ++repl_mismatches;
    };
    for (int nrep = 0; nrep <= kReplicas; ++nrep) run_fleet(nrep);

    (void)writer.close_session(wsid);
    for (auto& rs : replicas) rs.replicator->stop();
    server.stop();
    ::unlink(sock.c_str());
    total_mismatches += repl_mismatches;
  }

  report.write();

  if (total_mismatches != 0) {
    std::printf("\nFAILED: %zu service replies differ from direct "
                "ScenarioBatch evaluation\n",
                total_mismatches);
    return 1;
  }
  return 0;
}
