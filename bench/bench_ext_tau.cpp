// Ablation: the LSE temperature tau of Eq. 4. Small tau makes the backward
// softmax a hard max (gradient only along the single most critical path);
// larger tau spreads gradient over near-critical paths. This sweep measures
// the downstream effect on INSTA-Size QoR, plus the WNS-vs-TNS gradient
// metric choice — the design-choice ablations DESIGN.md calls out.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "size/insta_size.hpp"
#include "util/table.hpp"

int main() {
  using namespace insta;
  bench::print_header(
      "Ablation: LSE temperature (Eq. 4) and gradient metric in INSTA-Size\n"
      "on the des-like design. tau->0 approaches the hard max; larger tau\n"
      "lets optimization see sub-critical structure.");

  const gen::LogicBlockSpec spec = gen::table2_iwls_specs()[2];  // des-like
  util::Table table({"config", "final WNS (ps)", "final TNS (ps)",
                     "#cells sized", "runtime (s)"});
  double init_wns = 0.0, init_tns = 0.0;
  auto run = [&](const char* name, float tau, core::GradientMetric metric) {
    bench::Bundle b = bench::make_bundle(spec, 0.12);
    init_wns = b.sta->wns();
    init_tns = b.sta->tns();
    size::InstaSizeOptions opt;
    opt.tau = tau;
    opt.metric = metric;
    size::InstaSizer sizer(*b.gd.design, *b.graph, *b.calc, *b.sta, opt);
    const size::SizerResult r = sizer.run();
    table.add_row({name, util::fmt("%.2f", r.final_wns),
                   util::fmt("%.2f", r.final_tns),
                   std::to_string(r.cells_sized),
                   util::fmt("%.1f", r.runtime_sec)});
  };
  run("TNS grad, tau=0.01 (hard max)", 0.01f, core::GradientMetric::kTns);
  run("TNS grad, tau=1", 1.0f, core::GradientMetric::kTns);
  run("TNS grad, tau=10", 10.0f, core::GradientMetric::kTns);
  run("TNS grad, tau=50", 50.0f, core::GradientMetric::kTns);
  run("WNS grad, tau=1", 1.0f, core::GradientMetric::kWns);
  std::fputs(table.str().c_str(), stdout);
  std::printf("\ninitial state: WNS %.2f ps, TNS %.2f ps (seed-fixed)\n",
              init_wns, init_tns);
  return 0;
}
