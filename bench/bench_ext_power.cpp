// Extension experiment: timing-constrained power recovery — the flow
// context of the paper's Application 1 (Fig. 7's "commercial gate sizing
// flow for timing-constrained power optimization"). Timing gradients act
// as safety certificates: gradient-free stages are downsized for leakage,
// every move validated on INSTA's fast evaluation.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "size/power_recovery.hpp"
#include "util/table.hpp"

int main() {
  using namespace insta;
  bench::print_header(
      "Extension: gradient-guarded power recovery on the Table II designs\n"
      "(downsize only stages the TNS gradient proves non-critical).");

  util::Table table({"design", "leakage before", "leakage after", "saved",
                     "TNS before (ps)", "TNS after (ps)", "#downsized",
                     "runtime (s)"});
  for (const auto& spec : gen::table2_iwls_specs()) {
    bench::Bundle b = bench::make_bundle(spec, 0.05);
    size::PowerRecovery recovery(*b.gd.design, *b.graph, *b.calc, *b.sta, {});
    const size::PowerRecoveryResult r = recovery.run();
    table.add_row(
        {spec.name, util::fmt("%.0f", r.initial_leakage),
         util::fmt("%.0f", r.final_leakage),
         util::fmt("%.1f%%", (1.0 - r.final_leakage / r.initial_leakage) * 100.0),
         util::fmt("%.1f", r.initial_tns), util::fmt("%.1f", r.final_tns),
         std::to_string(r.cells_downsized), util::fmt("%.1f", r.runtime_sec)});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
