// Extension experiment (paper Section V future work): INSTA-Buffer —
// gradient-guided buffer insertion using the same timing-gradient machinery
// as INSTA-Size. Not a paper table; included as the natural next
// application the authors name ("we aim to investigate INSTA for buffering
// and restructuring").

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "size/insta_buffer.hpp"
#include "util/table.hpp"

int main() {
  using namespace insta;
  bench::print_header(
      "Extension: INSTA-Buffer (Section V future work) — gradient-guided\n"
      "buffer insertion on wire-dominated variants of the Table II designs.");

  util::Table table({"design", "TNS before", "TNS after", "WNS before",
                     "WNS after", "#buffers", "runtime (s)"});
  for (gen::LogicBlockSpec spec : gen::table2_iwls_specs()) {
    spec.net_length_mean = 90.0;  // wire-dominated: buffering has a target
    bench::Bundle b = bench::make_bundle(spec, 0.12);

    size::InstaBufferOptions opt;
    opt.max_passes = 5;
    size::InstaBuffer buffering(*b.gd.design, b.gd.constraints, opt);
    const size::BufferResult r = buffering.run();
    table.add_row({spec.name, util::fmt("%.1f", r.initial_tns),
                   util::fmt("%.1f", r.final_tns),
                   util::fmt("%.1f", r.initial_wns),
                   util::fmt("%.1f", r.final_wns),
                   std::to_string(r.buffers_inserted),
                   util::fmt("%.1f", r.runtime_sec)});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
