// Kernel microbenchmarks (google-benchmark):
//   * the Section III-E ablation: fixed-size sorted list vs binary heap for
//     the Top-K priority queue,
//   * the O(K^2 * L) complexity claim: forward runtime vs Top-K,
//   * backward-kernel cost,
//   * golden full vs incremental update, and INSTA initialization (cloning).

#include <benchmark/benchmark.h>

#include <atomic>
#include <random>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/topk.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"

namespace {

using namespace insta;

/// One shared medium design for all engine-level benchmarks.
bench::Bundle& shared_bundle() {
  static bench::Bundle b = [] {
    gen::LogicBlockSpec spec;
    spec.name = "kernel-bench";
    spec.seed = 7;
    spec.num_gates = 20000;
    spec.num_ffs = 1800;
    spec.depth = 24;
    spec.num_inputs = 64;
    spec.num_outputs = 64;
    return bench::make_bundle(spec, 0.08);
  }();
  return b;
}

// ---- Top-K queue ablation (Section III-E) -----------------------------------

struct InsertStream {
  std::vector<float> arr;
  std::vector<std::int32_t> sp;
  InsertStream() {
    std::mt19937 rng(42);
    std::uniform_real_distribution<float> val(0.0f, 1000.0f);
    std::uniform_int_distribution<std::int32_t> spd(0, 63);
    for (int i = 0; i < 4096; ++i) {
      arr.push_back(val(rng));
      sp.push_back(spd(rng));
    }
  }
};

void BM_TopKInsert_SortedList(benchmark::State& state) {
  static const InsertStream stream;
  const auto k = static_cast<std::int32_t>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(k)), m(a.size()), s(a.size());
  std::vector<std::int32_t> sp(a.size());
  std::int32_t count = 0;
  for (auto _ : state) {
    count = 0;
    const core::TopKView v{a.data(), m.data(), s.data(), sp.data(), k, &count};
    for (std::size_t i = 0; i < stream.arr.size(); ++i) {
      core::topk_insert(v, stream.arr[i], stream.arr[i], 1.0f, stream.sp[i]);
    }
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.arr.size()));
}
BENCHMARK(BM_TopKInsert_SortedList)->Arg(8)->Arg(32)->Arg(128);

void BM_TopKInsert_Heap(benchmark::State& state) {
  static const InsertStream stream;
  const auto k = static_cast<std::int32_t>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(k)), m(a.size()), s(a.size());
  std::vector<std::int32_t> sp(a.size());
  std::int32_t count = 0;
  for (auto _ : state) {
    count = 0;
    const core::TopKView v{a.data(), m.data(), s.data(), sp.data(), k, &count};
    for (std::size_t i = 0; i < stream.arr.size(); ++i) {
      core::topk_insert_heap(v, stream.arr[i], stream.arr[i], 1.0f,
                             stream.sp[i]);
    }
    core::topk_heap_finalize(v);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.arr.size()));
}
BENCHMARK(BM_TopKInsert_Heap)->Arg(8)->Arg(32)->Arg(128);

// ---- forward kernel: O(K^2 * L) sweep -----------------------------------------

void BM_ForwardTopK(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = static_cast<int>(state.range(0));
  core::Engine engine(*b.sta, opt);
  for (auto _ : state) {
    engine.run_forward();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
  state.counters["levels"] =
      static_cast<double>(engine.num_levels());
  state.counters["pins"] = static_cast<double>(b.gd.design->num_pins());
}
BENCHMARK(BM_ForwardTopK)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_ForwardHeapQueue(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = static_cast<int>(state.range(0));
  opt.use_heap_queue = true;
  core::Engine engine(*b.sta, opt);
  for (auto _ : state) {
    engine.run_forward();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
}
BENCHMARK(BM_ForwardHeapQueue)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// ---- backward kernel ------------------------------------------------------------

void BM_ForwardIncrementalEco(benchmark::State& state) {
  // A single-cell ECO re-annotation followed by a level-windowed forward:
  // the common inner-loop operation of the Fig. 7 evaluation flow.
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = 16;
  core::Engine engine(*b.sta, opt);
  engine.run_forward();
  util::Rng rng(4);
  const auto changes = gen::random_changelist(*b.gd.design, *b.graph, rng, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ch = changes[i++ % changes.size()];
    const auto deltas = b.calc->estimate_eco(ch.cell, ch.new_libcell);
    engine.annotate(deltas);
    engine.run_forward_incremental();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
}
BENCHMARK(BM_ForwardIncrementalEco)->Unit(benchmark::kMillisecond);

void BM_ForwardGrainSweep(benchmark::State& state) {
  // Sweep of the parallel chunk grain of the per-level pin kernel (an
  // EngineOptions knob): too small pays ticket-dispatch overhead per tiny
  // chunk, too large starves workers on shallow levels.
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = 16;
  opt.parallel_grain = static_cast<int>(state.range(0));
  core::Engine engine(*b.sta, opt);
  for (auto _ : state) {
    engine.run_forward();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
  state.counters["grain"] = static_cast<double>(opt.parallel_grain);
}
BENCHMARK(BM_ForwardGrainSweep)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// ---- thread-pool dispatch -------------------------------------------------------

void BM_PoolLaunchOverhead(benchmark::State& state) {
  // Cost of one parallel_for_chunks launch with near-zero work per chunk:
  // measures the ticket-dispatch handshake (publish, wake, join, drain)
  // that is paid once per timing level.
  auto& pool = util::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for_chunks(
        std::size_t{0}, n,
        [&](std::size_t lo, std::size_t hi) {
          sink.fetch_add(hi - lo, std::memory_order_relaxed);
        },
        64);
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PoolLaunchOverhead)->Arg(512)->Arg(4096)->Arg(65536);

void BM_BackwardTns(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = 16;
  core::Engine engine(*b.sta, opt);
  engine.run_forward();
  for (auto _ : state) {
    engine.run_backward(core::GradientMetric::kTns);
    benchmark::DoNotOptimize(engine.arc_gradients().data());
  }
}
BENCHMARK(BM_BackwardTns)->Unit(benchmark::kMillisecond);

// ---- reference-engine costs -------------------------------------------------------

void BM_GoldenFullUpdate(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  for (auto _ : state) {
    b.sta->update_full();
  }
}
BENCHMARK(BM_GoldenFullUpdate)->Unit(benchmark::kMillisecond);

void BM_GoldenIncrementalResize(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  b.sta->update_full();
  util::Rng rng(99);
  const auto changes =
      gen::random_changelist(*b.gd.design, *b.graph, rng, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ch = changes[i++ % changes.size()];
    b.gd.design->resize_cell(ch.cell, ch.new_libcell);
    const auto ids = b.calc->update_for_resize(ch.cell, b.sta->mutable_delays());
    b.sta->update_incremental(ids);
  }
  state.counters["pins_touched"] =
      static_cast<double>(b.sta->last_update_pin_count());
}
BENCHMARK(BM_GoldenIncrementalResize)->Unit(benchmark::kMillisecond);

void BM_EngineInitialization(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  b.sta->update_full();
  for (auto _ : state) {
    core::EngineOptions opt;
    opt.top_k = 16;
    core::Engine engine(*b.sta, opt);
    benchmark::DoNotOptimize(&engine);
  }
}
BENCHMARK(BM_EngineInitialization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
