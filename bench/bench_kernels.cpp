// Kernel microbenchmarks (google-benchmark):
//   * the Top-K merge kernel, scalar vs AVX2 flavor and level-contiguous
//     SoA vs the pre-refactor interleaved (AoS) layout,
//   * the O(K^2 * L) complexity claim: forward runtime vs Top-K,
//   * backward-kernel cost: the per-slot candidate gather (scalar vs AVX2)
//     plus engine-level full and incremental (weight-reuse) backward,
//   * golden full vs incremental update, and INSTA initialization (cloning).
//
// Every kernel-level benchmark reports candidates/s (SetItemsProcessed)
// and plane-read GB/s (SetBytesProcessed; the per-candidate bytes counted
// are documented at each benchmark). The main() additionally re-times the
// hot kernels with bench::time_repeated (median of reps) and stamps
// BENCH_kernels.json so CI can diff the scalar/AVX2 ratio across commits.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <random>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/topk.hpp"
#include "core/topk_simd.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"
#include "util/simd.hpp"

namespace {

using namespace insta;

bool avx2_available() {
  return util::simd::compiled_avx2() && util::simd::cpu_has_avx2();
}

/// One shared medium design for all engine-level benchmarks.
bench::Bundle& shared_bundle() {
  static bench::Bundle b = [] {
    gen::LogicBlockSpec spec;
    spec.name = "kernel-bench";
    spec.seed = 7;
    spec.num_gates = 20000;
    spec.num_ffs = 1800;
    spec.depth = 24;
    spec.num_inputs = 64;
    spec.num_outputs = 64;
    return bench::make_bundle(spec, 0.08);
  }();
  return b;
}

// ---- Top-K insert (Algorithm 2) ---------------------------------------------

struct InsertStream {
  std::vector<float> arr;
  std::vector<std::int32_t> sp;
  InsertStream() {
    std::mt19937 rng(42);
    std::uniform_real_distribution<float> val(0.0f, 1000.0f);
    std::uniform_int_distribution<std::int32_t> spd(0, 63);
    for (int i = 0; i < 4096; ++i) {
      arr.push_back(val(rng));
      sp.push_back(spd(rng));
    }
  }
};

void BM_TopKInsert_SortedList(benchmark::State& state) {
  static const InsertStream stream;
  const auto k = static_cast<std::int32_t>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(k)), m(a.size()), s(a.size());
  std::vector<std::int32_t> sp(a.size());
  std::int32_t count = 0;
  for (auto _ : state) {
    count = 0;
    const core::TopKView v{a.data(), m.data(), s.data(), sp.data(), k, &count};
    for (std::size_t i = 0; i < stream.arr.size(); ++i) {
      core::topk_insert(v, stream.arr[i], stream.arr[i], 1.0f, stream.sp[i]);
    }
    benchmark::DoNotOptimize(a.data());
  }
  const auto items = static_cast<std::int64_t>(stream.arr.size());
  state.SetItemsProcessed(state.iterations() * items);
  // Per insert: one candidate record in (arr, mu, sig, sp = 16 B).
  state.SetBytesProcessed(state.iterations() * items * 16);
}
BENCHMARK(BM_TopKInsert_SortedList)->Arg(8)->Arg(32)->Arg(128);

// ---- Top-K merge: scalar vs AVX2, SoA vs AoS --------------------------------

/// A synthetic level merge: `parents` source pins with full K-entry Top-K
/// lists stored level-contiguously in SoA planes (stride = K rounded up to
/// 8, exactly the engine's layout), grouped into destination pins of
/// `fanin` consecutive fanin arcs each. Tags are unique within a parent
/// (the invariant) and drawn from a pool of `tag_pool` values shared
/// across parents: a small pool models reconvergent logic where fanin
/// lists carry largely the same startpoints (the engine's common case —
/// most candidates resolve in the in-list tag scan), a pool of parents*K
/// makes every tag distinct and forces the sorted-insert path. `fanin`
/// sets the merge regime: small fanin rebuilds the destination list
/// often (fill-heavy, sorted-insert traffic dominates), large fanin is
/// the saturated steady state where the list filled on the first arcs
/// and nearly every later candidate stops at the threshold pre-filter.
struct MergeWorkload {
  std::int32_t k = 0;
  std::size_t stride = 0;
  std::int32_t parents = 0;
  std::int32_t fanin = 8;
  std::vector<float> mu, sig, arr;
  std::vector<std::int32_t> sp, cnt;
  std::vector<float> am, as2;  // per-arc delay mean / variance

  MergeWorkload(std::int32_t k_in, std::int32_t parents_in,
                std::int32_t tag_pool, std::int32_t fanin_in = 8)
      : k(k_in), parents(parents_in), fanin(fanin_in) {
    stride = (static_cast<std::size_t>(k) + 7) & ~std::size_t{7};
    const std::size_t plane = static_cast<std::size_t>(parents) * stride;
    mu.assign(plane, 0.0f);
    sig.assign(plane, 0.0f);
    arr.assign(plane, 0.0f);
    sp.assign(plane, -1);
    cnt.assign(static_cast<std::size_t>(parents), k);
    am.resize(static_cast<std::size_t>(parents));
    as2.resize(static_cast<std::size_t>(parents));
    std::mt19937 rng(123);
    std::uniform_real_distribution<float> base(0.0f, 1000.0f);
    std::uniform_real_distribution<float> d(5.0f, 50.0f);
    std::vector<float> vals(static_cast<std::size_t>(k));
    std::vector<std::int32_t> pool(
        static_cast<std::size_t>(std::max(tag_pool, k)));
    for (std::size_t t = 0; t < pool.size(); ++t) {
      pool[t] = static_cast<std::int32_t>(t);
    }
    for (std::int32_t p = 0; p < parents; ++p) {
      for (auto& v : vals) v = base(rng);
      std::sort(vals.begin(), vals.end(), std::greater<>());
      // K distinct tags per parent, sampled from the shared pool.
      for (std::int32_t j = 0; j < k; ++j) {
        const auto r = static_cast<std::size_t>(j) +
                       rng() % (pool.size() - static_cast<std::size_t>(j));
        std::swap(pool[static_cast<std::size_t>(j)], pool[r]);
      }
      const std::size_t b = static_cast<std::size_t>(p) * stride;
      for (std::int32_t j = 0; j < k; ++j) {
        const auto idx = b + static_cast<std::size_t>(j);
        arr[idx] = vals[static_cast<std::size_t>(j)];
        mu[idx] = vals[static_cast<std::size_t>(j)] - 3.0f;
        sig[idx] = 1.0f + 0.01f * static_cast<float>(j);
        sp[idx] = pool[static_cast<std::size_t>(j)];
      }
      am[static_cast<std::size_t>(p)] = d(rng);
      const float s = 0.1f * d(rng);
      as2[static_cast<std::size_t>(p)] = s * s;
    }
  }

  [[nodiscard]] core::TopKConstView parent(std::int32_t p) const {
    const std::size_t b = static_cast<std::size_t>(p) * stride;
    return {&arr[b], &mu[b], &sig[b], &sp[b], cnt[static_cast<std::size_t>(p)]};
  }

  [[nodiscard]] std::int64_t candidates() const {
    return static_cast<std::int64_t>(parents) * k;
  }
};

/// Runs the production merge kernel over the whole workload: one
/// destination list per `fanin` consecutive parents, arcs batched exactly
/// like Engine::merge_pin_values.
std::uint64_t run_merge_soa(const MergeWorkload& w, bool use_avx2,
                            const core::TopKView& dst) {
  core::MergeCounters mc;
  constexpr int kChunk = 16;
  core::MergeArc batch[kChunk];
  for (std::int32_t p0 = 0; p0 + w.fanin <= w.parents; p0 += w.fanin) {
    *dst.count = 0;
    int n = 0;
    for (std::int32_t f = 0; f < w.fanin; ++f) {
      const std::int32_t p = p0 + f;
      batch[n].par = w.parent(p);
      batch[n].am = w.am[static_cast<std::size_t>(p)];
      batch[n].as2 = w.as2[static_cast<std::size_t>(p)];
      if (++n == kChunk) {
        core::merge_arcs(use_avx2, dst, batch, n, 3.0f, false, mc);
        n = 0;
      }
    }
    if (n > 0) core::merge_arcs(use_avx2, dst, batch, n, 3.0f, false, mc);
  }
  return mc.merges;
}

/// Pure filter throughput: the destination list is pre-filled with
/// arrivals far above any candidate and never reset, so every candidate
/// is rejected by the full-list threshold pre-filter. This is the steady
/// state of a saturated pin deep in the timing graph — after the first
/// arcs fill the list, nearly all remaining candidates die at the
/// threshold — and it isolates the 8-wide candidate math (mu/sigma
/// transform + compare) that the SIMD rewrite targets. The survivor
/// (insert) path is measured separately by the fanin workloads above;
/// it is serial small-list maintenance and vectorizes poorly.
std::uint64_t run_merge_saturated(const MergeWorkload& w, bool use_avx2,
                                  const core::TopKView& dst) {
  core::MergeCounters mc;
  constexpr int kChunk = 16;
  core::MergeArc batch[kChunk];
  int n = 0;
  for (std::int32_t p = 0; p < w.parents; ++p) {
    batch[n].par = w.parent(p);
    batch[n].am = w.am[static_cast<std::size_t>(p)];
    batch[n].as2 = w.as2[static_cast<std::size_t>(p)];
    if (++n == kChunk) {
      core::merge_arcs(use_avx2, dst, batch, n, 3.0f, false, mc);
      n = 0;
    }
  }
  if (n > 0) core::merge_arcs(use_avx2, dst, batch, n, 3.0f, false, mc);
  return mc.prunes;
}

/// The pre-refactor baseline for BM_MergeSoAvsAoS: entries interleaved
/// per candidate (array-of-struct) and the seed engine's per-candidate
/// loop — compute arrival, check against the full-list minimum, insert.
struct AosEntry {
  float arr, mu, sig;
  std::int32_t sp;
};

struct AosWorkload {
  std::int32_t k;
  std::vector<AosEntry> entries;  // parent p's entries at [p*k, p*k + cnt)
  explicit AosWorkload(const MergeWorkload& w) : k(w.k) {
    entries.resize(static_cast<std::size_t>(w.parents) *
                   static_cast<std::size_t>(w.k));
    for (std::int32_t p = 0; p < w.parents; ++p) {
      const std::size_t b = static_cast<std::size_t>(p) * w.stride;
      for (std::int32_t j = 0; j < w.k; ++j) {
        auto& e = entries[static_cast<std::size_t>(p * w.k + j)];
        const auto idx = b + static_cast<std::size_t>(j);
        e.arr = w.arr[idx];
        e.mu = w.mu[idx];
        e.sig = w.sig[idx];
        e.sp = w.sp[idx];
      }
    }
  }
};

std::uint64_t run_merge_aos(const MergeWorkload& w, const AosWorkload& aos,
                            const core::TopKView& dst) {
  std::uint64_t merges = 0;
  for (std::int32_t p0 = 0; p0 + w.fanin <= w.parents; p0 += w.fanin) {
    *dst.count = 0;
    for (std::int32_t f = 0; f < w.fanin; ++f) {
      const std::int32_t p = p0 + f;
      const float a = w.am[static_cast<std::size_t>(p)];
      const float v = w.as2[static_cast<std::size_t>(p)];
      const std::int32_t n = w.cnt[static_cast<std::size_t>(p)];
      const AosEntry* es = &aos.entries[static_cast<std::size_t>(p * aos.k)];
      for (std::int32_t j = 0; j < n; ++j) {
        const float cmu = es[j].mu + a;
        const float csig = std::sqrt(es[j].sig * es[j].sig + v);
        const float carr = cmu + 3.0f * csig;
        ++merges;
        if (*dst.count == dst.k && carr <= dst.arr[*dst.count - 1]) continue;
        core::topk_insert(dst, carr, cmu, csig, es[j].sp);
      }
    }
  }
  return merges;
}

/// Scratch destination list sized for the workload's K.
struct DstScratch {
  std::vector<float> a, m, s;
  std::vector<std::int32_t> sp;
  std::int32_t count = 0;
  std::int32_t k;
  explicit DstScratch(std::int32_t k_in) : k(k_in) {
    a.resize(static_cast<std::size_t>(k));
    m.resize(a.size());
    s.resize(a.size());
    sp.resize(a.size());
  }
  core::TopKView view() {
    return {a.data(), m.data(), s.data(), sp.data(), k, &count};
  }
  /// Fills the list with arrivals far above any workload candidate (tags
  /// no candidate carries), for the saturated filter-throughput runs.
  void saturate() {
    std::fill(a.begin(), a.end(), 1e9f);
    std::fill(m.begin(), m.end(), 1e9f);
    std::fill(s.begin(), s.end(), 1.0f);
    for (std::int32_t j = 0; j < k; ++j) sp[static_cast<std::size_t>(j)] = -1000 - j;
    count = k;
  }
};

// Per merged candidate the kernel reads the parent's mu + sig plane slots
// (8 B); insert/compare traffic against the small resident dst list is not
// counted. This is the number the SoA layout is supposed to improve, so
// GB/s here is plane-read throughput.
constexpr std::int64_t kMergeBytesPerCand = 8;

void BM_MergeTopK(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const bool use_avx2 = state.range(1) != 0;
  if (use_avx2 && !avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  // Reconvergent tag pool (2K shared startpoints): the engine's common
  // case, where most candidates resolve in the in-list tag scan.
  const MergeWorkload w(k, 4096, 2 * k);
  DstScratch dst(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_merge_soa(w, use_avx2, dst.view()));
  }
  state.SetItemsProcessed(state.iterations() * w.candidates());
  state.SetBytesProcessed(state.iterations() * w.candidates() *
                          kMergeBytesPerCand);
  state.SetLabel(use_avx2 ? "avx2" : "scalar");
}
BENCHMARK(BM_MergeTopK)
    ->ArgsProduct({{4, 8, 16, 32}, {0, 1}})
    ->ArgNames({"k", "avx2"});

void BM_MergeSaturated(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const bool use_avx2 = state.range(1) != 0;
  if (use_avx2 && !avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  const MergeWorkload w(k, 4096, 2 * k);
  DstScratch dst(k);
  dst.saturate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_merge_saturated(w, use_avx2, dst.view()));
  }
  state.SetItemsProcessed(state.iterations() * w.candidates());
  state.SetBytesProcessed(state.iterations() * w.candidates() *
                          kMergeBytesPerCand);
  state.SetLabel(use_avx2 ? "avx2" : "scalar");
}
BENCHMARK(BM_MergeSaturated)
    ->ArgsProduct({{16, 32}, {0, 1}})
    ->ArgNames({"k", "avx2"});

void BM_MergeSoAvsAoS(benchmark::State& state) {
  // layout: 0 = interleaved AoS entries + the seed per-candidate loop,
  //         1 = SoA planes + scalar batch kernel,
  //         2 = SoA planes + AVX2 batch kernel.
  const auto layout = static_cast<int>(state.range(0));
  if (layout == 2 && !avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  static const MergeWorkload w(16, 4096, 32);
  static const AosWorkload aos(w);
  DstScratch dst(w.k);
  for (auto _ : state) {
    if (layout == 0) {
      benchmark::DoNotOptimize(run_merge_aos(w, aos, dst.view()));
    } else {
      benchmark::DoNotOptimize(run_merge_soa(w, layout == 2, dst.view()));
    }
  }
  state.SetItemsProcessed(state.iterations() * w.candidates());
  state.SetBytesProcessed(state.iterations() * w.candidates() *
                          kMergeBytesPerCand);
  state.SetLabel(layout == 0 ? "aos" : (layout == 1 ? "soa" : "soa-avx2"));
}
BENCHMARK(BM_MergeSoAvsAoS)->Arg(0)->Arg(1)->Arg(2);

// ---- backward kernel --------------------------------------------------------

/// Synthetic backward phase 1: `slots` fanin slots gathering the top-1
/// entry of random parents out of a stride-padded SoA plane, exactly the
/// engine's backward_cand call shape.
struct BackwardWorkload {
  std::int32_t stride = 16;
  std::int32_t parents = 4096;
  std::int32_t slots = 65536;
  std::vector<float> tk_mu, tk_sig;
  std::vector<std::int32_t> tk_cnt, ci;
  std::vector<float> amu, asig;
  std::vector<float> out;

  BackwardWorkload() {
    const std::size_t plane =
        static_cast<std::size_t>(parents) * static_cast<std::size_t>(stride);
    tk_mu.resize(plane);
    tk_sig.resize(plane);
    tk_cnt.resize(static_cast<std::size_t>(parents));
    std::mt19937 rng(77);
    std::uniform_real_distribution<float> v(0.0f, 1000.0f);
    std::uniform_int_distribution<std::int32_t> pick(0, parents - 1);
    for (std::size_t i = 0; i < plane; ++i) {
      tk_mu[i] = v(rng);
      tk_sig[i] = 1.0f + 0.001f * v(rng);
    }
    for (std::int32_t p = 0; p < parents; ++p) {
      // ~3% empty parents exercise the -inf blend path.
      tk_cnt[static_cast<std::size_t>(p)] = (p % 32 == 0) ? 0 : 4;
    }
    ci.resize(static_cast<std::size_t>(slots));
    amu.resize(ci.size());
    asig.resize(ci.size());
    out.assign(ci.size(), 0.0f);
    for (auto& c : ci) c = pick(rng);
    for (auto& x : amu) x = 0.05f * v(rng);
    for (auto& x : asig) x = 0.001f * v(rng);
  }
};

void BM_BackwardCand(benchmark::State& state) {
  const bool use_avx2 = state.range(0) != 0;
  if (use_avx2 && !avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  static BackwardWorkload w;
  for (auto _ : state) {
    core::backward_cand(use_avx2, w.tk_mu.data(), w.tk_sig.data(),
                        w.tk_cnt.data(), w.ci.data(), w.stride, w.amu.data(),
                        w.asig.data(), w.slots, 3.0f, w.out.data());
    benchmark::DoNotOptimize(w.out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.slots);
  // Per slot: ci + gathered cnt/mu/sig + amu + asig reads, cand write
  // (7 * 4 B).
  state.SetBytesProcessed(state.iterations() * w.slots * 28);
  state.SetLabel(use_avx2 ? "avx2" : "scalar");
}
BENCHMARK(BM_BackwardCand)->Arg(0)->Arg(1)->ArgNames({"avx2"});

void BM_BackwardTns(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = 16;
  core::Engine engine(*b.sta, opt);
  engine.run_forward();
  for (auto _ : state) {
    engine.run_backward(core::GradientMetric::kTns);
    benchmark::DoNotOptimize(engine.arc_gradients().data());
  }
}
BENCHMARK(BM_BackwardTns)->Unit(benchmark::kMillisecond);

void BM_BackwardTnsIncremental(benchmark::State& state) {
  // The ECO inner loop with gradients: annotate one cell's deltas, sparse
  // forward, then backward. After the first iteration the softmax weights
  // are warm and run_backward only recomputes the frontier pins touched by
  // the sparse forward (BackwardStats::weights_reused).
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = 16;
  core::Engine engine(*b.sta, opt);
  engine.run_forward();
  engine.run_backward(core::GradientMetric::kTns);
  util::Rng rng(4);
  const auto changes = gen::random_changelist(*b.gd.design, *b.graph, rng, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ch = changes[i++ % changes.size()];
    const auto deltas = b.calc->estimate_eco(ch.cell, ch.new_libcell);
    engine.annotate(deltas);
    engine.run_forward_incremental();
    engine.run_backward(core::GradientMetric::kTns);
    benchmark::DoNotOptimize(engine.arc_gradients().data());
  }
  state.counters["weight_pins_reused"] = static_cast<double>(
      engine.last_backward_stats().weight_pins_reused);
  state.counters["weight_pins_recomputed"] = static_cast<double>(
      engine.last_backward_stats().weight_pins_recomputed);
}
BENCHMARK(BM_BackwardTnsIncremental)->Unit(benchmark::kMillisecond);

// ---- forward kernel: O(K^2 * L) sweep ---------------------------------------

void BM_ForwardTopK(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = static_cast<int>(state.range(0));
  core::Engine engine(*b.sta, opt);
  for (auto _ : state) {
    engine.run_forward();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
  state.counters["levels"] =
      static_cast<double>(engine.num_levels());
  state.counters["pins"] = static_cast<double>(b.gd.design->num_pins());
}
BENCHMARK(BM_ForwardTopK)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_ForwardIncrementalEco(benchmark::State& state) {
  // A single-cell ECO re-annotation followed by a level-windowed forward:
  // the common inner-loop operation of the Fig. 7 evaluation flow.
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = 16;
  core::Engine engine(*b.sta, opt);
  engine.run_forward();
  util::Rng rng(4);
  const auto changes = gen::random_changelist(*b.gd.design, *b.graph, rng, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ch = changes[i++ % changes.size()];
    const auto deltas = b.calc->estimate_eco(ch.cell, ch.new_libcell);
    engine.annotate(deltas);
    engine.run_forward_incremental();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
}
BENCHMARK(BM_ForwardIncrementalEco)->Unit(benchmark::kMillisecond);

void BM_ForwardGrainSweep(benchmark::State& state) {
  // Sweep of the parallel chunk grain of the per-level pin kernel (an
  // EngineOptions knob): too small pays ticket-dispatch overhead per tiny
  // chunk, too large starves workers on shallow levels.
  bench::Bundle& b = shared_bundle();
  core::EngineOptions opt;
  opt.top_k = 16;
  opt.parallel_grain = static_cast<int>(state.range(0));
  core::Engine engine(*b.sta, opt);
  for (auto _ : state) {
    engine.run_forward();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
  state.counters["grain"] = static_cast<double>(opt.parallel_grain);
}
BENCHMARK(BM_ForwardGrainSweep)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// ---- MCMM corners axis ------------------------------------------------------

void BM_ForwardCorners(benchmark::State& state) {
  // One C-corner engine propagating every corner per level sweep vs C
  // independent single-corner passes: the MCMM scaling claim. Items
  // processed are corner-endpoint evaluations, so items/s is directly the
  // per-corner throughput whatever C is.
  bench::Bundle& b = shared_bundle();
  const int c = static_cast<int>(state.range(0));
  core::EngineOptions opt;
  opt.top_k = 16;
  opt.corners = bench::mcmm_corners(c);
  core::Engine engine(*b.sta, opt);
  for (auto _ : state) {
    engine.run_forward();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
  const auto eps = static_cast<std::int64_t>(b.graph->endpoints().size());
  state.SetItemsProcessed(state.iterations() * c * eps);
  state.counters["corners"] = static_cast<double>(c);
}
BENCHMARK(BM_ForwardCorners)->Arg(1)->Arg(2)->Arg(4)
    ->ArgNames({"corners"})->Unit(benchmark::kMillisecond);

void BM_ForwardIncrementalCorners(benchmark::State& state) {
  // The ECO inner loop on a C-corner engine: broadcast annotate + the
  // per-corner frontier-sparse passes.
  bench::Bundle& b = shared_bundle();
  const int c = static_cast<int>(state.range(0));
  core::EngineOptions opt;
  opt.top_k = 16;
  opt.corners = bench::mcmm_corners(c);
  core::Engine engine(*b.sta, opt);
  engine.run_forward();
  util::Rng rng(4);
  const auto changes = gen::random_changelist(*b.gd.design, *b.graph, rng, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ch = changes[i++ % changes.size()];
    const auto deltas = b.calc->estimate_eco(ch.cell, ch.new_libcell);
    engine.annotate(deltas);
    engine.run_forward_incremental();
    benchmark::DoNotOptimize(engine.endpoint_slacks().data());
  }
  state.counters["corners"] = static_cast<double>(c);
}
BENCHMARK(BM_ForwardIncrementalCorners)->Arg(1)->Arg(2)->Arg(4)
    ->ArgNames({"corners"})->Unit(benchmark::kMillisecond);

// ---- thread-pool dispatch ---------------------------------------------------

void BM_PoolLaunchOverhead(benchmark::State& state) {
  // Cost of one parallel_for_chunks launch with near-zero work per chunk:
  // measures the ticket-dispatch handshake (publish, wake, join, drain)
  // that is paid once per timing level.
  auto& pool = util::ThreadPool::global();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for_chunks(
        std::size_t{0}, n,
        [&](std::size_t lo, std::size_t hi) {
          sink.fetch_add(hi - lo, std::memory_order_relaxed);
        },
        64);
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PoolLaunchOverhead)->Arg(512)->Arg(4096)->Arg(65536);

// ---- reference-engine costs -------------------------------------------------

void BM_GoldenFullUpdate(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  for (auto _ : state) {
    b.sta->update_full();
  }
}
BENCHMARK(BM_GoldenFullUpdate)->Unit(benchmark::kMillisecond);

void BM_GoldenIncrementalResize(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  b.sta->update_full();
  util::Rng rng(99);
  const auto changes =
      gen::random_changelist(*b.gd.design, *b.graph, rng, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ch = changes[i++ % changes.size()];
    b.gd.design->resize_cell(ch.cell, ch.new_libcell);
    const auto ids = b.calc->update_for_resize(ch.cell, b.sta->mutable_delays());
    b.sta->update_incremental(ids);
  }
  state.counters["pins_touched"] =
      static_cast<double>(b.sta->last_update_pin_count());
}
BENCHMARK(BM_GoldenIncrementalResize)->Unit(benchmark::kMillisecond);

void BM_EngineInitialization(benchmark::State& state) {
  bench::Bundle& b = shared_bundle();
  b.sta->update_full();
  for (auto _ : state) {
    core::EngineOptions opt;
    opt.top_k = 16;
    core::Engine engine(*b.sta, opt);
    benchmark::DoNotOptimize(&engine);
  }
}
BENCHMARK(BM_EngineInitialization)->Unit(benchmark::kMillisecond);

// ---- BENCH_kernels.json -----------------------------------------------------

/// Median-of-reps timings of the hot kernels, written through BenchReport
/// so CI archives scalar/AVX2 throughput (and their ratio) per commit.
/// Returns false when the MCMM bit-identity gate fails (a C-corner engine
/// must reproduce C independent single-corner engines byte for byte).
bool write_kernel_report() {
  bool ok = true;
  bench::BenchReport report("kernels");
  const int reps = 15;

  const auto add_merge = [&](const std::string& label, const MergeWorkload& w,
                             const AosWorkload* aos, bool use_avx2) {
    DstScratch dst(w.k);
    const auto cands = static_cast<double>(w.candidates());
    const bench::TimingStats ts = bench::time_repeated(reps, [&] {
      if (aos != nullptr) {
        benchmark::DoNotOptimize(run_merge_aos(w, *aos, dst.view()));
      } else {
        benchmark::DoNotOptimize(run_merge_soa(w, use_avx2, dst.view()));
      }
    });
    report.add_row(label,
                   {{"median_sec", ts.median_sec},
                    {"min_sec", ts.min_sec},
                    {"mcand_per_sec", cands / ts.median_sec / 1e6},
                    {"gbytes_per_sec", cands *
                                           static_cast<double>(
                                               kMergeBytesPerCand) /
                                           ts.median_sec / 1e9},
                    {"reps", static_cast<double>(ts.reps)}});
    return ts.median_sec;
  };

  // Headline rows: saturated filter throughput — a full list rejecting
  // every candidate at the threshold, the steady state of deep pins and
  // the regime the 8-wide candidate math targets. Measured per K on the
  // production merge_arcs entry point.
  for (const std::int32_t k : {16, 32}) {
    const MergeWorkload w(k, 4096, 2 * k);
    DstScratch sat_scalar(k);
    DstScratch sat_avx2(k);
    sat_scalar.saturate();
    sat_avx2.saturate();
    const std::string tag = "merge_k" + std::to_string(k) + "_saturated";
    const auto add_sat = [&](const std::string& label, bool use_avx2,
                             DstScratch& dst) {
      const auto cands = static_cast<double>(w.candidates());
      const bench::TimingStats ts = bench::time_repeated(reps, [&] {
        benchmark::DoNotOptimize(
            run_merge_saturated(w, use_avx2, dst.view()));
      });
      report.add_row(label,
                     {{"median_sec", ts.median_sec},
                      {"min_sec", ts.min_sec},
                      {"mcand_per_sec", cands / ts.median_sec / 1e6},
                      {"gbytes_per_sec",
                       cands * static_cast<double>(kMergeBytesPerCand) /
                           ts.median_sec / 1e9},
                      {"reps", static_cast<double>(ts.reps)}});
      return ts.median_sec;
    };
    const double scalar_sec = add_sat(tag + "_scalar", false, sat_scalar);
    if (avx2_available()) {
      const double avx2_sec = add_sat(tag + "_avx2", true, sat_avx2);
      report.add_row(tag + "_speedup",
                     {{"avx2_over_scalar", scalar_sec / avx2_sec}});
      std::printf(
          "merge k=%d saturated: scalar %.3f ms, avx2 %.3f ms (%.2fx)\n", k,
          scalar_sec * 1e3, avx2_sec * 1e3, scalar_sec / avx2_sec);
    }
  }

  // Mixed-regime rows: reconvergent tags (pool 2K) at K = 16 and the
  // engine-default K = 32, each at two fanins. fanin = 8 is fill-heavy
  // (the destination list is rebuilt often, so sorted-insert traffic —
  // serial small-list maintenance paid by both flavors — dominates);
  // fanin = 32 amortizes the fill over more filtered arcs. A disjoint-tag
  // variant rides along so the sorted-insert path is also tracked.
  for (const std::int32_t k : {16, 32}) {
    for (const std::int32_t fanin : {8, 32}) {
      const MergeWorkload w(k, 4096, 2 * k, fanin);
      const std::string tag =
          "merge_k" + std::to_string(k) + "_f" + std::to_string(fanin);
      if (fanin == 8) {
        const AosWorkload aos(w);
        add_merge(tag + "_aos", w, &aos, false);
      }
      const double scalar_sec = add_merge(tag + "_scalar", w, nullptr, false);
      if (avx2_available()) {
        const double avx2_sec = add_merge(tag + "_avx2", w, nullptr, true);
        report.add_row(tag + "_speedup",
                       {{"avx2_over_scalar", scalar_sec / avx2_sec}});
        std::printf("merge k=%d fanin=%d: scalar %.3f ms, avx2 %.3f ms "
                    "(%.2fx)\n",
                    k, fanin, scalar_sec * 1e3, avx2_sec * 1e3,
                    scalar_sec / avx2_sec);
      }
    }
  }
  {
    const MergeWorkload w(16, 4096, 4096 * 16);
    const double scalar_sec =
        add_merge("merge_k16_disjoint_scalar", w, nullptr, false);
    if (avx2_available()) {
      const double avx2_sec =
          add_merge("merge_k16_disjoint_avx2", w, nullptr, true);
      report.add_row("merge_k16_disjoint_speedup",
                     {{"avx2_over_scalar", scalar_sec / avx2_sec}});
    }
  }

  BackwardWorkload bw;
  const auto add_backward = [&](const std::string& label, bool use_avx2) {
    const bench::TimingStats ts = bench::time_repeated(reps, [&] {
      core::backward_cand(use_avx2, bw.tk_mu.data(), bw.tk_sig.data(),
                          bw.tk_cnt.data(), bw.ci.data(), bw.stride,
                          bw.amu.data(), bw.asig.data(), bw.slots, 3.0f,
                          bw.out.data());
      benchmark::DoNotOptimize(bw.out.data());
    });
    report.add_row(label,
                   {{"median_sec", ts.median_sec},
                    {"mslot_per_sec",
                     static_cast<double>(bw.slots) / ts.median_sec / 1e6},
                    {"reps", static_cast<double>(ts.reps)}});
    return ts.median_sec;
  };
  const double bw_scalar = add_backward("backward_cand_scalar", false);
  if (avx2_available()) {
    const double bw_avx2 = add_backward("backward_cand_avx2", true);
    report.add_row("backward_cand_speedup",
                   {{"avx2_over_scalar", bw_scalar / bw_avx2}});
  }

  // MCMM corners axis: one C-corner forward vs C times the C=1 cost. The
  // per_corner_sec column is the number the corner-major layout is supposed
  // to improve (shared level sweep, frontier bookkeeping and structure
  // reads amortized across corners), and each multi-corner engine is gated
  // bit-identical against independently built single-corner engines before
  // its timing is trusted.
  {
    bench::Bundle& b = shared_bundle();
    const int fwd_reps = 7;
    const auto eps = static_cast<double>(b.graph->endpoints().size());
    double c1_sec = 0.0;
    for (const int c : {1, 2, 4}) {
      core::EngineOptions opt;
      opt.top_k = 16;
      opt.corners = bench::mcmm_corners(c);
      core::Engine engine(*b.sta, opt);
      engine.run_forward();
      std::size_t bad = 0;
      for (int ci = 0; ci < c; ++ci) {
        core::EngineOptions sopt;
        sopt.top_k = 16;
        sopt.corners = {bench::mcmm_corners(c)[static_cast<std::size_t>(ci)]};
        core::Engine solo(*b.sta, sopt);
        solo.run_forward();
        bad += bench::count_corner_mismatches(engine, ci, solo);
      }
      if (bad != 0) {
        std::printf("ERROR: forward_corners c=%d: %zu endpoint slacks differ "
                    "from independent single-corner engines\n", c, bad);
        ok = false;
      }
      const bench::TimingStats ts = bench::time_repeated(fwd_reps, [&] {
        engine.run_forward();
        benchmark::DoNotOptimize(engine.endpoint_slacks().data());
      });
      if (c == 1) c1_sec = ts.median_sec;
      report.add_row("forward_corners_c" + std::to_string(c),
                     {{"median_sec", ts.median_sec},
                      {"corners", static_cast<double>(c)},
                      {"per_corner_sec", ts.median_sec / c},
                      {"corner_endpoints_per_sec",
                       c * eps / ts.median_sec},
                      {"ratio_vs_c1",
                       c1_sec > 0.0 ? ts.median_sec / c1_sec : 0.0},
                      {"bit_identical", bad == 0 ? 1.0 : 0.0},
                      {"reps", static_cast<double>(ts.reps)}});
      std::printf("forward corners c=%d: %.3f ms (%.3f ms/corner, %s)\n", c,
                  ts.median_sec * 1e3, ts.median_sec / c * 1e3,
                  bad == 0 ? "bit-identical" : "MISMATCH");
    }
  }

  report.add_row("dispatch",
                 {{"compiled_avx2", util::simd::compiled_avx2() ? 1.0 : 0.0},
                  {"cpu_avx2", util::simd::cpu_has_avx2() ? 1.0 : 0.0},
                  {"resolved_avx2",
                   util::simd::resolve(util::simd::SimdMode::kAuto) ? 1.0
                                                                    : 0.0}});
  report.write();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_kernel_report() ? 0 : 1;
}
