#pragma once

// Shared harness helpers for the table/figure benchmark binaries.

#include <cstdio>
#include <memory>
#include <string>

#include "gen/logic_block.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "timing/clock.hpp"
#include "timing/delay_calc.hpp"
#include "timing/graph.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace insta::bench {

/// A fully prepared experiment bundle: generated design, timing graph,
/// calculated delays, tuned clock period, and an updated golden engine.
struct Bundle {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;
  double gen_sec = 0.0;
  double golden_update_sec = 0.0;  ///< one full golden update_timing
};

/// Builds a bundle from a logic-block spec. The golden engine uses the
/// exact CPPR-safe pruning window (max credit * 1.5 + 10 ps) so reference
/// results stay exact while propagation remains tractable.
inline Bundle make_bundle(const gen::LogicBlockSpec& spec,
                          double violate_fraction) {
  Bundle b;
  util::Stopwatch sw;
  b.gd = gen::build_logic_block(spec);
  b.graph = std::make_unique<timing::TimingGraph>(*b.gd.design,
                                                  b.gd.constraints.clock_root);
  b.calc = std::make_unique<timing::DelayCalculator>(*b.gd.design, *b.graph);
  b.calc->compute_all(b.delays);
  gen::tune_clock_period(*b.graph, b.gd.constraints, b.delays,
                         violate_fraction);
  b.gen_sec = sw.elapsed_sec();

  const timing::ClockAnalysis probe(*b.graph, b.delays,
                                    b.gd.constraints.nsigma);
  ref::GoldenOptions gopt;
  gopt.prune_window = probe.max_credit() * 1.5 + 10.0;
  b.sta = std::make_unique<ref::GoldenSta>(*b.graph, b.gd.constraints,
                                           b.delays, gopt);
  util::Stopwatch usw;
  b.sta->update_full();
  b.golden_update_sec = usw.elapsed_sec();
  return b;
}

/// "4M cells, 15M pins" style size string with k/M suffixes.
inline std::string size_str(std::size_t n) {
  char buf[32];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.0fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace insta::bench
