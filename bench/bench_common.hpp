#pragma once

// Shared harness helpers for the table/figure benchmark binaries.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "gen/logic_block.hpp"
#include "gen/tune.hpp"
#include "ref/golden_sta.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "timing/clock.hpp"
#include "timing/delay_calc.hpp"
#include "timing/graph.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

// Build provenance baked in by bench/CMakeLists.txt; the fallbacks keep the
// header self-contained for ad-hoc builds.
#ifndef INSTA_GIT_DESCRIBE
#define INSTA_GIT_DESCRIBE "unknown"
#endif
#ifndef INSTA_BUILD_FLAGS
#define INSTA_BUILD_FLAGS ""
#endif

namespace insta::bench {

/// ISO-8601 UTC timestamp of the call ("2026-08-09T12:34:56Z").
inline std::string iso8601_utc_now() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// The machine's hostname ("unknown" on failure).
inline std::string host_name() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

/// Compiler id + version string of the translation unit.
inline std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Wall-clock statistics of `reps` runs of one operation. Median is the
/// headline number (robust to one-off scheduler hiccups); min approximates
/// the noise-free cost; mean shows drift across repetitions.
struct TimingStats {
  double median_sec = 0.0;
  double min_sec = 0.0;
  double mean_sec = 0.0;
  int reps = 0;
};

/// Times `fn` `reps` times (no warm-up — add your own if the first run
/// amortizes setup).
inline TimingStats time_repeated(int reps, const std::function<void()>& fn) {
  TimingStats ts;
  ts.reps = std::max(reps, 1);
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(ts.reps));
  for (int i = 0; i < ts.reps; ++i) {
    util::Stopwatch sw;
    fn();
    secs.push_back(sw.elapsed_sec());
  }
  std::sort(secs.begin(), secs.end());
  ts.min_sec = secs.front();
  const std::size_t n = secs.size();
  ts.median_sec =
      (n % 2 == 1) ? secs[n / 2] : 0.5 * (secs[n / 2 - 1] + secs[n / 2]);
  for (const double s : secs) ts.mean_sec += s;
  ts.mean_sec /= static_cast<double>(n);
  return ts;
}

/// A fully prepared experiment bundle: generated design, timing graph,
/// calculated delays, tuned clock period, and an updated golden engine.
struct Bundle {
  gen::GeneratedDesign gd;
  std::unique_ptr<timing::TimingGraph> graph;
  std::unique_ptr<timing::DelayCalculator> calc;
  timing::ArcDelays delays;
  std::unique_ptr<ref::GoldenSta> sta;
  double gen_sec = 0.0;
  double golden_update_sec = 0.0;      ///< median full golden update_timing
  double golden_update_min_sec = 0.0;  ///< fastest repetition
  int golden_update_reps = 0;          ///< repetitions behind the numbers
};

/// Builds a bundle from a logic-block spec. The golden engine uses the
/// exact CPPR-safe pruning window (max credit * 1.5 + 10 ps) so reference
/// results stay exact while propagation remains tractable.
/// `update_reps` full golden updates are timed (median + min reported);
/// the default of 1 keeps large-block bundles affordable.
inline Bundle make_bundle(const gen::LogicBlockSpec& spec,
                          double violate_fraction, int update_reps = 1) {
  Bundle b;
  util::Stopwatch sw;
  b.gd = gen::build_logic_block(spec);
  b.graph = std::make_unique<timing::TimingGraph>(*b.gd.design,
                                                  b.gd.constraints.clock_root);
  b.calc = std::make_unique<timing::DelayCalculator>(*b.gd.design, *b.graph);
  b.calc->compute_all(b.delays);
  gen::tune_clock_period(*b.graph, b.gd.constraints, b.delays,
                         violate_fraction);
  b.gen_sec = sw.elapsed_sec();

  const timing::ClockAnalysis probe(*b.graph, b.delays,
                                    b.gd.constraints.nsigma);
  ref::GoldenOptions gopt;
  gopt.prune_window = probe.max_credit() * 1.5 + 10.0;
  b.sta = std::make_unique<ref::GoldenSta>(*b.graph, b.gd.constraints,
                                           b.delays, gopt);
  const TimingStats ts =
      time_repeated(update_reps, [&] { b.sta->update_full(); });
  b.golden_update_sec = ts.median_sec;
  b.golden_update_min_sec = ts.min_sec;
  b.golden_update_reps = ts.reps;
  return b;
}

/// Machine-readable benchmark output: named rows of numeric results, each
/// embedding the telemetry snapshot taken when the row was added. write()
/// produces BENCH_<name>.json next to the working directory so CI and
/// notebooks can diff runs without scraping the ASCII tables.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Adds one result row. Thread-compatible (call from the main thread).
  void add_row(const std::string& label,
               const std::vector<std::pair<std::string, double>>& values) {
    util::ThreadPool::global().publish_metrics();
    Row row;
    row.label = label;
    row.values = values;
    row.metrics_json =
        telemetry::MetricsRegistry::global().snapshot().to_json();
    rows_.push_back(std::move(row));
  }

  /// Writes BENCH_<name>.json into `dir` ("." by default). Returns false on
  /// I/O failure.
  bool write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream f(path, std::ios::binary);
    if (!f) return false;
    // Provenance header: when/where/how the numbers were produced, so two
    // BENCH_*.json files can be compared with their build context in hand.
    f << "{\n  \"bench\": \"" << telemetry::json_escape(name_)
      << "\",\n  \"generated_at\": \"" << iso8601_utc_now()
      << "\",\n  \"host\": \"" << telemetry::json_escape(host_name())
      << "\",\n  \"build\": {\"compiler\": \""
      << telemetry::json_escape(compiler_id()) << "\", \"flags\": \""
      << telemetry::json_escape(INSTA_BUILD_FLAGS) << "\", \"git\": \""
      << telemetry::json_escape(INSTA_GIT_DESCRIBE)
      << "\"},\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      f << (i == 0 ? "\n" : ",\n") << "    {\"label\": \""
        << telemetry::json_escape(r.label) << "\"";
      for (const auto& [key, value] : r.values) {
        f << ", \"" << telemetry::json_escape(key)
          << "\": " << telemetry::json_number(value);
      }
      f << ", \"metrics\": " << r.metrics_json << "    }";
    }
    f << "\n  ]\n}\n";
    if (f.good()) {
      std::printf("wrote %s\n", path.c_str());
    }
    return f.good();
  }

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> values;
    std::string metrics_json;
  };
  std::string name_;
  std::vector<Row> rows_;
};

/// The corner sets of the MCMM benchmark axis (C in {1, 2, 4}): corner 0
/// is the byte-exact default scale set, the others bracket it. Every
/// harness uses this one list so C-corner runs are comparable across
/// bench binaries and bit-identity checks can rebuild the same solo
/// engines.
inline std::vector<core::CornerSpec> mcmm_corners(int c) {
  static const std::vector<core::CornerSpec> all = {
      {"typ", 1.0f, 1.0f},
      {"fast", 0.92f, 0.95f},
      {"slow", 1.08f, 1.05f},
      {"cold", 1.15f, 1.10f},
  };
  return {all.begin(), all.begin() + std::min<std::size_t>(
                                         static_cast<std::size_t>(c),
                                         all.size())};
}

/// Bitwise comparison of one corner of `multi` against a single-corner
/// engine built from the same spec. Returns mismatching endpoint count.
inline std::size_t count_corner_mismatches(const core::Engine& multi,
                                           std::int32_t corner,
                                           const core::Engine& solo) {
  const auto sm = multi.endpoint_slacks(corner);
  const auto ss = solo.endpoint_slacks();
  std::size_t bad = 0;
  for (std::size_t e = 0; e < ss.size(); ++e) {
    const bool fm = std::isfinite(sm[e]);
    const bool fs = std::isfinite(ss[e]);
    if (fm != fs || (fm && sm[e] != ss[e])) ++bad;
  }
  return bad;
}

/// "4M cells, 15M pins" style size string with k/M suffixes.
inline std::string size_str(std::size_t n) {
  char buf[32];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.0fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace insta::bench
