// Batched what-if scenarios vs the sequential Transaction loop.
//
// The workload is the sizing inner loop's question: "which of these B
// candidate ECOs is best?" The sequential evaluator answers it the way the
// sizers did before ScenarioBatch — begin_edit / annotate / sparse pass /
// read summary / rollback per candidate (the rollback's restoring sparse
// pass is part of the honest sequential cost). The batched evaluator
// answers all B at once over copy-on-write overlays, scenario-parallel
// across the thread pool.
//
// Every iteration is also a correctness gate: each scenario's SlackSummary
// must compare == (bitwise doubles) against its sequential Transaction
// reference, and the binary exits non-zero on any mismatch. CI runs it
// with --small.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/scenario_batch.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace insta;

  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  bench::print_header(
      "Batched what-if scenarios vs the sequential Transaction loop\n"
      "B candidate ECOs evaluated (a) one at a time through begin_edit/\n"
      "annotate/run_forward_incremental/rollback, (b) in one\n"
      "ScenarioBatch::evaluate call. Every scenario is gated bitwise\n"
      "against its sequential reference.");

  gen::LogicBlockSpec spec = gen::fig7_block_spec();
  if (small) {
    spec.name = "block-2-small";
    spec.num_gates = 6000;
    spec.num_ffs = 600;
    spec.depth = 14;
  }
  bench::Bundle world = bench::make_bundle(spec, 0.08);
  std::printf("design: %zu cells, %zu pins%s\n", world.gd.design->num_cells(),
              world.gd.design->num_pins(), small ? " (--small preset)" : "");

  core::EngineOptions eopt;
  eopt.top_k = 8;
  core::Engine engine(*world.sta, eopt);
  engine.run_forward();

  const int kReps = small ? 3 : 5;
  const std::vector<std::size_t> batch_sizes = {1, 8, 64};

  util::Rng rng(2028);
  const auto changes = gen::random_changelist(
      *world.gd.design, *world.graph, rng,
      static_cast<int>(batch_sizes.back()));
  std::vector<std::vector<timing::ArcDelta>> all_scenarios;
  all_scenarios.reserve(changes.size());
  for (const auto& ch : changes) {
    all_scenarios.push_back(world.calc->estimate_eco(ch.cell, ch.new_libcell));
  }
  // Top up by repetition if the design ran out of resizable cells.
  for (std::size_t i = 0; all_scenarios.size() < batch_sizes.back(); ++i) {
    all_scenarios.push_back(all_scenarios[i % changes.size()]);
  }

  core::ScenarioBatch batch(engine);

  util::Table table({"B", "sequential (ms)", "batch (ms)", "speedup",
                     "scenarios/sec", "mean frontier", "mean overlay (KiB)",
                     "mismatches"});
  bench::BenchReport report("scenario_batch");
  std::size_t total_mismatches = 0;
  double speedup_b64 = 0.0;

  for (const std::size_t b : batch_sizes) {
    const std::vector<std::vector<timing::ArcDelta>> scenarios(
        all_scenarios.begin(),
        all_scenarios.begin() + static_cast<std::ptrdiff_t>(b));

    // Correctness pass (untimed): sequential references, then both batch
    // strategies gated summary-by-summary.
    std::vector<core::SlackSummary> ref;
    ref.reserve(b);
    for (const auto& deltas : scenarios) {
      auto tx = engine.begin_edit();
      tx.annotate(deltas);
      engine.run_forward_incremental();
      ref.push_back(engine.summary(core::Mode::kSetup, 0));
      tx.rollback();
    }
    std::size_t mismatches = 0;
    for (const core::ScenarioStrategy strat :
         {core::ScenarioStrategy::kScenarioParallel,
          core::ScenarioStrategy::kLevelParallel}) {
      core::ScenarioBatchOptions opt;
      opt.strategy = strat;
      core::ScenarioBatch check(engine, opt);
      const auto results = check.evaluate(scenarios);
      for (std::size_t i = 0; i < b; ++i) {
        if (!(results[i].setup == ref[i])) {
          std::printf("ERROR: B=%zu scenario %zu (%s): batch summary "
                      "differs from sequential reference\n",
                      b, i,
                      strat == core::ScenarioStrategy::kScenarioParallel
                          ? "scenario-parallel"
                          : "level-parallel");
          ++mismatches;
        }
      }
    }
    total_mismatches += mismatches;

    // Timed: sequential Transaction loop.
    const bench::TimingStats seq = bench::time_repeated(kReps, [&] {
      for (const auto& deltas : scenarios) {
        auto tx = engine.begin_edit();
        tx.annotate(deltas);
        engine.run_forward_incremental();
        (void)engine.summary(core::Mode::kSetup, 0);
        tx.rollback();
      }
    });

    // Timed: one batched evaluate (kAuto picks the dispatch). The batch
    // object is reused so workspace allocation amortizes like it does in
    // the sizers.
    std::vector<core::ScenarioResult> results;
    const bench::TimingStats bat = bench::time_repeated(
        kReps, [&] { results = batch.evaluate(scenarios); });

    double frontier = 0.0, overlay = 0.0;
    for (const core::ScenarioResult& r : results) {
      frontier += static_cast<double>(r.frontier_pins);
      overlay += static_cast<double>(r.overlay_bytes);
    }
    frontier /= static_cast<double>(b);
    overlay /= static_cast<double>(b);

    const double speedup =
        bat.median_sec > 0.0 ? seq.median_sec / bat.median_sec : 0.0;
    const double per_sec =
        bat.median_sec > 0.0 ? static_cast<double>(b) / bat.median_sec : 0.0;
    if (b == 64) speedup_b64 = speedup;
    table.add_row({std::to_string(b), util::fmt("%.2f", seq.median_sec * 1e3),
                   util::fmt("%.2f", bat.median_sec * 1e3),
                   util::fmt("%.2fx", speedup), util::fmt("%.0f", per_sec),
                   util::fmt("%.0f", frontier),
                   util::fmt("%.1f", overlay / 1024.0),
                   std::to_string(mismatches)});
    report.add_row("B=" + std::to_string(b),
                   {{"batch_size", static_cast<double>(b)},
                    {"sequential_ms", seq.median_sec * 1e3},
                    {"batch_ms", bat.median_sec * 1e3},
                    {"speedup_x", speedup},
                    {"scenarios_per_sec", per_sec},
                    {"mean_frontier_pins", frontier},
                    {"mean_overlay_bytes", overlay},
                    {"mismatches", static_cast<double>(mismatches)}});
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nspeedup at B=64: %.2fx (target >= 2x over the sequential "
              "Transaction loop)\n",
              speedup_b64);
  report.write();

  if (total_mismatches != 0) {
    std::printf("\nFAILED: %zu scenario summaries differ from their "
                "sequential references\n",
                total_mismatches);
    return 1;
  }
  return 0;
}
