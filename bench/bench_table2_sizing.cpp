// Reproduces Table II: gate sizing for timing optimization, INSTA-Size vs
// the baseline signoff sizer (the PrimeTime default engine's role) on four
// IWLS-like designs. Rows report WNS/TNS/violation count/cells sized plus
// bRT (INSTA backward-kernel runtime) and the baseline's runtime.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/presets.hpp"
#include "size/baseline_sizer.hpp"
#include "size/insta_size.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

}  // namespace

int main() {
  bench::print_header(
      "Table II reproduction: INSTA-Size vs baseline signoff sizer on\n"
      "IWLS-like designs. Paper shape: INSTA-Size reaches equal-or-better\n"
      "TNS while sizing far fewer cells (-35%..-68%), with backward passes\n"
      "in the tens of milliseconds.");

  util::Table table({"design (#pins)", "method", "WNS (ps)", "TNS (ps)",
                     "#vio eps", "#cells sized", "runtime"});
  for (const auto& spec : gen::table2_iwls_specs()) {
    // Two identical worlds (same seed) so both sizers start from the same
    // initial state.
    bench::Bundle a = bench::make_bundle(spec, 0.12);
    bench::Bundle p = bench::make_bundle(spec, 0.12);

    size::InstaSizer insta_sizer(*a.gd.design, *a.graph, *a.calc, *a.sta, {});
    const size::SizerResult ra = insta_sizer.run();

    size::BaselineSizer base_sizer(*p.gd.design, *p.graph, *p.calc, *p.sta, {});
    const size::SizerResult rp = base_sizer.run();

    char name[96];
    std::snprintf(name, sizeof(name), "%s (%s)", spec.name.c_str(),
                  bench::size_str(a.gd.design->num_pins()).c_str());
    table.add_row({name, "initial state", util::fmt("%.2f", ra.initial_wns),
                   util::fmt("%.2f", ra.initial_tns),
                   std::to_string(ra.initial_violations), "-", "-"});
    char rt[48];
    std::snprintf(rt, sizeof(rt), "RT=%.1fs", rp.runtime_sec);
    table.add_row({"", "baseline (PT role)", util::fmt("%.2f", rp.final_wns),
                   util::fmt("%.2f", rp.final_tns),
                   std::to_string(rp.final_violations),
                   std::to_string(rp.cells_sized), rt});
    char rt2[64];
    std::snprintf(rt2, sizeof(rt2), "bRT=%.3fs, RT=%.1fs", ra.backward_sec,
                  ra.runtime_sec);
    char sized[48];
    const double delta =
        rp.cells_sized > 0
            ? 100.0 * (ra.cells_sized - rp.cells_sized) / rp.cells_sized
            : 0.0;
    std::snprintf(sized, sizeof(sized), "%d (%+.0f%%)", ra.cells_sized, delta);
    table.add_row({"", "INSTA-Size", util::fmt("%.2f", ra.final_wns),
                   util::fmt("%.2f", ra.final_tns),
                   std::to_string(ra.final_violations), sized, rt2});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
