// Reproduces Fig. 6: endpoint-slack correlation of INSTA vs the reference
// engine on block-1, comparing Top-K = 1 (no CPPR handling) against
// Top-K = 128 (full CPPR handling), including the runtime/memory trade-off
// and a text rendition of the scatter plot (golden vs INSTA slack density,
// mismatch binned by endpoint logic depth).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "gen/presets.hpp"
#include "util/memory.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

struct Run {
  int top_k;
  double corr = 0.0;
  util::MismatchStats mm;
  double fwd_sec = 0.0;
  double mem_gb = 0.0;
  std::vector<double> ref, test;
  std::vector<int> level;  // endpoint max level
};

Run run_k(bench::Bundle& b, int k) {
  Run r;
  r.top_k = k;
  core::EngineOptions opt;
  opt.top_k = k;
  core::Engine engine(*b.sta, opt);
  engine.run_forward();
  util::Stopwatch sw;
  engine.run_forward();
  r.fwd_sec = sw.elapsed_sec();
  r.mem_gb = util::to_gib(engine.memory_bytes());
  for (std::size_t e = 0; e < b.graph->endpoints().size(); ++e) {
    const double g = b.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const float m = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(g) || !std::isfinite(m)) continue;
    r.ref.push_back(g);
    r.test.push_back(static_cast<double>(m));
    r.level.push_back(b.graph->level_of(b.graph->endpoints()[e].pin));
  }
  r.corr = util::pearson(r.ref, r.test);
  r.mm = util::mismatch(r.ref, r.test);
  return r;
}

void print_scatter(const Run& r) {
  // 20x10 text density plot of (golden slack, INSTA slack).
  double lo = 1e30, hi = -1e30;
  for (const double v : r.ref) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return;
  constexpr int kW = 48, kH = 16;
  std::vector<int> grid(kW * kH, 0);
  for (std::size_t i = 0; i < r.ref.size(); ++i) {
    const int x = std::clamp(
        static_cast<int>((r.ref[i] - lo) / (hi - lo) * (kW - 1)), 0, kW - 1);
    const int y = std::clamp(
        static_cast<int>((r.test[i] - lo) / (hi - lo) * (kH - 1)), 0, kH - 1);
    ++grid[y * kW + x];
  }
  std::printf("  INSTA slack vs reference slack (45-degree line = perfect):\n");
  for (int y = kH - 1; y >= 0; --y) {
    std::printf("  |");
    for (int x = 0; x < kW; ++x) {
      const int c = grid[y * kW + x];
      std::printf("%c", c == 0 ? ' ' : (c < 3 ? '.' : (c < 10 ? 'o' : '#')));
    }
    std::printf("|\n");
  }
  std::printf("   %-+10.0f ps %*s %+.0f ps\n", lo, kW - 18, "", hi);
}

void print_depth_mismatch(const Run& r) {
  int max_level = 1;
  for (const int l : r.level) max_level = std::max(max_level, l);
  constexpr int kBuckets = 6;
  std::vector<double> worst(kBuckets, 0.0), sum(kBuckets, 0.0);
  std::vector<int> cnt(kBuckets, 0);
  for (std::size_t i = 0; i < r.ref.size(); ++i) {
    const int bkt = std::min(kBuckets - 1, r.level[i] * kBuckets / (max_level + 1));
    const double d = std::abs(r.ref[i] - r.test[i]);
    worst[bkt] = std::max(worst[bkt], d);
    sum[bkt] += d;
    ++cnt[bkt];
  }
  std::printf("  mismatch by endpoint depth (paper colors dots by level):\n");
  for (int bkt = 0; bkt < kBuckets; ++bkt) {
    if (cnt[bkt] == 0) continue;
    std::printf("    levels %3d..%3d: n=%5d avg=%.2e ps worst=%.3f ps\n",
                bkt * (max_level + 1) / kBuckets,
                (bkt + 1) * (max_level + 1) / kBuckets - 1, cnt[bkt],
                sum[bkt] / cnt[bkt], worst[bkt]);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 6 reproduction: Top-K=1 vs Top-K=128 on block-1\n"
      "Paper: K=1 already near-perfect (avg |mismatch| 0.02 ps); K=128 "
      "improves CPPR\naccuracy at a runtime/memory cost.");
  bench::Bundle b = bench::make_bundle(insta::gen::table1_block_specs()[0], 0.08);
  std::printf("block-1: %zu cells, %zu pins, %zu endpoints\n",
              b.gd.design->num_cells(), b.gd.design->num_pins(),
              b.graph->endpoints().size());

  util::Table table({"Top-K", "ep slack corr", "avg |mm| ps", "worst |mm| ps",
                     "forward (s)", "memory (GB)"});
  for (const int k : {1, 128}) {
    const Run r = run_k(b, k);
    table.add_row({std::to_string(k), util::format_correlation(r.corr),
                   util::fmt("%.2e", r.mm.avg_abs),
                   util::fmt("%.3f", r.mm.max_abs),
                   util::fmt("%.4f", r.fwd_sec), util::fmt("%.3f", r.mem_gb)});
    std::printf("\n-- Top-K = %d --\n", k);
    print_scatter(r);
    print_depth_mismatch(r);
  }
  std::printf("\n");
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
