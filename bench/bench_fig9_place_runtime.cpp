// Reproduces Fig. 9: detailed per-phase runtime of a timing-update
// iteration on the largest placement benchmark (superblue10), comparing
// the net-weighting baseline's timer cost against INSTA-Place's pipeline:
// timer update (OpenTimer's role) -> data transfer (INSTA initialization)
// -> forward -> backward -> arc weighting. The paper reports a ~50%
// overhead for INSTA-Place from the timer<->INSTA data transfer.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/placement_bench.hpp"
#include "gen/tune.hpp"
#include "place/placer.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

place::PlaceResult run_mode(const gen::PlacementBenchSpec& spec, double period,
                            place::TimingMode mode) {
  gen::PlacementBench bench = gen::build_placement_bench(spec);
  bench.gd.constraints.clock_period = period;
  place::PlacerOptions opt;
  opt.mode = mode;
  place::GlobalPlacer placer(bench, opt);
  return placer.run();
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 9 reproduction: per-phase runtime of a timing-update iteration\n"
      "on the largest benchmark (superblue10). Paper: INSTA-Place adds ~50%\n"
      "over the net-weighting timer iteration, dominated by data transfer.");

  const auto specs = gen::table3_superblue_specs();
  const auto& spec = specs[5];  // superblue10, the largest
  // Tune the period on the timing-oblivious placement, as Table III does.
  double period;
  {
    gen::PlacementBench bench = gen::build_placement_bench(spec);
    place::PlacerOptions opt;
    opt.mode = place::TimingMode::kNone;
    place::GlobalPlacer placer(bench, opt);
    (void)placer.run();
    timing::TimingGraph graph(*bench.gd.design, bench.gd.constraints.clock_root);
    timing::DelayModelParams dm;
    dm.use_placement = true;
    timing::DelayCalculator calc(*bench.gd.design, graph, dm);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    period = gen::tune_clock_period(graph, bench.gd.constraints, delays,
                                    bench.violate_fraction);
    std::printf("superblue10: %zu cells, %zu pins, period %.0f ps\n",
                bench.gd.design->num_cells(), bench.gd.design->num_pins(),
                period);
  }

  const auto nw = run_mode(spec, period, place::TimingMode::kNetWeight);
  const auto ip = run_mode(spec, period, place::TimingMode::kInstaPlace);

  auto per_refresh = [](double sec, int refreshes) {
    return refreshes > 0 ? sec / refreshes * 1e3 : 0.0;
  };
  util::Table table({"phase (ms per timing-update iteration)", "net-weighting",
                     "INSTA-Place"});
  table.add_row({"timer full update (OpenTimer role)",
                 util::fmt("%.1f", per_refresh(nw.phases.timer_sec,
                                               nw.phases.refreshes)),
                 util::fmt("%.1f", per_refresh(ip.phases.timer_sec,
                                               ip.phases.refreshes))});
  table.add_row({"data transfer (INSTA initialization)", "-",
                 util::fmt("%.1f", per_refresh(ip.phases.transfer_sec,
                                               ip.phases.refreshes))});
  table.add_row({"INSTA forward", "-",
                 util::fmt("%.1f", per_refresh(ip.phases.forward_sec,
                                               ip.phases.refreshes))});
  table.add_row({"INSTA backward", "-",
                 util::fmt("%.1f", per_refresh(ip.phases.backward_sec,
                                               ip.phases.refreshes))});
  table.add_row({"weighting bookkeeping",
                 util::fmt("%.1f", per_refresh(nw.phases.weighting_sec,
                                               nw.phases.refreshes)),
                 util::fmt("%.1f", per_refresh(ip.phases.weighting_sec,
                                               ip.phases.refreshes))});
  std::fputs(table.str().c_str(), stdout);

  const double nw_iter = per_refresh(
      nw.phases.timer_sec + nw.phases.weighting_sec, nw.phases.refreshes);
  const double ip_iter =
      per_refresh(ip.phases.timer_sec + ip.phases.transfer_sec +
                      ip.phases.forward_sec + ip.phases.backward_sec +
                      ip.phases.weighting_sec,
                  ip.phases.refreshes);
  std::printf(
      "\ntotal per timing-update iteration: net-weighting %.1f ms, "
      "INSTA-Place %.1f ms (%.0f%% overhead; paper reports ~50%%)\n",
      nw_iter, ip_iter, (ip_iter / nw_iter - 1.0) * 100.0);
  std::printf("gradient-descent time over the whole run: NW %.2f s, "
              "INSTA-Place %.2f s\n",
              nw.phases.descent_sec, ip.phases.descent_sec);
  return 0;
}
