// Extension experiment: min-mode (hold) analysis — the other half of
// signoff STA that the paper's setup-only evaluation omits. Mirrors the
// Table I correlation protocol for hold slacks: INSTA's early Top-K
// propagation vs the golden engine's exact per-startpoint minima.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "gen/presets.hpp"
#include "timing/clock.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace insta;
  bench::print_header(
      "Extension: hold (min-mode) correlation — INSTA early Top-K vs the\n"
      "exact reference, on the Table I blocks (TopK=32, setup+hold).");

  util::Table table({"design", "hold corr", "avg |mm| ps", "worst |mm| ps",
                     "#hold vio", "fwd setup+hold (s)"});
  auto specs = gen::table1_block_specs();
  specs.resize(3);  // the three largest are representative and keep this fast
  for (const auto& spec : specs) {
    // Build with hold enabled (bench_common's bundle is setup-only).
    gen::GeneratedDesign gd = gen::build_logic_block(spec);
    timing::TimingGraph graph(*gd.design, gd.constraints.clock_root);
    timing::DelayCalculator calc(*gd.design, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    gen::tune_clock_period(graph, gd.constraints, delays, 0.08);
    const timing::ClockAnalysis probe(graph, delays, gd.constraints.nsigma);
    ref::GoldenOptions gopt;
    gopt.prune_window = probe.max_credit() * 1.5 + 10.0;
    gopt.enable_hold = true;
    ref::GoldenSta sta(graph, gd.constraints, delays, gopt);
    sta.update_full();

    core::EngineOptions eopt;
    eopt.top_k = 32;
    eopt.enable_hold = true;
    core::Engine engine(sta, eopt);
    engine.run_forward();
    util::Stopwatch sw;
    engine.run_forward();
    const double fwd = sw.elapsed_sec();

    std::vector<double> a, b;
    for (std::size_t e = 0; e < graph.endpoints().size(); ++e) {
      const double g = sta.hold_slack(static_cast<timing::EndpointId>(e));
      const float m =
          engine.endpoint_hold_slack(static_cast<timing::EndpointId>(e));
      if (std::isfinite(g) && std::isfinite(m)) {
        a.push_back(g);
        b.push_back(static_cast<double>(m));
      }
    }
    const util::MismatchStats mm = util::mismatch(a, b);
    table.add_row({spec.name, util::format_correlation(util::pearson(a, b)),
                   util::fmt("%.2e", mm.avg_abs),
                   util::fmt("%.3f", mm.max_abs),
                   std::to_string(sta.num_hold_violations()),
                   util::fmt("%.3f", fwd)});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
