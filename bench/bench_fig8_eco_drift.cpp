// Reproduces Fig. 8: INSTA's correlation impact when estimate_eco
// re-annotation is used throughout a gate-sizing flow without
// re-synchronizing from the reference engine. The reference side commits
// exact delay updates (including the 1-hop slew ripple), while INSTA only
// sees the frozen-neighbourhood estimate_eco deltas — the correlation decay
// from "before" to "after" is the estimate_eco drift the paper shows, and
// re-initializing INSTA (the 10-minute re-sync the paper mentions) restores
// the near-perfect correlation.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

struct Corr {
  double corr = 0.0;
  util::MismatchStats mm;
};

Corr measure(const bench::Bundle& b, core::Engine& engine) {
  std::vector<double> ref, test;
  for (std::size_t e = 0; e < b.graph->endpoints().size(); ++e) {
    const double g = b.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const float m = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(g) || !std::isfinite(m)) continue;
    ref.push_back(g);
    test.push_back(static_cast<double>(m));
  }
  return {util::pearson(ref, test), util::mismatch(ref, test)};
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 8 reproduction: correlation before/after a sizing flow with\n"
      "estimate_eco re-annotation (no re-sync). Paper: correlation remains\n"
      "high enough to drive optimization; minor drift appears after the flow.");

  constexpr int kResizes = 600;
  bench::Bundle b = bench::make_bundle(gen::fig7_block_spec(), 0.08);
  std::printf("design: %zu cells, %zu pins, %d resizes in the flow\n",
              b.gd.design->num_cells(), b.gd.design->num_pins(), kResizes);

  core::EngineOptions eopt;
  eopt.top_k = 16;
  core::Engine engine(*b.sta, eopt);
  engine.run_forward();
  const Corr before = measure(b, engine);

  util::Rng rng(515);
  const auto changes =
      gen::random_changelist(*b.gd.design, *b.graph, rng, kResizes);
  for (const auto& ch : changes) {
    // INSTA sees the frozen-neighbourhood estimate only...
    const auto deltas = b.calc->estimate_eco(ch.cell, ch.new_libcell);
    engine.annotate(deltas);
    // ...while the reference world commits the exact update.
    b.gd.design->resize_cell(ch.cell, ch.new_libcell);
    b.calc->update_for_resize(ch.cell, b.sta->mutable_delays());
  }
  b.sta->update_full();
  engine.run_forward();
  const Corr after = measure(b, engine);

  // Re-synchronizing (re-initializing from the reference) restores accuracy.
  core::Engine resynced(*b.sta, eopt);
  resynced.run_forward();
  const Corr resync = measure(b, resynced);

  util::Table table({"state", "ep slack corr", "avg |mm| ps", "worst |mm| ps"});
  auto row = [&](const char* name, const Corr& c) {
    table.add_row({name, util::format_correlation(c.corr),
                   util::fmt("%.2e", c.mm.avg_abs),
                   util::fmt("%.3f", c.mm.max_abs)});
  };
  row("before flow", before);
  row("after flow (eco drift)", after);
  row("after re-sync", resync);
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nTNS view: reference %.1f ps | INSTA (drifted) %.1f ps | "
      "INSTA (re-synced) %.1f ps\n",
      b.sta->tns(), engine.tns(), resynced.tns());
  return 0;
}
