// Reproduces Fig. 7: incremental STA runtime per sizing iteration over the
// exact same changelist, across four evaluators:
//   * "reference full"  — the golden engine doing a full update_timing
//                         (PrimeTime's role in the paper),
//   * "in-house incr."  — the golden engine's incremental cone update
//                         (the in-house CPU STA's role),
//   * "INSTA"           — estimate_eco re-annotation + full INSTA forward
//                         (timing includes the re-annotation, as the paper's
//                         INSTA bar does),
//   * "INSTA sparse"    — the same annotations consumed by the
//                         frontier-sparse run_forward_incremental() pass.
//
// The paper measures 14x/25x GPU-vs-CPU gaps; on this all-CPU substrate the
// *ratios* below are what one core yields, and EXPERIMENTS.md discusses
// where the GPU substitution moves them.
//
// A second phase measures single-arc ECOs: the median sparse incremental
// pass against the median dense forward pass, with the frontier telemetry
// counters recorded per run. The binary exits non-zero if the sparse pass
// ever diverges bitwise from the dense pass — CI runs it with --small as a
// correctness gate, not just a timer.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

/// Bitwise comparison of two engines' slack arrays. Returns the number of
/// mismatching endpoints (0 = identical).
std::size_t count_slack_mismatches(const core::Engine& a,
                                   const core::Engine& b) {
  const auto sa = a.endpoint_slacks();
  const auto sb = b.endpoint_slacks();
  std::size_t bad = 0;
  for (std::size_t e = 0; e < sa.size(); ++e) {
    const bool fa = std::isfinite(sa[e]);
    const bool fb = std::isfinite(sb[e]);
    if (fa != fb || (fa && sa[e] != sb[e])) ++bad;
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  bench::print_header(
      "Fig. 7 reproduction: incremental STA runtime per sizing iteration\n"
      "Same changelist replayed against four evaluators; paper shape:\n"
      "INSTA 25x faster than reference update_timing, 14x faster than the\n"
      "in-house incremental engine (GPU vs 32-thread CPU). The sparse\n"
      "column is the frontier-sparse run_forward_incremental() pass.");

  const int kIterations = small ? 6 : 16;
  constexpr int kResizesPerIter = 8;

  // Four independent but identical worlds (same seed).
  gen::LogicBlockSpec spec = gen::fig7_block_spec();
  if (small) {
    spec.name = "block-2-small";
    spec.num_gates = 6000;
    spec.num_ffs = 600;
    spec.depth = 14;
  }
  bench::Bundle full = bench::make_bundle(spec, 0.08);
  bench::Bundle incr = bench::make_bundle(spec, 0.08);
  bench::Bundle ins = bench::make_bundle(spec, 0.08);
  std::printf("design: %zu cells, %zu pins%s\n", full.gd.design->num_cells(),
              full.gd.design->num_pins(), small ? " (--small preset)" : "");

  core::EngineOptions eopt;
  eopt.top_k = 8;
  core::Engine engine(*ins.sta, eopt);
  engine.run_forward();
  // The sparse engine shares INSTA's world: it receives the exact same
  // annotations but refreshes timing through the frontier-sparse pass.
  core::Engine sparse(*ins.sta, eopt);
  sparse.run_forward();

  util::Rng rng(2027);
  const auto changes = gen::random_changelist(
      *full.gd.design, *full.graph, rng,
      (kIterations + 1) * kResizesPerIter);

  util::Table table({"iter", "reference full (ms)", "in-house incr (ms)",
                     "INSTA eco+forward (ms)", "INSTA sparse incr (ms)",
                     "|dTNS| INSTA vs ref (ps)"});
  bench::BenchReport report("fig7_incremental");
  std::size_t mismatches = 0;
  double sum_full = 0.0, sum_incr = 0.0, sum_insta = 0.0, sum_sparse = 0.0;
  for (int it = 0; it < kIterations; ++it) {
    const auto* batch = &changes[static_cast<std::size_t>(it * kResizesPerIter)];

    // Reference full update.
    double t_full;
    {
      util::Stopwatch sw;
      for (int i = 0; i < kResizesPerIter; ++i) {
        full.gd.design->resize_cell(batch[i].cell, batch[i].new_libcell);
        full.calc->update_for_resize(batch[i].cell, full.sta->mutable_delays());
      }
      full.sta->update_full();
      t_full = sw.elapsed_sec();
    }

    // In-house incremental cone update.
    double t_incr;
    {
      util::Stopwatch sw;
      std::vector<timing::ArcId> changed;
      for (int i = 0; i < kResizesPerIter; ++i) {
        incr.gd.design->resize_cell(batch[i].cell, batch[i].new_libcell);
        const auto ids =
            incr.calc->update_for_resize(batch[i].cell, incr.sta->mutable_delays());
        changed.insert(changed.end(), ids.begin(), ids.end());
      }
      incr.sta->update_incremental(changed);
      t_incr = sw.elapsed_sec();
    }

    // INSTA: estimate_eco re-annotation + full forward propagation. The
    // timed portion covers estimate_eco, annotate and the forward pass (as
    // the paper's INSTA bar does); the flow's own netlist bookkeeping
    // (committing the resize) is untimed. The sparse engine consumes the
    // identical deltas, so its annotate + incremental pass is timed
    // separately against the same workload.
    double t_insta = 0.0;
    double t_sparse = 0.0;
    {
      for (int i = 0; i < kResizesPerIter; ++i) {
        util::Stopwatch sw;
        const auto deltas = ins.calc->estimate_eco(
            batch[i].cell, batch[i].new_libcell);
        engine.annotate(deltas);
        t_insta += sw.elapsed_sec();
        util::Stopwatch sw2;
        sparse.annotate(deltas);
        t_sparse += sw2.elapsed_sec();
        // Keep INSTA's world consistent for the next estimate_eco call.
        ins.gd.design->resize_cell(batch[i].cell, batch[i].new_libcell);
        ins.calc->update_for_resize(batch[i].cell, ins.sta->mutable_delays());
      }
      util::Stopwatch sw;
      engine.run_forward();
      t_insta += sw.elapsed_sec();
      util::Stopwatch sw2;
      sparse.run_forward_incremental();
      t_sparse += sw2.elapsed_sec();
    }

    // Bitwise equivalence gate: the sparse pass must reproduce the dense
    // pass exactly on every iteration.
    const std::size_t bad = count_slack_mismatches(engine, sparse);
    if (bad != 0) {
      std::printf("ERROR: iter %d: %zu endpoint slacks differ between the "
                  "sparse and dense passes\n",
                  it, bad);
      mismatches += bad;
    }

    const core::Engine::SparseStats& st = sparse.last_pass_stats();
    sum_full += t_full;
    sum_incr += t_incr;
    sum_insta += t_insta;
    sum_sparse += t_sparse;
    table.add_row({std::to_string(it), util::fmt("%.1f", t_full * 1e3),
                   util::fmt("%.1f", t_incr * 1e3),
                   util::fmt("%.1f", t_insta * 1e3),
                   util::fmt("%.2f", t_sparse * 1e3),
                   util::fmt("%.2f", std::abs(engine.tns() - full.sta->tns()))});
    report.add_row("iter " + std::to_string(it),
                   {{"reference_full_ms", t_full * 1e3},
                    {"inhouse_incremental_ms", t_incr * 1e3},
                    {"insta_eco_forward_ms", t_insta * 1e3},
                    {"insta_sparse_incremental_ms", t_sparse * 1e3},
                    {"abs_dtns_ps", std::abs(engine.tns() - full.sta->tns())},
                    {"sparse_frontier_pins", static_cast<double>(st.frontier_pins)},
                    {"sparse_early_terminations",
                     static_cast<double>(st.early_terminations)},
                    {"sparse_endpoints_evaluated",
                     static_cast<double>(st.endpoints_evaluated)},
                    {"sparse_endpoints_skipped",
                     static_cast<double>(st.endpoints_skipped)},
                    {"slack_mismatches", static_cast<double>(bad)},
                    {"golden_update_reps",
                     static_cast<double>(full.golden_update_reps)}});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\naverages: reference full %.1f ms | in-house incremental %.1f ms | "
      "INSTA %.1f ms | INSTA sparse %.2f ms\n",
      sum_full / kIterations * 1e3, sum_incr / kIterations * 1e3,
      sum_insta / kIterations * 1e3, sum_sparse / kIterations * 1e3);
  std::printf("speed-up of INSTA vs reference full update: %.1fx\n",
              sum_full / sum_insta);
  std::printf("speed-up of INSTA vs in-house incremental: %.2fx\n",
              sum_incr / sum_insta);
  std::printf("speed-up of sparse incremental vs INSTA full forward: %.2fx\n",
              sum_insta / sum_sparse);

  // ---- phase 2: single-arc ECO medians -------------------------------------
  // The acceptance target of the frontier-sparse pass: for a one-arc
  // annotation, the median sparse incremental pass must beat the median
  // dense forward pass by a wide margin (>= 3x against the pre-sparse
  // engine, whose incremental pass re-swept every level above the dirty
  // one and re-evaluated every endpoint).
  bench::print_header("Single-arc ECO: sparse incremental vs dense forward");
  const int kEcoReps = small ? 12 : 32;
  std::vector<double> dense_ms, sparse_ms;
  std::uint64_t total_frontier = 0, total_early = 0, total_eps = 0,
                total_skipped = 0;
  const auto* eco_batch =
      &changes[static_cast<std::size_t>(kIterations * kResizesPerIter)];
  for (int r = 0; r < kEcoReps; ++r) {
    const auto& ch = eco_batch[r % kResizesPerIter];
    const auto deltas = ins.calc->estimate_eco(ch.cell, ch.new_libcell);
    if (deltas.empty()) continue;
    // One arc only: the sparsest possible ECO.
    const std::span<const timing::ArcDelta> one(&deltas[r % deltas.size()], 1);
    engine.annotate(one);
    sparse.annotate(one);
    {
      util::Stopwatch sw;
      engine.run_forward();
      dense_ms.push_back(sw.elapsed_sec() * 1e3);
    }
    {
      util::Stopwatch sw;
      sparse.run_forward_incremental();
      sparse_ms.push_back(sw.elapsed_sec() * 1e3);
    }
    const std::size_t bad = count_slack_mismatches(engine, sparse);
    if (bad != 0) {
      std::printf("ERROR: single-arc ECO %d: %zu slack mismatches\n", r, bad);
      mismatches += bad;
    }
    const core::Engine::SparseStats& st = sparse.last_pass_stats();
    total_frontier += st.frontier_pins;
    total_early += st.early_terminations;
    total_eps += st.endpoints_evaluated;
    total_skipped += st.endpoints_skipped;
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    if (n == 0) return 0.0;
    return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  const double med_dense = median(dense_ms);
  const double med_sparse = median(sparse_ms);
  const double speedup = med_sparse > 0.0 ? med_dense / med_sparse : 0.0;
  const double n_runs = static_cast<double>(sparse_ms.size());
  std::printf("single-arc ECO over %zu runs:\n", sparse_ms.size());
  std::printf("  median dense forward:       %8.3f ms\n", med_dense);
  std::printf("  median sparse incremental:  %8.3f ms\n", med_sparse);
  std::printf("  speed-up:                   %8.2fx\n", speedup);
  std::printf("  mean frontier pins %.1f | early terminations %.1f | "
              "endpoints evaluated %.1f | endpoints skipped %.1f\n",
              total_frontier / n_runs, total_early / n_runs,
              total_eps / n_runs, total_skipped / n_runs);
  report.add_row("single_arc_eco",
                 {{"runs", n_runs},
                  {"median_dense_forward_ms", med_dense},
                  {"median_sparse_incremental_ms", med_sparse},
                  {"speedup_x", speedup},
                  {"mean_frontier_pins", total_frontier / n_runs},
                  {"mean_early_terminations", total_early / n_runs},
                  {"mean_endpoints_evaluated", total_eps / n_runs},
                  {"mean_endpoints_skipped", total_skipped / n_runs}});

  // ---- phase 3: MCMM corners axis ------------------------------------------
  // One C-corner engine replaying single-arc ECOs (broadcast annotate +
  // frontier-sparse refresh of every corner) for C in {1, 2, 4}. The
  // per-corner median is the number the corner-major layout amortizes;
  // every multi-corner run is gated bitwise against C independently built
  // single-corner engines replaying the same edits, feeding the same
  // non-zero-exit mismatch counter as the dense/sparse gate above.
  bench::print_header(
      "MCMM corners axis: C-corner sparse incremental per single-arc ECO");
  const int kCornerReps = small ? 8 : 16;
  double corners_c1_ms = 0.0;
  for (const int c : {1, 2, 4}) {
    core::EngineOptions copt;
    copt.top_k = 8;
    copt.corners = bench::mcmm_corners(c);
    core::Engine multi(*full.sta, copt);
    multi.run_forward();
    std::vector<core::Engine> solos;
    for (int ci = 0; ci < c; ++ci) {
      core::EngineOptions sopt;
      sopt.top_k = 8;
      sopt.corners = {copt.corners[static_cast<std::size_t>(ci)]};
      solos.emplace_back(*full.sta, sopt);
      solos.back().run_forward();
    }
    std::vector<double> corner_ms;
    std::size_t corner_bad = 0;
    for (int r = 0; r < kCornerReps; ++r) {
      const auto& ch = eco_batch[r % kResizesPerIter];
      const auto deltas = full.calc->estimate_eco(ch.cell, ch.new_libcell);
      if (deltas.empty()) continue;
      const std::span<const timing::ArcDelta> one(&deltas[r % deltas.size()],
                                                  1);
      multi.annotate(one);
      util::Stopwatch sw;
      multi.run_forward_incremental();
      corner_ms.push_back(sw.elapsed_sec() * 1e3);
      for (int ci = 0; ci < c; ++ci) {
        auto& solo = solos[static_cast<std::size_t>(ci)];
        solo.annotate(one);
        solo.run_forward_incremental();
        corner_bad += bench::count_corner_mismatches(multi, ci, solo);
      }
    }
    if (corner_bad != 0) {
      std::printf("ERROR: corners c=%d: %zu endpoint slacks differ from "
                  "independent single-corner engines\n", c, corner_bad);
      mismatches += corner_bad;
    }
    const double med = median(corner_ms);
    if (c == 1) corners_c1_ms = med;
    const double per_corner = med / c;
    std::printf("  C=%d: median sparse incremental %8.3f ms "
                "(%.3f ms/corner, %.1f corner-ECOs/s, %s)\n",
                c, med, per_corner,
                per_corner > 0.0 ? 1e3 / per_corner : 0.0,
                corner_bad == 0 ? "bit-identical" : "MISMATCH");
    report.add_row("corners_c" + std::to_string(c),
                   {{"runs", static_cast<double>(corner_ms.size())},
                    {"corners", static_cast<double>(c)},
                    {"median_sparse_incremental_ms", med},
                    {"per_corner_ms", per_corner},
                    {"corner_ecos_per_sec",
                     per_corner > 0.0 ? 1e3 / per_corner : 0.0},
                    {"ratio_vs_c1",
                     corners_c1_ms > 0.0 ? med / corners_c1_ms : 0.0},
                    {"bit_identical", corner_bad == 0 ? 1.0 : 0.0}});
  }
  report.write();

  if (mismatches != 0) {
    std::printf("\nFAILED: %zu total slack mismatches between sparse and "
                "dense passes\n",
                mismatches);
    return 1;
  }
  return 0;
}
