// Reproduces Fig. 7: incremental STA runtime per sizing iteration over the
// exact same changelist, across three evaluators:
//   * "reference full"  — the golden engine doing a full update_timing
//                         (PrimeTime's role in the paper),
//   * "in-house incr."  — the golden engine's incremental cone update
//                         (the in-house CPU STA's role),
//   * "INSTA"           — estimate_eco re-annotation + full INSTA forward
//                         (timing includes the re-annotation, as the paper's
//                         INSTA bar does).
//
// The paper measures 14x/25x GPU-vs-CPU gaps; on this all-CPU substrate the
// *ratios* below are what one core yields, and EXPERIMENTS.md discusses
// where the GPU substitution moves them.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "gen/changelist.hpp"
#include "gen/presets.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

}  // namespace

int main() {
  bench::print_header(
      "Fig. 7 reproduction: incremental STA runtime per sizing iteration\n"
      "Same changelist replayed against three evaluators; paper shape:\n"
      "INSTA 25x faster than reference update_timing, 14x faster than the\n"
      "in-house incremental engine (GPU vs 32-thread CPU).");

  constexpr int kIterations = 16;
  constexpr int kResizesPerIter = 8;

  // Three independent but identical worlds (same seed).
  const gen::LogicBlockSpec spec = gen::fig7_block_spec();
  bench::Bundle full = bench::make_bundle(spec, 0.08);
  bench::Bundle incr = bench::make_bundle(spec, 0.08);
  bench::Bundle ins = bench::make_bundle(spec, 0.08);
  std::printf("design: %zu cells, %zu pins\n", full.gd.design->num_cells(),
              full.gd.design->num_pins());

  core::EngineOptions eopt;
  eopt.top_k = 8;
  core::Engine engine(*ins.sta, eopt);
  engine.run_forward();

  util::Rng rng(2027);
  const auto changes = gen::random_changelist(
      *full.gd.design, *full.graph, rng, kIterations * kResizesPerIter);

  util::Table table({"iter", "reference full (ms)", "in-house incr (ms)",
                     "INSTA eco+forward (ms)", "|dTNS| INSTA vs ref (ps)"});
  bench::BenchReport report("fig7_incremental");
  double sum_full = 0.0, sum_incr = 0.0, sum_insta = 0.0;
  for (int it = 0; it < kIterations; ++it) {
    const auto* batch = &changes[static_cast<std::size_t>(it * kResizesPerIter)];

    // Reference full update.
    double t_full;
    {
      util::Stopwatch sw;
      for (int i = 0; i < kResizesPerIter; ++i) {
        full.gd.design->resize_cell(batch[i].cell, batch[i].new_libcell);
        full.calc->update_for_resize(batch[i].cell, full.sta->mutable_delays());
      }
      full.sta->update_full();
      t_full = sw.elapsed_sec();
    }

    // In-house incremental cone update.
    double t_incr;
    {
      util::Stopwatch sw;
      std::vector<timing::ArcId> changed;
      for (int i = 0; i < kResizesPerIter; ++i) {
        incr.gd.design->resize_cell(batch[i].cell, batch[i].new_libcell);
        const auto ids =
            incr.calc->update_for_resize(batch[i].cell, incr.sta->mutable_delays());
        changed.insert(changed.end(), ids.begin(), ids.end());
      }
      incr.sta->update_incremental(changed);
      t_incr = sw.elapsed_sec();
    }

    // INSTA: estimate_eco re-annotation + full forward propagation. The
    // timed portion covers estimate_eco, annotate and the forward pass (as
    // the paper's INSTA bar does); the flow's own netlist bookkeeping
    // (committing the resize) is untimed.
    double t_insta = 0.0;
    {
      for (int i = 0; i < kResizesPerIter; ++i) {
        util::Stopwatch sw;
        const auto deltas = ins.calc->estimate_eco(
            batch[i].cell, batch[i].new_libcell);
        engine.annotate(deltas);
        t_insta += sw.elapsed_sec();
        // Keep INSTA's world consistent for the next estimate_eco call.
        ins.gd.design->resize_cell(batch[i].cell, batch[i].new_libcell);
        ins.calc->update_for_resize(batch[i].cell, ins.sta->mutable_delays());
      }
      util::Stopwatch sw;
      engine.run_forward();
      t_insta += sw.elapsed_sec();
    }

    sum_full += t_full;
    sum_incr += t_incr;
    sum_insta += t_insta;
    table.add_row({std::to_string(it), util::fmt("%.1f", t_full * 1e3),
                   util::fmt("%.1f", t_incr * 1e3),
                   util::fmt("%.1f", t_insta * 1e3),
                   util::fmt("%.2f", std::abs(engine.tns() - full.sta->tns()))});
    report.add_row("iter " + std::to_string(it),
                   {{"reference_full_ms", t_full * 1e3},
                    {"inhouse_incremental_ms", t_incr * 1e3},
                    {"insta_eco_forward_ms", t_insta * 1e3},
                    {"abs_dtns_ps", std::abs(engine.tns() - full.sta->tns())},
                    {"golden_update_reps",
                     static_cast<double>(full.golden_update_reps)}});
  }
  std::fputs(table.str().c_str(), stdout);
  report.write();
  std::printf(
      "\naverages: reference full %.1f ms | in-house incremental %.1f ms | "
      "INSTA %.1f ms\n",
      sum_full / kIterations * 1e3, sum_incr / kIterations * 1e3,
      sum_insta / kIterations * 1e3);
  std::printf("speed-up of INSTA vs reference full update: %.1fx\n",
              sum_full / sum_insta);
  std::printf("speed-up of INSTA vs in-house incremental: %.2fx\n",
              sum_incr / sum_insta);
  return 0;
}
