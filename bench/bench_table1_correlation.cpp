// Reproduces Table I: INSTA vs reference-engine endpoint-slack correlation
// on the five correlation blocks (TopK = 32): correlation, INSTA forward
// runtime, engine memory, and average/worst endpoint mismatch.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "gen/presets.hpp"
#include "util/memory.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

void run_block(const gen::LogicBlockSpec& spec, util::Table& table,
               bench::BenchReport& report) {
  bench::Bundle b = bench::make_bundle(spec, 0.08);

  util::Stopwatch init_sw;
  core::EngineOptions opt;
  opt.top_k = 32;
  core::Engine engine(*b.sta, opt);
  const double init_sec = init_sw.elapsed_sec();

  // Warm-up, then median/min-of-3 forward timing.
  engine.run_forward();
  const bench::TimingStats fwd =
      bench::time_repeated(3, [&] { engine.run_forward(); });
  const double fwd_sec = fwd.min_sec;

  std::vector<double> ref, test;
  for (std::size_t e = 0; e < b.graph->endpoints().size(); ++e) {
    const double g = b.sta->endpoint_slack(static_cast<timing::EndpointId>(e));
    const float m = engine.endpoint_slack(static_cast<timing::EndpointId>(e));
    if (!std::isfinite(g) || !std::isfinite(m)) continue;
    ref.push_back(g);
    test.push_back(static_cast<double>(m));
  }
  const double corr = util::pearson(ref, test);
  const util::MismatchStats mm = util::mismatch(ref, test);

  char name[128];
  std::snprintf(name, sizeof(name), "%s (%s, %s, UT=%.1fs)", spec.name.c_str(),
                bench::size_str(b.gd.design->num_cells()).c_str(),
                bench::size_str(b.gd.design->num_pins()).c_str(),
                b.golden_update_sec);
  char mmbuf[64];
  std::snprintf(mmbuf, sizeof(mmbuf), "(%.1e, %.2f)", mm.avg_abs, mm.max_abs);
  table.add_row({name, util::format_correlation(corr),
                 util::fmt("%.4f", fwd_sec),
                 util::fmt("%.3f", util::to_gib(engine.memory_bytes())), mmbuf});
  report.add_row(spec.name,
                 {{"correlation", corr},
                  {"forward_median_sec", fwd.median_sec},
                  {"forward_min_sec", fwd.min_sec},
                  {"forward_reps", static_cast<double>(fwd.reps)},
                  {"golden_update_median_sec", b.golden_update_sec},
                  {"golden_update_min_sec", b.golden_update_min_sec},
                  {"golden_update_reps",
                   static_cast<double>(b.golden_update_reps)},
                  {"memory_gib", util::to_gib(engine.memory_bytes())},
                  {"mismatch_avg_ps", mm.avg_abs},
                  {"mismatch_max_ps", mm.max_abs}});
  std::printf("  %-14s endpoints=%zu levels=%zu init=%.2fs\n",
              spec.name.c_str(), ref.size(), engine.num_levels(), init_sec);
}

}  // namespace

int main() {
  bench::print_header(
      "Table I reproduction: INSTA vs reference engine (signoff mode), "
      "TopK=32\nColumns mirror the paper; UT = reference full update_timing "
      "runtime.\nPaper (A100 GPU, 2-4M cell blocks): corr 0.99992-0.99999, "
      "runtime 0.33-0.39 s,\nmemory 5.8-21.1 GB, mismatch avg 1e-4..1e-3 ps, "
      "worst 3-17 ps.");
  util::Table table({"design (#cells, #pins, UT)", "ep slack corr",
                     "runtime (s)", "memory (GB)", "ep mismatch (avg, wst) ps"});
  insta::bench::BenchReport report("table1_correlation");
  for (const auto& spec : insta::gen::table1_block_specs()) {
    run_block(spec, table, report);
  }
  std::fputs(table.str().c_str(), stdout);
  report.write();
  std::printf("\npeak RSS: %.2f GB\n", insta::util::to_gib(
                                           insta::util::peak_rss_bytes()));
  return 0;
}
