// Reproduces Table III: timing-driven placement after legalization on the
// eight Superblue-like benchmarks, comparing
//   * DP       — the placer with no timing term (DREAMPlace's role),
//   * DP 4.0   — momentum net weighting (the state-of-the-art baseline [19]),
//   * INSTA-Place — arc-gradient weighted distances (Eq. 7-8).
// All three share the identical placer substrate; only the timing term
// differs. The clock period of each benchmark is tuned on the DP result so
// roughly 10% of endpoints violate, then all modes are re-run against that
// fixed constraint.

#include <cstdio>

#include "bench_common.hpp"
#include "gen/placement_bench.hpp"
#include "gen/tune.hpp"
#include "place/placer.hpp"
#include "util/table.hpp"

namespace {

using namespace insta;

place::PlaceResult run_mode(const gen::PlacementBenchSpec& spec,
                            double period, place::TimingMode mode) {
  gen::PlacementBench bench = gen::build_placement_bench(spec);
  bench.gd.constraints.clock_period = period;
  place::PlacerOptions opt;
  opt.mode = mode;
  place::GlobalPlacer placer(bench, opt);
  return placer.run();
}

/// Tunes the clock period on a timing-oblivious placement of the benchmark.
double tune_on_dp_result(const gen::PlacementBenchSpec& spec) {
  gen::PlacementBench bench = gen::build_placement_bench(spec);
  place::PlacerOptions opt;
  opt.mode = place::TimingMode::kNone;
  place::GlobalPlacer placer(bench, opt);
  (void)placer.run();
  timing::TimingGraph graph(*bench.gd.design, bench.gd.constraints.clock_root);
  timing::DelayModelParams dm;
  dm.use_placement = true;
  timing::DelayCalculator calc(*bench.gd.design, graph, dm);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  return gen::tune_clock_period(graph, bench.gd.constraints, delays,
                                bench.violate_fraction);
}

}  // namespace

int main() {
  bench::print_header(
      "Table III reproduction: timing-driven placement after legalization.\n"
      "Paper shape: INSTA-Place beats the net-weighting baseline in both\n"
      "HPWL (avg -5.5%) and TNS (avg -24.7%); plain DP has the best HPWL\n"
      "context but by far the worst TNS. TNS unit: 1e3 ps. HPWL unit: 1e3 um.");

  util::Table table({"benchmark", "DP HPWL", "DP TNS", "NW HPWL", "NW TNS",
                     "INSTA HPWL", "INSTA TNS", "dHPWL vs NW", "dTNS vs NW"});
  double sum_dh = 0.0, sum_dt = 0.0;
  int n = 0;
  for (const auto& spec : gen::table3_superblue_specs()) {
    const double period = tune_on_dp_result(spec);
    const auto dp = run_mode(spec, period, place::TimingMode::kNone);
    const auto nw = run_mode(spec, period, place::TimingMode::kNetWeight);
    const auto ip = run_mode(spec, period, place::TimingMode::kInstaPlace);
    const double dh = (nw.hpwl > 0) ? (ip.hpwl - nw.hpwl) / nw.hpwl * 100.0 : 0;
    const double dt =
        (nw.tns < 0) ? (ip.tns - nw.tns) / (-nw.tns) * 100.0 : 0.0;
    sum_dh += dh;
    sum_dt += dt;  // positive = TNS improved (less negative than NW)
    ++n;
    table.add_row({spec.logic.name, util::fmt("%.1f", dp.hpwl / 1e3),
                   util::fmt("%.2f", dp.tns / 1e3),
                   util::fmt("%.1f", nw.hpwl / 1e3),
                   util::fmt("%.2f", nw.tns / 1e3),
                   util::fmt("%.1f", ip.hpwl / 1e3),
                   util::fmt("%.2f", ip.tns / 1e3), util::fmt("%+.1f%%", dh),
                   util::fmt("%+.1f%%", dt)});
    std::printf("  %-12s period=%.0f ps done\n", spec.logic.name.c_str(),
                period);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\naverages vs net-weighting: HPWL %+.1f%% (paper avg -5.5%%), "
      "TNS improvement %+.1f%% (paper avg +24.7%%)\n",
      sum_dh / n, sum_dt / n);
  return 0;
}
