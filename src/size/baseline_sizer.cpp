#include "size/baseline_sizer.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/timer.hpp"

namespace insta::size {

using netlist::CellId;
using netlist::LibCellId;
using netlist::PinId;
using timing::ArcId;
using timing::ArcRecord;
using timing::EndpointId;

BaselineSizer::BaselineSizer(netlist::Design& design,
                             const timing::TimingGraph& graph,
                             timing::DelayCalculator& calc, ref::GoldenSta& sta,
                             BaselineSizerOptions options)
    : design_(&design),
      graph_(&graph),
      calc_(&calc),
      sta_(&sta),
      options_(options) {}

bool BaselineSizer::resizable(CellId cell) const {
  const netlist::LibCell& lc = design_->libcell_of(cell);
  if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
      netlist::num_data_inputs(lc.func) == 0) {
    return false;
  }
  if (graph_->is_clock_cell(cell)) return false;
  return design_->library().family(lc.func).size() >= 2;
}

std::vector<CellId> BaselineSizer::trace_critical_cells(PinId pin) const {
  // Walk the worst-arrival path backward, collecting the cells of the cell
  // arcs it passes through together with their stage (arc corner) delays.
  std::vector<std::pair<double, CellId>> stages;
  const double nsigma = sta_->constraints().nsigma;
  PinId cur = pin;
  for (;;) {
    const auto fanin = graph_->fanin(cur);
    if (fanin.empty()) break;
    double best_val = -std::numeric_limits<double>::infinity();
    ArcId best_arc = timing::kNullArc;
    double best_delay = 0.0;
    for (const ArcId aid : fanin) {
      const ArcRecord& a = graph_->arc(aid);
      double corner = 0.0;
      for (const int rf : {0, 1}) {
        corner = std::max(
            corner, sta_->delays().mu[rf][static_cast<std::size_t>(aid)] +
                        nsigma *
                            sta_->delays().sigma[rf][static_cast<std::size_t>(aid)]);
      }
      const double val = sta_->worst_arrival(a.from) + corner;
      if (val > best_val) {
        best_val = val;
        best_arc = aid;
        best_delay = corner;
      }
    }
    if (best_arc == timing::kNullArc) break;
    const ArcRecord& a = graph_->arc(best_arc);
    if (a.kind == timing::ArcKind::kCell && resizable(a.cell)) {
      stages.emplace_back(best_delay, a.cell);
    }
    cur = a.from;
  }
  std::sort(stages.begin(), stages.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  std::vector<CellId> cells;
  std::unordered_set<CellId> seen;
  for (const auto& [delay, cell] : stages) {
    if (seen.insert(cell).second) cells.push_back(cell);
    if (static_cast<int>(cells.size()) >= options_.max_cells_per_path) break;
  }
  return cells;
}

SizerResult BaselineSizer::run() {
  SizerResult res;
  res.initial_wns = sta_->wns();
  res.initial_tns = sta_->tns();
  res.initial_violations = sta_->num_violations();
  util::Stopwatch sw;

  std::unordered_set<CellId> committed;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    // Worst violating endpoints first.
    std::vector<std::pair<double, EndpointId>> worst;
    for (std::size_t e = 0; e < graph_->endpoints().size(); ++e) {
      const double s = sta_->endpoint_slack(static_cast<EndpointId>(e));
      if (std::isfinite(s) && s < 0.0) {
        worst.emplace_back(s, static_cast<EndpointId>(e));
      }
    }
    std::sort(worst.begin(), worst.end());
    if (worst.size() > static_cast<std::size_t>(options_.endpoints_per_pass)) {
      worst.resize(static_cast<std::size_t>(options_.endpoints_per_pass));
    }

    int moves = 0;
    for (const auto& [slack0, ep] : worst) {
      const double cur_slack = sta_->endpoint_slack(ep);
      if (cur_slack >= 0.0) continue;
      const PinId ep_pin =
          graph_->endpoints()[static_cast<std::size_t>(ep)].pin;
      bool fixed_this_ep = false;
      for (const CellId cell : trace_critical_cells(ep_pin)) {
        const double base_wns = sta_->wns();
        const double base_ep = sta_->endpoint_slack(ep);
        const LibCellId orig = design_->cell(cell).libcell;
        const auto family =
            design_->library().family(design_->libcell_of(cell).func);

        LibCellId best = netlist::kNullLibCell;
        double best_ep = base_ep;
        // Signoff-style local moves: only the adjacent drive strengths are
        // tried (one step up or down), as incremental ECO fixing does.
        std::vector<LibCellId> candidates;
        for (std::size_t fi = 0; fi < family.size(); ++fi) {
          if (family[fi] != orig) continue;
          if (fi + 1 < family.size()) candidates.push_back(family[fi + 1]);
          if (fi > 0) candidates.push_back(family[fi - 1]);
          break;
        }
        for (const LibCellId cand : candidates) {
          design_->resize_cell(cell, cand);
          const auto changed = calc_->update_for_resize(cell, sta_->mutable_delays());
          sta_->update_incremental(changed);
          const double new_ep = sta_->endpoint_slack(ep);
          const double new_wns = sta_->wns();
          if (new_ep > best_ep + 1e-9 &&
              new_wns >= base_wns - options_.wns_tolerance) {
            best_ep = new_ep;
            best = cand;
          }
          // Revert before trying the next candidate.
          design_->resize_cell(cell, orig);
          const auto reverted = calc_->update_for_resize(cell, sta_->mutable_delays());
          sta_->update_incremental(reverted);
        }
        if (best != netlist::kNullLibCell) {
          design_->resize_cell(cell, best);
          const auto changed = calc_->update_for_resize(cell, sta_->mutable_delays());
          sta_->update_incremental(changed);
          committed.insert(cell);
          ++moves;
          fixed_this_ep = true;
          // Keep walking the path: signoff fixing typically touches several
          // stages of a violating path (this is why the baseline sizes more
          // cells than INSTA-Size in Table II).
          if (sta_->endpoint_slack(ep) >= 0.0) break;
        }
      }
      (void)fixed_this_ep;
    }
    if (moves == 0) break;
  }

  res.final_wns = sta_->wns();
  res.final_tns = sta_->tns();
  res.final_violations = sta_->num_violations();
  res.cells_sized = static_cast<int>(committed.size());
  res.runtime_sec = sw.elapsed_sec();
  return res;
}

}  // namespace insta::size
