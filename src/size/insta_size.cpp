#include "size/insta_size.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/timer.hpp"

namespace insta::size {

using netlist::CellId;
using netlist::LibCellId;
using netlist::PinId;
using timing::ArcDelta;

InstaSizer::InstaSizer(netlist::Design& design,
                       const timing::TimingGraph& graph,
                       timing::DelayCalculator& calc, ref::GoldenSta& sta,
                       InstaSizeOptions options)
    : design_(&design),
      graph_(&graph),
      calc_(&calc),
      sta_(&sta),
      options_(options) {}

bool InstaSizer::resizable(CellId cell) const {
  const netlist::LibCell& lc = design_->libcell_of(cell);
  if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
      netlist::num_data_inputs(lc.func) == 0) {
    return false;
  }
  if (graph_->is_clock_cell(cell)) return false;
  return design_->library().family(lc.func).size() >= 2;
}

void InstaSizer::block_neighborhood(CellId root,
                                    std::vector<char>& blocked) const {
  std::deque<std::pair<CellId, int>> frontier;
  frontier.emplace_back(root, 0);
  blocked[static_cast<std::size_t>(root)] = 1;
  while (!frontier.empty()) {
    const auto [cell, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= options_.block_hops) continue;
    const auto [first_pin, num_pins] = design_->pin_range(cell);
    for (int i = 0; i < num_pins; ++i) {
      const netlist::Pin& p = design_->pin(first_pin + i);
      if (p.net == netlist::kNullNet) continue;
      const netlist::Net& net = design_->net(p.net);
      auto visit = [&](PinId q) {
        const CellId c = design_->pin(q).cell;
        if (blocked[static_cast<std::size_t>(c)]) return;
        blocked[static_cast<std::size_t>(c)] = 1;
        frontier.emplace_back(c, depth + 1);
      };
      if (net.driver != netlist::kNullPin) visit(net.driver);
      for (const PinId s : net.sinks) visit(s);
    }
  }
}

SizerResult InstaSizer::run() {
  SizerResult res;
  res.initial_wns = sta_->wns();
  res.initial_tns = sta_->tns();
  res.initial_violations = sta_->num_violations();
  util::Stopwatch total;

  core::EngineOptions eopt;
  eopt.tau = options_.tau;
  eopt.top_k = 16;
  core::Engine engine(*sta_, eopt);
  engine.run_forward();

  std::unordered_set<CellId> committed;
  std::vector<timing::ArcId> pass_changed;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    util::Stopwatch bsw;
    engine.run_backward(options_.metric);
    res.backward_sec += bsw.elapsed_sec();

    // Rank stages by gradient magnitude (Section III-H). The threshold is
    // relative to the strongest stage so only genuinely critical stages are
    // candidates.
    float gmax = 0.0f;
    for (std::size_t c = 0; c < design_->num_cells(); ++c) {
      const auto cell = static_cast<CellId>(c);
      if (!resizable(cell)) continue;
      gmax = std::max(gmax, engine.stage_gradient(cell));
    }
    const float threshold =
        std::max(options_.grad_threshold, 0.03f * gmax);
    std::vector<std::pair<float, CellId>> ranked;
    for (std::size_t c = 0; c < design_->num_cells(); ++c) {
      const auto cell = static_cast<CellId>(c);
      if (!resizable(cell)) continue;
      const float g = engine.stage_gradient(cell);
      if (g > threshold) ranked.emplace_back(g, cell);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    std::vector<char> blocked(design_->num_cells(), 0);
    int commits = 0;
    double cur_tns = engine.tns();
    for (const auto& [grad, cell] : ranked) {
      if (blocked[static_cast<std::size_t>(cell)]) continue;
      if (commits >= options_.max_commits_per_pass) break;

      // estimate_eco picks the library cell with the best local delay
      // improvement for this stage.
      const LibCellId orig = design_->cell(cell).libcell;
      const auto family =
          design_->library().family(design_->libcell_of(cell).func);
      LibCellId best = netlist::kNullLibCell;
      double best_gain = 1e-6;
      std::vector<ArcDelta> best_deltas;
      for (const LibCellId cand : family) {
        if (cand == orig) continue;
        auto deltas = calc_->estimate_eco(cell, cand);
        // "Gradients as sensitivities": weight each arc's predicted delay
        // change by its timing gradient, so a candidate that speeds up the
        // stage but slows a *more critical* driver arc scores negatively.
        double gain = 0.0;
        for (const ArcDelta& d : deltas) {
          const double g = std::max(
              static_cast<double>(engine.arc_gradient(d.arc)), 1e-3);
          for (const int rf : {0, 1}) {
            gain += g *
                    (sta_->delays().mu[rf][static_cast<std::size_t>(d.arc)] -
                     d.mu[static_cast<std::size_t>(rf)]);
          }
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = cand;
          best_deltas = std::move(deltas);
        }
      }
      if (best == netlist::kNullLibCell) continue;

      // Tentatively annotate INSTA with the estimate_eco deltas and check TNS.
      std::vector<ArcDelta> saved;
      saved.reserve(best_deltas.size());
      for (const ArcDelta& d : best_deltas) {
        saved.push_back(engine.read_annotation(d.arc));
      }
      engine.annotate(best_deltas);
      engine.run_forward();
      const double new_tns = engine.tns();
      if (new_tns < cur_tns + options_.min_tns_gain) {  // not worth a commit
        engine.annotate(saved);
        engine.run_forward();
        continue;
      }
      // Commit: update the netlist and the golden-side delays exactly.
      design_->resize_cell(cell, best);
      const auto exact = calc_->update_for_resize(cell, sta_->mutable_delays());
      pass_changed.insert(pass_changed.end(), exact.begin(), exact.end());
      cur_tns = new_tns;
      ++commits;
      committed.insert(cell);
      block_neighborhood(cell, blocked);
    }
    if (commits == 0) break;

    // Per-pass re-sync: replace the pass's estimate_eco annotations with the
    // exact committed delays so drift does not accumulate across passes
    // (the cheap form of the paper's re-synchronization).
    std::sort(pass_changed.begin(), pass_changed.end());
    pass_changed.erase(std::unique(pass_changed.begin(), pass_changed.end()),
                       pass_changed.end());
    std::vector<ArcDelta> exact_deltas;
    exact_deltas.reserve(pass_changed.size());
    for (const timing::ArcId a : pass_changed) {
      ArcDelta d;
      d.arc = a;
      for (const int rf : {0, 1}) {
        d.mu[static_cast<std::size_t>(rf)] =
            sta_->delays().mu[rf][static_cast<std::size_t>(a)];
        d.sigma[static_cast<std::size_t>(rf)] =
            sta_->delays().sigma[rf][static_cast<std::size_t>(a)];
      }
      exact_deltas.push_back(d);
    }
    pass_changed.clear();
    engine.annotate(exact_deltas);
    engine.run_forward();
  }

  sta_->update_full();
  res.final_wns = sta_->wns();
  res.final_tns = sta_->tns();
  res.final_violations = sta_->num_violations();
  res.cells_sized = static_cast<int>(committed.size());
  res.runtime_sec = total.elapsed_sec();
  return res;
}

}  // namespace insta::size
