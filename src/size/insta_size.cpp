#include "size/insta_size.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "core/scenario_batch.hpp"
#include "util/timer.hpp"

namespace insta::size {

using netlist::CellId;
using netlist::LibCellId;
using netlist::PinId;
using timing::ArcDelta;

InstaSizer::InstaSizer(netlist::Design& design,
                       const timing::TimingGraph& graph,
                       timing::DelayCalculator& calc, ref::GoldenSta& sta,
                       InstaSizeOptions options)
    : design_(&design),
      graph_(&graph),
      calc_(&calc),
      sta_(&sta),
      options_(options) {}

bool InstaSizer::resizable(CellId cell) const {
  const netlist::LibCell& lc = design_->libcell_of(cell);
  if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
      netlist::num_data_inputs(lc.func) == 0) {
    return false;
  }
  if (graph_->is_clock_cell(cell)) return false;
  return design_->library().family(lc.func).size() >= 2;
}

void InstaSizer::block_neighborhood(CellId root,
                                    std::vector<char>& blocked) const {
  std::deque<std::pair<CellId, int>> frontier;
  frontier.emplace_back(root, 0);
  blocked[static_cast<std::size_t>(root)] = 1;
  while (!frontier.empty()) {
    const auto [cell, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= options_.block_hops) continue;
    const auto [first_pin, num_pins] = design_->pin_range(cell);
    for (int i = 0; i < num_pins; ++i) {
      const netlist::Pin& p = design_->pin(first_pin + i);
      if (p.net == netlist::kNullNet) continue;
      const netlist::Net& net = design_->net(p.net);
      auto visit = [&](PinId q) {
        const CellId c = design_->pin(q).cell;
        if (blocked[static_cast<std::size_t>(c)]) return;
        blocked[static_cast<std::size_t>(c)] = 1;
        frontier.emplace_back(c, depth + 1);
      };
      if (net.driver != netlist::kNullPin) visit(net.driver);
      for (const PinId s : net.sinks) visit(s);
    }
  }
}

SizerResult InstaSizer::run() {
  SizerResult res;
  res.initial_wns = sta_->wns();
  res.initial_tns = sta_->tns();
  res.initial_violations = sta_->num_violations();
  util::Stopwatch total;

  core::EngineOptions eopt;
  eopt.tau = options_.tau;
  eopt.top_k = 16;
  eopt.corners = options_.corners;
  core::Engine engine(*sta_, eopt);
  engine.run_forward();
  // Cross-corner stage score: a cell is critical if it carries gradient in
  // any corner. At C=1 this is exactly the pre-MCMM stage_gradient.
  const auto num_corners = static_cast<core::CornerId>(engine.num_corners());
  const auto stage_grad = [&](CellId cell) {
    float g = 0.0f;
    for (core::CornerId c = 0; c < num_corners; ++c) {
      g += engine.stage_gradient(cell, c);
    }
    return g;
  };
  // Candidate sizes are scored through batched what-if scenarios: one
  // evaluator reused across all passes, so workspaces amortize.
  core::ScenarioBatch batch(engine);

  std::unordered_set<CellId> committed;
  std::vector<timing::ArcId> pass_changed;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    util::Stopwatch bsw;
    engine.run_backward(options_.metric);
    res.backward_sec += bsw.elapsed_sec();

    // Rank stages by gradient magnitude (Section III-H). The threshold is
    // relative to the strongest stage so only genuinely critical stages are
    // candidates.
    float gmax = 0.0f;
    for (std::size_t c = 0; c < design_->num_cells(); ++c) {
      const auto cell = static_cast<CellId>(c);
      if (!resizable(cell)) continue;
      gmax = std::max(gmax, stage_grad(cell));
    }
    const float threshold =
        std::max(options_.grad_threshold, 0.03f * gmax);
    std::vector<std::pair<float, CellId>> ranked;
    for (std::size_t c = 0; c < design_->num_cells(); ++c) {
      const auto cell = static_cast<CellId>(c);
      if (!resizable(cell)) continue;
      const float g = stage_grad(cell);
      if (g > threshold) ranked.emplace_back(g, cell);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    std::vector<char> blocked(design_->num_cells(), 0);
    int commits = 0;
    // Acceptance tracks the cross-corner merged TNS: ScenarioResult::setup
    // is the merged summary, so candidate scores and the commit floor live
    // on the same scale (== corner 0 on single-corner engines).
    double cur_tns = engine.merged_summary(core::Mode::kSetup).tns;
    std::vector<std::vector<ArcDelta>> cand_deltas;
    std::vector<LibCellId> cand_libcells;
    for (const auto& [grad, cell] : ranked) {
      if (blocked[static_cast<std::size_t>(cell)]) continue;
      if (commits >= options_.max_commits_per_pass) break;

      const LibCellId orig = design_->cell(cell).libcell;
      const auto family =
          design_->library().family(design_->libcell_of(cell).func);
      cand_deltas.clear();
      cand_libcells.clear();
      for (const LibCellId cand : family) {
        if (cand == orig) continue;
        cand_deltas.push_back(calc_->estimate_eco(cell, cand));
        cand_libcells.push_back(cand);
      }
      if (cand_deltas.empty()) continue;

      // Batch-evaluate every candidate size of this cell in one what-if
      // call: each scenario reports the exact TNS the engine would reach
      // after annotating that candidate's estimate_eco deltas, without
      // mutating the engine. This replaces the old gradient-weighted local
      // score plus tentative annotate/run_forward/undo round-trip.
      const auto results = batch.evaluate(cand_deltas);
      std::size_t best = 0;
      for (std::size_t i = 1; i < results.size(); ++i) {
        if (results[i].setup.tns > results[best].setup.tns) best = i;
      }
      const double new_tns = results[best].setup.tns;
      if (new_tns < cur_tns + options_.min_tns_gain) continue;  // no commit

      // Commit the winning scenario for real (bit-identical to its what-if
      // result), then update the netlist and the golden-side delays.
      engine.annotate(cand_deltas[best]);
      engine.run_forward_incremental();
      design_->resize_cell(cell, cand_libcells[best]);
      const auto exact = calc_->update_for_resize(cell, sta_->mutable_delays());
      pass_changed.insert(pass_changed.end(), exact.begin(), exact.end());
      cur_tns = new_tns;
      ++commits;
      committed.insert(cell);
      block_neighborhood(cell, blocked);
    }
    if (commits == 0) break;

    // Per-pass re-sync: replace the pass's estimate_eco annotations with the
    // exact committed delays so drift does not accumulate across passes
    // (the cheap form of the paper's re-synchronization).
    std::sort(pass_changed.begin(), pass_changed.end());
    pass_changed.erase(std::unique(pass_changed.begin(), pass_changed.end()),
                       pass_changed.end());
    std::vector<ArcDelta> exact_deltas;
    exact_deltas.reserve(pass_changed.size());
    for (const timing::ArcId a : pass_changed) {
      ArcDelta d;
      d.arc = a;
      for (const int rf : {0, 1}) {
        d.mu[static_cast<std::size_t>(rf)] =
            sta_->delays().mu[rf][static_cast<std::size_t>(a)];
        d.sigma[static_cast<std::size_t>(rf)] =
            sta_->delays().sigma[rf][static_cast<std::size_t>(a)];
      }
      exact_deltas.push_back(d);
    }
    pass_changed.clear();
    engine.annotate(exact_deltas);
    engine.run_forward();
  }

  sta_->update_full();
  res.final_wns = sta_->wns();
  res.final_tns = sta_->tns();
  res.final_violations = sta_->num_violations();
  res.cells_sized = static_cast<int>(committed.size());
  res.runtime_sec = total.elapsed_sec();
  return res;
}

}  // namespace insta::size
