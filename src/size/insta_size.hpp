#pragma once

#include "core/engine.hpp"
#include "ref/golden_sta.hpp"
#include "size/baseline_sizer.hpp"
#include "timing/delay_calc.hpp"

namespace insta::size {

/// Options of INSTA-Size.
struct InstaSizeOptions {
  int max_passes = 24;
  /// Stages with |timing gradient| above this threshold are candidates.
  float grad_threshold = 0.02f;
  /// Maximum commits per pass (the ranking goes stale as moves land).
  int max_commits_per_pass = 40;
  /// Radius (in cell hops) blocked around a committed stage, mirroring the
  /// estimate_eco interference mitigation of Section III-H.
  int block_hops = 3;
  /// LSE temperature (ps) used for the backward pass (tau of Eq. 4).
  float tau = 1.0f;
  /// Minimum TNS improvement (ps) a tentative move must show on INSTA's
  /// evaluation to be committed; filters marginal moves so the cell count
  /// stays low (the paper's -35..68% sizing-footprint reduction).
  double min_tns_gain = 0.5;
  /// Metric whose gradient ranks the stages: kTns spreads effort over every
  /// violating endpoint; kWns focuses the soft-min on the worst path.
  /// Commit acceptance always checks TNS (so WNS mode cannot wreck TNS).
  core::GradientMetric metric = core::GradientMetric::kTns;
  /// Analysis corners the scoring engine propagates. Stage ranking sums
  /// each cell's gradient across corners and commit acceptance checks the
  /// cross-corner merged TNS, so a fix for one corner cannot silently
  /// wreck another. Empty: the single default corner (the pre-MCMM
  /// behavior, bit for bit).
  std::vector<core::CornerSpec> corners;
};

/// INSTA-Size (Section III-H): a gradient-based gate sizer.
///
/// Flow per pass: one INSTA forward + backward on TNS yields the timing
/// gradient of every stage (cell arc + driving net arcs). Stages are ranked
/// by gradient magnitude; for each, PrimeTime's estimate_eco stand-in
/// proposes the library cell with the best local delay improvement. The
/// move is committed into the netlist (with an exact golden-side delay
/// update) and INSTA is re-annotated with the estimate_eco deltas — then
/// rolled back if INSTA's TNS degrades. Committed stages block their 3-hop
/// neighbourhood for the rest of the pass.
///
/// Because INSTA runs on estimate_eco annotations while the golden engine
/// tracks exact delays, the two drift slightly over a run — the effect
/// measured in Fig. 8. Final Table II metrics always come from a full
/// golden update.
class InstaSizer {
 public:
  InstaSizer(netlist::Design& design, const timing::TimingGraph& graph,
             timing::DelayCalculator& calc, ref::GoldenSta& sta,
             InstaSizeOptions options = {});

  /// Runs the optimization; the golden engine is left fully updated.
  SizerResult run();

 private:
  [[nodiscard]] bool resizable(netlist::CellId cell) const;

  /// Collects all cells within `hops` net-hops of `cell` (including it).
  void block_neighborhood(netlist::CellId cell,
                          std::vector<char>& blocked) const;

  netlist::Design* design_;
  const timing::TimingGraph* graph_;
  timing::DelayCalculator* calc_;
  ref::GoldenSta* sta_;
  InstaSizeOptions options_;
};

}  // namespace insta::size
