#include "size/power_recovery.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace insta::size {

using netlist::CellId;
using netlist::LibCellId;
using timing::ArcDelta;

PowerRecovery::PowerRecovery(netlist::Design& design,
                             const timing::TimingGraph& graph,
                             timing::DelayCalculator& calc, ref::GoldenSta& sta,
                             PowerRecoveryOptions options)
    : design_(&design),
      graph_(&graph),
      calc_(&calc),
      sta_(&sta),
      options_(options) {}

bool PowerRecovery::resizable(CellId cell) const {
  const netlist::LibCell& lc = design_->libcell_of(cell);
  if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
      netlist::num_data_inputs(lc.func) == 0) {
    return false;
  }
  return !graph_->is_clock_cell(cell);
}

PowerRecoveryResult PowerRecovery::run() {
  PowerRecoveryResult res;
  res.initial_leakage = design_->total_leakage();
  res.initial_area = design_->total_area();
  res.initial_tns = sta_->tns();
  res.initial_wns = sta_->wns();
  util::Stopwatch total;

  core::EngineOptions eopt;
  eopt.top_k = 16;
  eopt.tau = options_.tau;
  eopt.corners = options_.corners;
  core::Engine engine(*sta_, eopt);
  engine.run_forward();
  const auto num_corners = static_cast<core::CornerId>(engine.num_corners());
  // A stage is frozen when any corner's gradient marks it critical.
  const auto max_stage_grad = [&](CellId cell) {
    float g = 0.0f;
    for (core::CornerId c = 0; c < num_corners; ++c) {
      g = std::max(g, engine.stage_gradient(cell, c));
    }
    return g;
  };

  int downsized = 0;
  std::vector<timing::ArcId> pass_changed;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    engine.run_backward(core::GradientMetric::kTns);

    // Candidates: gradient-free stages with a smaller drive available,
    // ranked by the leakage a one-step downsize saves.
    struct Candidate {
      double saving;
      CellId cell;
      LibCellId smaller;
    };
    std::vector<Candidate> cands;
    for (std::size_t c = 0; c < design_->num_cells(); ++c) {
      const auto cell = static_cast<CellId>(c);
      if (!resizable(cell)) continue;
      if (max_stage_grad(cell) > options_.grad_epsilon) continue;
      const netlist::LibCell& lc = design_->libcell_of(cell);
      const auto family = design_->library().family(lc.func);
      LibCellId smaller = netlist::kNullLibCell;
      for (std::size_t fi = 1; fi < family.size(); ++fi) {
        if (family[fi] == lc.id) smaller = family[fi - 1];
      }
      if (smaller == netlist::kNullLibCell) continue;
      const double saving =
          lc.leakage - design_->library().cell(smaller).leakage;
      if (saving <= 0.0) continue;
      cands.push_back(Candidate{saving, cell, smaller});
    }
    if (cands.empty()) break;
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.saving > b.saving;
              });

    // Floors guard the cross-corner merged summaries: a downsize has to be
    // safe in every corner, not just the default one.
    const core::SlackSummary floor0 =
        engine.merged_summary(core::Mode::kSetup);
    const double tns_floor = floor0.tns - options_.tns_tolerance;
    const double wns_floor = floor0.wns - options_.wns_tolerance;
    int commits = 0;
    for (const Candidate& cand : cands) {
      if (commits >= options_.max_commits_per_pass) break;
      const auto deltas = calc_->estimate_eco(cand.cell, cand.smaller);
      // Speculative downsize inside a Transaction: rollback restores delays,
      // slacks, and the TNS/WNS caches to their exact pre-edit bytes.
      auto tx = engine.begin_edit();
      tx.annotate(deltas);
      engine.run_forward_incremental();
      const core::SlackSummary now =
          engine.merged_summary(core::Mode::kSetup);
      if (now.tns < tns_floor || now.wns < wns_floor) {
        tx.rollback();
        continue;
      }
      tx.commit();
      design_->resize_cell(cand.cell, cand.smaller);
      const auto exact = calc_->update_for_resize(cand.cell,
                                                  sta_->mutable_delays());
      pass_changed.insert(pass_changed.end(), exact.begin(), exact.end());
      ++commits;
      ++downsized;
    }
    if (commits == 0) break;

    // Re-sync INSTA with the exact committed delays (as INSTA-Size does).
    std::sort(pass_changed.begin(), pass_changed.end());
    pass_changed.erase(std::unique(pass_changed.begin(), pass_changed.end()),
                       pass_changed.end());
    std::vector<ArcDelta> exact_deltas;
    exact_deltas.reserve(pass_changed.size());
    for (const timing::ArcId a : pass_changed) {
      ArcDelta d;
      d.arc = a;
      for (const int rf : {0, 1}) {
        d.mu[static_cast<std::size_t>(rf)] =
            sta_->delays().mu[rf][static_cast<std::size_t>(a)];
        d.sigma[static_cast<std::size_t>(rf)] =
            sta_->delays().sigma[rf][static_cast<std::size_t>(a)];
      }
      exact_deltas.push_back(d);
    }
    pass_changed.clear();
    engine.annotate(exact_deltas);
    engine.run_forward_incremental();
  }

  sta_->update_full();
  res.final_leakage = design_->total_leakage();
  res.final_area = design_->total_area();
  res.final_tns = sta_->tns();
  res.final_wns = sta_->wns();
  res.cells_downsized = downsized;
  res.runtime_sec = total.elapsed_sec();
  return res;
}

}  // namespace insta::size
