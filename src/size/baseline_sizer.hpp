#pragma once

#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta::size {

/// Quality/runtime summary of one sizing run (shared by both sizers; the
/// Table II row format).
struct SizerResult {
  double initial_wns = 0.0;
  double initial_tns = 0.0;
  int initial_violations = 0;
  double final_wns = 0.0;
  double final_tns = 0.0;
  int final_violations = 0;
  int cells_sized = 0;        ///< distinct cells whose size was committed
  double runtime_sec = 0.0;   ///< total optimization wall time
  double backward_sec = 0.0;  ///< INSTA-Size only: backward-kernel time (bRT)
};

/// Options of the baseline signoff sizer.
struct BaselineSizerOptions {
  int max_passes = 12;
  int endpoints_per_pass = 40;   ///< worst endpoints traced per pass
  int max_cells_per_path = 9;    ///< resize attempts per traced path
  double wns_tolerance = 1e-6;   ///< allowed WNS degradation per move, ps
};

/// The stand-in for PrimeTime's default timing-optimization engine
/// (the "PrimeTime" rows of Table II): a classic greedy critical-path
/// sizer. Each pass traces the worst violating endpoints' critical paths
/// in the golden engine, tries drive-strength changes on the slowest
/// stages, and commits a move when the targeted endpoint improves and WNS
/// does not degrade — the WNS-first acceptance that real signoff fixing
/// uses (and the reason its TNS can occasionally drift slightly worse,
/// a quirk visible in the paper's Table II as well).
///
/// Every candidate is evaluated with an exact incremental golden update, so
/// this baseline is accurate but touches many cells: every stage of a
/// violating path is a potential move.
class BaselineSizer {
 public:
  BaselineSizer(netlist::Design& design, const timing::TimingGraph& graph,
                timing::DelayCalculator& calc, ref::GoldenSta& sta,
                BaselineSizerOptions options = {});

  /// Runs the optimization; the golden engine is left up to date.
  SizerResult run();

 private:
  /// Traces the critical (worst-arrival) path into `pin` and returns the
  /// distinct resizable cells on it, slowest stage first.
  [[nodiscard]] std::vector<netlist::CellId> trace_critical_cells(
      netlist::PinId pin) const;

  [[nodiscard]] bool resizable(netlist::CellId cell) const;

  netlist::Design* design_;
  const timing::TimingGraph* graph_;
  timing::DelayCalculator* calc_;
  ref::GoldenSta* sta_;
  BaselineSizerOptions options_;
};

}  // namespace insta::size
