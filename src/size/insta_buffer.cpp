#include "size/insta_buffer.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/engine.hpp"
#include "ref/golden_sta.hpp"
#include "timing/clock.hpp"
#include "timing/delay_calc.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace insta::size {

using netlist::CellFunc;
using netlist::CellId;
using netlist::NetId;
using netlist::PinId;
using timing::ArcId;
using timing::ArcRecord;

CellId insert_buffer(netlist::Design& design, NetId net, PinId sink,
                     netlist::LibCellId buffer_libcell, double stub_fraction) {
  util::check(design.library().cell(buffer_libcell).func == CellFunc::kBuf,
              "insert_buffer: libcell must be a buffer");
  const netlist::Net& old_net = design.net(net);
  const PinId driver = old_net.driver;
  util::check(driver != netlist::kNullPin, "insert_buffer: undriven net");
  const double old_hint = old_net.length_hint;

  design.disconnect_sink(net, sink);
  const CellId buf = design.add_cell(
      "ibuf" + std::to_string(design.num_cells()), buffer_libcell);
  design.connect_sink(net, design.input_pin(buf, 0));
  const NetId stub = design.add_net("ibufn" + std::to_string(design.num_nets()));
  design.connect_driver(stub, design.output_pin(buf));
  design.connect_sink(stub, sink);
  design.net(stub).length_hint = old_hint * stub_fraction;
  // The buffer physically splits the branch: driver-to-buffer gets the
  // remainder of the wire, the stub gets the tail.
  design.set_sink_length(net, design.input_pin(buf, 0),
                         old_hint * (1.0 - stub_fraction));

  // Place the buffer between driver and sink (harmless when unplaced).
  const netlist::Cell& dc = design.cell(design.pin(driver).cell);
  const netlist::Cell& sc = design.cell(design.pin(sink).cell);
  netlist::Cell& bc = design.cell(buf);
  bc.x = 0.5 * (dc.x + sc.x);
  bc.y = 0.5 * (dc.y + sc.y);
  return buf;
}

InstaBuffer::InstaBuffer(netlist::Design& design,
                         const timing::Constraints& constraints,
                         InstaBufferOptions options)
    : design_(&design), constraints_(&constraints), options_(options) {}

BufferResult InstaBuffer::run() {
  BufferResult res;
  util::Stopwatch total;
  const netlist::LibCellId buf_lc =
      design_->library().find(CellFunc::kBuf, options_.buffer_drive);
  util::check(buf_lc != netlist::kNullLibCell,
              "InstaBuffer: no buffer at the requested drive");

  double cur_tns = 0.0;
  bool first = true;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    // Each pass rebuilds the timing world: structural edits invalidate the
    // graph, so INSTA is re-initialized (paper Fig. 2's one-time init).
    const netlist::Design snapshot = *design_;
    timing::TimingGraph graph(*design_, constraints_->clock_root);
    timing::DelayCalculator calc(*design_, graph);
    timing::ArcDelays delays;
    calc.compute_all(delays);
    const timing::ClockAnalysis probe(graph, delays, constraints_->nsigma);
    ref::GoldenOptions gopt;
    gopt.prune_window = probe.max_credit() * 1.5 + 10.0;
    ref::GoldenSta sta(graph, *constraints_, delays, gopt);
    sta.update_full();

    if (first) {
      res.initial_wns = sta.wns();
      res.initial_tns = sta.tns();
      res.initial_violations = sta.num_violations();
      cur_tns = res.initial_tns;
      first = false;
    }

    core::EngineOptions eopt;
    eopt.top_k = options_.top_k;
    eopt.tau = options_.tau;
    core::Engine engine(sta, eopt);
    engine.run_forward();
    engine.run_backward(core::GradientMetric::kTns);

    // Rank buffering candidates: critical net arcs with enough wire that
    // insulating the sink pays for a buffer delay.
    struct Candidate {
      double score;
      NetId net;
      PinId sink;
    };
    std::vector<Candidate> cands;
    const netlist::LibCell& buf = design_->library().cell(buf_lc);
    const timing::DelayModelParams& dm = calc.params();
    for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
      const ArcRecord& rec = graph.arc(static_cast<ArcId>(a));
      if (rec.kind != timing::ArcKind::kNet) continue;
      if (graph.is_clock_network(rec.from) || graph.is_clock_network(rec.to)) {
        continue;
      }
      const float g = engine.arc_gradient(static_cast<ArcId>(a));
      if (g <= options_.grad_threshold) continue;
      const double len = design_->net(rec.net).length_hint;
      if (len < options_.min_length) continue;
      // Predicted sink-path gain: the branch splits into driver->buffer
      // wire, the buffer's own delay, and a short stub — versus the single
      // long RC branch before (the quadratic wire term is what the split
      // wins back).
      const double old_mu = std::max(delays.mu[0][a], delays.mu[1][a]);
      const double head_len = len * (1.0 - options_.stub_fraction);
      const double stub_len = len * options_.stub_fraction;
      const double sink_cap = design_->libcell_of(design_->pin(rec.to).cell)
                                  .input_cap;
      const double head_mu =
          dm.r_per_um * head_len *
              (dm.c_per_um * head_len * 0.5 + buf.input_cap) +
          dm.min_net_delay;
      const double stub_mu =
          dm.r_per_um * stub_len * (dm.c_per_um * stub_len * 0.5 + sink_cap) +
          dm.min_net_delay;
      const double stub_load = dm.c_per_um * stub_len + sink_cap;
      const double buf_mu =
          std::max(buf.intrinsic[0], buf.intrinsic[1]) +
          std::max(buf.drive_res[0], buf.drive_res[1]) * stub_load +
          buf.slew_sens * calc.slew(rec.to, netlist::RiseFall::kRise);
      // Driver-side penalty: the buffer's input cap replaces the sink's on
      // the original net, slowing the driver for every other path through it.
      const netlist::CellId drv_cell = design_->pin(rec.from).cell;
      const netlist::LibCell& drv_lc = design_->libcell_of(drv_cell);
      const double cap_delta = buf.input_cap - sink_cap;
      const double penalty =
          std::max(0.0, cap_delta) *
          std::max(drv_lc.drive_res[0], drv_lc.drive_res[1]);
      const double gain = old_mu - (head_mu + stub_mu + buf_mu) - penalty;
      if (gain <= 0.0) continue;
      cands.push_back(Candidate{static_cast<double>(g) * gain, rec.net, rec.to});
    }
    if (cands.empty()) break;
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& x, const Candidate& y) {
                return x.score > y.score;
              });

    // One buffer per net per pass; top candidates first.
    std::unordered_set<NetId> touched;
    int inserted = 0;
    for (const Candidate& c : cands) {
      if (inserted >= options_.max_buffers_per_pass) break;
      if (!touched.insert(c.net).second) continue;
      insert_buffer(*design_, c.net, c.sink, buf_lc, options_.stub_fraction);
      ++inserted;
    }
    if (inserted == 0) break;

    // Re-measure; keep the pass only if TNS genuinely improved.
    timing::TimingGraph graph2(*design_, constraints_->clock_root);
    timing::DelayCalculator calc2(*design_, graph2);
    timing::ArcDelays delays2;
    calc2.compute_all(delays2);
    ref::GoldenSta sta2(graph2, *constraints_, delays2, gopt);
    sta2.update_full();
    if (sta2.tns() < cur_tns + options_.min_tns_gain) {
      *design_ = snapshot;  // roll the whole pass back
      break;
    }
    cur_tns = sta2.tns();
    res.buffers_inserted += inserted;
    ++res.passes_kept;
  }

  // Final metrics on the committed design.
  timing::TimingGraph graph(*design_, constraints_->clock_root);
  timing::DelayCalculator calc(*design_, graph);
  timing::ArcDelays delays;
  calc.compute_all(delays);
  ref::GoldenSta sta(graph, *constraints_, delays);
  sta.update_full();
  res.final_wns = sta.wns();
  res.final_tns = sta.tns();
  res.final_violations = sta.num_violations();
  res.runtime_sec = total.elapsed_sec();
  return res;
}

}  // namespace insta::size
