#pragma once

#include "core/engine.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta::size {

/// Options of the gradient-guarded power-recovery pass.
struct PowerRecoveryOptions {
  int max_passes = 6;
  /// Stages whose timing gradient exceeds this are frozen (they carry TNS).
  float grad_epsilon = 1e-3f;
  /// Commits per pass (rankings go stale as loads shift).
  int max_commits_per_pass = 64;
  /// A tentative downsize is rolled back if INSTA's TNS degrades by more
  /// than this (ps).
  double tns_tolerance = 0.5;
  /// And if WNS degrades by more than this (ps).
  double wns_tolerance = 0.5;
  /// LSE temperature of the backward pass; larger values mark near-critical
  /// stages as unsafe too.
  float tau = 25.0f;
  /// Analysis corners the scoring engine propagates. A stage is frozen if
  /// its gradient in ANY corner exceeds grad_epsilon, and the TNS/WNS
  /// floors guard the cross-corner merged summaries — a downsize must be
  /// safe in every corner. Empty: the single default corner.
  std::vector<core::CornerSpec> corners;
};

/// Result of one power-recovery run.
struct PowerRecoveryResult {
  double initial_leakage = 0.0;
  double final_leakage = 0.0;
  double initial_area = 0.0;
  double final_area = 0.0;
  double initial_tns = 0.0;
  double final_tns = 0.0;
  double initial_wns = 0.0;
  double final_wns = 0.0;
  int cells_downsized = 0;
  double runtime_sec = 0.0;
};

/// Timing-constrained power recovery — the flow context of the paper's
/// Application 1 ("a commercial gate sizing flow for timing-constrained
/// power optimization"): downsize gates that the timing gradients prove
/// irrelevant to TNS, validating every move on INSTA's fast evaluation and
/// committing exact delays on the reference side.
///
/// The timing gradient is the safety certificate: a zero-gradient stage is
/// off every violating path's softmax support, so slowing it (within the
/// LSE temperature's horizon) cannot move TNS. Candidates are ranked by
/// leakage saved.
class PowerRecovery {
 public:
  PowerRecovery(netlist::Design& design, const timing::TimingGraph& graph,
                timing::DelayCalculator& calc, ref::GoldenSta& sta,
                PowerRecoveryOptions options = {});

  /// Runs the recovery; the golden engine is left fully updated.
  PowerRecoveryResult run();

 private:
  [[nodiscard]] bool resizable(netlist::CellId cell) const;

  netlist::Design* design_;
  const timing::TimingGraph* graph_;
  timing::DelayCalculator* calc_;
  ref::GoldenSta* sta_;
  PowerRecoveryOptions options_;
};

}  // namespace insta::size
