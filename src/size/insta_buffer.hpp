#pragma once

#include "netlist/design.hpp"
#include "timing/constraints.hpp"

namespace insta::size {

/// Options of INSTA-Buffer.
struct InstaBufferOptions {
  int max_passes = 4;
  int max_buffers_per_pass = 16;
  /// Net arcs need at least this gradient to be buffering candidates.
  float grad_threshold = 0.05f;
  /// Net arcs shorter than this (um) are not worth buffering.
  double min_length = 40.0;
  /// Drive strength of inserted buffers. Moderate drives keep the input-cap
  /// penalty on the original net small.
  int buffer_drive = 4;
  /// Fraction of the original wire length assigned to the buffered stub.
  double stub_fraction = 0.25;
  /// A pass is kept only if it improves TNS by at least this much (ps).
  double min_tns_gain = 1.0;
  int top_k = 16;     ///< Top-K of the in-loop INSTA engine
  float tau = 10.0f;  ///< LSE temperature of the backward pass
};

/// Result of one buffering run.
struct BufferResult {
  double initial_wns = 0.0;
  double initial_tns = 0.0;
  int initial_violations = 0;
  double final_wns = 0.0;
  double final_tns = 0.0;
  int final_violations = 0;
  int buffers_inserted = 0;
  int passes_kept = 0;
  double runtime_sec = 0.0;
};

/// Splits the connection to `sink` off `net` through a freshly inserted
/// buffer: driver -> (old net) -> buffer -> (new stub net) -> sink. The
/// critical sink is insulated behind the buffer and the driver sees the
/// buffer's pin cap instead of the sink's. Returns the new buffer cell.
/// If the design is placed, the buffer lands at the driver/sink midpoint;
/// otherwise the stub gets `stub_fraction` of the old net's length hint.
netlist::CellId insert_buffer(netlist::Design& design, netlist::NetId net,
                              netlist::PinId sink,
                              netlist::LibCellId buffer_libcell,
                              double stub_fraction);

/// INSTA-Buffer: gradient-guided buffer insertion — the buffering direction
/// named as future work in the paper's Section V, built on the same "timing
/// gradient" machinery as INSTA-Size.
///
/// Each pass initializes an INSTA engine from a fresh golden update, runs
/// one backward pass on TNS, and ranks *net arcs* by gradient x predicted
/// local delay gain. The top candidates get a buffer splitting the critical
/// sink off the net. Structural edits invalidate the timing graph, so each
/// pass rebuilds it (INSTA requires re-initialization after netlist
/// surgery); a pass that fails to improve TNS is rolled back wholesale from
/// a design snapshot.
class InstaBuffer {
 public:
  /// Binds to a design and its constraints. The design is edited in place.
  InstaBuffer(netlist::Design& design, const timing::Constraints& constraints,
              InstaBufferOptions options = {});

  /// Runs the optimization and reports before/after metrics.
  BufferResult run();

 private:
  netlist::Design* design_;
  const timing::Constraints* constraints_;
  InstaBufferOptions options_;
};

}  // namespace insta::size
