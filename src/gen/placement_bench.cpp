#include "gen/placement_bench.hpp"

#include <cmath>

#include "util/check.hpp"

namespace insta::gen {

using netlist::CellId;

PlacementBench build_placement_bench(const PlacementBenchSpec& spec) {
  PlacementBench out;
  out.gd = build_logic_block(spec.logic);
  out.row_height = spec.row_height;
  out.violate_fraction = spec.violate_fraction;
  netlist::Design& d = *out.gd.design;

  const double area = d.total_area();
  util::check(area > 0.0, "placement bench: zero cell area");
  const double core_area = area / spec.target_density;
  double side = std::sqrt(core_area);
  out.num_rows = std::max(4, static_cast<int>(side / spec.row_height));
  out.core_height = out.num_rows * spec.row_height;
  out.core_width = core_area / out.core_height;
  side = out.core_width;

  util::Rng rng(spec.logic.seed ^ 0x9c0ffee5u);
  // A coarse grid for the fixed clock buffers.
  std::vector<CellId> clock_bufs;
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    const netlist::LibCell& lc = d.libcell_of(id);
    if (lc.func == netlist::CellFunc::kBuf &&
        d.cell(id).name.rfind("ckbuf", 0) == 0) {
      clock_bufs.push_back(id);
    }
  }
  const int grid = std::max(
      1, static_cast<int>(std::ceil(std::sqrt(
             static_cast<double>(clock_bufs.size())))));
  for (std::size_t i = 0; i < clock_bufs.size(); ++i) {
    netlist::Cell& cell = d.cell(clock_bufs[i]);
    const auto gx = static_cast<double>(i % static_cast<std::size_t>(grid));
    const auto gy = static_cast<double>(i / static_cast<std::size_t>(grid));
    cell.x = (gx + 0.5) * out.core_width / grid;
    cell.y = (gy + 0.5) * out.core_height / grid;
    cell.fixed = true;
  }

  // IO ports around the periphery.
  std::size_t io_index = 0;
  const std::size_t num_ios =
      d.input_ports().size() + d.output_ports().size();
  auto place_io = [&](CellId id) {
    netlist::Cell& cell = d.cell(id);
    const double t = static_cast<double>(io_index++) /
                     static_cast<double>(std::max<std::size_t>(1, num_ios));
    const double perim = t * 4.0;
    if (perim < 1.0) {
      cell.x = perim * out.core_width;
      cell.y = 0.0;
    } else if (perim < 2.0) {
      cell.x = out.core_width;
      cell.y = (perim - 1.0) * out.core_height;
    } else if (perim < 3.0) {
      cell.x = (3.0 - perim) * out.core_width;
      cell.y = out.core_height;
    } else {
      cell.x = 0.0;
      cell.y = (4.0 - perim) * out.core_height;
    }
    cell.fixed = true;
  };
  for (const CellId id : d.input_ports()) place_io(id);
  for (const CellId id : d.output_ports()) place_io(id);

  // Movable cells: uniform random scatter.
  for (std::size_t c = 0; c < d.num_cells(); ++c) {
    netlist::Cell& cell = d.cell(static_cast<CellId>(c));
    if (cell.fixed) continue;
    cell.x = rng.uniform(0.05, 0.95) * out.core_width;
    cell.y = rng.uniform(0.05, 0.95) * out.core_height;
  }
  return out;
}

std::vector<PlacementBenchSpec> table3_superblue_specs() {
  auto mk = [](const std::string& name, std::uint64_t seed, int gates, int ffs,
               int depth) {
    PlacementBenchSpec s;
    s.logic.name = name;
    s.logic.seed = seed;
    s.logic.num_gates = gates;
    s.logic.num_ffs = ffs;
    s.logic.depth = depth;
    s.logic.num_inputs = 48;
    s.logic.num_outputs = 48;
    s.logic.false_path_frac = 0.0;
    s.logic.multicycle_frac = 0.0;
    return s;
  };
  return {
      mk("superblue1", 101, 15000, 1600, 22),
      mk("superblue3", 103, 13000, 1400, 20),
      mk("superblue4", 104, 9000, 1000, 18),
      mk("superblue5", 105, 11000, 1200, 20),
      mk("superblue7", 107, 17000, 1800, 24),
      mk("superblue10", 110, 22000, 2400, 26),
      mk("superblue16", 116, 11000, 1200, 20),
      mk("superblue18", 118, 8000, 900, 16),
  };
}

}  // namespace insta::gen
