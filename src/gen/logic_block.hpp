#pragma once

#include <memory>
#include <string>

#include "netlist/design.hpp"
#include "timing/constraints.hpp"
#include "util/rng.hpp"

namespace insta::gen {

/// Parameters of the synthetic clocked-logic-block generator.
///
/// The generator builds rank-structured random logic: gates in rank r draw
/// their inputs mostly from rank r-1 with a geometric tail into earlier
/// ranks, which produces the deep reconvergent cones (and multi-startpoint
/// endpoints) that exercise CPPR. A buffered clock tree distributes the
/// clock to all flip-flops so launch/capture pairs share varying amounts of
/// common clock path.
struct LogicBlockSpec {
  std::string name = "block";
  std::uint64_t seed = 1;
  int num_gates = 20000;   ///< combinational gates
  int num_ffs = 1500;      ///< flip-flops
  int num_inputs = 64;     ///< primary data inputs
  int num_outputs = 64;    ///< primary outputs
  int depth = 24;          ///< combinational rank count (logic depth)
  int clock_fanout = 6;    ///< branching factor of the clock tree
  int ffs_per_clock_leaf = 16;  ///< FF clock pins per leaf buffer
  /// Additional clock domains: each gets its own port, tree and a share of
  /// the flip-flops (round-robin). 0 = single-clock (the paper's setting).
  int num_extra_clocks = 0;
  /// Period of each extra domain relative to the primary clock.
  double extra_clock_ratio = 2.0;
  double unused_bias = 0.6;     ///< probability of consuming an unused output
  double prev_rank_bias = 0.6;  ///< probability an input comes from rank r-1
  double net_length_mean = 25.0;   ///< um, lognormal base of length hints
  double net_length_spread = 0.6;  ///< lognormal sigma of length hints
  double false_path_frac = 0.01;   ///< false-path exceptions per endpoint
  double multicycle_frac = 0.005;  ///< multicycle exceptions per endpoint
  double input_arrival_mu = 10.0;  ///< ps
  double input_arrival_sigma = 1.0;  ///< ps
  double output_margin = 50.0;       ///< ps
  /// Load-match gate drives after netlist construction (like synthesis
  /// output): each gate gets the smallest drive whose electrical effort
  /// (load / input cap) is at most `target_effort`. Without this the design
  /// is grossly under-sized and any sizer trivially fixes all violations.
  bool presize = true;
  double target_effort = 4.0;
};

/// A generated design bundle: the library, the netlist and its constraints.
/// (The design holds a pointer into the library, hence the unique_ptrs.)
struct GeneratedDesign {
  std::unique_ptr<netlist::Library> library;
  std::unique_ptr<netlist::Design> design;
  timing::Constraints constraints;
  std::string name;
};

/// Builds a synthetic clocked logic block. Deterministic in spec.seed.
/// constraints.clock_period is left at its default; use tune_clock_period()
/// after delay calculation to set a period with a target violation rate.
[[nodiscard]] GeneratedDesign build_logic_block(const LogicBlockSpec& spec);

}  // namespace insta::gen
