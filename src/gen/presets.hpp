#pragma once

#include <span>
#include <string>
#include <vector>

#include "gen/logic_block.hpp"

namespace insta::gen {

/// Specs of the five Table-I correlation blocks. These mirror the paper's
/// industrial blocks 1-5 (4M/2M/3M/2M/2M cells) scaled down ~40x so the
/// golden engine's exact per-startpoint reference propagation runs in
/// seconds on a CPU; relative proportions between the blocks are preserved.
[[nodiscard]] std::vector<LogicBlockSpec> table1_block_specs();

/// Specs of the four Table-II sizing designs, sized after the paper's IWLS
/// benchmarks (aes_core ~34k pins, cipher_top ~50k, des ~11k, mc_top ~25k).
[[nodiscard]] std::vector<LogicBlockSpec> table2_iwls_specs();

/// The spec used by the Fig. 7 / Fig. 8 incremental-evaluation study
/// (block-2-like).
[[nodiscard]] LogicBlockSpec fig7_block_spec();

/// A small spec for unit/property tests (hundreds of cells).
[[nodiscard]] LogicBlockSpec tiny_spec(std::uint64_t seed);

}  // namespace insta::gen
