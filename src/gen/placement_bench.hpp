#pragma once

#include <vector>

#include "gen/logic_block.hpp"

namespace insta::gen {

/// Parameters of a Superblue-like placement benchmark: a clocked logic
/// block plus a row-based core with an initial random placement.
struct PlacementBenchSpec {
  LogicBlockSpec logic;           ///< the netlist to place
  double row_height = 2.0;        ///< um
  double target_density = 0.6;    ///< total cell area / core area
  double violate_fraction = 0.25; ///< used by benches to tune the period
};

/// A generated placement benchmark. IO ports sit fixed on the core
/// periphery, clock-tree buffers are fixed on a coarse interior grid (CTS
/// is assumed done, as in the ICCAD-2015 contest), and all gates and FFs
/// are movable, initially scattered at random.
struct PlacementBench {
  GeneratedDesign gd;
  double core_width = 0.0;   ///< um
  double core_height = 0.0;  ///< um
  double row_height = 0.0;   ///< um
  int num_rows = 0;
  double violate_fraction = 0.25;
};

/// Builds a placement benchmark. Deterministic in spec.logic.seed.
[[nodiscard]] PlacementBench build_placement_bench(
    const PlacementBenchSpec& spec);

/// Specs of the eight Table-III benchmarks, named after the ICCAD-2015
/// Superblue designs they stand in for (scaled to CPU-friendly sizes, with
/// Superblue10 the largest as in the paper).
[[nodiscard]] std::vector<PlacementBenchSpec> table3_superblue_specs();

}  // namespace insta::gen
