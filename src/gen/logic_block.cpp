#include "gen/logic_block.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace insta::gen {

using netlist::CellFunc;
using netlist::CellId;
using netlist::Design;
using netlist::kNullNet;
using netlist::Library;
using netlist::NetId;
using netlist::PinId;
using util::Rng;

namespace {

/// Weighted random gate function.
CellFunc random_func(Rng& rng) {
  const double x = rng.uniform();
  if (x < 0.15) return CellFunc::kInv;
  if (x < 0.20) return CellFunc::kBuf;
  if (x < 0.40) return CellFunc::kNand2;
  if (x < 0.50) return CellFunc::kNor2;
  if (x < 0.65) return CellFunc::kAnd2;
  if (x < 0.75) return CellFunc::kOr2;
  if (x < 0.85) return CellFunc::kXor2;
  if (x < 0.90) return CellFunc::kXnor2;
  if (x < 0.95) return CellFunc::kNand3;
  return CellFunc::kAoi21;
}

/// Weighted random drive strength (mid sizes most common).
int random_drive(Rng& rng) {
  const double x = rng.uniform();
  if (x < 0.35) return 1;
  if (x < 0.70) return 2;
  if (x < 0.90) return 4;
  return 8;
}

/// A pool of candidate driver pins per rank, with unused-output tracking so
/// the generator leaves few dangling outputs.
class DriverPools {
 public:
  void add_rank() {
    all_.emplace_back();
    unused_.emplace_back();
  }
  void add(int rank, PinId pin) {
    all_[static_cast<std::size_t>(rank)].push_back(pin);
    unused_[static_cast<std::size_t>(rank)].push_back(pin);
  }
  [[nodiscard]] int num_ranks() const { return static_cast<int>(all_.size()); }
  [[nodiscard]] bool rank_empty(int rank) const {
    return all_[static_cast<std::size_t>(rank)].empty();
  }

  /// Picks a driver pin from `rank`, preferring never-used outputs with
  /// probability `unused_bias`.
  PinId pick(int rank, double unused_bias, Rng& rng) {
    auto& unused = unused_[static_cast<std::size_t>(rank)];
    if (!unused.empty() && rng.chance(unused_bias)) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(unused.size()) - 1));
      const PinId pin = unused[i];
      unused[i] = unused.back();
      unused.pop_back();
      return pin;
    }
    const auto& all = all_[static_cast<std::size_t>(rank)];
    return all[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(all.size()) - 1))];
  }

 private:
  std::vector<std::vector<PinId>> all_;
  std::vector<std::vector<PinId>> unused_;
};

}  // namespace

GeneratedDesign build_logic_block(const LogicBlockSpec& spec) {
  util::check(spec.num_gates > 0 && spec.depth > 0 && spec.num_ffs >= 0,
              "build_logic_block: bad spec");
  util::check(spec.num_inputs + spec.num_ffs > 0,
              "build_logic_block: need at least one startpoint");
  Rng rng(spec.seed);

  GeneratedDesign out;
  out.name = spec.name;
  out.library = std::make_unique<Library>(netlist::make_default_library());
  out.design = std::make_unique<Design>(*out.library);
  Design& d = *out.design;
  const Library& lib = *out.library;

  // Lazily created net of each driver pin.
  std::unordered_map<PinId, NetId> net_of_driver;
  auto net_for = [&](PinId driver) {
    auto it = net_of_driver.find(driver);
    if (it != net_of_driver.end()) return it->second;
    const NetId n = d.add_net("n" + std::to_string(d.num_nets()));
    d.connect_driver(n, driver);
    net_of_driver.emplace(driver, n);
    return n;
  };
  auto connect = [&](PinId driver, PinId sink) {
    d.connect_sink(net_for(driver), sink);
  };

  // ---- clock trees -----------------------------------------------------------
  const CellId clock_root = d.add_input_port("clk");
  out.constraints.clock_root = clock_root;
  const int num_domains = 1 + std::max(0, spec.num_extra_clocks);
  std::vector<CellId> domain_roots = {clock_root};
  for (int c = 1; c < num_domains; ++c) {
    const CellId root = d.add_input_port("clk" + std::to_string(c));
    domain_roots.push_back(root);
    out.constraints.extra_clocks.push_back(
        timing::ExtraClock{root, spec.extra_clock_ratio});
  }

  std::vector<CellId> ffs;
  ffs.reserve(static_cast<std::size_t>(spec.num_ffs));
  for (int i = 0; i < spec.num_ffs; ++i) {
    ffs.push_back(d.add_cell("ff" + std::to_string(i),
                             lib.find(CellFunc::kDff, 2)));
  }

  if (spec.num_ffs > 0) {
    util::check(spec.clock_fanout >= 2, "clock_fanout must be >= 2");
    int buf_idx = 0;
    // Round-robin FFs across the clock domains, one tree per domain.
    for (int domain = 0; domain < num_domains; ++domain) {
      std::vector<CellId> domain_ffs;
      for (int i = domain; i < spec.num_ffs; i += num_domains) {
        domain_ffs.push_back(ffs[static_cast<std::size_t>(i)]);
      }
      if (domain_ffs.empty()) continue;
      const int num_leaves = std::max(
          1, (static_cast<int>(domain_ffs.size()) + spec.ffs_per_clock_leaf -
              1) /
                 spec.ffs_per_clock_leaf);
      // Build buffer levels from the root until one level has enough leaves.
      std::vector<PinId> level_drivers = {
          d.output_pin(domain_roots[static_cast<std::size_t>(domain)])};
      while (static_cast<int>(level_drivers.size()) < num_leaves) {
        std::vector<PinId> next;
        for (const PinId drv : level_drivers) {
          for (int f = 0; f < spec.clock_fanout; ++f) {
            const CellId buf = d.add_cell("ckbuf" + std::to_string(buf_idx++),
                                          lib.find(CellFunc::kBuf, 8));
            connect(drv, d.input_pin(buf, 0));
            next.push_back(d.output_pin(buf));
            if (static_cast<int>(next.size()) >= num_leaves) break;
          }
          if (static_cast<int>(next.size()) >= num_leaves) break;
        }
        level_drivers = std::move(next);
      }
      // Distribute this domain's FF clock pins over its leaf buffers.
      for (std::size_t i = 0; i < domain_ffs.size(); ++i) {
        connect(level_drivers[i % level_drivers.size()],
                d.clock_pin(domain_ffs[i]));
      }
    }
  }

  // ---- rank-structured combinational logic -----------------------------------
  DriverPools pools;
  pools.add_rank();  // rank 0: startpoint sources
  for (int i = 0; i < spec.num_inputs; ++i) {
    const CellId port = d.add_input_port("in" + std::to_string(i));
    pools.add(0, d.output_pin(port));
  }
  for (const CellId ff : ffs) pools.add(0, d.output_pin(ff));

  auto pick_rank = [&](int below) {
    // rank below-1 with probability prev_rank_bias, geometric tail earlier.
    int r = below - 1;
    while (r > 0 && !rng.chance(spec.prev_rank_bias)) --r;
    while (pools.rank_empty(r)) ++r;  // never empty at below-1 by invariant
    return r;
  };

  const int gates_per_rank =
      std::max(1, spec.num_gates / spec.depth);
  int made = 0;
  for (int rank = 1; rank <= spec.depth && made < spec.num_gates; ++rank) {
    pools.add_rank();
    const int want = (rank == spec.depth) ? (spec.num_gates - made)
                                          : gates_per_rank;
    for (int gi = 0; gi < want && made < spec.num_gates; ++gi, ++made) {
      const CellFunc func = random_func(rng);
      const netlist::LibCellId lc = lib.find(func, random_drive(rng));
      const CellId cell = d.add_cell("g" + std::to_string(made), lc);
      for (int in = 0; in < netlist::num_data_inputs(func); ++in) {
        const int r = pick_rank(rank);
        connect(pools.pick(r, spec.unused_bias, rng), d.input_pin(cell, in));
      }
      pools.add(rank, d.output_pin(cell));
    }
  }
  const int last_rank = pools.num_ranks() - 1;

  // ---- endpoints --------------------------------------------------------------
  auto pick_late_driver = [&]() {
    int r = last_rank - static_cast<int>(rng.uniform_int(0, last_rank / 4));
    while (r > 0 && pools.rank_empty(r)) --r;
    return pools.pick(r, 0.9, rng);
  };
  for (const CellId ff : ffs) {
    connect(pick_late_driver(), d.input_pin(ff, 0));
  }
  for (int i = 0; i < spec.num_outputs; ++i) {
    const CellId port = d.add_output_port("out" + std::to_string(i));
    connect(pick_late_driver(), d.input_pin(port, 0));
  }

  // ---- net length hints ---------------------------------------------------------
  for (std::size_t n = 0; n < d.num_nets(); ++n) {
    netlist::Net& net = d.net(static_cast<NetId>(n));
    const double fanout_term =
        1.0 + 0.3 * static_cast<double>(net.sinks.size() > 1
                                            ? net.sinks.size() - 1
                                            : 0);
    net.length_hint = spec.net_length_mean * fanout_term *
                      std::exp(rng.normal(0.0, spec.net_length_spread));
  }

  // ---- load-matched drive assignment ------------------------------------------
  if (spec.presize) {
    // Fixed-point iteration: drives determine input caps, which determine
    // loads, which determine drives. Converges in a handful of passes
    // (drive choices stabilize once loads do); capped defensively.
    const double c_per_um = 0.15;  // must match DelayModelParams defaults
    bool changed = true;
    for (int iter = 0; iter < 8 && changed; ++iter) {
      changed = false;
      for (std::size_t c = 0; c < d.num_cells(); ++c) {
        const auto id = static_cast<netlist::CellId>(c);
        const netlist::LibCell& lc = d.libcell_of(id);
        if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
            netlist::num_data_inputs(lc.func) == 0 ||
            d.cell(id).name.rfind("ckbuf", 0) == 0) {
          continue;
        }
        const PinId out = d.output_pin(id);
        const NetId net = d.pin(out).net;
        if (net == kNullNet) continue;
        const netlist::Net& n = d.net(net);
        double load = c_per_um * n.length_hint;
        for (const PinId s : n.sinks) load += d.libcell_of(d.pin(s).cell).input_cap;
        // Smallest drive with effort (load / per-drive input cap) within
        // target; per-drive cap comes from the X1 member of the family.
        const auto family = lib.family(lc.func);
        const double cap_x1 = lib.cell(family.front()).input_cap;
        netlist::LibCellId pick = family.back();
        for (const netlist::LibCellId cand : family) {
          const double eff = load / (cap_x1 * lib.cell(cand).drive);
          if (eff <= spec.target_effort) {
            pick = cand;
            break;
          }
        }
        if (pick != d.cell(id).libcell) {
          d.resize_cell(id, pick);
          changed = true;
        }
      }
    }
  }

  // ---- exceptions -----------------------------------------------------------------
  auto random_sp_pin = [&]() {
    const auto inputs = d.input_ports();
    const auto first_data = static_cast<std::int64_t>(num_domains);
    if (!ffs.empty() &&
        (static_cast<std::int64_t>(inputs.size()) <= first_data ||
         rng.chance(0.8))) {
      return d.output_pin(ffs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ffs.size()) - 1))]);
    }
    // Skip the clock roots (created first) when sampling input ports.
    const auto i = static_cast<std::size_t>(rng.uniform_int(
        first_data, static_cast<std::int64_t>(inputs.size()) - 1));
    return d.output_pin(inputs[i]);
  };
  auto random_ep_pin = [&]() {
    const std::size_t total = ffs.size() + d.output_ports().size();
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
    if (i < ffs.size()) return d.input_pin(ffs[i], 0);
    return d.input_pin(d.output_ports()[i - ffs.size()], 0);
  };
  const auto num_eps = static_cast<double>(ffs.size() + d.output_ports().size());
  const int num_fp = static_cast<int>(spec.false_path_frac * num_eps);
  const int num_mcp = static_cast<int>(spec.multicycle_frac * num_eps);
  for (int i = 0; i < num_fp; ++i) {
    timing::TimingException e;
    e.kind = timing::ExceptionKind::kFalsePath;
    e.sp_pin = random_sp_pin();
    e.ep_pin = random_ep_pin();
    out.constraints.exceptions.push_back(e);
  }
  for (int i = 0; i < num_mcp; ++i) {
    timing::TimingException e;
    e.kind = timing::ExceptionKind::kMulticycle;
    e.sp_pin = random_sp_pin();
    e.ep_pin = random_ep_pin();
    e.cycles = 2;
    out.constraints.exceptions.push_back(e);
  }

  out.constraints.input_arrival_mu = spec.input_arrival_mu;
  out.constraints.input_arrival_sigma = spec.input_arrival_sigma;
  out.constraints.output_margin = spec.output_margin;

  d.validate();
  return out;
}

}  // namespace insta::gen
