#pragma once

#include <vector>

#include "netlist/design.hpp"
#include "timing/graph.hpp"
#include "util/rng.hpp"

namespace insta::gen {

/// One gate-resize operation of a changelist.
struct Resize {
  netlist::CellId cell = netlist::kNullCell;
  netlist::LibCellId new_libcell = netlist::kNullLibCell;
};

/// Samples `count` random gate resizes over the resizable cells of the
/// design (combinational, non-clock-tree, with at least two drive options).
/// The same changelist is replayed against every engine in the Fig. 7
/// incremental-runtime study. Deterministic in `rng`.
[[nodiscard]] std::vector<Resize> random_changelist(
    const netlist::Design& design, const timing::TimingGraph& graph,
    util::Rng& rng, int count);

}  // namespace insta::gen
