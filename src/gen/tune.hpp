#pragma once

#include "ref/golden_sta.hpp"
#include "timing/constraints.hpp"

namespace insta::gen {

/// Chooses a clock period so that approximately `violate_fraction` of the
/// constrained endpoints have negative slack, and writes it into
/// `constraints`. Runs one full golden timing update at period 0 to measure
/// the period-independent part of every endpoint slack, then picks the
/// matching quantile. (Multicycle-path shifts scale with the period, so the
/// resulting fraction is approximate for designs with such exceptions.)
///
/// Returns the chosen period (ps). The caller must re-run update_full() on
/// any engine bound to these constraints.
double tune_clock_period(const timing::TimingGraph& graph,
                         timing::Constraints& constraints,
                         timing::ArcDelays& delays, double violate_fraction);

}  // namespace insta::gen
