#include "gen/presets.hpp"

namespace insta::gen {

namespace {

LogicBlockSpec block(const std::string& name, std::uint64_t seed, int gates,
                     int ffs, int depth) {
  LogicBlockSpec s;
  s.name = name;
  s.seed = seed;
  s.num_gates = gates;
  s.num_ffs = ffs;
  s.depth = depth;
  s.num_inputs = 96;
  s.num_outputs = 96;
  return s;
}

}  // namespace

std::vector<LogicBlockSpec> table1_block_specs() {
  // cells scaled ~40x below the paper's blocks; pin counts follow.
  return {
      block("block-1", 11, 90000, 8000, 40),
      block("block-2", 12, 45000, 4000, 28),
      block("block-3", 13, 68000, 6000, 34),
      block("block-4", 14, 45000, 4500, 30),
      block("block-5", 15, 45000, 3800, 26),
  };
}

std::vector<LogicBlockSpec> table2_iwls_specs() {
  // Sized after the IWLS designs used in Table II (pins in parentheses in
  // the paper: aes_core 34k, cipher_top 50k, des 11k, mc_top 25k).
  std::vector<LogicBlockSpec> specs = {
      block("aes_core-like", 21, 10000, 530, 20),
      block("cipher_top-like", 22, 15000, 1200, 22),
      block("des-like", 23, 3400, 190, 16),
      block("mc_top-like", 24, 7600, 460, 18),
  };
  for (auto& s : specs) {
    s.num_inputs = 64;
    s.num_outputs = 64;
  }
  return specs;
}

LogicBlockSpec fig7_block_spec() {
  LogicBlockSpec s = block("block-2-like", 31, 30000, 2600, 26);
  return s;
}

LogicBlockSpec tiny_spec(std::uint64_t seed) {
  LogicBlockSpec s;
  s.name = "tiny";
  s.seed = seed;
  s.num_gates = 220;
  s.num_ffs = 24;
  s.num_inputs = 8;
  s.num_outputs = 8;
  s.depth = 8;
  s.ffs_per_clock_leaf = 4;
  s.clock_fanout = 3;
  s.false_path_frac = 0.1;
  s.multicycle_frac = 0.1;
  return s;
}

}  // namespace insta::gen
