#include "gen/changelist.hpp"

#include "util/check.hpp"

namespace insta::gen {

using netlist::CellFunc;
using netlist::CellId;
using netlist::LibCellId;

std::vector<Resize> random_changelist(const netlist::Design& design,
                                      const timing::TimingGraph& graph,
                                      util::Rng& rng, int count) {
  std::vector<CellId> resizable;
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    const netlist::LibCell& lc = design.libcell_of(id);
    if (netlist::is_sequential(lc.func) || !netlist::has_output(lc.func) ||
        netlist::num_data_inputs(lc.func) == 0) {
      continue;
    }
    if (graph.is_clock_cell(id)) continue;
    if (design.library().family(lc.func).size() < 2) continue;
    resizable.push_back(id);
  }
  util::check(!resizable.empty(), "random_changelist: nothing resizable");

  std::vector<Resize> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const CellId cell = resizable[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(resizable.size()) - 1))];
    const netlist::LibCell& lc = design.libcell_of(cell);
    const auto family = design.library().family(lc.func);
    LibCellId pick = lc.id;
    while (pick == lc.id) {
      pick = family[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(family.size()) - 1))];
    }
    out.push_back(Resize{cell, pick});
  }
  return out;
}

}  // namespace insta::gen
