#include "gen/tune.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "timing/clock.hpp"
#include "util/check.hpp"

namespace insta::gen {

double tune_clock_period(const timing::TimingGraph& graph,
                         timing::Constraints& constraints,
                         timing::ArcDelays& delays, double violate_fraction) {
  util::check(violate_fraction >= 0.0 && violate_fraction < 1.0,
              "tune_clock_period: fraction must be in [0, 1)");
  timing::Constraints probe = constraints;
  probe.clock_period = 0.0;
  // The CPPR-safe pruning window keeps the probe update exact yet fast
  // (see DESIGN.md §6): only entries within the maximum possible credit of
  // a pin's best corner can decide an endpoint slack.
  const timing::ClockAnalysis clock_probe(graph, delays, constraints.nsigma);
  ref::GoldenOptions gopt;
  gopt.prune_window = clock_probe.max_credit() * 1.5 + 10.0;
  ref::GoldenSta sta(graph, probe, delays, gopt);
  sta.update_full();

  // With period 0, slack(e) = -x_e where x_e is period-independent;
  // at period T the slack becomes T - x_e. Violating fraction q means
  // T below the (1-q) quantile of x.
  std::vector<double> x;
  x.reserve(sta.endpoint_slacks().size());
  for (const double s : sta.endpoint_slacks()) {
    if (std::isfinite(s)) x.push_back(-s);
  }
  util::check(!x.empty(), "tune_clock_period: no constrained endpoints");
  std::sort(x.begin(), x.end());
  const auto idx = static_cast<std::size_t>(
      std::clamp((1.0 - violate_fraction) * static_cast<double>(x.size()),
                 0.0, static_cast<double>(x.size() - 1)));
  constraints.clock_period = x[idx];
  return constraints.clock_period;
}

}  // namespace insta::gen
