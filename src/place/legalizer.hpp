#pragma once

#include "netlist/design.hpp"

namespace insta::place {

/// Core geometry of a row-based placement region.
struct CoreGeometry {
  double width = 0.0;       ///< um
  double height = 0.0;      ///< um
  double row_height = 0.0;  ///< um
  int num_rows = 0;
};

/// Greedy row-based ("Tetris") legalization: processes movable cells in
/// ascending-x order, assigns each to the row minimizing displacement given
/// the rows' current fill, and packs it at the first legal position. Fixed
/// cells are untouched. The result is overlap-free per row and fully inside
/// the core (this repository's ABCDPlace stand-in).
///
/// Returns the total displacement (um) the legalizer introduced.
double legalize_rows(netlist::Design& design, const CoreGeometry& core);

}  // namespace insta::place
