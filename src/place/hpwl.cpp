#include "place/hpwl.hpp"

#include <algorithm>

namespace insta::place {

double net_hpwl(const netlist::Design& design, netlist::NetId net_id) {
  const netlist::Net& n = design.net(net_id);
  if (n.driver == netlist::kNullPin) return 0.0;
  const netlist::Cell& d = design.cell(design.pin(n.driver).cell);
  double xmin = d.x, xmax = d.x, ymin = d.y, ymax = d.y;
  for (const netlist::PinId s : n.sinks) {
    const netlist::Cell& c = design.cell(design.pin(s).cell);
    xmin = std::min(xmin, c.x);
    xmax = std::max(xmax, c.x);
    ymin = std::min(ymin, c.y);
    ymax = std::max(ymax, c.y);
  }
  return (xmax - xmin) + (ymax - ymin);
}

double total_hpwl(const netlist::Design& design) {
  double total = 0.0;
  for (std::size_t n = 0; n < design.num_nets(); ++n) {
    total += net_hpwl(design, static_cast<netlist::NetId>(n));
  }
  return total;
}

}  // namespace insta::place
