#include "place/placer.hpp"

#include <algorithm>
#include <cmath>

#include "place/hpwl.hpp"
#include "place/pin_slacks.hpp"
#include "timing/clock.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace insta::place {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;
using timing::ArcId;
using timing::ArcRecord;

GlobalPlacer::GlobalPlacer(gen::PlacementBench& bench, PlacerOptions options)
    : bench_(&bench), options_(options), design_(bench.gd.design.get()) {
  graph_ = std::make_unique<timing::TimingGraph>(
      *design_, bench.gd.constraints.clock_root);
  timing::DelayModelParams dm;
  dm.use_placement = true;
  calc_ = std::make_unique<timing::DelayCalculator>(*design_, *graph_, dm);
  calc_->compute_all(delays_);

  // Exact golden pruning window: the maximum possible CPPR credit plus a
  // safety margin (DESIGN.md §6).
  const timing::ClockAnalysis probe(*graph_, delays_,
                                    bench.gd.constraints.nsigma);
  ref::GoldenOptions gopt;
  gopt.prune_window = probe.max_credit() * 1.5 + options_.golden_prune_margin;
  sta_ = std::make_unique<ref::GoldenSta>(*graph_, bench.gd.constraints,
                                          delays_, gopt);

  slot_of_cell_.assign(design_->num_cells(), -1);
  for (std::size_t c = 0; c < design_->num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    if (design_->cell(id).fixed) continue;
    slot_of_cell_[c] = static_cast<std::int32_t>(movable_.size());
    movable_.push_back(id);
    x_.push_back(design_->cell(id).x);
    y_.push_back(design_->cell(id).y);
  }
  net_weight_.assign(design_->num_nets(), 1.0);
}

void GlobalPlacer::sync_positions_to_design() {
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    netlist::Cell& cell = design_->cell(movable_[i]);
    cell.x = x_[i];
    cell.y = y_[i];
  }
}

void GlobalPlacer::refresh_timing(PlacePhaseTimes& phases) {
  sync_positions_to_design();
  util::Stopwatch t_timer;
  calc_->compute_all(delays_);
  sta_->update_full();
  phases.timer_sec += t_timer.elapsed_sec();

  if (options_.mode == TimingMode::kNetWeight) {
    util::Stopwatch t_w;
    const auto slack = compute_pin_slacks(*sta_);
    const double period = bench_->gd.constraints.clock_period;
    for (std::size_t n = 0; n < design_->num_nets(); ++n) {
      const netlist::Net& net = design_->net(static_cast<NetId>(n));
      double worst = std::numeric_limits<double>::infinity();
      for (const PinId s : net.sinks) {
        worst = std::min(worst, slack[static_cast<std::size_t>(s)]);
      }
      double crit = 0.0;
      if (std::isfinite(worst) && worst < 0.0) {
        crit = std::min(1.0, -worst / std::max(1.0, period));
      }
      const double target = 1.0 + options_.nw_alpha * crit;
      net_weight_[n] =
          options_.nw_beta * net_weight_[n] + (1.0 - options_.nw_beta) * target;
    }
    phases.weighting_sec += t_w.elapsed_sec();
  } else if (options_.mode == TimingMode::kInstaPlace) {
    util::Stopwatch t_init;
    core::EngineOptions eopt;
    eopt.top_k = options_.insta_top_k;
    eopt.tau = options_.insta_tau;
    core::Engine engine(*sta_, eopt);  // the Fig. 9 "data transfer" phase
    phases.transfer_sec += t_init.elapsed_sec();

    util::Stopwatch t_fwd;
    engine.run_forward();
    phases.forward_sec += t_fwd.elapsed_sec();

    util::Stopwatch t_bwd;
    engine.run_backward(core::GradientMetric::kTns);
    phases.backward_sec += t_bwd.elapsed_sec();

    util::Stopwatch t_w;
    crit_arcs_.clear();
    for (std::size_t a = 0; a < graph_->num_arcs(); ++a) {
      const ArcRecord& rec = graph_->arc(static_cast<ArcId>(a));
      if (rec.kind != timing::ArcKind::kNet) continue;
      const float g = engine.arc_gradient(static_cast<ArcId>(a));
      if (g <= 1e-4f) continue;
      crit_arcs_.push_back(CritArc{design_->pin(rec.from).cell,
                                   design_->pin(rec.to).cell,
                                   static_cast<double>(g)});
    }
    // Eq. 8: lambda_2 aligns the norms of the default and timing gradients.
    std::vector<double> gx(movable_.size(), 0.0), gy(movable_.size(), 0.0);
    add_wirelength_density_grad(gx, gy, current_density_weight_);
    double norm_default = 0.0;
    for (std::size_t i = 0; i < movable_.size(); ++i) {
      norm_default += gx[i] * gx[i] + gy[i] * gy[i];
    }
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    add_timing_grad(gx, gy, 1.0);
    double norm_timing = 0.0;
    for (std::size_t i = 0; i < movable_.size(); ++i) {
      norm_timing += gx[i] * gx[i] + gy[i] * gy[i];
    }
    lambda2_ = (norm_timing > 1e-20)
                   ? std::sqrt(norm_default / norm_timing)
                   : 0.0;
    phases.weighting_sec += t_w.elapsed_sec();
  }
  ++phases.refreshes;
}

void GlobalPlacer::add_timing_grad(std::vector<double>& gx,
                                   std::vector<double>& gy,
                                   double scale) const {
  // Eq. 7: gradient of sum_k lambda_RC * g_k * (|dx| + |dy|).
  for (const CritArc& a : crit_arcs_) {
    const double d = options_.lambda_rc * a.grad * scale;
    const std::int32_t sf = slot_of_cell_[static_cast<std::size_t>(a.from)];
    const std::int32_t st = slot_of_cell_[static_cast<std::size_t>(a.to)];
    const double xf = (sf >= 0) ? x_[static_cast<std::size_t>(sf)]
                                : design_->cell(a.from).x;
    const double xt = (st >= 0) ? x_[static_cast<std::size_t>(st)]
                                : design_->cell(a.to).x;
    const double yf = (sf >= 0) ? y_[static_cast<std::size_t>(sf)]
                                : design_->cell(a.from).y;
    const double yt = (st >= 0) ? y_[static_cast<std::size_t>(st)]
                                : design_->cell(a.to).y;
    const double sx = (xf > xt) ? 1.0 : ((xf < xt) ? -1.0 : 0.0);
    const double sy = (yf > yt) ? 1.0 : ((yf < yt) ? -1.0 : 0.0);
    if (sf >= 0) {
      gx[static_cast<std::size_t>(sf)] += d * sx;
      gy[static_cast<std::size_t>(sf)] += d * sy;
    }
    if (st >= 0) {
      gx[static_cast<std::size_t>(st)] -= d * sx;
      gy[static_cast<std::size_t>(st)] -= d * sy;
    }
  }
}

void GlobalPlacer::add_wirelength_density_grad(std::vector<double>& gx,
                                               std::vector<double>& gy,
                                               double density_weight) const {
  // Normalize the density gradient against the wirelength gradient so the
  // `density_weight` ramp controls their true balance (ePlace-style
  // auto-scaling; raw magnitudes differ by orders of magnitude).
  std::vector<double> dx(gx.size(), 0.0), dy(gy.size(), 0.0);
  add_wirelength_grad(gx, gy);
  add_density_grad(dx, dy, 1.0);
  double nw = 0.0, nd = 0.0;
  for (std::size_t i = 0; i < gx.size(); ++i) {
    nw += gx[i] * gx[i] + gy[i] * gy[i];
    nd += dx[i] * dx[i] + dy[i] * dy[i];
  }
  const double scale =
      (nd > 1e-20) ? density_weight * std::sqrt(nw / nd) : 0.0;
  for (std::size_t i = 0; i < gx.size(); ++i) {
    gx[i] += scale * dx[i];
    gy[i] += scale * dy[i];
  }
}

void GlobalPlacer::add_wirelength_grad(std::vector<double>& gx,
                                       std::vector<double>& gy) const {
  const double core_w = bench_->core_width;
  const double core_h = bench_->core_height;
  const double gamma = options_.gamma_frac * std::max(core_w, core_h);

  // Weighted-average smoothed wirelength.
  std::vector<std::pair<CellId, double>> vals;  // reused per net/axis
  for (std::size_t n = 0; n < design_->num_nets(); ++n) {
    const netlist::Net& net = design_->net(static_cast<NetId>(n));
    if (net.driver == netlist::kNullPin || net.sinks.empty()) continue;
    const double w = net_weight_[n];

    for (const int axis : {0, 1}) {
      vals.clear();
      auto coord = [&](PinId pin) {
        const CellId c = design_->pin(pin).cell;
        const std::int32_t s = slot_of_cell_[static_cast<std::size_t>(c)];
        if (s < 0) {
          return axis == 0 ? design_->cell(c).x : design_->cell(c).y;
        }
        return axis == 0 ? x_[static_cast<std::size_t>(s)]
                         : y_[static_cast<std::size_t>(s)];
      };
      vals.emplace_back(design_->pin(net.driver).cell, coord(net.driver));
      for (const PinId s : net.sinks) {
        vals.emplace_back(design_->pin(s).cell, coord(s));
      }
      double vmax = vals[0].second, vmin = vals[0].second;
      for (const auto& [c, v] : vals) {
        vmax = std::max(vmax, v);
        vmin = std::min(vmin, v);
      }
      double s1 = 0.0, s2 = 0.0, t1 = 0.0, t2 = 0.0;
      for (const auto& [c, v] : vals) {
        const double e = std::exp((v - vmax) / gamma);
        const double f = std::exp((vmin - v) / gamma);
        s1 += e;
        s2 += v * e;
        t1 += f;
        t2 += v * f;
      }
      const double wa_max = s2 / s1;
      const double wa_min = t2 / t1;
      for (const auto& [c, v] : vals) {
        const std::int32_t slot = slot_of_cell_[static_cast<std::size_t>(c)];
        if (slot < 0) continue;
        const double e = std::exp((v - vmax) / gamma);
        const double f = std::exp((vmin - v) / gamma);
        const double dmax = e * (1.0 + (v - wa_max) / gamma) / s1;
        const double dmin = f * (1.0 - (v - wa_min) / gamma) / t1;
        const double grad = w * (dmax - dmin);
        auto& out = (axis == 0) ? gx : gy;
        out[static_cast<std::size_t>(slot)] += grad;
      }
    }
  }

}

void GlobalPlacer::add_density_grad(std::vector<double>& gx,
                                    std::vector<double>& gy,
                                    double weight) const {
  const double core_w = bench_->core_width;
  const double core_h = bench_->core_height;
  const int bins = options_.density_bins;
  const double bw = core_w / bins;
  const double bh = core_h / bins;
  std::vector<double> area(static_cast<std::size_t>(bins * bins), 0.0);
  double total_area = 0.0;
  for (std::size_t c = 0; c < design_->num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    const double a = design_->libcell_of(id).area;
    if (a <= 0.0) continue;
    const netlist::Cell& cell = design_->cell(id);
    const std::int32_t slot = slot_of_cell_[c];
    const double px = (slot >= 0) ? x_[static_cast<std::size_t>(slot)] : cell.x;
    const double py = (slot >= 0) ? y_[static_cast<std::size_t>(slot)] : cell.y;
    const int bx = std::clamp(static_cast<int>(px / bw), 0, bins - 1);
    const int by = std::clamp(static_cast<int>(py / bh), 0, bins - 1);
    area[static_cast<std::size_t>(by * bins + bx)] += a;
    total_area += a;
  }

  // Long-range spreading potential: the raw density-minus-average field is
  // flat inside a uniform clump (zero local gradient), so cells deep in a
  // blob would never move. Repeated box blurs turn the field into a smooth
  // potential whose gradient reaches into the interior — a cheap stand-in
  // for ePlace's Poisson potential.
  const double bin_area = bw * bh;
  const double avg = total_area / (core_w * core_h);
  std::vector<double> pot(area.size());
  for (std::size_t b = 0; b < area.size(); ++b) {
    pot[b] = area[b] / bin_area - avg;
  }
  std::vector<double> tmp(pot.size());
  auto at = [&](const std::vector<double>& f, int bx, int by) {
    bx = std::clamp(bx, 0, bins - 1);
    by = std::clamp(by, 0, bins - 1);
    return f[static_cast<std::size_t>(by * bins + bx)];
  };
  for (int pass = 0; pass < 6; ++pass) {
    for (int by = 0; by < bins; ++by) {
      for (int bx = 0; bx < bins; ++bx) {
        tmp[static_cast<std::size_t>(by * bins + bx)] =
            (at(pot, bx, by) * 2.0 + at(pot, bx - 1, by) + at(pot, bx + 1, by) +
             at(pot, bx, by - 1) + at(pot, bx, by + 1)) /
            6.0;
      }
    }
    std::swap(pot, tmp);
  }
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    const CellId id = movable_[i];
    const double a = design_->libcell_of(id).area;
    if (a <= 0.0) continue;
    const int bx = std::clamp(static_cast<int>(x_[i] / bw), 0, bins - 1);
    const int by = std::clamp(static_cast<int>(y_[i] / bh), 0, bins - 1);
    gx[i] += weight * a * (at(pot, bx + 1, by) - at(pot, bx - 1, by)) /
             (2.0 * bw);
    gy[i] += weight * a * (at(pot, bx, by + 1) - at(pot, bx, by - 1)) /
             (2.0 * bh);
  }
}

PlaceResult GlobalPlacer::run() {
  util::Stopwatch total;
  PlaceResult res;

  const double core_w = bench_->core_width;
  const double core_h = bench_->core_height;
  const double lr = options_.lr_frac * std::max(core_w, core_h);
  current_density_weight_ = options_.density_weight;

  std::vector<double> mx(movable_.size(), 0.0), vx(movable_.size(), 0.0);
  std::vector<double> my(movable_.size(), 0.0), vy(movable_.size(), 0.0);
  std::vector<double> gx(movable_.size(), 0.0), gy(movable_.size(), 0.0);
  constexpr double kB1 = 0.9, kB2 = 0.999, kEps = 1e-9;

  for (int iter = 0; iter < options_.iterations; ++iter) {
    if (options_.mode != TimingMode::kNone &&
        iter % options_.timing_refresh_interval == 0) {
      refresh_timing(res.phases);
    }
    util::Stopwatch t_descent;
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    add_wirelength_density_grad(gx, gy, current_density_weight_);
    if (options_.mode == TimingMode::kInstaPlace) {
      add_timing_grad(gx, gy, lambda2_);
    }
    const double t = iter + 1;
    const double bc1 = 1.0 - std::pow(kB1, t);
    const double bc2 = 1.0 - std::pow(kB2, t);
    for (std::size_t i = 0; i < movable_.size(); ++i) {
      mx[i] = kB1 * mx[i] + (1.0 - kB1) * gx[i];
      vx[i] = kB2 * vx[i] + (1.0 - kB2) * gx[i] * gx[i];
      my[i] = kB1 * my[i] + (1.0 - kB1) * gy[i];
      vy[i] = kB2 * vy[i] + (1.0 - kB2) * gy[i] * gy[i];
      x_[i] -= lr * (mx[i] / bc1) / (std::sqrt(vx[i] / bc2) + kEps);
      y_[i] -= lr * (my[i] / bc1) / (std::sqrt(vy[i] / bc2) + kEps);
      x_[i] = std::clamp(x_[i], 1.0, core_w - 1.0);
      y_[i] = std::clamp(y_[i], 1.0, core_h - 1.0);
    }
    current_density_weight_ *= options_.density_growth;
    res.phases.descent_sec += t_descent.elapsed_sec();
  }

  sync_positions_to_design();
  calc_->compute_all(delays_);
  sta_->update_full();
  res.hpwl_pre = total_hpwl(*design_);
  res.tns_pre = sta_->tns();

  const CoreGeometry core{core_w, core_h, bench_->row_height, bench_->num_rows};
  res.legalize_displacement = legalize_rows(*design_, core);
  calc_->compute_all(delays_);
  sta_->update_full();

  res.hpwl = total_hpwl(*design_);
  res.tns = sta_->tns();
  res.wns = sta_->wns();
  res.violations = sta_->num_violations();
  res.total_sec = total.elapsed_sec();
  return res;
}

}  // namespace insta::place
