#pragma once

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "gen/placement_bench.hpp"
#include "place/legalizer.hpp"
#include "ref/golden_sta.hpp"
#include "timing/delay_calc.hpp"

namespace insta::place {

/// Timing strategy of the global placer.
enum class TimingMode {
  kNone,       ///< wirelength + density only (the "DP" column of Table III)
  kNetWeight,  ///< momentum net weighting from pin slacks (the "DP 4.0"
               ///< baseline [19])
  kInstaPlace, ///< arc-gradient weighted distances from INSTA (Eq. 7-8)
};

/// Options of the analytic global placer substrate. All three timing modes
/// share this identical substrate; only the timing term differs — the
/// controlled comparison Table III makes.
struct PlacerOptions {
  TimingMode mode = TimingMode::kNone;
  int iterations = 240;
  int timing_refresh_interval = 15;  ///< iterations between timer updates
  double gamma_frac = 0.015;  ///< WA wirelength smoothing / core width
  double density_weight = 0.1;      ///< initial lambda_1
  double density_growth = 1.02;     ///< lambda_1 multiplier per iteration
  int density_bins = 24;            ///< density grid resolution per axis
  double lr_frac = 1.0 / 400.0;     ///< Adam step / core width
  double lambda_rc = 0.001;         ///< Eq. 7 RC-per-wirelength constant
  double nw_alpha = 3.0;            ///< net-weighting criticality strength
  double nw_beta = 0.5;             ///< net-weighting momentum
  int insta_top_k = 8;              ///< Top-K of the in-loop INSTA engine
  float insta_tau = 10.0f;          ///< LSE temperature of the in-loop engine
  double golden_prune_margin = 10.0;  ///< ps added to the exact prune window
};

/// Per-phase runtime of the timing-refresh iterations (the Fig. 9 data).
struct PlacePhaseTimes {
  double timer_sec = 0.0;     ///< golden full update (OpenTimer's role)
  double transfer_sec = 0.0;  ///< INSTA initialization / cloning
  double forward_sec = 0.0;   ///< INSTA forward
  double backward_sec = 0.0;  ///< INSTA backward
  double weighting_sec = 0.0; ///< net-weight / arc-weight bookkeeping
  double descent_sec = 0.0;   ///< gradient computation + Adam updates (all iters)
  int refreshes = 0;
};

/// Result of one placement run (post-legalization, final golden timing).
struct PlaceResult {
  double hpwl = 0.0;  ///< um, after legalization
  double tns = 0.0;   ///< ps
  double wns = 0.0;   ///< ps
  int violations = 0;
  double total_sec = 0.0;
  // Pre-legalization view plus the legalizer's total displacement, for
  // diagnosing how much quality legalization costs.
  double hpwl_pre = 0.0;
  double tns_pre = 0.0;
  double legalize_displacement = 0.0;
  PlacePhaseTimes phases;
};

/// Analytic timing-driven global placer: weighted-average smoothed
/// wirelength + bin-density spreading, Adam descent, and one of three
/// timing strategies. The golden engine is the in-loop timer (OpenTimer's
/// role in the paper), refreshed every `timing_refresh_interval` iterations;
/// INSTA-Place re-initializes an INSTA engine from it at each refresh and
/// reuses the arc gradients in between, exactly as Section III-I describes.
class GlobalPlacer {
 public:
  /// Binds to a placement bench; the bench's design is mutated in place
  /// (final positions are written back and legalized).
  GlobalPlacer(gen::PlacementBench& bench, PlacerOptions options);

  /// Runs global placement, legalizes, and reports final HPWL and timing.
  PlaceResult run();

 private:
  void sync_positions_to_design();
  void refresh_timing(PlacePhaseTimes& phases);
  void add_wirelength_grad(std::vector<double>& gx,
                           std::vector<double>& gy) const;
  void add_density_grad(std::vector<double>& gx, std::vector<double>& gy,
                        double weight) const;
  /// Combined default objective gradient with the density term normalized
  /// against the wirelength gradient norm and scaled by `density_weight`.
  void add_wirelength_density_grad(std::vector<double>& gx,
                                   std::vector<double>& gy,
                                   double density_weight) const;
  void add_timing_grad(std::vector<double>& gx, std::vector<double>& gy,
                       double scale) const;

  gen::PlacementBench* bench_;
  PlacerOptions options_;
  netlist::Design* design_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::unique_ptr<timing::DelayCalculator> calc_;
  timing::ArcDelays delays_;
  std::unique_ptr<ref::GoldenSta> sta_;

  std::vector<netlist::CellId> movable_;
  std::vector<std::int32_t> slot_of_cell_;  // -1 if fixed
  std::vector<double> x_, y_;               // per movable slot
  std::vector<double> net_weight_;          // per net (kNetWeight)

  /// Critical-arc list for kInstaPlace: (driver cell, sink cell, gradient).
  struct CritArc {
    netlist::CellId from;
    netlist::CellId to;
    double grad;
  };
  std::vector<CritArc> crit_arcs_;
  double lambda2_ = 0.0;
  double current_density_weight_ = 0.1;
};

}  // namespace insta::place
