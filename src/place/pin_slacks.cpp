#include "place/pin_slacks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace insta::place {

using netlist::PinId;
using timing::ArcId;
using timing::ArcRecord;

std::vector<double> compute_pin_slacks(const ref::GoldenSta& sta) {
  const timing::TimingGraph& g = sta.graph();
  const double nsigma = sta.constraints().nsigma;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> required(g.design().num_pins(), kInf);

  // Endpoint required = arrival + slack (recovers the CPPR-credited
  // required of the endpoint's worst startpoint).
  for (std::size_t e = 0; e < g.endpoints().size(); ++e) {
    const timing::Endpoint& ep = g.endpoints()[e];
    const double slack = sta.endpoint_slack(static_cast<timing::EndpointId>(e));
    const double arr = sta.worst_arrival(ep.pin);
    if (std::isfinite(slack) && std::isfinite(arr)) {
      required[static_cast<std::size_t>(ep.pin)] = arr + slack;
    }
  }

  // Backward min-propagation in reverse level order.
  const auto order = g.level_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const PinId p = *it;
    double r = required[static_cast<std::size_t>(p)];
    for (const ArcId aid : g.fanout(p)) {
      const ArcRecord& a = g.arc(aid);
      const double rt = required[static_cast<std::size_t>(a.to)];
      if (!std::isfinite(rt)) continue;
      double corner = 0.0;
      for (const int rf : {0, 1}) {
        corner = std::max(
            corner,
            sta.delays().mu[rf][static_cast<std::size_t>(aid)] +
                nsigma * sta.delays().sigma[rf][static_cast<std::size_t>(aid)]);
      }
      r = std::min(r, rt - corner);
    }
    required[static_cast<std::size_t>(p)] = r;
  }

  std::vector<double> slack(g.design().num_pins(), kInf);
  for (const PinId p : order) {
    const double arr = sta.worst_arrival(p);
    if (std::isfinite(arr) &&
        std::isfinite(required[static_cast<std::size_t>(p)])) {
      slack[static_cast<std::size_t>(p)] =
          required[static_cast<std::size_t>(p)] - arr;
    }
  }
  return slack;
}

}  // namespace insta::place
