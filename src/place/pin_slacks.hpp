#pragma once

#include <vector>

#include "ref/golden_sta.hpp"

namespace insta::place {

/// Scalar graph-based pin slacks computed from the golden engine's arrival
/// state: required times are propagated backward from the endpoints with
/// worst-corner arc delays, and slack(pin) = required - worst arrival.
///
/// This plays the role OpenTimer plays for the net-weighting baseline [19]:
/// a conventional slack view with no notion of per-arc criticality — exactly
/// the information deficit INSTA-Place's arc gradients fix.
///
/// Endpoint-pin slacks equal the engine's endpoint slacks exactly; slacks at
/// intermediate pins are pessimistic (corner delays add along the backward
/// walk while the forward arrival RSSes sigmas), which is the usual
/// behaviour of a scalar slack view over a statistical engine.
///
/// Pins nothing arrives at get +infinity. Indexed by design pin id.
[[nodiscard]] std::vector<double> compute_pin_slacks(const ref::GoldenSta& sta);

}  // namespace insta::place
