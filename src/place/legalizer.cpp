#include "place/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace insta::place {

using netlist::CellId;

namespace {

/// Placement footprint width of a cell: area spread over one row height.
double cell_width(const netlist::Design& d, CellId id, double row_height) {
  return std::max(0.2, d.libcell_of(id).area / row_height);
}

}  // namespace

double legalize_rows(netlist::Design& design, const CoreGeometry& core) {
  util::check(core.num_rows > 0 && core.row_height > 0.0 && core.width > 0.0,
              "legalize_rows: bad core geometry");
  struct Item {
    CellId id;
    double x, y, w;
  };
  std::vector<Item> items;
  double total_width = 0.0;
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    const netlist::Cell& cell = design.cell(id);
    if (cell.fixed || design.libcell_of(id).area <= 0.0) continue;
    const double w = cell_width(design, id, core.row_height);
    items.push_back({id, cell.x, cell.y, w});
    total_width += w;
  }
  util::check(total_width <= 0.98 * core.width * core.num_rows,
              "legalize_rows: design does not fit the core");

  // Phase 1: geometric row assignment with capacity rebalancing. Every cell
  // starts in the row containing its y; overloaded rows shed their cells
  // nearest the neighbouring row in alternating upward/downward sweeps.
  // Global utilization is below the per-row cap, so the sweeps terminate
  // with every row within capacity — the algorithm cannot overflow.
  std::vector<std::vector<Item>> rows(static_cast<std::size_t>(core.num_rows));
  std::vector<double> width(static_cast<std::size_t>(core.num_rows), 0.0);
  for (const Item& it : items) {
    const int r = std::clamp(static_cast<int>(it.y / core.row_height), 0,
                             core.num_rows - 1);
    rows[static_cast<std::size_t>(r)].push_back(it);
    width[static_cast<std::size_t>(r)] += it.w;
  }
  const double cap = 0.97 * core.width;
  auto shed = [&](int from, int to, bool take_max_y) {
    auto& row = rows[static_cast<std::size_t>(from)];
    std::sort(row.begin(), row.end(),
              [](const Item& a, const Item& b) { return a.y < b.y; });
    while (width[static_cast<std::size_t>(from)] > cap && !row.empty()) {
      const Item moved = take_max_y ? row.back() : row.front();
      if (take_max_y) {
        row.pop_back();
      } else {
        row.erase(row.begin());
      }
      width[static_cast<std::size_t>(from)] -= moved.w;
      rows[static_cast<std::size_t>(to)].push_back(moved);
      width[static_cast<std::size_t>(to)] += moved.w;
    }
  };
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (int r = 0; r + 1 < core.num_rows; ++r) shed(r, r + 1, true);
    for (int r = core.num_rows - 1; r > 0; --r) shed(r, r - 1, false);
  }

  // Phase 2: within each row, pack in ascending-x order. A cell may keep a
  // gap to its left only if the remaining cells still fit to its right
  // (budget cap), so the row always packs.
  double displacement = 0.0;
  for (int r = 0; r < core.num_rows; ++r) {
    auto& row = rows[static_cast<std::size_t>(r)];
    std::sort(row.begin(), row.end(),
              [](const Item& a, const Item& b) { return a.x < b.x; });
    double suffix = 0.0;
    for (const Item& it : row) suffix += it.w;
    const double row_y = (r + 0.5) * core.row_height;
    double cursor = 0.0;
    for (const Item& it : row) {
      const double cap = core.width - suffix;  // rightmost legal left edge
      const double px = std::clamp(it.x - it.w * 0.5, cursor, std::max(cursor, cap));
      netlist::Cell& cell = design.cell(it.id);
      displacement += std::abs(px + it.w * 0.5 - it.x) + std::abs(row_y - it.y);
      cell.x = px + it.w * 0.5;
      cell.y = row_y;
      cursor = px + it.w;
      suffix -= it.w;
    }
  }
  return displacement;
}

}  // namespace insta::place
