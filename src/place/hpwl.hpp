#pragma once

#include "netlist/design.hpp"

namespace insta::place {

/// Half-perimeter wirelength of one net from the current cell placement
/// (cells are treated as points at their centers), um.
[[nodiscard]] double net_hpwl(const netlist::Design& design,
                              netlist::NetId net);

/// Total HPWL over all nets, um (the Table III HPWL metric).
[[nodiscard]] double total_hpwl(const netlist::Design& design);

}  // namespace insta::place
