#pragma once

#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "timing/types.hpp"

namespace insta::timing {

/// A timing startpoint: a flip-flop launch (at its Q pin) or a primary
/// input (at the port's output pin).
struct Startpoint {
  netlist::PinId pin = netlist::kNullPin;   ///< Q pin or PI output pin
  netlist::CellId cell = netlist::kNullCell; ///< FF cell or port cell
  bool clocked = false;                      ///< true for FF launches
};

/// A timing endpoint: a flip-flop D pin (setup check) or a primary output.
struct Endpoint {
  netlist::PinId pin = netlist::kNullPin;    ///< D pin or PO input pin
  netlist::CellId cell = netlist::kNullCell; ///< FF cell or port cell
  bool clocked = false;                      ///< true for FF captures
};

/// The levelized pin-level timing graph of a design.
///
/// Construction performs, in the vocabulary of the paper's Figure 2, the
/// "timing graph construction + levelization" step of INSTA's one-time
/// initialization: it enumerates all timing arcs, separates the clock
/// network from the data network, identifies startpoints/endpoints, and
/// topologically sorts the data pins into levels so that pins within one
/// level can be processed in parallel.
///
/// Arc ordering: all cell arcs first (contiguous per cell, including DFF
/// launch arcs and both polarities of non-unate arcs), then all net arcs
/// (contiguous per net, in sink order). This makes "arcs of cell c" and
/// "arcs of net n" O(1) range lookups, which the incremental delay
/// calculator and estimate_eco rely on.
class TimingGraph {
 public:
  /// Builds the graph. `clock_root` is the primary input that drives the
  /// clock tree (kNullCell for purely combinational designs). The design
  /// must already validate().
  TimingGraph(const netlist::Design& design, netlist::CellId clock_root);

  /// Multi-domain variant: one clock tree per root (Constraints::clock_roots
  /// order). All trees together form the clock network.
  TimingGraph(const netlist::Design& design,
              std::vector<netlist::CellId> clock_roots);

  // ---- arcs -------------------------------------------------------------

  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }
  [[nodiscard]] const ArcRecord& arc(ArcId id) const { return arcs_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] std::span<const ArcRecord> arcs() const { return arcs_; }

  /// Arc-id range [first, last) of all cell arcs of `cell` (including the
  /// launch arc for DFFs). Empty for cells without an output.
  [[nodiscard]] std::pair<ArcId, ArcId> cell_arcs(netlist::CellId cell) const;

  /// Arc-id range [first, last) of all net arcs of `net`, in sink order.
  [[nodiscard]] std::pair<ArcId, ArcId> net_arcs(netlist::NetId net) const;

  // ---- data-graph connectivity (CSR) -------------------------------------

  /// Data arcs that end at `pin` (its fanin). Launch arcs and clock-network
  /// arcs are excluded: the data graph starts at startpoint pins.
  [[nodiscard]] std::span<const ArcId> fanin(netlist::PinId pin) const;

  /// Data arcs that start at `pin` (its fanout).
  [[nodiscard]] std::span<const ArcId> fanout(netlist::PinId pin) const;

  // ---- levelization -------------------------------------------------------

  /// Number of topological levels of the data graph.
  [[nodiscard]] std::size_t num_levels() const { return level_start_.size() - 1; }

  /// Pins of level `l` (all mutually independent). Level 0 holds the
  /// startpoint pins and any unconnected sources.
  [[nodiscard]] std::span<const netlist::PinId> level(std::size_t l) const;

  /// Topological level of a data pin; -1 for clock-network pins.
  [[nodiscard]] int level_of(netlist::PinId pin) const { return level_of_[static_cast<std::size_t>(pin)]; }

  /// All data pins in level order (concatenation of all levels).
  [[nodiscard]] std::span<const netlist::PinId> level_order() const { return level_order_; }

  // ---- startpoints / endpoints -------------------------------------------

  [[nodiscard]] std::span<const Startpoint> startpoints() const { return startpoints_; }
  [[nodiscard]] std::span<const Endpoint> endpoints() const { return endpoints_; }

  /// Startpoint id whose source is `pin`, or kNullStartpoint.
  [[nodiscard]] StartpointId startpoint_of_pin(netlist::PinId pin) const;

  /// Endpoint id at `pin`, or kNullEndpoint.
  [[nodiscard]] EndpointId endpoint_of_pin(netlist::PinId pin) const;

  // ---- clock network -------------------------------------------------------

  /// True if the pin belongs to the clock distribution network (the clock
  /// root port, clock buffers and their pins, and FF clock pins).
  [[nodiscard]] bool is_clock_network(netlist::PinId pin) const {
    return clock_network_[static_cast<std::size_t>(pin)];
  }

  /// True if the cell is part of the clock tree (clock root or clock buffer).
  [[nodiscard]] bool is_clock_cell(netlist::CellId cell) const {
    return clock_cell_[static_cast<std::size_t>(cell)];
  }

  /// The primary clock root port cell (kNullCell if the design has no clock).
  [[nodiscard]] netlist::CellId clock_root() const {
    return clock_roots_.empty() ? netlist::kNullCell : clock_roots_.front();
  }

  /// All clock roots, primary first.
  [[nodiscard]] std::span<const netlist::CellId> clock_roots() const {
    return clock_roots_;
  }

  [[nodiscard]] const netlist::Design& design() const { return *design_; }

  /// Maximum fanin arc count over all data pins (the K·fanin candidate bound
  /// of the merge kernel).
  [[nodiscard]] std::size_t max_fanin() const { return max_fanin_; }

 private:
  void build_arcs();
  void mark_clock_network();
  void collect_endpoints();
  void build_csr();
  void levelize();

  const netlist::Design* design_;
  std::vector<netlist::CellId> clock_roots_;

  std::vector<ArcRecord> arcs_;
  std::vector<ArcId> cell_arc_start_;  // size C+1
  std::vector<ArcId> net_arc_start_;   // size N+1

  std::vector<char> clock_network_;  // per pin
  std::vector<char> clock_cell_;     // per cell

  std::vector<Startpoint> startpoints_;
  std::vector<Endpoint> endpoints_;
  std::vector<StartpointId> sp_of_pin_;  // per pin, kNullStartpoint default
  std::vector<EndpointId> ep_of_pin_;    // per pin

  // fanin/fanout CSR over data arcs
  std::vector<std::int32_t> fanin_start_;
  std::vector<ArcId> fanin_arcs_;
  std::vector<std::int32_t> fanout_start_;
  std::vector<ArcId> fanout_arcs_;

  std::vector<int> level_of_;
  std::vector<netlist::PinId> level_order_;
  std::vector<std::int32_t> level_start_;
  std::size_t max_fanin_ = 0;
};

}  // namespace insta::timing
