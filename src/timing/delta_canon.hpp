#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "timing/types.hpp"

namespace insta::timing {

/// Canonical form of a what-if delta-set: sorted ascending by arc id, with
/// duplicate-arc entries merged last-write-wins — exactly the net effect of
/// Engine::annotate(), whose writes are assignments. Two delta-sets that
/// annotate identical final values to identical arcs canonicalize to the
/// same vector, whatever order or duplication the caller used.
///
/// When `duplicates` is non-null, the arc id of every *extra* occurrence is
/// appended in input-encounter order (one entry per re-occurrence, matching
/// the "delta-duplicate-arc" diagnostics Engine::check_deltas emits).
///
/// Canonicalization is a keying/validation tool, not an evaluation rewrite:
/// ScenarioBatch's TNS fold is floating-point order-sensitive in delta input
/// order, so evaluation must keep the caller's ordering — only hashes and
/// equality comparisons should look at the canonical form.
[[nodiscard]] std::vector<ArcDelta> canonicalize_deltas(
    std::span<const ArcDelta> deltas,
    std::vector<ArcId>* duplicates = nullptr);

/// Order- and duplication-insensitive FNV-1a-64 digest of a delta-set:
/// hashes the canonical form's (arc id, mu/sigma double bit patterns)
/// stream. Logically identical delta-sets — same final per-arc values —
/// hash identically; values hash by bit pattern, so the digest separates
/// anything the engine would treat as a different annotation.
[[nodiscard]] std::uint64_t delta_set_hash(std::span<const ArcDelta> deltas);

/// Exact (bitwise on mu/sigma) element-wise equality of two delta lists.
/// Pass two canonical forms to ask "are these logically the same delta-set"
/// — the hash-collision confirmation the what-if cache relies on.
[[nodiscard]] bool deltas_equal(std::span<const ArcDelta> a,
                                std::span<const ArcDelta> b);

}  // namespace insta::timing
