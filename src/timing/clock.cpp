#include "timing/clock.hpp"

#include <cmath>
#include <deque>

#include "util/check.hpp"

namespace insta::timing {

using netlist::CellId;
using netlist::kNullCell;
using netlist::kNullPin;
using netlist::PinId;
using netlist::RiseFall;
using util::check;

ClockAnalysis::ClockAnalysis(const TimingGraph& graph, const ArcDelays& delays,
                             double nsigma)
    : nsigma_(nsigma) {
  const netlist::Design& d = graph.design();
  node_of_pin_.assign(d.num_pins(), -1);
  ff_node_.assign(d.num_cells(), -1);
  if (graph.clock_roots().empty()) return;

  auto add_node = [&](PinId pin, std::int32_t parent, std::int32_t domain,
                      double mu, double sig2) {
    const auto node = static_cast<std::int32_t>(pin_of_node_.size());
    node_of_pin_[static_cast<std::size_t>(pin)] = node;
    pin_of_node_.push_back(pin);
    parent_.push_back(parent);
    depth_.push_back(parent < 0 ? 0 : depth_[static_cast<std::size_t>(parent)] + 1);
    domain_.push_back(domain);
    mu_.push_back(mu);
    sig2_.push_back(sig2);
    return node;
  };

  // Edge polarity at each node: the clock's active (rising) edge may flip
  // through inverters; delays are taken at the propagated polarity.
  std::vector<std::uint8_t> edge_of_node;

  std::deque<PinId> frontier;  // driver pins whose net is yet to be expanded
  for (std::size_t r = 0; r < graph.clock_roots().size(); ++r) {
    const PinId root_pin = d.output_pin(graph.clock_roots()[r]);
    add_node(root_pin, -1, static_cast<std::int32_t>(r), 0.0, 0.0);
    edge_of_node.push_back(0);  // rising
    frontier.push_back(root_pin);
  }

  while (!frontier.empty()) {
    const PinId drv = frontier.front();
    frontier.pop_front();
    const std::int32_t drv_node = node_of_pin_[static_cast<std::size_t>(drv)];
    const int drv_edge = edge_of_node[static_cast<std::size_t>(drv_node)];
    const std::int32_t domain = domain_[static_cast<std::size_t>(drv_node)];
    const netlist::NetId net = d.pin(drv).net;
    if (net == netlist::kNullNet) continue;

    const auto [first, last] = graph.net_arcs(net);
    for (ArcId aid = first; aid < last; ++aid) {
      const ArcRecord& a = graph.arc(aid);
      const double amu = delays.mu[drv_edge][static_cast<std::size_t>(aid)];
      const double asig = delays.sigma[drv_edge][static_cast<std::size_t>(aid)];
      const std::int32_t sink_node =
          add_node(a.to, drv_node, domain,
                   mu_[static_cast<std::size_t>(drv_node)] + amu,
                   sig2_[static_cast<std::size_t>(drv_node)] + asig * asig);
      edge_of_node.push_back(static_cast<std::uint8_t>(drv_edge));

      const netlist::Pin& sink = d.pin(a.to);
      if (sink.role == netlist::PinRole::kClock) {
        ff_node_[static_cast<std::size_t>(sink.cell)] = sink_node;
        continue;
      }
      // Clock buffer/inverter: continue through its single cell arc.
      const auto [cfirst, clast] = graph.cell_arcs(sink.cell);
      check(clast - cfirst == 1, "clock cell must have exactly one arc");
      const ArcRecord& ca = graph.arc(cfirst);
      const int out_edge =
          (ca.sense == ArcSense::kPositive) ? drv_edge : 1 - drv_edge;
      const double cmu = delays.mu[out_edge][static_cast<std::size_t>(cfirst)];
      const double csig = delays.sigma[out_edge][static_cast<std::size_t>(cfirst)];
      add_node(ca.to, sink_node, domain,
               mu_[static_cast<std::size_t>(sink_node)] + cmu,
               sig2_[static_cast<std::size_t>(sink_node)] + csig * csig);
      edge_of_node.push_back(static_cast<std::uint8_t>(out_edge));
      frontier.push_back(ca.to);
    }
  }
}

std::int32_t ClockAnalysis::node_of_ff(CellId ff) const {
  if (ff == kNullCell) return -1;
  return ff_node_[static_cast<std::size_t>(ff)];
}

double ClockAnalysis::ck_mu(CellId ff) const {
  const std::int32_t n = node_of_ff(ff);
  check(n >= 0, "ck_mu: cell has no clock arrival");
  return mu_[static_cast<std::size_t>(n)];
}

double ClockAnalysis::ck_sig2(CellId ff) const {
  const std::int32_t n = node_of_ff(ff);
  check(n >= 0, "ck_sig2: cell has no clock arrival");
  return sig2_[static_cast<std::size_t>(n)];
}

double ClockAnalysis::late_ck(CellId ff) const {
  return ck_mu(ff) + nsigma_ * std::sqrt(ck_sig2(ff));
}

double ClockAnalysis::early_ck(CellId ff) const {
  return ck_mu(ff) - nsigma_ * std::sqrt(ck_sig2(ff));
}

double ClockAnalysis::credit(CellId launch_ff, CellId capture_ff) const {
  const std::int32_t a = node_of_ff(launch_ff);
  const std::int32_t b = node_of_ff(capture_ff);
  if (a < 0 || b < 0) return 0.0;
  // Distinct clock domains share no common path: no pessimism to remove.
  if (domain_[static_cast<std::size_t>(a)] !=
      domain_[static_cast<std::size_t>(b)]) {
    return 0.0;
  }
  const std::int32_t c = lca(a, b);
  return 2.0 * nsigma_ * std::sqrt(sig2_[static_cast<std::size_t>(c)]);
}

std::int32_t ClockAnalysis::domain_of_ff(CellId ff) const {
  const std::int32_t n = node_of_ff(ff);
  return n < 0 ? -1 : domain_[static_cast<std::size_t>(n)];
}

double ClockAnalysis::max_credit() const {
  double worst = 0.0;
  for (const double s2 : sig2_) {
    worst = std::max(worst, 2.0 * nsigma_ * std::sqrt(s2));
  }
  return worst;
}

std::int32_t ClockAnalysis::lca(std::int32_t a, std::int32_t b) const {
  while (depth_[static_cast<std::size_t>(a)] > depth_[static_cast<std::size_t>(b)]) {
    a = parent_[static_cast<std::size_t>(a)];
  }
  while (depth_[static_cast<std::size_t>(b)] > depth_[static_cast<std::size_t>(a)]) {
    b = parent_[static_cast<std::size_t>(b)];
  }
  while (a != b) {
    a = parent_[static_cast<std::size_t>(a)];
    b = parent_[static_cast<std::size_t>(b)];
  }
  return a;
}

}  // namespace insta::timing
