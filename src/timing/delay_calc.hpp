#pragma once

#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "timing/graph.hpp"
#include "timing/types.hpp"

namespace insta::timing {

/// Interconnect and environment parameters of the analytic delay model.
/// Units: ps, fF, kΩ, um (1 kΩ * 1 fF = 1 ps).
struct DelayModelParams {
  double r_per_um = 0.01;        ///< wire resistance, kΩ/um
  double c_per_um = 0.15;        ///< wire capacitance, fF/um
  double net_sigma_ratio = 0.05; ///< POCV sigma of net delays / nominal
  double slew_net_factor = 0.1;  ///< slew degradation per ps of net delay
  double primary_input_slew = 20.0;  ///< ps, slew at primary inputs
  double min_net_delay = 0.2;    ///< ps, floor for net arc delays
  bool use_placement = false;    ///< derive lengths from cell (x, y)
};

/// Analytic delay calculator: fills ArcDelays from the library's NLDM-style
/// model plus an Elmore-style interconnect model.
///
/// In the paper's division of labour this class is part of the *reference
/// tool* side (PrimeTime's delay calculation): INSTA never computes delays,
/// it clones them. The calculator supports three operations the experiments
/// need:
///   * compute_all      — full delay calculation (reference update_timing),
///   * update_for_resize — exact incremental recalculation after a gate
///     resize, including the 1-hop slew ripple to neighbouring cells,
///   * estimate_eco     — PrimeTime estimate_eco stand-in: a frozen-
///     neighbourhood local estimate that ignores the slew ripple (the
///     documented source of the small drift studied in Fig. 8).
class DelayCalculator {
 public:
  DelayCalculator(const netlist::Design& design, const TimingGraph& graph,
                  DelayModelParams params = {});

  /// Computes loads, slews and all arc delays from scratch.
  void compute_all(ArcDelays& delays);

  /// Exact incremental recalculation after `cell` was resized (the design
  /// must already hold the new libcell). Updates `delays` in place and
  /// returns the ids of all arcs whose delay changed.
  std::vector<ArcId> update_for_resize(netlist::CellId cell, ArcDelays& delays);

  /// PrimeTime estimate_eco stand-in: local delay-change estimates for
  /// resizing `cell` to `new_libcell`, computed with input slews frozen and
  /// without touching the design, internal state, or `current`. Covers the
  /// cell's own arcs, its input net arcs, and the driving cells' arcs (load
  /// change); deliberately omits the slew-induced changes to sibling and
  /// fanout cells.
  [[nodiscard]] std::vector<ArcDelta> estimate_eco(
      netlist::CellId cell, netlist::LibCellId new_libcell) const;

  /// Total capacitive load driven by `net`, fF (valid after compute_all).
  [[nodiscard]] double load(netlist::NetId net) const {
    return load_[static_cast<std::size_t>(net)];
  }

  /// Transition slew at a pin, ps (valid after compute_all).
  [[nodiscard]] double slew(netlist::PinId pin, netlist::RiseFall rf) const {
    return slew_[static_cast<std::size_t>(pin)][netlist::rf_index(rf)];
  }

  [[nodiscard]] const DelayModelParams& params() const { return params_; }

 private:
  [[nodiscard]] double sink_length(const netlist::Net& net,
                                   netlist::PinId sink) const;
  [[nodiscard]] double net_total_length(const netlist::Net& net) const;
  [[nodiscard]] double pin_cap(netlist::PinId pin) const;
  void compute_net_load(netlist::NetId net);
  void compute_output_slew(netlist::CellId cell);
  void compute_sink_slews(netlist::NetId net);
  void compute_cell_arc(ArcId arc, ArcDelays& delays) const;
  void compute_net_arc(ArcId arc, ArcDelays& delays) const;

  const netlist::Design* design_;
  const TimingGraph* graph_;
  DelayModelParams params_;
  std::vector<double> load_;                    // per net
  std::vector<std::array<double, 2>> slew_;     // per pin, [rise, fall]
};

}  // namespace insta::timing
