#include "timing/graph.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace insta::timing {

using netlist::CellFunc;
using netlist::CellId;
using netlist::kNullCell;
using netlist::kNullPin;
using netlist::NetId;
using netlist::PinDir;
using netlist::PinId;
using netlist::PinRole;
using util::check;

TimingGraph::TimingGraph(const netlist::Design& design, CellId clock_root)
    : TimingGraph(design,
                  clock_root == kNullCell
                      ? std::vector<CellId>{}
                      : std::vector<CellId>{clock_root}) {}

TimingGraph::TimingGraph(const netlist::Design& design,
                         std::vector<CellId> clock_roots)
    : design_(&design), clock_roots_(std::move(clock_roots)) {
  build_arcs();
  mark_clock_network();
  collect_endpoints();
  build_csr();
  levelize();
}

void TimingGraph::build_arcs() {
  const auto& d = *design_;
  cell_arc_start_.assign(d.num_cells() + 1, 0);

  for (std::size_t ci = 0; ci < d.num_cells(); ++ci) {
    const auto cell_id = static_cast<CellId>(ci);
    cell_arc_start_[ci] = static_cast<ArcId>(arcs_.size());
    const netlist::LibCell& lc = d.libcell_of(cell_id);
    if (!netlist::has_output(lc.func)) continue;
    const PinId out = d.output_pin(cell_id);
    if (netlist::is_sequential(lc.func)) {
      ArcRecord a;
      a.from = d.clock_pin(cell_id);
      a.to = out;
      a.cell = cell_id;
      a.kind = ArcKind::kLaunch;
      a.sense = ArcSense::kPositive;
      arcs_.push_back(a);
      continue;
    }
    const int n_in = netlist::num_data_inputs(lc.func);
    for (int i = 0; i < n_in; ++i) {
      const netlist::Unateness u = netlist::unateness(lc.func);
      ArcRecord a;
      a.from = d.input_pin(cell_id, i);
      a.to = out;
      a.cell = cell_id;
      a.kind = ArcKind::kCell;
      if (u == netlist::Unateness::kNonUnate) {
        a.sense = ArcSense::kPositive;
        arcs_.push_back(a);
        a.sense = ArcSense::kNegative;
        arcs_.push_back(a);
      } else {
        a.sense = (u == netlist::Unateness::kPositive) ? ArcSense::kPositive
                                                       : ArcSense::kNegative;
        arcs_.push_back(a);
      }
    }
  }
  cell_arc_start_[d.num_cells()] = static_cast<ArcId>(arcs_.size());

  net_arc_start_.assign(d.num_nets() + 1, 0);
  for (std::size_t ni = 0; ni < d.num_nets(); ++ni) {
    net_arc_start_[ni] = static_cast<ArcId>(arcs_.size());
    const netlist::Net& n = d.net(static_cast<NetId>(ni));
    for (const PinId sink : n.sinks) {
      ArcRecord a;
      a.from = n.driver;
      a.to = sink;
      a.net = static_cast<NetId>(ni);
      a.kind = ArcKind::kNet;
      a.sense = ArcSense::kPositive;
      arcs_.push_back(a);
    }
  }
  net_arc_start_[d.num_nets()] = static_cast<ArcId>(arcs_.size());
}

std::pair<ArcId, ArcId> TimingGraph::cell_arcs(CellId cell) const {
  return {cell_arc_start_[static_cast<std::size_t>(cell)],
          cell_arc_start_[static_cast<std::size_t>(cell) + 1]};
}

std::pair<ArcId, ArcId> TimingGraph::net_arcs(NetId net) const {
  return {net_arc_start_[static_cast<std::size_t>(net)],
          net_arc_start_[static_cast<std::size_t>(net) + 1]};
}

void TimingGraph::mark_clock_network() {
  const auto& d = *design_;
  clock_network_.assign(d.num_pins(), 0);
  clock_cell_.assign(d.num_cells(), 0);

  std::deque<PinId> frontier;  // output pins of clock-tree cells
  for (const CellId root : clock_roots_) {
    check(d.libcell_of(root).func == CellFunc::kPortIn,
          "clock root must be an input port");
    clock_cell_[static_cast<std::size_t>(root)] = 1;
    const PinId root_pin = d.output_pin(root);
    clock_network_[static_cast<std::size_t>(root_pin)] = 1;
    frontier.push_back(root_pin);
  }

  while (!frontier.empty()) {
    const PinId drv = frontier.front();
    frontier.pop_front();
    const NetId net = d.pin(drv).net;
    if (net == netlist::kNullNet) continue;
    for (const PinId sink : d.net(net).sinks) {
      clock_network_[static_cast<std::size_t>(sink)] = 1;
      const netlist::Pin& sp = d.pin(sink);
      if (sp.role == PinRole::kClock) continue;  // FF clock pin: a leaf
      const CellFunc func = d.libcell_of(sp.cell).func;
      check(func == CellFunc::kBuf || func == CellFunc::kInv,
            "clock network may contain only buffers/inverters; reached " +
                d.pin_name(sink));
      if (clock_cell_[static_cast<std::size_t>(sp.cell)]) continue;
      clock_cell_[static_cast<std::size_t>(sp.cell)] = 1;
      const PinId out = d.output_pin(sp.cell);
      clock_network_[static_cast<std::size_t>(out)] = 1;
      frontier.push_back(out);
    }
  }
}

void TimingGraph::collect_endpoints() {
  const auto& d = *design_;
  sp_of_pin_.assign(d.num_pins(), kNullStartpoint);
  ep_of_pin_.assign(d.num_pins(), kNullEndpoint);

  for (const CellId port : d.input_ports()) {
    if (std::find(clock_roots_.begin(), clock_roots_.end(), port) !=
        clock_roots_.end()) {
      continue;
    }
    Startpoint sp;
    sp.pin = d.output_pin(port);
    sp.cell = port;
    sp.clocked = false;
    sp_of_pin_[static_cast<std::size_t>(sp.pin)] =
        static_cast<StartpointId>(startpoints_.size());
    startpoints_.push_back(sp);
  }
  for (const CellId ff : d.flip_flops()) {
    Startpoint sp;
    sp.pin = d.output_pin(ff);
    sp.cell = ff;
    sp.clocked = true;
    sp_of_pin_[static_cast<std::size_t>(sp.pin)] =
        static_cast<StartpointId>(startpoints_.size());
    startpoints_.push_back(sp);
  }
  for (const CellId ff : d.flip_flops()) {
    Endpoint ep;
    ep.pin = d.input_pin(ff, 0);  // D
    ep.cell = ff;
    ep.clocked = true;
    ep_of_pin_[static_cast<std::size_t>(ep.pin)] =
        static_cast<EndpointId>(endpoints_.size());
    endpoints_.push_back(ep);
  }
  for (const CellId port : d.output_ports()) {
    Endpoint ep;
    ep.pin = d.input_pin(port, 0);
    ep.cell = port;
    ep.clocked = false;
    ep_of_pin_[static_cast<std::size_t>(ep.pin)] =
        static_cast<EndpointId>(endpoints_.size());
    endpoints_.push_back(ep);
  }
}

StartpointId TimingGraph::startpoint_of_pin(PinId pin) const {
  return sp_of_pin_[static_cast<std::size_t>(pin)];
}

EndpointId TimingGraph::endpoint_of_pin(PinId pin) const {
  return ep_of_pin_[static_cast<std::size_t>(pin)];
}

void TimingGraph::build_csr() {
  const auto& d = *design_;
  const std::size_t num_pins = d.num_pins();

  auto is_data_arc = [&](const ArcRecord& a) {
    if (a.kind == ArcKind::kLaunch) return false;
    return !clock_network_[static_cast<std::size_t>(a.from)] &&
           !clock_network_[static_cast<std::size_t>(a.to)];
  };

  fanin_start_.assign(num_pins + 1, 0);
  fanout_start_.assign(num_pins + 1, 0);
  for (const ArcRecord& a : arcs_) {
    if (!is_data_arc(a)) continue;
    ++fanin_start_[static_cast<std::size_t>(a.to) + 1];
    ++fanout_start_[static_cast<std::size_t>(a.from) + 1];
  }
  for (std::size_t p = 0; p < num_pins; ++p) {
    fanin_start_[p + 1] += fanin_start_[p];
    fanout_start_[p + 1] += fanout_start_[p];
  }
  fanin_arcs_.resize(static_cast<std::size_t>(fanin_start_[num_pins]));
  fanout_arcs_.resize(static_cast<std::size_t>(fanout_start_[num_pins]));
  std::vector<std::int32_t> in_fill(fanin_start_.begin(), fanin_start_.end() - 1);
  std::vector<std::int32_t> out_fill(fanout_start_.begin(), fanout_start_.end() - 1);
  for (std::size_t ai = 0; ai < arcs_.size(); ++ai) {
    const ArcRecord& a = arcs_[ai];
    if (!is_data_arc(a)) continue;
    fanin_arcs_[static_cast<std::size_t>(in_fill[static_cast<std::size_t>(a.to)]++)] =
        static_cast<ArcId>(ai);
    fanout_arcs_[static_cast<std::size_t>(out_fill[static_cast<std::size_t>(a.from)]++)] =
        static_cast<ArcId>(ai);
  }

  max_fanin_ = 0;
  for (std::size_t p = 0; p < num_pins; ++p) {
    max_fanin_ = std::max(
        max_fanin_, static_cast<std::size_t>(fanin_start_[p + 1] - fanin_start_[p]));
  }
}

std::span<const ArcId> TimingGraph::fanin(PinId pin) const {
  const auto p = static_cast<std::size_t>(pin);
  return {fanin_arcs_.data() + fanin_start_[p],
          static_cast<std::size_t>(fanin_start_[p + 1] - fanin_start_[p])};
}

std::span<const ArcId> TimingGraph::fanout(PinId pin) const {
  const auto p = static_cast<std::size_t>(pin);
  return {fanout_arcs_.data() + fanout_start_[p],
          static_cast<std::size_t>(fanout_start_[p + 1] - fanout_start_[p])};
}

void TimingGraph::levelize() {
  const auto& d = *design_;
  const std::size_t num_pins = d.num_pins();
  level_of_.assign(num_pins, 0);
  std::vector<std::int32_t> indeg(num_pins, 0);

  std::vector<PinId> frontier;
  std::size_t processed = 0;
  std::size_t num_data_pins = 0;
  for (std::size_t p = 0; p < num_pins; ++p) {
    if (clock_network_[p]) {
      level_of_[p] = -1;
      continue;
    }
    ++num_data_pins;
    indeg[p] = static_cast<std::int32_t>(fanin(static_cast<PinId>(p)).size());
    if (indeg[p] == 0) frontier.push_back(static_cast<PinId>(p));
  }

  std::vector<PinId> topo;
  topo.reserve(num_data_pins);
  while (!frontier.empty()) {
    const PinId p = frontier.back();
    frontier.pop_back();
    topo.push_back(p);
    ++processed;
    for (const ArcId aid : fanout(p)) {
      const ArcRecord& a = arc(aid);
      const auto t = static_cast<std::size_t>(a.to);
      level_of_[t] = std::max(level_of_[t], level_of_[static_cast<std::size_t>(p)] + 1);
      if (--indeg[t] == 0) frontier.push_back(a.to);
    }
  }
  check(processed == num_data_pins,
        "levelize: combinational loop detected in data graph");

  int max_level = 0;
  for (std::size_t p = 0; p < num_pins; ++p) {
    if (level_of_[p] > max_level) max_level = level_of_[p];
  }
  const std::size_t num_levels = static_cast<std::size_t>(max_level) + 1;
  level_start_.assign(num_levels + 1, 0);
  for (std::size_t p = 0; p < num_pins; ++p) {
    if (level_of_[p] >= 0) ++level_start_[static_cast<std::size_t>(level_of_[p]) + 1];
  }
  for (std::size_t l = 0; l < num_levels; ++l) level_start_[l + 1] += level_start_[l];
  level_order_.resize(num_data_pins);
  std::vector<std::int32_t> fill(level_start_.begin(), level_start_.end() - 1);
  for (std::size_t p = 0; p < num_pins; ++p) {
    if (level_of_[p] < 0) continue;
    level_order_[static_cast<std::size_t>(
        fill[static_cast<std::size_t>(level_of_[p])]++)] = static_cast<PinId>(p);
  }
}

std::span<const netlist::PinId> TimingGraph::level(std::size_t l) const {
  return {level_order_.data() + level_start_[l],
          static_cast<std::size_t>(level_start_[l + 1] - level_start_[l])};
}

}  // namespace insta::timing
