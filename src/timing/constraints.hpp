#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/design.hpp"
#include "timing/graph.hpp"
#include "timing/types.hpp"

namespace insta::timing {

/// Kind of a timing exception.
enum class ExceptionKind : std::uint8_t { kFalsePath, kMulticycle };

/// One timing exception, specified from a startpoint source pin (FF Q pin or
/// primary-input pin) to an endpoint pin (FF D pin or primary-output pin).
struct TimingException {
  ExceptionKind kind = ExceptionKind::kFalsePath;
  netlist::PinId sp_pin = netlist::kNullPin;
  netlist::PinId ep_pin = netlist::kNullPin;
  int cycles = 2;  ///< multicycle only: the path gets (cycles-1) extra periods
};

/// An additional clock domain: its own tree root and a period expressed as
/// a ratio of the primary clock period (so tune_clock_period scales every
/// domain together).
struct ExtraClock {
  netlist::CellId root = netlist::kNullCell;  ///< PI driving this domain's tree
  double period_ratio = 1.0;  ///< domain period = ratio * clock_period
};

/// Timing constraints of a design. Setup and hold analysis; one primary
/// clock plus optional extra domains. Cross-domain paths are analyzed
/// synchronously against the capture domain's period with zero CPPR credit
/// (distinct trees share no common path).
struct Constraints {
  double clock_period = 1000.0;  ///< ps, the primary clock
  netlist::CellId clock_root = netlist::kNullCell;  ///< PI driving the clock tree
  std::vector<ExtraClock> extra_clocks;  ///< additional domains
  double input_arrival_mu = 0.0;     ///< arrival mean at data PIs, ps
  double input_arrival_sigma = 0.0;  ///< arrival sigma at data PIs, ps
  double output_margin = 0.0;  ///< required at POs = period - margin, ps
  double nsigma = 3.0;         ///< POCV corner multiplier (paper uses 3.0)
  std::vector<TimingException> exceptions;

  /// All clock tree roots: the primary first, then the extra domains.
  [[nodiscard]] std::vector<netlist::CellId> clock_roots() const {
    std::vector<netlist::CellId> roots;
    if (clock_root != netlist::kNullCell) roots.push_back(clock_root);
    for (const ExtraClock& c : extra_clocks) {
      if (c.root != netlist::kNullCell) roots.push_back(c.root);
    }
    return roots;
  }

  /// Period of domain `index` (0 = primary, 1.. = extra_clocks order), ps.
  [[nodiscard]] double period_of_domain(int index) const {
    if (index <= 0) return clock_period;
    return clock_period *
           extra_clocks[static_cast<std::size_t>(index - 1)].period_ratio;
  }
};

/// Fast (startpoint, endpoint) lookup of exceptions, resolved against a
/// TimingGraph. Both the golden engine and INSTA consult this table when
/// evaluating endpoint slacks, mirroring how INSTA clones exception data
/// from the reference tool during initialization.
class ExceptionTable {
 public:
  /// Resolves the exceptions' pins to startpoint/endpoint ids. Exceptions
  /// naming pins that are not startpoints/endpoints are rejected.
  ExceptionTable(const TimingGraph& graph,
                 std::span<const TimingException> exceptions);

  /// True if the (sp, ep) pair is declared a false path.
  [[nodiscard]] bool is_false_path(StartpointId sp, EndpointId ep) const;

  /// Extra required time for the pair: (cycles-1)*period for multicycle
  /// pairs, 0 otherwise (and 0 for false paths; callers skip those first).
  [[nodiscard]] double required_shift(StartpointId sp, EndpointId ep,
                                      double period) const;

  /// Number of resolved exception pairs.
  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  struct Info {
    bool false_path = false;
    int cycles = 1;
  };
  static std::uint64_t key(StartpointId sp, EndpointId ep) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sp)) << 32) |
           static_cast<std::uint32_t>(ep);
  }
  std::unordered_map<std::uint64_t, Info> table_;
};

}  // namespace insta::timing
