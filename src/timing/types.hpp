#pragma once

#include <cstdint>

#include "netlist/design.hpp"

namespace insta::timing {

using ArcId = std::int32_t;
using StartpointId = std::int32_t;
using EndpointId = std::int32_t;
inline constexpr ArcId kNullArc = -1;
inline constexpr StartpointId kNullStartpoint = -1;
inline constexpr EndpointId kNullEndpoint = -1;

/// Kind of a timing arc.
enum class ArcKind : std::uint8_t {
  kNet,    ///< net arc: driver output pin -> sink input pin
  kCell,   ///< cell arc: data input pin -> output pin
  kLaunch, ///< DFF clock pin -> Q pin (used to seed startpoint arrivals)
};

/// Timing sense of an arc: how an input transition maps to the output
/// transition. Non-unate cell arcs are represented as two arc records,
/// one of each sense, with independently annotated delays.
enum class ArcSense : std::uint8_t { kPositive, kNegative };

/// One timing arc record (structure only; delays live in ArcDelays).
struct ArcRecord {
  netlist::PinId from = netlist::kNullPin;
  netlist::PinId to = netlist::kNullPin;
  netlist::CellId cell = netlist::kNullCell;  ///< owning cell (kNullCell for net arcs)
  netlist::NetId net = netlist::kNullNet;     ///< owning net (kNullNet for cell arcs)
  ArcKind kind = ArcKind::kNet;
  ArcSense sense = ArcSense::kPositive;
};

/// Per-arc statistical delays: mean and sigma for each output transition.
/// Indexed as mu[rf][arc]. Units: ps.
struct ArcDelays {
  std::array<std::vector<double>, 2> mu;
  std::array<std::vector<double>, 2> sigma;

  /// Resizes all four arrays to `n` arcs (zero-filled on growth).
  void resize(std::size_t n) {
    for (auto& v : mu) v.resize(n, 0.0);
    for (auto& v : sigma) v.resize(n, 0.0);
  }

  [[nodiscard]] std::size_t size() const { return mu[0].size(); }
};

/// A re-annotation record: new delay values for one arc (both transitions).
/// This is the currency of PrimeTime's estimate_eco in this reproduction:
/// the reference engine produces ArcDelta lists, and both the golden engine
/// and the INSTA engine consume them.
struct ArcDelta {
  ArcId arc = kNullArc;
  std::array<double, 2> mu{0.0, 0.0};
  std::array<double, 2> sigma{0.0, 0.0};
};

}  // namespace insta::timing
