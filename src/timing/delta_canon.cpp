#include "timing/delta_canon.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/hash.hpp"

namespace insta::timing {

std::vector<ArcDelta> canonicalize_deltas(std::span<const ArcDelta> deltas,
                                          std::vector<ArcId>* duplicates) {
  std::vector<ArcDelta> out;
  out.reserve(deltas.size());
  // First-seen slot per arc; later occurrences overwrite it (annotate() is
  // assignment, so the last write is the one that sticks).
  std::unordered_map<ArcId, std::size_t> slot;
  slot.reserve(deltas.size());
  for (const ArcDelta& d : deltas) {
    const auto [it, inserted] = slot.try_emplace(d.arc, out.size());
    if (inserted) {
      out.push_back(d);
    } else {
      out[it->second] = d;
      if (duplicates != nullptr) duplicates->push_back(d.arc);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ArcDelta& a, const ArcDelta& b) { return a.arc < b.arc; });
  return out;
}

std::uint64_t delta_set_hash(std::span<const ArcDelta> deltas) {
  const std::vector<ArcDelta> canon = canonicalize_deltas(deltas);
  std::uint64_t h = util::fnv1a_64(nullptr, 0);
  h = util::fnv1a_value(static_cast<std::uint64_t>(canon.size()), h);
  for (const ArcDelta& d : canon) {
    h = util::fnv1a_value(d.arc, h);
    for (int rf = 0; rf < 2; ++rf) {
      h = util::fnv1a_value(d.mu[static_cast<std::size_t>(rf)], h);
      h = util::fnv1a_value(d.sigma[static_cast<std::size_t>(rf)], h);
    }
  }
  return h;
}

bool deltas_equal(std::span<const ArcDelta> a, std::span<const ArcDelta> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].arc != b[i].arc) return false;
    // Bitwise, not ==: NaNs compare unequal under == but are the same
    // annotation bytes, and -0.0 == 0.0 under == but annotates differently.
    if (std::memcmp(a[i].mu.data(), b[i].mu.data(), sizeof(a[i].mu)) != 0) {
      return false;
    }
    if (std::memcmp(a[i].sigma.data(), b[i].sigma.data(),
                    sizeof(a[i].sigma)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace insta::timing
