#include "timing/constraints.hpp"

#include "util/check.hpp"

namespace insta::timing {

ExceptionTable::ExceptionTable(const TimingGraph& graph,
                               std::span<const TimingException> exceptions) {
  for (const TimingException& e : exceptions) {
    const StartpointId sp = graph.startpoint_of_pin(e.sp_pin);
    const EndpointId ep = graph.endpoint_of_pin(e.ep_pin);
    util::check(sp != kNullStartpoint, "exception sp_pin is not a startpoint");
    util::check(ep != kNullEndpoint, "exception ep_pin is not an endpoint");
    Info& info = table_[key(sp, ep)];
    if (e.kind == ExceptionKind::kFalsePath) {
      info.false_path = true;
    } else {
      util::check(e.cycles >= 1, "multicycle exception needs cycles >= 1");
      info.cycles = e.cycles;
    }
  }
}

bool ExceptionTable::is_false_path(StartpointId sp, EndpointId ep) const {
  const auto it = table_.find(key(sp, ep));
  return it != table_.end() && it->second.false_path;
}

double ExceptionTable::required_shift(StartpointId sp, EndpointId ep,
                                      double period) const {
  const auto it = table_.find(key(sp, ep));
  if (it == table_.end()) return 0.0;
  return static_cast<double>(it->second.cycles - 1) * period;
}

}  // namespace insta::timing
