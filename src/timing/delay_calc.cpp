#include "timing/delay_calc.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace insta::timing {

using netlist::CellFunc;
using netlist::CellId;
using netlist::kNullCell;
using netlist::kNullNet;
using netlist::kNullPin;
using netlist::LibCell;
using netlist::NetId;
using netlist::PinId;
using util::check;

namespace {

/// Nominal mu/sigma of one arc for both output transitions.
struct ArcVals {
  std::array<double, 2> mu{0.0, 0.0};
  std::array<double, 2> sigma{0.0, 0.0};
};

}  // namespace

DelayCalculator::DelayCalculator(const netlist::Design& design,
                                 const TimingGraph& graph,
                                 DelayModelParams params)
    : design_(&design), graph_(&graph), params_(params) {
  load_.assign(design.num_nets(), 0.0);
  slew_.assign(design.num_pins(), {params_.primary_input_slew,
                                   params_.primary_input_slew});
}

double DelayCalculator::pin_cap(PinId pin) const {
  const netlist::Pin& p = design_->pin(pin);
  return design_->libcell_of(p.cell).input_cap;
}

double DelayCalculator::sink_length(const netlist::Net& net, PinId sink) const {
  if (params_.use_placement && net.driver != kNullPin) {
    const netlist::Cell& a = design_->cell(design_->pin(net.driver).cell);
    const netlist::Cell& b = design_->cell(design_->pin(sink).cell);
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
  }
  if (!net.sink_lengths.empty()) {
    for (std::size_t i = 0; i < net.sinks.size(); ++i) {
      if (net.sinks[i] == sink) return net.sink_length(i);
    }
  }
  return net.length_hint;
}

double DelayCalculator::net_total_length(const netlist::Net& net) const {
  if (params_.use_placement && net.driver != kNullPin) {
    // Wire cap estimated from the half-perimeter of the net's bounding box.
    const netlist::Cell& d = design_->cell(design_->pin(net.driver).cell);
    double xmin = d.x, xmax = d.x, ymin = d.y, ymax = d.y;
    for (const PinId s : net.sinks) {
      const netlist::Cell& c = design_->cell(design_->pin(s).cell);
      xmin = std::min(xmin, c.x);
      xmax = std::max(xmax, c.x);
      ymin = std::min(ymin, c.y);
      ymax = std::max(ymax, c.y);
    }
    return (xmax - xmin) + (ymax - ymin);
  }
  if (!net.sink_lengths.empty()) {
    // Conservative: the wire-cap length of a split net is its longest branch.
    double longest = 0.0;
    for (std::size_t i = 0; i < net.sinks.size(); ++i) {
      longest = std::max(longest, net.sink_length(i));
    }
    return longest;
  }
  return net.length_hint;
}

void DelayCalculator::compute_net_load(NetId net_id) {
  const netlist::Net& n = design_->net(net_id);
  double cap = params_.c_per_um * net_total_length(n);
  for (const PinId s : n.sinks) cap += pin_cap(s);
  load_[static_cast<std::size_t>(net_id)] = cap;
}

void DelayCalculator::compute_output_slew(CellId cell_id) {
  const LibCell& lc = design_->libcell_of(cell_id);
  if (!netlist::has_output(lc.func)) return;
  const PinId out = design_->output_pin(cell_id);
  auto& s = slew_[static_cast<std::size_t>(out)];
  if (lc.func == CellFunc::kPortIn) {
    s = {params_.primary_input_slew, params_.primary_input_slew};
    return;
  }
  const NetId net = design_->pin(out).net;
  const double load = (net == kNullNet) ? 0.0 : load_[static_cast<std::size_t>(net)];
  for (const int rf : {0, 1}) {
    s[static_cast<std::size_t>(rf)] = lc.slew_intrinsic[static_cast<std::size_t>(rf)] +
                                      lc.slew_res[static_cast<std::size_t>(rf)] * load;
  }
}

void DelayCalculator::compute_sink_slews(NetId net_id) {
  const netlist::Net& n = design_->net(net_id);
  if (n.driver == kNullPin) return;
  const auto& drv = slew_[static_cast<std::size_t>(n.driver)];
  for (const PinId sink : n.sinks) {
    const double len = sink_length(n, sink);
    const double d = params_.r_per_um * len *
                         (params_.c_per_um * len * 0.5 + pin_cap(sink)) +
                     params_.min_net_delay;
    auto& s = slew_[static_cast<std::size_t>(sink)];
    for (const int rf : {0, 1}) {
      s[static_cast<std::size_t>(rf)] =
          drv[static_cast<std::size_t>(rf)] + params_.slew_net_factor * d;
    }
  }
}

namespace {

/// Cell/launch arc delay from explicit inputs (shared by the exact path and
/// by estimate_eco's frozen-neighbourhood evaluation). Each call is one
/// NLDM-style table evaluation, counted as delay_calc.cell_arc_evals.
ArcVals eval_cell_arc(const ArcRecord& a, const LibCell& lc, double load,
                      const std::array<double, 2>& from_slew) {
  static telemetry::Counter evals =
      telemetry::MetricsRegistry::global().counter(
          "delay_calc.cell_arc_evals");
  evals.inc();
  ArcVals v;
  for (const int rf : {0, 1}) {
    const int in_rf = (a.sense == ArcSense::kPositive) ? rf : 1 - rf;
    const double base = (a.kind == ArcKind::kLaunch)
                            ? lc.clk2q[static_cast<std::size_t>(rf)]
                            : lc.intrinsic[static_cast<std::size_t>(rf)];
    const double mu = base + lc.drive_res[static_cast<std::size_t>(rf)] * load +
                      lc.slew_sens * from_slew[static_cast<std::size_t>(in_rf)];
    v.mu[static_cast<std::size_t>(rf)] = mu;
    v.sigma[static_cast<std::size_t>(rf)] = lc.sigma_ratio * mu;
  }
  return v;
}

}  // namespace

void DelayCalculator::compute_cell_arc(ArcId arc_id, ArcDelays& delays) const {
  const ArcRecord& a = graph_->arc(arc_id);
  const LibCell& lc = design_->libcell_of(a.cell);
  const PinId out = a.to;
  const NetId net = design_->pin(out).net;
  const double load = (net == kNullNet) ? 0.0 : load_[static_cast<std::size_t>(net)];
  const ArcVals v =
      eval_cell_arc(a, lc, load, slew_[static_cast<std::size_t>(a.from)]);
  for (const int rf : {0, 1}) {
    delays.mu[rf][static_cast<std::size_t>(arc_id)] = v.mu[static_cast<std::size_t>(rf)];
    delays.sigma[rf][static_cast<std::size_t>(arc_id)] =
        v.sigma[static_cast<std::size_t>(rf)];
  }
}

void DelayCalculator::compute_net_arc(ArcId arc_id, ArcDelays& delays) const {
  static telemetry::Counter evals =
      telemetry::MetricsRegistry::global().counter(
          "delay_calc.net_arc_evals");
  evals.inc();
  const ArcRecord& a = graph_->arc(arc_id);
  const netlist::Net& n = design_->net(a.net);
  const double len = sink_length(n, a.to);
  const double mu = params_.r_per_um * len *
                        (params_.c_per_um * len * 0.5 + pin_cap(a.to)) +
                    params_.min_net_delay;
  const double sigma = params_.net_sigma_ratio * mu;
  for (const int rf : {0, 1}) {
    delays.mu[rf][static_cast<std::size_t>(arc_id)] = mu;
    delays.sigma[rf][static_cast<std::size_t>(arc_id)] = sigma;
  }
}

void DelayCalculator::compute_all(ArcDelays& delays) {
  INSTA_TRACE_SCOPE("delay_calc.compute_all");
  static telemetry::Counter full_computes =
      telemetry::MetricsRegistry::global().counter(
          "delay_calc.full_computes");
  full_computes.inc();
  delays.resize(graph_->num_arcs());
  for (std::size_t n = 0; n < design_->num_nets(); ++n) {
    compute_net_load(static_cast<NetId>(n));
  }
  for (std::size_t c = 0; c < design_->num_cells(); ++c) {
    compute_output_slew(static_cast<CellId>(c));
  }
  for (std::size_t n = 0; n < design_->num_nets(); ++n) {
    compute_sink_slews(static_cast<NetId>(n));
  }
  for (std::size_t ai = 0; ai < graph_->num_arcs(); ++ai) {
    const ArcRecord& a = graph_->arc(static_cast<ArcId>(ai));
    if (a.kind == ArcKind::kNet) {
      compute_net_arc(static_cast<ArcId>(ai), delays);
    } else {
      compute_cell_arc(static_cast<ArcId>(ai), delays);
    }
  }
}

std::vector<ArcId> DelayCalculator::update_for_resize(CellId cell_id,
                                                      ArcDelays& delays) {
  INSTA_TRACE_SCOPE("delay_calc.update_for_resize");
  static telemetry::Counter resize_updates =
      telemetry::MetricsRegistry::global().counter(
          "delay_calc.resize_updates");
  resize_updates.inc();
  const LibCell& lc = design_->libcell_of(cell_id);
  check(!netlist::is_sequential(lc.func) && netlist::has_output(lc.func) &&
            netlist::num_data_inputs(lc.func) > 0,
        "update_for_resize: only combinational gates are resizable");
  check(!graph_->is_clock_cell(cell_id),
        "update_for_resize: clock cells are not resizable");

  // Input nets of the resized cell (their load changed through input_cap).
  std::vector<NetId> in_nets;
  for (int i = 0; i < netlist::num_data_inputs(lc.func); ++i) {
    const NetId net = design_->pin(design_->input_pin(cell_id, i)).net;
    if (net != kNullNet) in_nets.push_back(net);
  }
  std::sort(in_nets.begin(), in_nets.end());
  in_nets.erase(std::unique(in_nets.begin(), in_nets.end()), in_nets.end());

  for (const NetId n : in_nets) compute_net_load(n);

  // Slew ripple: drivers of the input nets see a new load; the resized cell
  // itself has new slew parameters. Their output slews change, which changes
  // the input slews of every sink on those nets and on the cell's own output
  // net (one hop -- output slew does not depend on input slew in this model).
  std::vector<CellId> slew_cells;
  slew_cells.push_back(cell_id);
  for (const NetId n : in_nets) {
    const PinId drv = design_->net(n).driver;
    if (drv != kNullPin) slew_cells.push_back(design_->pin(drv).cell);
  }
  std::sort(slew_cells.begin(), slew_cells.end());
  slew_cells.erase(std::unique(slew_cells.begin(), slew_cells.end()),
                   slew_cells.end());
  for (const CellId c : slew_cells) compute_output_slew(c);

  std::vector<NetId> slew_nets = in_nets;
  const PinId out = design_->output_pin(cell_id);
  const NetId out_net = design_->pin(out).net;
  if (out_net != kNullNet) slew_nets.push_back(out_net);
  for (const NetId n : slew_nets) compute_sink_slews(n);

  // Arcs whose delay may have changed.
  std::vector<ArcId> changed;
  auto add_cell_arcs = [&](CellId c) {
    const auto [first, last] = graph_->cell_arcs(c);
    for (ArcId a = first; a < last; ++a) changed.push_back(a);
  };
  add_cell_arcs(cell_id);
  for (const NetId n : in_nets) {
    const PinId drv = design_->net(n).driver;
    if (drv != kNullPin) add_cell_arcs(design_->pin(drv).cell);
    const auto [first, last] = graph_->net_arcs(n);
    for (ArcId a = first; a < last; ++a) changed.push_back(a);
    // Sibling cells: their input slew changed.
    for (const PinId s : design_->net(n).sinks) {
      const netlist::Pin& sp = design_->pin(s);
      if (sp.cell == cell_id || sp.role != netlist::PinRole::kData) continue;
      const LibCell& slc = design_->libcell_of(sp.cell);
      if (netlist::is_sequential(slc.func) || !netlist::has_output(slc.func)) {
        continue;
      }
      add_cell_arcs(sp.cell);
    }
  }
  if (out_net != kNullNet) {
    // Fanout cells: their input slew changed via the new output slew.
    for (const PinId s : design_->net(out_net).sinks) {
      const netlist::Pin& sp = design_->pin(s);
      if (sp.role != netlist::PinRole::kData) continue;
      const LibCell& slc = design_->libcell_of(sp.cell);
      if (netlist::is_sequential(slc.func) || !netlist::has_output(slc.func)) {
        continue;
      }
      add_cell_arcs(sp.cell);
    }
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  for (const ArcId a : changed) {
    if (graph_->arc(a).kind == ArcKind::kNet) {
      compute_net_arc(a, delays);
    } else {
      compute_cell_arc(a, delays);
    }
  }
  return changed;
}

std::vector<ArcDelta> DelayCalculator::estimate_eco(
    CellId cell_id, netlist::LibCellId new_libcell) const {
  INSTA_TRACE_SCOPE("delay_calc.estimate_eco");
  static telemetry::Counter eco_estimates =
      telemetry::MetricsRegistry::global().counter(
          "delay_calc.eco_estimates");
  eco_estimates.inc();
  const LibCell& old_lc = design_->libcell_of(cell_id);
  const LibCell& new_lc = design_->library().cell(new_libcell);
  check(old_lc.func == new_lc.func, "estimate_eco: function mismatch");
  check(!netlist::is_sequential(old_lc.func),
        "estimate_eco: only combinational gates");

  std::vector<ArcDelta> deltas;
  auto push = [&](ArcId arc, const ArcVals& v) {
    ArcDelta d;
    d.arc = arc;
    d.mu = v.mu;
    d.sigma = v.sigma;
    deltas.push_back(d);
  };

  // New load of each input net under the hypothetical resize.
  auto hyp_load = [&](NetId net_id) {
    const netlist::Net& n = design_->net(net_id);
    double cap = params_.c_per_um * net_total_length(n);
    for (const PinId s : n.sinks) {
      cap += (design_->pin(s).cell == cell_id) ? new_lc.input_cap : pin_cap(s);
    }
    return cap;
  };

  // 1. The cell's own arcs: new cell parameters, unchanged output load,
  //    frozen input slews.
  const PinId out = design_->output_pin(cell_id);
  const NetId out_net = design_->pin(out).net;
  const double out_load =
      (out_net == kNullNet) ? 0.0 : load_[static_cast<std::size_t>(out_net)];
  {
    const auto [first, last] = graph_->cell_arcs(cell_id);
    for (ArcId a = first; a < last; ++a) {
      const ArcRecord& rec = graph_->arc(a);
      push(a, eval_cell_arc(rec, new_lc, out_load,
                            slew_[static_cast<std::size_t>(rec.from)]));
    }
  }

  // 2. Input net arcs into this cell (new pin cap) and the driving cells'
  //    arcs (new net load), with all slews frozen.
  std::vector<NetId> in_nets;
  for (int i = 0; i < netlist::num_data_inputs(old_lc.func); ++i) {
    const NetId net = design_->pin(design_->input_pin(cell_id, i)).net;
    if (net != kNullNet) in_nets.push_back(net);
  }
  std::sort(in_nets.begin(), in_nets.end());
  in_nets.erase(std::unique(in_nets.begin(), in_nets.end()), in_nets.end());

  for (const NetId net_id : in_nets) {
    const netlist::Net& n = design_->net(net_id);
    const double new_load = hyp_load(net_id);
    const auto [nfirst, nlast] = graph_->net_arcs(net_id);
    for (ArcId a = nfirst; a < nlast; ++a) {
      const ArcRecord& rec = graph_->arc(a);
      if (design_->pin(rec.to).cell != cell_id) continue;
      const double len = sink_length(n, rec.to);
      const double mu = params_.r_per_um * len *
                            (params_.c_per_um * len * 0.5 + new_lc.input_cap) +
                        params_.min_net_delay;
      ArcVals v;
      v.mu = {mu, mu};
      v.sigma = {params_.net_sigma_ratio * mu, params_.net_sigma_ratio * mu};
      push(a, v);
    }
    const PinId drv = n.driver;
    if (drv == kNullPin) continue;
    const CellId drv_cell = design_->pin(drv).cell;
    const LibCell& drv_lc = design_->libcell_of(drv_cell);
    if (!netlist::has_output(drv_lc.func) ||
        drv_lc.func == CellFunc::kPortIn) {
      continue;
    }
    const auto [cfirst, clast] = graph_->cell_arcs(drv_cell);
    for (ArcId a = cfirst; a < clast; ++a) {
      const ArcRecord& rec = graph_->arc(a);
      push(a, eval_cell_arc(rec, drv_lc, new_load,
                            slew_[static_cast<std::size_t>(rec.from)]));
    }
  }
  return deltas;
}

}  // namespace insta::timing
