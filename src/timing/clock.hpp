#pragma once

#include <span>
#include <vector>

#include "timing/graph.hpp"
#include "timing/types.hpp"

namespace insta::timing {

/// Statistical clock-network analysis: per-flip-flop clock arrival
/// distributions and CPPR (Common Path Pessimism Removal) credits.
///
/// The clock network is a tree (each net has one driver, clock cells are
/// buffers/inverters), so the common path of any launch/capture pair is the
/// root prefix up to their lowest common ancestor (LCA). With POCV, the
/// pessimism removed is the late-minus-early spread accumulated on that
/// prefix: credit = 2 * N_sigma * sigma(LCA).
///
/// This class is rebuilt from the current ArcDelays whenever clock-arc
/// delays may have changed (e.g. after a placement update); gate resizes in
/// the data network never touch it.
class ClockAnalysis {
 public:
  /// Analyzes the clock cone of `graph` using the given delays.
  ClockAnalysis(const TimingGraph& graph, const ArcDelays& delays,
                double nsigma);

  /// True if the design has a clock tree.
  [[nodiscard]] bool has_clock() const { return !pin_of_node_.empty(); }

  /// Clock arrival mean at the FF's clock pin, ps.
  [[nodiscard]] double ck_mu(netlist::CellId ff) const;

  /// Clock arrival variance (sigma^2) at the FF's clock pin, ps^2.
  [[nodiscard]] double ck_sig2(netlist::CellId ff) const;

  /// Late corner of the clock arrival: mu + nsigma*sigma.
  [[nodiscard]] double late_ck(netlist::CellId ff) const;

  /// Early corner of the clock arrival: mu - nsigma*sigma.
  [[nodiscard]] double early_ck(netlist::CellId ff) const;

  /// CPPR credit between a launch FF and a capture FF; 0 if either id is
  /// kNullCell (unclocked startpoint/endpoint) or there is no clock.
  [[nodiscard]] double credit(netlist::CellId launch_ff,
                              netlist::CellId capture_ff) const;

  /// Upper bound on any CPPR credit in the design: 2*nsigma*max node sigma.
  /// Used to size the golden engine's exact pruning window (DESIGN.md §6).
  [[nodiscard]] double max_credit() const;

  // ---- raw tables (cloned by the INSTA engine at initialization) ---------

  /// Clock-tree node index of a FF's clock pin; -1 if not clocked.
  [[nodiscard]] std::int32_t node_of_ff(netlist::CellId ff) const;

  /// Clock-domain index of a FF (position of its tree's root in the graph's
  /// clock_roots() order); -1 if not clocked.
  [[nodiscard]] std::int32_t domain_of_ff(netlist::CellId ff) const;

  /// Domain index of a clock-tree node.
  [[nodiscard]] std::span<const std::int32_t> node_domains() const {
    return domain_;
  }

  /// Parent node of each clock-tree node (-1 at the root).
  [[nodiscard]] std::span<const std::int32_t> parents() const { return parent_; }

  /// Depth of each node (root = 0).
  [[nodiscard]] std::span<const std::int32_t> depths() const { return depth_; }

  /// Cumulative arrival variance at each node, ps^2.
  [[nodiscard]] std::span<const double> node_sig2() const { return sig2_; }

  /// Cumulative arrival mean at each node, ps.
  [[nodiscard]] std::span<const double> node_mu() const { return mu_; }

  /// Number of clock-tree nodes.
  [[nodiscard]] std::size_t num_nodes() const { return pin_of_node_.size(); }

 private:
  [[nodiscard]] std::int32_t lca(std::int32_t a, std::int32_t b) const;

  double nsigma_;
  std::vector<std::int32_t> node_of_pin_;  // per design pin, -1 if not clock
  std::vector<netlist::PinId> pin_of_node_;
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> depth_;
  std::vector<std::int32_t> domain_;  // per node: clock-domain index
  std::vector<double> mu_;
  std::vector<double> sig2_;
  std::vector<std::int32_t> ff_node_;  // per design cell, -1 default
};

}  // namespace insta::timing
