#include "util/memory.hpp"

#include <cstdio>
#include <cstring>

namespace insta::util {

namespace {

/// Reads a "VmXXX:  <kB> kB" field from /proc/self/status; returns bytes.
std::size_t read_status_field(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t bytes = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len, " %llu", &kb) == 1) {
        bytes = static_cast<std::size_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

std::size_t current_rss_bytes() { return read_status_field("VmRSS:"); }

std::size_t peak_rss_bytes() { return read_status_field("VmHWM:"); }

double to_gib(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace insta::util
