#include "util/simd.hpp"

#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace insta::util::simd {

bool cpu_has_avx2() {
#if defined(__x86_64__)
  static const bool has = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return has;
#else
  return false;
#endif
}

SimdMode env_mode() {
  static const SimdMode mode = [] {
    const char* v = std::getenv("INSTA_SIMD");
    if (v == nullptr) return SimdMode::kAuto;
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "OFF") == 0 ||
        std::strcmp(v, "scalar") == 0 || std::strcmp(v, "0") == 0) {
      return SimdMode::kScalar;
    }
    if (std::strcmp(v, "avx2") == 0 || std::strcmp(v, "AVX2") == 0) {
      return SimdMode::kAvx2;
    }
    return SimdMode::kAuto;
  }();
  return mode;
}

bool resolve(SimdMode requested) {
  SimdMode mode = requested;
  if (mode == SimdMode::kAuto) mode = env_mode();
  if (mode == SimdMode::kScalar) return false;
  const bool available = compiled_avx2() && cpu_has_avx2();
  if (mode == SimdMode::kAvx2) {
    // Hard requirement: a CI runner asked for AVX2 must not silently bench
    // the scalar fallback.
    check(compiled_avx2(),
          "simd::resolve: AVX2 requested but this build was configured with "
          "INSTA_SIMD=OFF");
    check(cpu_has_avx2(),
          "simd::resolve: AVX2 requested but the CPU does not support it");
    return true;
  }
  return available;  // kAuto
}

const char* mode_name(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace insta::util::simd
