#pragma once

// Annotated mutex wrappers: the only locking primitives the rest of the
// codebase may use (a raw std::mutex cannot carry thread-safety
// annotations, so it cannot participate in the -Wthread-safety contract).
//
// Each wrapper is a Clang "capability": data members declare the lock that
// guards them with INSTA_GUARDED_BY(mu_), functions declare what they
// acquire/require with INSTA_ACQUIRE / INSTA_REQUIRES, and Clang rejects
// any access pattern that breaks the contract at compile time. On top of
// the static layer, every Mutex/SharedMutex carries a declared rank
// (util/lock_rank.hpp); in INSTA_LOCK_CHECK builds the runtime validator
// (analysis/lock_hierarchy.hpp) aborts on out-of-order acquisition,
// re-entrancy, and shared->exclusive upgrades — ordering bugs the
// flow-insensitive static analysis cannot see. With the check off (the
// Release default) the wrappers compile down to the bare std:: calls.
//
// CondVar wraps std::condition_variable (not _any) to keep the futex fast
// path. While a thread waits, its UniqueLock keeps its validator entry:
// the thread is blocked and acquires nothing, and the stacks are
// per-thread, so the entry stays consistent — and is correct again the
// moment wait() returns with the lock reacquired.
//
// NOTE on predicates: Clang cannot see into lambdas, so a wait predicate
// that reads INSTA_GUARDED_BY state will be (wrongly) flagged. Use a
// manual `while (!cond) cv.wait(lk);` loop for guarded conditions; the
// predicate overloads below are for atomics-only predicates.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "analysis/lock_hierarchy.hpp"
#include "util/lock_rank.hpp"
#include "util/thread_annotations.hpp"

namespace insta::util {

class CondVar;
class UniqueLock;

/// std::mutex with a capability annotation and a declared lock rank.
class INSTA_CAPABILITY("mutex") Mutex {
 public:
  /// Unranked leaf mutex: never held while acquiring another lock.
  Mutex() : Mutex("mutex", lockrank::kLeaf) {}

  /// Named, ranked mutex; see util/lock_rank.hpp for the ranking.
  explicit Mutex(const char* name, int rank) : rank_{name, rank} {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() INSTA_ACQUIRE() {
    // Bookkeeping happens BEFORE blocking so an ordering violation aborts
    // with a clean report instead of deadlocking first.
    analysis::lock_check_acquire(&rank_, this, /*shared=*/false);
    mu_.lock();
  }

  void unlock() INSTA_RELEASE() {
    analysis::lock_check_release(this);
    mu_.unlock();
  }

  /// Rank-checked like lock(): a successful try_lock still establishes a
  /// hold that later acquisitions order against.
  bool try_lock() INSTA_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    analysis::lock_check_acquire(&rank_, this, /*shared=*/false);
    return true;
  }

 private:
  friend class CondVar;
  friend class UniqueLock;

  std::mutex mu_;
  analysis::LockRankInfo rank_;
};

/// std::shared_mutex with a capability annotation and a declared rank.
/// Exclusive (writer) and shared (reader) acquisitions are both validated;
/// upgrading shared->exclusive on the same thread aborts (self-deadlock).
class INSTA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() : SharedMutex("shared_mutex", lockrank::kLeaf) {}
  explicit SharedMutex(const char* name, int rank) : rank_{name, rank} {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() INSTA_ACQUIRE() {
    analysis::lock_check_acquire(&rank_, this, /*shared=*/false);
    mu_.lock();
  }

  void unlock() INSTA_RELEASE() {
    analysis::lock_check_release(this);
    mu_.unlock();
  }

  void lock_shared() INSTA_ACQUIRE_SHARED() {
    analysis::lock_check_acquire(&rank_, this, /*shared=*/true);
    mu_.lock_shared();
  }

  void unlock_shared() INSTA_RELEASE_SHARED() {
    analysis::lock_check_release(this);
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
  analysis::LockRankInfo rank_;
};

/// RAII exclusive hold on a Mutex for the full scope (no manual unlock).
class INSTA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) INSTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() INSTA_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive hold on a Mutex with manual unlock()/lock() — the form
/// CondVar waits on. Starts locked.
class INSTA_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) INSTA_ACQUIRE(mu)
      : mu_(&mu), lk_(mu.mu_, std::defer_lock) {
    analysis::lock_check_acquire(&mu.rank_, mu_, /*shared=*/false);
    lk_.lock();
  }

  ~UniqueLock() INSTA_RELEASE() {
    if (lk_.owns_lock()) analysis::lock_check_release(mu_);
    // lk_'s destructor performs the actual unlock.
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() INSTA_ACQUIRE() {
    analysis::lock_check_acquire(&mu_->rank_, mu_, /*shared=*/false);
    lk_.lock();
  }

  void unlock() INSTA_RELEASE() {
    analysis::lock_check_release(mu_);
    lk_.unlock();
  }

  [[nodiscard]] bool owns_lock() const { return lk_.owns_lock(); }

 private:
  friend class CondVar;

  Mutex* mu_;
  std::unique_lock<std::mutex> lk_;
};

/// RAII shared (reader) hold on a SharedMutex for the full scope.
class INSTA_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) INSTA_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  // Generic release: a scoped capability's destructor releases whichever
  // mode (shared here) its constructor acquired.
  ~SharedLock() INSTA_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) hold on a SharedMutex for the full scope.
class INSTA_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex& mu) INSTA_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriteLock() INSTA_RELEASE() { mu_.unlock(); }

  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over util::Mutex via UniqueLock. Thin shim over
/// std::condition_variable; see the header comment for predicate rules.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lk) { cv_.wait(lk.lk_); }

  /// Predicate must read only atomics (Clang cannot check into lambdas);
  /// use a manual wait loop for INSTA_GUARDED_BY state.
  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    cv_.wait(lk.lk_, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lk.lk_, tp);
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lk, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) {
    return cv_.wait_for(lk.lk_, dur, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace insta::util
