#pragma once

#include <cstddef>

namespace insta::util {

/// Current resident set size of this process in bytes (0 if unavailable).
[[nodiscard]] std::size_t current_rss_bytes();

/// Peak resident set size of this process in bytes (0 if unavailable).
[[nodiscard]] std::size_t peak_rss_bytes();

/// Converts a byte count to gibibytes.
[[nodiscard]] double to_gib(std::size_t bytes);

}  // namespace insta::util
