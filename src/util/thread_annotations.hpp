#pragma once

// Portable spellings of Clang's Thread Safety Analysis attributes.
//
// The macros attach compile-time concurrency contracts to mutexes
// (capabilities), the data they guard (INSTA_GUARDED_BY), and the functions
// that acquire, release, or require them. Under Clang, `-Wthread-safety`
// turns every violation of those contracts — touching guarded state without
// the lock, double-acquisition, forgetting to release on one path — into a
// compiler diagnostic; CI promotes the group to an error with
// `-Werror=thread-safety`. Under any other compiler the macros expand to
// nothing, so the annotations are free documentation.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// The primary annotated types are util::Mutex / util::SharedMutex and their
// RAII guards in util/mutex.hpp; annotate new code through those, not
// through raw std:: primitives.

// NOLINTBEGIN(bugprone-macro-parentheses): the macro arguments are
// attribute expressions (member names, capability lists), not C++
// subexpressions; parenthesizing them is invalid inside __attribute__.

#if defined(__clang__) && !defined(SWIG)
#define INSTA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define INSTA_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define INSTA_CAPABILITY(x) INSTA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define INSTA_SCOPED_CAPABILITY INSTA_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define INSTA_GUARDED_BY(x) INSTA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define INSTA_PT_GUARDED_BY(x) INSTA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Documents lock-ordering edges (checked under -Wthread-safety-beta).
#define INSTA_ACQUIRED_BEFORE(...) \
  INSTA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define INSTA_ACQUIRED_AFTER(...) \
  INSTA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function requires the capability held exclusively (and does not release).
#define INSTA_REQUIRES(...) \
  INSTA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define INSTA_REQUIRES_SHARED(...) \
  INSTA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (held on return).
#define INSTA_ACQUIRE(...) \
  INSTA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define INSTA_ACQUIRE_SHARED(...) \
  INSTA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define INSTA_RELEASE(...) \
  INSTA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define INSTA_RELEASE_SHARED(...) \
  INSTA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define INSTA_RELEASE_GENERIC(...) \
  INSTA_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define INSTA_TRY_ACQUIRE(...) \
  INSTA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define INSTA_TRY_ACQUIRE_SHARED(...) \
  INSTA_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (anti-deadlock).
#define INSTA_EXCLUDES(...) \
  INSTA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis).
#define INSTA_ASSERT_CAPABILITY(x) \
  INSTA_THREAD_ANNOTATION_(assert_capability(x))
#define INSTA_ASSERT_SHARED_CAPABILITY(x) \
  INSTA_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define INSTA_RETURN_CAPABILITY(x) INSTA_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis. Every use must carry a comment
/// justifying why the contract cannot be expressed (see DESIGN.md §12).
#define INSTA_NO_THREAD_SAFETY_ANALYSIS \
  INSTA_THREAD_ANNOTATION_(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)
