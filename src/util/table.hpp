#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace insta::util {

/// Minimal ASCII table builder used by the benchmark harnesses to print
/// rows in the same shape as the paper's tables.
///
/// Example:
///   Table t({"design", "corr", "runtime (s)"});
///   t.add_row({"block-1", "0.99994", "0.39"});
///   std::fputs(t.str().c_str(), stdout);
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same number of cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header separator.
  [[nodiscard]] std::string str() const;

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper ("%.3f" etc.) returning std::string.
[[nodiscard]] std::string fmt(const char* spec, double value);

}  // namespace insta::util
