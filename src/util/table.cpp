#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace insta::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "|";
  for (const std::size_t w : widths) sep += std::string(w + 2, '-') + "|";
  sep += "\n";

  std::string out = render_row(headers_);
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string fmt(const char* spec, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, value);
  return buf;
}

}  // namespace insta::util
