#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace insta::util {

/// Error type thrown by all invariant checks in the library.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// Out-of-line failure path shared by check() and the INSTA_CHECK macros;
/// keeps the throw machinery off the callers' fast path.
[[noreturn]] inline void check_fail(std::string_view msg,
                                    std::source_location loc) {
  throw CheckError(std::string(loc.file_name()) + ":" +
                   std::to_string(loc.line()) + ": check failed: " +
                   std::string(msg));
}

}  // namespace detail

/// Throws CheckError with source location when `cond` is false.
///
/// Used for precondition and invariant checks on public API boundaries.
/// Unlike assert(), stays active in release builds: an STA engine silently
/// propagating through a corrupt graph is worse than a crash.
///
/// Note that `msg` is evaluated by the caller even when the check passes;
/// on hot paths prefer INSTA_CHECK, which only builds the message on
/// failure, or INSTA_DCHECK, which compiles out entirely in NDEBUG builds.
inline void check(bool cond, std::string_view msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) detail::check_fail(msg, loc);
}

}  // namespace insta::util

/// Always-on invariant check. `cond` is evaluated exactly once; `msg` is
/// evaluated only when the check fails, so an expensive message expression
/// (string concatenation, pin_name lookups) costs nothing on the pass path.
#define INSTA_CHECK(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::insta::util::detail::check_fail(                             \
          (msg), ::std::source_location::current());                 \
    }                                                                \
  } while (false)

/// Debug-only invariant check for hot kernels. In NDEBUG (release) builds
/// neither argument is evaluated — both are only type-checked through
/// unevaluated sizeof operands — so arguments with side effects behave
/// identically whether or not the check is compiled in (they must not rely
/// on being evaluated). In debug builds it behaves like INSTA_CHECK.
#ifdef NDEBUG
#define INSTA_DCHECK(cond, msg)                  \
  do {                                           \
    static_cast<void>(sizeof((cond) ? 1 : 0));   \
    static_cast<void>(sizeof(msg));              \
  } while (false)
#else
#define INSTA_DCHECK(cond, msg) INSTA_CHECK(cond, msg)
#endif
