#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace insta::util {

/// Error type thrown by all invariant checks in the library.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws CheckError with source location when `cond` is false.
///
/// Used for precondition and invariant checks on public API boundaries.
/// Unlike assert(), stays active in release builds: an STA engine silently
/// propagating through a corrupt graph is worse than a crash.
inline void check(bool cond, std::string_view msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": check failed: " +
                     std::string(msg));
  }
}

}  // namespace insta::util
