#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>

#include "telemetry/telemetry.hpp"

namespace insta::util {

namespace {

#if INSTA_TELEMETRY_ENABLED
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}
#endif

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  counters_ = std::make_unique<WorkerCounters[]>(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t widx) {
  WorkerCounters& wc = counters_[widx];
  (void)wc;
  for (;;) {
    std::function<void()> task;
    {
      INSTA_TM(const auto wait_start = std::chrono::steady_clock::now();)
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      INSTA_TM(wc.idle_ns.fetch_add(elapsed_ns(wait_start),
                                    std::memory_order_relaxed);)
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    INSTA_TM(const auto task_start = std::chrono::steady_clock::now();)
    task();
    INSTA_TM(wc.busy_ns.fetch_add(elapsed_ns(task_start),
                                  std::memory_order_relaxed);)
    INSTA_TM(wc.tasks.fetch_add(1, std::memory_order_relaxed);)
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  INSTA_TM(tasks_queued_.fetch_add(1, std::memory_order_relaxed);)
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool::PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.workers = workers_.size();
#if INSTA_TELEMETRY_ENABLED
  s.tasks_queued = tasks_queued_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerCounters& wc = counters_[i];
    const auto busy = wc.busy_ns.load(std::memory_order_relaxed);
    const auto idle = wc.idle_ns.load(std::memory_order_relaxed);
    s.tasks_executed += wc.tasks.load(std::memory_order_relaxed);
    s.busy_sec += static_cast<double>(busy) * 1e-9;
    s.idle_sec += static_cast<double>(idle) * 1e-9;
    if (busy + idle > 0) {
      const double idle_pct = 100.0 * static_cast<double>(idle) /
                              static_cast<double>(busy + idle);
      s.max_worker_idle_pct = std::max(s.max_worker_idle_pct, idle_pct);
    }
  }
#endif
  return s;
}

void ThreadPool::publish_metrics() const {
#if INSTA_TELEMETRY_ENABLED
  const PoolStats s = stats();
  auto& reg = telemetry::MetricsRegistry::global();
  reg.gauge("pool.workers").set(static_cast<double>(s.workers));
  reg.gauge("pool.tasks_queued").set(static_cast<double>(s.tasks_queued));
  reg.gauge("pool.tasks_executed").set(static_cast<double>(s.tasks_executed));
  reg.gauge("pool.busy_sec").set(s.busy_sec);
  reg.gauge("pool.idle_sec").set(s.idle_sec);
  reg.gauge("pool.max_worker_idle_pct").set(s.max_worker_idle_pct);
  const double total = s.busy_sec + s.idle_sec;
  reg.gauge("pool.utilization_pct")
      .set(total > 0.0 ? 100.0 * s.busy_sec / total : 0.0);
#endif
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  if (n <= grain || workers_.size() <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t max_chunks = workers_.size() * 4;
  const std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

#if INSTA_TELEMETRY_ENABLED
  static telemetry::Counter pf_calls =
      telemetry::MetricsRegistry::global().counter("pool.parallel_for_calls");
  static telemetry::Counter pf_chunks =
      telemetry::MetricsRegistry::global().counter("pool.chunks");
  static telemetry::Histogram chunk_us =
      telemetry::MetricsRegistry::global().histogram(
          "pool.chunk_us", telemetry::HistogramSpec{1.0, 2.0});
  // Spread between the slowest and fastest chunk of one parallel_for, as a
  // percent of the slowest — 0 means perfectly balanced chunks.
  static telemetry::Histogram imbalance =
      telemetry::MetricsRegistry::global().histogram(
          "pool.chunk_imbalance_pct", telemetry::HistogramSpec{1.0, 1.6});
  pf_calls.inc();
  pf_chunks.add(num_chunks);
  // Slot per chunk, each written by exactly one task, read after the wait.
  std::vector<std::uint64_t> chunk_ns(num_chunks, 0);
#endif

  std::atomic<std::size_t> remaining{num_chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  // First exception thrown by any chunk; rethrown on the calling thread once
  // every chunk has finished (an exception escaping a worker thread would
  // otherwise std::terminate the process). Later exceptions are dropped.
  std::exception_ptr first_error;

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    enqueue([&, lo, hi, c] {
      (void)c;
      try {
        INSTA_TRACE_SCOPE("pool.chunk", static_cast<std::int64_t>(hi - lo));
        INSTA_TM(const auto chunk_start = std::chrono::steady_clock::now();)
        fn(lo, hi);
        INSTA_TM(chunk_ns[c] = elapsed_ns(chunk_start);)
      } catch (...) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) std::rethrow_exception(first_error);

#if INSTA_TELEMETRY_ENABLED
  std::uint64_t mn = chunk_ns[0];
  std::uint64_t mx = chunk_ns[0];
  for (const std::uint64_t ns : chunk_ns) {
    chunk_us.observe(static_cast<double>(ns) * 1e-3);
    mn = std::min(mn, ns);
    mx = std::max(mx, ns);
  }
  if (mx > 0) {
    imbalance.observe(100.0 * static_cast<double>(mx - mn) /
                      static_cast<double>(mx));
  }
#endif
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace insta::util
