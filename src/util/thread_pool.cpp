#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/telemetry.hpp"

namespace insta::util {

namespace {

#if INSTA_TELEMETRY_ENABLED
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}
#endif

/// Busy-wait hint: keeps the spinning hardware thread polite without a
/// scheduler round-trip.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Spins this many cpu_relax() rounds before a worker parks on the condvar.
/// Sized so back-to-back per-level launches (microseconds apart) never pay
/// the mutex/condvar round-trip.
constexpr int kIdleSpins = 4096;

constexpr std::uint64_t kEpochShift = 32;
constexpr std::uint64_t kJoinerMask = (std::uint64_t{1} << kEpochShift) - 1;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // One extra counter slot for chunks the launching thread executes itself.
  counters_ = std::make_unique<WorkerCounters[]>(num_threads + 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    const LockGuard lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_one_chunk(std::size_t lo, std::size_t hi,
                               WorkerCounters& wc) {
  (void)wc;
  try {
    INSTA_TRACE_SCOPE("pool.chunk", static_cast<std::int64_t>(hi - lo));
    INSTA_TM(const auto chunk_start = std::chrono::steady_clock::now();)
    fn_(ctx_, lo, hi);
#if INSTA_TELEMETRY_ENABLED
    const std::uint64_t ns = elapsed_ns(chunk_start);
    wc.busy_ns.fetch_add(ns, std::memory_order_relaxed);
    wc.tasks.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Histogram chunk_us =
        telemetry::MetricsRegistry::global().histogram(
            "pool.chunk_us", telemetry::HistogramSpec{1.0, 2.0});
    chunk_us.observe(static_cast<double>(ns) * 1e-3);
    // CAS-min/max: per-launch extremes for the imbalance histogram.
    std::uint64_t cur = launch_min_ns_.load(std::memory_order_relaxed);
    while (ns < cur && !launch_min_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
    cur = launch_max_ns_.load(std::memory_order_relaxed);
    while (ns > cur && !launch_max_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
#endif
  } catch (...) {
    const LockGuard lock(error_mutex_);
    if (!first_error_) {
      first_error_ = std::current_exception();
      // Release pairs with the launcher's acquire load after the drain.
      has_error_.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::execute_tickets(WorkerCounters& wc) {
  for (;;) {
    const std::size_t t = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    if (t >= num_chunks_) return;
    const std::size_t lo = begin_ + t * chunk_;
    const std::size_t hi = std::min(end_, lo + chunk_);
    run_one_chunk(lo, hi, wc);
    // Release so the launcher's acquire-read of remaining_ == 0 makes every
    // chunk's side effects (and any stored exception) visible.
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop(std::size_t widx) {
  WorkerCounters& wc = counters_[widx];
  std::uint64_t done_epoch = 0;  // most recent epoch this worker finished
  int spins = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::uint64_t s = sync_.load(std::memory_order_acquire);
    const std::uint64_t ep = s >> kEpochShift;
    if ((ep & 1) != 0 || ep == done_epoch) {
      // No fresh launch: spin briefly, then park on the condvar.
      if (++spins < kIdleSpins) {
        cpu_relax();
        continue;
      }
      spins = 0;
      INSTA_TM(const auto wait_start = std::chrono::steady_clock::now();)
      {
        UniqueLock lock(sleep_mutex_);
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        // Predicate reads only atomics, so Clang's lambda-blind analysis
        // has nothing guarded to miss here.
        sleep_cv_.wait(lock, [&] {
          // seq_cst pairs with the launcher's seq_cst publish of sync_
          // followed by its seq_cst read of sleepers_: either this read sees
          // the new epoch, or the launcher sees the sleeper and notifies.
          if (stop_.load(std::memory_order_seq_cst)) return true;
          const std::uint64_t cur =
              sync_.load(std::memory_order_seq_cst) >> kEpochShift;
          return (cur & 1) == 0 && cur != done_epoch;
        });
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      }
      INSTA_TM(wc.idle_ns.fetch_add(elapsed_ns(wait_start),
                                    std::memory_order_relaxed);)
      continue;
    }
    // Join epoch `ep`: bump the joiner count iff the word is unchanged. A
    // successful join pins the launch fields (the next writer spins until
    // the joiner count returns to zero).
    if (!sync_.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      continue;
    }
    execute_tickets(wc);
    done_epoch = ep;
    sync_.fetch_sub(1, std::memory_order_acq_rel);
    spins = 0;
  }
}

void ThreadPool::run_chunked(std::size_t begin, std::size_t end, ChunkFn fn,
                             void* ctx, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  if (n <= grain || workers_.empty()) {
    fn(ctx, begin, end);
    return;
  }
  // One launch at a time. Nested launches (a chunk body launching again) and
  // launches racing another thread's launch run inline on the caller — the
  // exception contract holds trivially there.
  bool expected = false;
  if (!claim_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    fn(ctx, begin, end);
    return;
  }

  const std::size_t max_chunks = (workers_.size() + 1) * 4;
  const std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    claim_.store(false, std::memory_order_release);
    fn(ctx, begin, end);
    return;
  }

#if INSTA_TELEMETRY_ENABLED
  static telemetry::Counter pf_calls =
      telemetry::MetricsRegistry::global().counter("pool.parallel_for_calls");
  static telemetry::Counter pf_chunks =
      telemetry::MetricsRegistry::global().counter("pool.chunks");
  // Spread between the slowest and fastest chunk of one launch, as a
  // percent of the slowest — 0 means perfectly balanced chunks.
  static telemetry::Histogram imbalance =
      telemetry::MetricsRegistry::global().histogram(
          "pool.chunk_imbalance_pct", telemetry::HistogramSpec{1.0, 1.6});
  pf_calls.inc();
  pf_chunks.add(num_chunks);
  tasks_queued_.fetch_add(num_chunks, std::memory_order_relaxed);
#endif

  // Writer phase: flip the epoch to odd once every straggler joiner of the
  // previous launch has checked out, fill the slot, publish an even epoch.
  std::uint64_t expected_sync =
      sync_.load(std::memory_order_relaxed) & ~kJoinerMask;
  std::uint64_t ep;
  for (;;) {
    ep = expected_sync >> kEpochShift;
    if (sync_.compare_exchange_weak(expected_sync, (ep + 1) << kEpochShift,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      break;
    }
    expected_sync &= ~kJoinerMask;  // retry expecting zero joiners
    cpu_relax();
  }
  fn_ = fn;
  ctx_ = ctx;
  begin_ = begin;
  end_ = end;
  chunk_ = chunk;
  num_chunks_ = num_chunks;
  next_ticket_.store(0, std::memory_order_relaxed);
  remaining_.store(num_chunks, std::memory_order_relaxed);
  INSTA_TM(launch_min_ns_.store(~std::uint64_t{0}, std::memory_order_relaxed);)
  INSTA_TM(launch_max_ns_.store(0, std::memory_order_relaxed);)
  sync_.store((ep + 2) << kEpochShift, std::memory_order_seq_cst);

  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      const LockGuard lock(sleep_mutex_);
    }
    sleep_cv_.notify_all();
  }

  // The caller is a full participant: it pulls tickets like a worker, then
  // spin-waits for at most workers_.size() chunks still in flight.
  execute_tickets(counters_[workers_.size()]);
  int spin = 0;
  while (remaining_.load(std::memory_order_acquire) != 0) {
    if (++spin < 1024) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

#if INSTA_TELEMETRY_ENABLED
  const std::uint64_t mn = launch_min_ns_.load(std::memory_order_relaxed);
  const std::uint64_t mx = launch_max_ns_.load(std::memory_order_relaxed);
  if (mx > 0 && mn != ~std::uint64_t{0}) {
    imbalance.observe(100.0 * static_cast<double>(mx - mn) /
                      static_cast<double>(mx));
  }
#endif

  // All chunk completions happen-before the remaining_ == 0 read, so the
  // error slot is stable; take it (under its lock, on the cold path only)
  // before releasing the claim.
  std::exception_ptr err;
  if (has_error_.load(std::memory_order_acquire)) {
    const LockGuard lock(error_mutex_);
    err = std::move(first_error_);
    first_error_ = nullptr;
    has_error_.store(false, std::memory_order_relaxed);
  }
  claim_.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);
}

ThreadPool::PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.workers = workers_.size();
#if INSTA_TELEMETRY_ENABLED
  s.tasks_queued = tasks_queued_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i <= workers_.size(); ++i) {
    const WorkerCounters& wc = counters_[i];
    const auto busy = wc.busy_ns.load(std::memory_order_relaxed);
    const auto idle = wc.idle_ns.load(std::memory_order_relaxed);
    s.tasks_executed += wc.tasks.load(std::memory_order_relaxed);
    s.busy_sec += static_cast<double>(busy) * 1e-9;
    s.idle_sec += static_cast<double>(idle) * 1e-9;
    if (busy + idle > 0) {
      const double idle_pct = 100.0 * static_cast<double>(idle) /
                              static_cast<double>(busy + idle);
      s.max_worker_idle_pct = std::max(s.max_worker_idle_pct, idle_pct);
    }
  }
#endif
  return s;
}

void ThreadPool::publish_metrics() const {
#if INSTA_TELEMETRY_ENABLED
  const PoolStats s = stats();
  auto& reg = telemetry::MetricsRegistry::global();
  reg.gauge("pool.workers").set(static_cast<double>(s.workers));
  reg.gauge("pool.tasks_queued").set(static_cast<double>(s.tasks_queued));
  reg.gauge("pool.tasks_executed").set(static_cast<double>(s.tasks_executed));
  reg.gauge("pool.busy_sec").set(s.busy_sec);
  reg.gauge("pool.idle_sec").set(s.idle_sec);
  reg.gauge("pool.max_worker_idle_pct").set(s.max_worker_idle_pct);
  const double total = s.busy_sec + s.idle_sec;
  reg.gauge("pool.utilization_pct")
      .set(total > 0.0 ? 100.0 * s.busy_sec / total : 0.0);
#endif
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace insta::util
