#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>

namespace insta::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  if (n <= grain || workers_.size() <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t max_chunks = workers_.size() * 4;
  const std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

  std::atomic<std::size_t> remaining{num_chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  // First exception thrown by any chunk; rethrown on the calling thread once
  // every chunk has finished (an exception escaping a worker thread would
  // otherwise std::terminate the process). Later exceptions are dropped.
  std::exception_ptr first_error;

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    enqueue([&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace insta::util
