#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace insta::util {

/// Fixed-size worker-thread pool with a blocking parallel_for.
///
/// This is the CPU stand-in for the paper's CUDA grid: `parallel_for` over
/// the pins of one timing level plays the role of one kernel launch, with
/// each index corresponding to one CUDA thread. Work items within a level are
/// independent by construction (level-synchronous propagation), so results
/// are deterministic regardless of the number of workers.
class ThreadPool {
 public:
  /// Point-in-time utilization numbers, cumulative since construction.
  /// All zero when telemetry is compiled out.
  struct PoolStats {
    std::size_t workers = 0;
    std::uint64_t tasks_queued = 0;
    std::uint64_t tasks_executed = 0;
    double busy_sec = 0.0;  ///< summed across workers
    double idle_sec = 0.0;  ///< summed across workers (time blocked in wait)
    /// Idle share of the most idle worker, in percent of its busy+idle time.
    double max_worker_idle_pct = 0.0;
  };

  /// Creates `num_threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Outstanding tasks complete first.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [begin, end), distributing contiguous
  /// chunks across workers, and blocks until all iterations finish.
  /// `grain` is the minimum chunk size (prevents over-splitting tiny loops;
  /// loops smaller than `grain` run inline on the calling thread).
  /// If any iteration throws, the first exception is captured and rethrown
  /// on the calling thread after all chunks have drained; the pool stays
  /// usable afterwards.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 256);

  /// Like parallel_for but hands each worker a [chunk_begin, chunk_end)
  /// range, which avoids per-index std::function overhead in hot kernels.
  /// Same exception contract as parallel_for.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 256);

  /// Aggregates the per-worker counters (racy but monotone reads).
  [[nodiscard]] PoolStats stats() const;

  /// Writes stats() into MetricsRegistry::global() as "pool.*" gauges.
  /// Gauges (not counters) so repeated publication is idempotent.
  void publish_metrics() const;

  /// Process-wide pool sized to the hardware. Used by the engines by default.
  static ThreadPool& global();

 private:
  /// One cache line per worker so counter updates never false-share.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void worker_loop(std::size_t widx);
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerCounters[]> counters_;  ///< size workers_.size()
  std::atomic<std::uint64_t> tasks_queued_{0};
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace insta::util
