#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::util {

/// Fixed-size worker-thread pool with a blocking parallel_for.
///
/// This is the CPU stand-in for the paper's CUDA grid: `parallel_for` over
/// the pins of one timing level plays the role of one kernel launch, with
/// each index corresponding to one CUDA thread. Work items within a level are
/// independent by construction (level-synchronous propagation), so results
/// are deterministic regardless of the number of workers.
///
/// Dispatch is zero-allocation ticket-pulling: a launch publishes one raw
/// function pointer + context into a shared slot, workers pull contiguous
/// chunk indices off a single atomic ticket counter, and the caller both
/// participates in the work and spin-waits for the last chunk. No
/// std::function heap traffic, no queue, and no mutex on the hot path; the
/// sleep mutex/condvar is touched only when workers have been idle long
/// enough to block. Per-level launch cost is what used to dominate the many
/// small levels of a levelized timing graph.
class ThreadPool {
 public:
  /// Point-in-time utilization numbers, cumulative since construction.
  /// All zero when telemetry is compiled out.
  struct PoolStats {
    std::size_t workers = 0;
    std::uint64_t tasks_queued = 0;
    std::uint64_t tasks_executed = 0;
    double busy_sec = 0.0;  ///< summed across workers
    double idle_sec = 0.0;  ///< summed across workers (time blocked in wait)
    /// Idle share of the most idle worker, in percent of its busy+idle time.
    double max_worker_idle_pct = 0.0;
  };

  /// Type-erased chunk callback of the ticket-dispatch path.
  using ChunkFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);

  /// Creates `num_threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. The pool must be quiescent (no launch in flight).
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [begin, end), distributing contiguous
  /// chunks across workers, and blocks until all iterations finish.
  /// `grain` is the minimum chunk size (prevents over-splitting tiny loops;
  /// loops smaller than `grain` run inline on the calling thread).
  /// If any iteration throws, the first exception is captured and rethrown
  /// on the calling thread after all chunks have drained; the pool stays
  /// usable afterwards. Routed through the same ticket-dispatch path as
  /// parallel_for_chunks (no per-index std::function, no queue).
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& fn,
                    std::size_t grain = 256) {
    using Fn = std::remove_reference_t<F>;
    run_chunked(
        begin, end,
        [](void* ctx, std::size_t lo, std::size_t hi) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::size_t i = lo; i < hi; ++i) f(i);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        grain);
  }

  /// Like parallel_for but hands each worker a [chunk_begin, chunk_end)
  /// range, which avoids per-index call overhead in hot kernels.
  /// Same exception contract as parallel_for.
  template <typename F>
  void parallel_for_chunks(std::size_t begin, std::size_t end, F&& fn,
                           std::size_t grain = 256) {
    using Fn = std::remove_reference_t<F>;
    run_chunked(
        begin, end,
        [](void* ctx, std::size_t lo, std::size_t hi) {
          (*static_cast<Fn*>(ctx))(lo, hi);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        grain);
  }

  /// The type-erased core of parallel_for/parallel_for_chunks. Splits
  /// [begin, end) into chunks of at least `grain` indices and dispatches
  /// them through the ticket slot. Nested launches (from inside a chunk) and
  /// launches racing another thread's launch run inline on the caller.
  void run_chunked(std::size_t begin, std::size_t end, ChunkFn fn, void* ctx,
                   std::size_t grain);

  /// Aggregates the per-worker counters (racy but monotone reads).
  [[nodiscard]] PoolStats stats() const;

  /// Writes stats() into MetricsRegistry::global() as "pool.*" gauges.
  /// Gauges (not counters) so repeated publication is idempotent.
  void publish_metrics() const;

  /// Process-wide pool sized to the hardware. Used by the engines by default.
  static ThreadPool& global();

 private:
  /// One cache line per worker so counter updates never false-share.
  /// Slot workers_.size() belongs to the launching (caller) thread.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void worker_loop(std::size_t widx);
  /// Pulls tickets of the current launch until exhausted.
  void execute_tickets(WorkerCounters& wc);
  void run_one_chunk(std::size_t lo, std::size_t hi, WorkerCounters& wc);

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerCounters[]> counters_;  ///< size workers_.size() + 1
  std::atomic<std::uint64_t> tasks_queued_{0};

  // ---- launch slot (one launch active at a time; claim_ serializes) -------
  // Plain fields: written only while `sync_` holds an odd epoch with zero
  // joiners (the writer phase), read only by threads joined via `sync_`.
  ChunkFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
  std::size_t chunk_ = 0;
  std::size_t num_chunks_ = 0;
  std::atomic<std::size_t> next_ticket_{0};
  std::atomic<std::size_t> remaining_{0};
  // Ticket dispatch fetch-adds next_ticket_ and decrements remaining_ on
  // every chunk; a library-lock fallback there would serialize the whole
  // launch behind one hidden mutex.
  static_assert(std::atomic<std::size_t>::is_always_lock_free,
                "ticket counters must be native atomic RMWs");
  Mutex error_mutex_{"pool.error", lockrank::kPoolError};
  /// First exception thrown by any chunk of the current launch; read by the
  /// launcher after the launch drains.
  std::exception_ptr first_error_ INSTA_GUARDED_BY(error_mutex_);
  /// Set (under error_mutex_, release order) when first_error_ is armed, so
  /// the launcher's drain path checks one atomic instead of taking the lock.
  std::atomic<bool> has_error_{false};
  /// Per-launch chunk-duration extremes for the imbalance histogram.
  std::atomic<std::uint64_t> launch_min_ns_{0};
  std::atomic<std::uint64_t> launch_max_ns_{0};

  /// Epoch/join word: (epoch << 32) | joiner_count. An odd epoch means a
  /// launcher is writing the slot fields; workers join a stable (even, new)
  /// epoch by CAS-incrementing the joiner count, which blocks the next
  /// writer until they leave. This makes the plain launch fields data-race
  /// free without making them atomic.
  std::atomic<std::uint64_t> sync_{0};
  // The packed word layout — epoch in bits [63:32], joiner count in bits
  // [31:0] — only synchronizes if the CAS on the whole 64-bit word is a
  // single hardware RMW. A non-lock-free fallback would wrap it in a
  // library mutex, reintroducing the blocking the epoch protocol exists to
  // avoid (and deadlocking the writer spin that waits for joiners to drain
  // while holding that hidden lock).
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "epoch/joiner sync word must be a native 64-bit atomic");
  /// Serializes launchers; a failed claim falls back to inline execution.
  std::atomic<bool> claim_{false};

  // ---- worker parking (cold path only) ------------------------------------
  std::atomic<std::uint32_t> sleepers_{0};
  Mutex sleep_mutex_{"pool.sleep", lockrank::kPoolSleep};
  CondVar sleep_cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace insta::util
