#pragma once

#include <chrono>
#include <cstdint>

namespace insta::util {

/// Monotonic wall-clock stopwatch with millisecond/second readouts.
///
/// Example:
///   Stopwatch sw;
///   run_forward();
///   log_info("forward took " + std::to_string(sw.elapsed_ms()) + " ms");
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double elapsed_sec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds since construction or last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_sec() * 1e3; }

  /// Elapsed time in microseconds since construction or last reset().
  [[nodiscard]] double elapsed_us() const { return elapsed_sec() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace insta::util
