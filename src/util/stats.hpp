#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace insta::util {

/// Pearson correlation coefficient between two equal-length series.
/// Returns 1.0 for degenerate (zero-variance) inputs that are identical,
/// and 0.0 for other degenerate cases.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination (R^2) of predicting ys by xs on the
/// 45-degree line (i.e. 1 - SS_res/SS_tot with prediction y_hat = x).
[[nodiscard]] double r_squared_identity(std::span<const double> xs,
                                        std::span<const double> ys);

/// Elementwise-mismatch summary between a reference and a test series.
struct MismatchStats {
  double avg_abs = 0.0;   ///< mean |ref - test|
  double max_abs = 0.0;   ///< worst |ref - test|
  std::size_t max_index = 0;  ///< index of the worst mismatch
  double rmse = 0.0;      ///< root-mean-square error
};

/// Computes avg/worst absolute mismatch and RMSE between two series.
[[nodiscard]] MismatchStats mismatch(std::span<const double> ref,
                                     std::span<const double> test);

/// Simple descriptive statistics of one series.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes min/max/mean/stddev (population stddev) of a series.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Formats a correlation with the paper's "top 5 digits" convention,
/// e.g. 0.999943 -> "0.99994".
[[nodiscard]] std::string format_correlation(double corr);

}  // namespace insta::util
