#pragma once

#include <string_view>

namespace insta::util {

/// Severity levels for the library logger, ordered by verbosity.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum severity that is emitted. Thread-safe.
void set_log_level(LogLevel level);

/// Returns the current global minimum severity.
LogLevel log_level();

/// Emits one log line (with timestamp and severity tag) to stderr if
/// `level` is at or above the global threshold. Thread-safe.
void log(LogLevel level, std::string_view msg);

/// Convenience wrappers for the common severities.
void log_debug(std::string_view msg);
void log_info(std::string_view msg);
void log_warn(std::string_view msg);
void log_error(std::string_view msg);

}  // namespace insta::util
