#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::util {

/// Severity levels for the library logger, ordered by verbosity.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum severity that is emitted. Thread-safe.
void set_log_level(LogLevel level);

/// Returns the current global minimum severity.
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive;
/// "warning" accepted). Returns nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Applies the INSTA_LOG_LEVEL environment variable, if set and parseable.
/// Idempotent: the environment is consulted only on the first call, so a CLI
/// flag that calls set_log_level afterwards is not overridden later.
void init_log_level_from_env();

/// Destination for formatted log lines. The logger serializes write() calls
/// under its own mutex, so implementations need no locking of their own
/// against the logger (CaptureLogSink still locks because tests read it
/// concurrently).
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// `line` is the fully formatted log line, without trailing newline.
  virtual void write(LogLevel level, std::string_view line) = 0;
};

/// Replaces the global sink (nullptr restores the default stderr sink).
/// Returns the previous sink (nullptr if it was the default) so tests can
/// restore it. Thread-safe.
std::shared_ptr<LogSink> set_log_sink(std::shared_ptr<LogSink> sink);

/// Test sink that captures every line it receives.
class CaptureLogSink : public LogSink {
 public:
  void write(LogLevel level, std::string_view line) override {
    const LockGuard lock(mutex_);
    lines_.emplace_back(level, std::string(line));
  }

  [[nodiscard]] std::vector<std::pair<LogLevel, std::string>> lines() const {
    const LockGuard lock(mutex_);
    return lines_;
  }

  void clear() {
    const LockGuard lock(mutex_);
    lines_.clear();
  }

 private:
  /// Taken while the logger holds its own lock, hence below kLog.
  mutable Mutex mutex_{"log.sink", lockrank::kLogSink};
  std::vector<std::pair<LogLevel, std::string>> lines_ INSTA_GUARDED_BY(mutex_);
};

/// Emits one log line (with timestamp and severity tag) to the active sink
/// if `level` is at or above the global threshold. Thread-safe.
void log(LogLevel level, std::string_view msg);

/// Convenience wrappers for the common severities.
void log_debug(std::string_view msg);
void log_info(std::string_view msg);
void log_warn(std::string_view msg);
void log_error(std::string_view msg);

}  // namespace insta::util
