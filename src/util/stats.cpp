#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace insta::util {

double pearson(std::span<const double> xs, std::span<const double> ys) {
  check(xs.size() == ys.size(), "pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return std::equal(xs.begin(), xs.end(), ys.begin()) ? 1.0 : 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

double r_squared_identity(std::span<const double> xs, std::span<const double> ys) {
  check(xs.size() == ys.size(), "r_squared_identity: size mismatch");
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  double my = 0.0;
  for (const double y : ys) my += y;
  my /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (ys[i] - xs[i]) * (ys[i] - xs[i]);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

MismatchStats mismatch(std::span<const double> ref, std::span<const double> test) {
  check(ref.size() == test.size(), "mismatch: size mismatch");
  MismatchStats out;
  if (ref.empty()) return out;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = std::abs(ref[i] - test[i]);
    sum += d;
    sum_sq += d * d;
    if (d > out.max_abs) {
      out.max_abs = d;
      out.max_index = i;
    }
  }
  out.avg_abs = sum / static_cast<double>(ref.size());
  out.rmse = std::sqrt(sum_sq / static_cast<double>(ref.size()));
  return out;
}

Summary summarize(std::span<const double> xs) {
  Summary out;
  if (xs.empty()) return out;
  out.min = xs[0];
  out.max = xs[0];
  double sum = 0.0;
  for (const double x : xs) {
    out.min = std::min(out.min, x);
    out.max = std::max(out.max, x);
    sum += x;
  }
  out.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - out.mean) * (x - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return out;
}

std::string format_correlation(double corr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.5f", corr);
  return buf;
}

}  // namespace insta::util
