#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

namespace insta::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now();
  const auto secs = std::chrono::time_point_cast<std::chrono::seconds>(now);
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - secs).count();
  const std::time_t t = Clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&t, &tm);
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%02d:%02d:%02d.%03d] [%s] %.*s\n", tm.tm_hour, tm.tm_min,
               tm.tm_sec, static_cast<int>(ms), tag(level),
               static_cast<int>(msg.size()), msg.data());
}

void log_debug(std::string_view msg) { log(LogLevel::kDebug, msg); }
void log_info(std::string_view msg) { log(LogLevel::kInfo, msg); }
void log_warn(std::string_view msg) { log(LogLevel::kWarn, msg); }
void log_error(std::string_view msg) { log(LogLevel::kError, msg); }

}  // namespace insta::util
