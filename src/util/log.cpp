#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "util/mutex.hpp"

namespace insta::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
/// Serializes sink writes and guards g_sink. Logging may run under any
/// other lock in the system, so its rank sits near the bottom (only the
/// capture sink's own lock nests inside it).
Mutex g_mutex{"log.global", lockrank::kLog};
std::shared_ptr<LogSink> g_sink
    INSTA_GUARDED_BY(g_mutex);  ///< null means the default stderr sink

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

void init_log_level_from_env() {
  static const bool applied = [] {
    // Read exactly once, inside a magic-static initializer, before any
    // concurrent setenv could plausibly run; nothing here mutates the
    // environment.
    const char* env = std::getenv("INSTA_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr) return false;
    const std::optional<LogLevel> level = parse_log_level(env);
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "[INSTA] ignoring unrecognized INSTA_LOG_LEVEL='%s'\n", env);
      return false;
    }
    set_log_level(*level);
    return true;
  }();
  (void)applied;
}

std::shared_ptr<LogSink> set_log_sink(std::shared_ptr<LogSink> sink) {
  const LockGuard lock(g_mutex);
  std::shared_ptr<LogSink> prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

void log(LogLevel level, std::string_view msg) {
  init_log_level_from_env();
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now();
  const auto secs = std::chrono::time_point_cast<std::chrono::seconds>(now);
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - secs).count();
  const std::time_t t = Clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&t, &tm);
  char prefix[40];
  std::snprintf(prefix, sizeof(prefix), "[%02d:%02d:%02d.%03d] [%s] ",
                tm.tm_hour, tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                tag(level));
  const LockGuard lock(g_mutex);
  if (g_sink != nullptr) {
    std::string line = prefix;
    line.append(msg);
    g_sink->write(level, line);
    return;
  }
  std::fprintf(stderr, "%s%.*s\n", prefix, static_cast<int>(msg.size()),
               msg.data());
}

void log_debug(std::string_view msg) { log(LogLevel::kDebug, msg); }
void log_info(std::string_view msg) { log(LogLevel::kInfo, msg); }
void log_warn(std::string_view msg) { log(LogLevel::kWarn, msg); }
void log_error(std::string_view msg) { log(LogLevel::kError, msg); }

}  // namespace insta::util
