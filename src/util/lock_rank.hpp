#pragma once

// The repo-wide lock ranking (one integer per mutex; see DESIGN.md §12 for
// the full capability map). The rule enforced by the debug-build validator
// (analysis/lock_hierarchy.hpp) is strict descent: a thread may only
// acquire a lock whose rank is strictly below the rank of every lock it
// already holds. Because the relation is a total order, any program that
// obeys it is deadlock-free by lock ordering; an acquisition that violates
// it aborts with the acquiring and conflicting stacks.
//
// Ranks are spaced so a future lock can slot between two existing ones
// without renumbering the world. When adding a mutex: pick the rank from
// the call graph (what can be held when it is taken, what can be taken
// while it is held), add a constant here, and extend the DESIGN.md table.

namespace insta::util::lockrank {

/// apps/insta_cli serve watchdog; outermost: calls Server::stop() paths.
inline constexpr int kCliWatchdog = 110;

/// serve::Server connection table (conn_mu_).
inline constexpr int kServerConn = 100;

/// serve::Server shutdown wait (wait_mu_).
inline constexpr int kServerWait = 95;

/// serve::TimingService batch-evaluation serialization (eval_mu_).
inline constexpr int kServeEval = 80;

/// serve::TimingService what-if micro-batcher queue (queue_mu_).
inline constexpr int kServeQueue = 75;

/// serve::TimingService engine access, shared/exclusive (engine_mu_).
inline constexpr int kServeEngine = 70;

/// replica::DeltaLog record ring (mu_): appended by the service's commit
/// path while engine_mu_ is held exclusively, read lock-free of the serve
/// locks by the sync/delta_stream protocol verbs.
inline constexpr int kReplicaLog = 65;

/// serve::TimingService session table + stats (state_mu_).
inline constexpr int kServeState = 60;

/// serve::TimingService snapshot-pointer micro-mutex (snap_mu_).
inline constexpr int kServeSnap = 55;

/// replica::WhatifCache LRU table (mu_): probed/updated by what-if request
/// threads with no serve lock held; never taken while holding anything.
inline constexpr int kReplicaCache = 52;

/// core::ScenarioBatch workspace pool (pool_mutex_).
inline constexpr int kScenarioPool = 50;

/// util::ThreadPool worker parking (sleep_mutex_).
inline constexpr int kPoolSleep = 40;

/// util::ThreadPool first-exception slot (error_mutex_).
inline constexpr int kPoolError = 35;

/// telemetry::MetricsRegistry registration/snapshot lock (mutex_).
inline constexpr int kTelemetryRegistry = 30;

/// telemetry::Tracer ring-table lock (mutex_).
inline constexpr int kTelemetryTrace = 29;

/// telemetry::Tracer per-thread span ring (Ring::mutex).
inline constexpr int kTelemetryRing = 25;

/// util/log.cpp global sink lock (logging may run under any other lock).
inline constexpr int kLog = 20;

/// util::CaptureLogSink capture buffer (taken under the log lock).
inline constexpr int kLogSink = 15;

/// Default for ad-hoc mutexes that never nest with anything.
inline constexpr int kLeaf = 0;

}  // namespace insta::util::lockrank
