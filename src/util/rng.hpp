#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace insta::util {

/// Deterministic xoshiro256++ pseudo-random generator.
///
/// Used by every synthetic-design generator in the repository so that all
/// benchmarks and tests are reproducible from a single integer seed,
/// independent of the standard library implementation.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state with splitmix64 expansion of `seed` (any value is fine).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step, the recommended seeding procedure for xoshiro.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value (xoshiro256++ step).
  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    check(lo <= hi, "uniform_int: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal sample via Box–Muller (uses two uniforms per pair).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586;
    cached_ = r * std::sin(kTwoPi * u2);
    has_cached_ = true;
    return r * std::cos(kTwoPi * u2);
  }

  /// Normal sample with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace insta::util
