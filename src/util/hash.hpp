#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace insta::util {

/// FNV-1a 64-bit offset basis / prime.
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x00000100000001b3ull;

/// FNV-1a 64-bit over a byte range. Deterministic, seed-chainable (pass a
/// previous digest as `seed`), and dependency-free — the shared hash of the
/// delta-set canonicalizer (timing/delta_canon.hpp) and the replication
/// codec's frame checksum (replica/codec.hpp). Not cryptographic: it guards
/// against transport corruption and keys caches, not adversaries.
[[nodiscard]] inline std::uint64_t fnv1a_64(const void* data, std::size_t n,
                                            std::uint64_t seed = kFnv1aBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Folds one trivially-copyable value (by object representation) into a
/// running FNV-1a digest. Floats hash by bit pattern, so two values hash
/// equal iff they are byte-identical — the same equivalence the engine's
/// bit-identity guarantees speak about.
template <typename T>
[[nodiscard]] std::uint64_t fnv1a_value(const T& v,
                                        std::uint64_t seed = kFnv1aBasis) {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  return fnv1a_64(bytes, sizeof(T), seed);
}

}  // namespace insta::util
