#pragma once

// Runtime SIMD dispatch shim. The hot kernels (core/topk_simd.hpp) come in
// a scalar flavor and an AVX2 flavor compiled with a function-level
// `target("avx2")` attribute, so the binary itself stays runnable on any
// x86-64 (no global -mavx2). This header decides, once per engine, which
// flavor to call:
//
//   compile gate  — the INSTA_SIMD CMake option (default ON) defines
//                   INSTA_SIMD_ENABLED; OFF builds carry no AVX2 code at all
//                   and resolve() always picks scalar.
//   cpuid probe   — __builtin_cpu_supports("avx2"), cached after first call.
//   env override  — INSTA_SIMD=off|scalar|0 forces scalar at run time (the
//                   forced-scalar CI job and A/B perf runs use this);
//                   INSTA_SIMD=avx2 asserts the vector path and makes
//                   resolve() throw if it is unavailable, so a mislabelled
//                   CI runner fails loudly instead of silently benching the
//                   scalar fallback.
//   per-engine    — EngineOptions::simd (kAuto by default) can pin one
//                   engine to either flavor, e.g. the bit-identity property
//                   tests run a scalar engine and an AVX2 engine side by
//                   side in the same process.

#include <cstdint>

namespace insta::util::simd {

/// Requested kernel flavor. kAuto defers to the environment override and
/// the cpuid probe; the explicit values pin the choice (kAvx2 is a hard
/// requirement that fails loudly when unavailable).
enum class SimdMode : std::uint8_t { kAuto = 0, kScalar = 1, kAvx2 = 2 };

/// True when this binary contains the AVX2 kernel flavor at all
/// (INSTA_SIMD=ON at configure time, x86-64 target).
[[nodiscard]] constexpr bool compiled_avx2() {
#if defined(INSTA_SIMD_ENABLED) && INSTA_SIMD_ENABLED && defined(__x86_64__)
  return true;
#else
  return false;
#endif
}

/// cpuid probe, cached after the first call. False on non-x86 builds.
[[nodiscard]] bool cpu_has_avx2();

/// The INSTA_SIMD environment override, parsed once: "off"/"scalar"/"0" ->
/// kScalar, "avx2" -> kAvx2, anything else (or unset) -> kAuto.
[[nodiscard]] SimdMode env_mode();

/// Resolves a requested mode against the compile gate, the cpuid probe and
/// the environment override; returns true when the AVX2 flavor should run.
/// kAuto: env override wins, otherwise AVX2 whenever compiled + supported.
/// kScalar: always false. kAvx2: true, or throws util::CheckError when the
/// flavor is not compiled in or the CPU lacks it (hard requirement).
[[nodiscard]] bool resolve(SimdMode requested);

/// Human-readable mode name for logs and bench labels.
[[nodiscard]] const char* mode_name(SimdMode mode);

}  // namespace insta::util::simd
