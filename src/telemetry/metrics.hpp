#pragma once

// Thread-safe metrics registry with a lock-free fast path.
//
// Counters, gauges and fixed-exponential-bucket histograms are registered
// by name (idempotently) and written through small value-type handles.
// Counter/histogram writes go to per-thread shards: each thread owns a
// private array of atomics it alone writes (relaxed), so the hot path is a
// cached thread-local lookup plus an uncontended atomic add — no locks and
// no cross-core cache-line bouncing. snapshot() aggregates every shard
// under the registry mutex and can run concurrently with writers (writers
// never block; the snapshot is a relaxed but internally consistent view:
// histogram counts are derived from bucket sums, never stored separately).
//
// With INSTA_TELEMETRY_ENABLED == 0 every class below is an empty stub and
// snapshot() returns an empty MetricsSnapshot.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/config.hpp"

#if INSTA_TELEMETRY_ENABLED
#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <memory>
#include <thread>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#endif

namespace insta::telemetry {

/// Exponential bucket layout of a histogram: bucket 0 holds values <= base,
/// bucket i holds values in (base*growth^(i-1), base*growth^i], and the
/// last bucket is unbounded. The bucket count is fixed (kNumBuckets) so
/// per-thread shards can use flat arrays.
struct HistogramSpec {
  double base = 1.0;
  double growth = 2.0;
};

/// Aggregated state of one histogram at snapshot time.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper bound of bucket i; size buckets-1
  std::vector<std::uint64_t> buckets;  ///< observation count per bucket
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0

  /// Estimated value at quantile q in [0, 1] (q = 0.5 is the median),
  /// linearly interpolated inside the exponential bucket containing the
  /// target rank. The first and last buckets are clamped to the observed
  /// min/max, so estimates always land in [min, max]; within any other
  /// bucket the error is bounded by the bucket width (a factor of `growth`
  /// on the default spec). 0 when the histogram is empty.
  [[nodiscard]] double percentile(double q) const;
};

/// A point-in-time aggregation of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback) const;
  [[nodiscard]] double gauge_or(std::string_view name, double fallback) const;
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Serializes to the stable JSON schema consumed by telemetry_check:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, p50, p95, p99, bounds, buckets}}}.
  [[nodiscard]] std::string to_json() const;
};

#if INSTA_TELEMETRY_ENABLED

class MetricsRegistry;

/// Monotonic counter handle. Copyable, trivially destructible; add() is
/// safe from any thread. A default-constructed handle is a no-op.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n);
  void inc() { add(1); }

 private:
  friend class MetricsRegistry;
  MetricsRegistry* reg_ = nullptr;
  std::int32_t id_ = -1;
};

/// Last-value / running-max gauge handle (stored as a double). The handle
/// holds a stable pointer to the gauge's atomic slot, so set() never touches
/// the registry.
class Gauge {
 public:
  Gauge() = default;
  void set(double v);
  void set_max(double v);

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t>* slot_ = nullptr;  ///< double bit pattern
};

/// Histogram handle; observe() is safe from any thread.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v);

 private:
  friend class MetricsRegistry;
  MetricsRegistry* reg_ = nullptr;
  std::int32_t id_ = -1;
  double base_ = 1.0;
  double inv_log_growth_ = 1.0;  ///< 1 / ln(growth)
};

/// RAII wall-clock timer that observes elapsed microseconds into a
/// histogram at scope exit (the "phase.*" histograms drive the profile
/// subcommand's breakdown table).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h)
      : hist_(h), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_.observe(static_cast<double>(ns) * 1e-3);
  }

 private:
  Histogram hist_;
  std::chrono::steady_clock::time_point start_;
};

class MetricsRegistry {
 public:
  static constexpr std::int32_t kMaxCounters = 256;
  static constexpr std::int32_t kMaxHistograms = 64;
  static constexpr std::int32_t kNumBuckets = 28;

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry() = default;

  /// Process-wide registry the instrumentation sites use.
  static MetricsRegistry& global();

  /// Registers (or finds) a metric by name and returns its handle.
  /// Throws std::runtime_error when a fixed capacity is exhausted or when a
  /// histogram is re-registered with a different spec.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, HistogramSpec spec = {});

  /// Aggregates all shards. Safe to call while other threads write.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value (registrations survive). Not linearizable against
  /// concurrent writers; meant for test isolation and between bench runs.
  void reset();

 private:
  friend class Counter;
  friend class Histogram;

  struct HistShard {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets;
    std::atomic<std::uint64_t> sum_bits;  ///< double bit pattern
    std::atomic<std::uint64_t> min_bits;
    std::atomic<std::uint64_t> max_bits;
  };

  struct Shard {
    Shard();
    void clear();
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters;
    std::array<HistShard, kMaxHistograms> hists;
  };

  struct TlsCache {
    std::uint64_t uid;
    void* shard;
  };

  void counter_add(std::int32_t id, std::uint64_t n) {
    shard()->counters[static_cast<std::size_t>(id)].fetch_add(
        n, std::memory_order_relaxed);
  }

  void hist_observe(std::int32_t id, std::int32_t bucket, double v) {
    HistShard& h = shard()->hists[static_cast<std::size_t>(id)];
    h.buckets[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    // Only the owning thread writes its shard, so load+modify+store is
    // single-writer; the atomics exist for the snapshot reader.
    const double sum =
        std::bit_cast<double>(h.sum_bits.load(std::memory_order_relaxed)) + v;
    h.sum_bits.store(std::bit_cast<std::uint64_t>(sum),
                     std::memory_order_relaxed);
    const double mn =
        std::bit_cast<double>(h.min_bits.load(std::memory_order_relaxed));
    if (v < mn) {
      h.min_bits.store(std::bit_cast<std::uint64_t>(v),
                       std::memory_order_relaxed);
    }
    const double mx =
        std::bit_cast<double>(h.max_bits.load(std::memory_order_relaxed));
    if (v > mx) {
      h.max_bits.store(std::bit_cast<std::uint64_t>(v),
                       std::memory_order_relaxed);
    }
  }

  Shard* shard() {
    if (tls_cache_.uid == uid_) return static_cast<Shard*>(tls_cache_.shard);
    return shard_slow();
  }
  Shard* shard_slow();

  inline static thread_local TlsCache tls_cache_{0, nullptr};

  /// Guards registration and the shard table. The write fast paths
  /// (counter_add/hist_observe) stay lock-free by design: they touch only
  /// the atomics inside an already-published Shard, never the guarded
  /// containers below.
  mutable util::Mutex mutex_{"telemetry.registry",
                             util::lockrank::kTelemetryRegistry};
  std::uint64_t uid_;  ///< process-unique registry id for TLS cache keying
  std::vector<std::string> counter_names_ INSTA_GUARDED_BY(mutex_);
  std::vector<std::string> gauge_names_ INSTA_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> gauge_bits_
      INSTA_GUARDED_BY(mutex_);
  std::vector<std::string> hist_names_ INSTA_GUARDED_BY(mutex_);
  std::vector<HistogramSpec> hist_specs_ INSTA_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Shard>> shards_ INSTA_GUARDED_BY(mutex_);
  std::map<std::thread::id, Shard*> shard_of_thread_ INSTA_GUARDED_BY(mutex_);
};

inline void Counter::add(std::uint64_t n) {
  if (reg_ == nullptr) return;
  reg_->counter_add(id_, n);
}

inline void Gauge::set(double v) {
  if (slot_ == nullptr) return;
  slot_->store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

inline void Gauge::set_max(double v) {
  if (slot_ == nullptr) return;
  std::uint64_t cur = slot_->load(std::memory_order_relaxed);
  while (v > std::bit_cast<double>(cur) &&
         !slot_->compare_exchange_weak(
             cur, std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed)) {
  }
}

inline void Histogram::observe(double v) {
  if (reg_ == nullptr) return;
  std::int32_t b = 0;
  if (v > base_) {
    const double l = std::log(v / base_) * inv_log_growth_;
    b = std::clamp(static_cast<std::int32_t>(std::ceil(l - 1e-9)), 1,
                   MetricsRegistry::kNumBuckets - 1);
  }
  reg_->hist_observe(id_, b, v);
}

#else  // !INSTA_TELEMETRY_ENABLED

class Counter {
 public:
  void add(std::uint64_t) {}
  void inc() {}
};

class Gauge {
 public:
  void set(double) {}
  void set_max(double) {}
};

class Histogram {
 public:
  void observe(double) {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() = default;
};

class MetricsRegistry {
 public:
  static constexpr std::int32_t kNumBuckets = 28;
  static MetricsRegistry& global() {
    static MetricsRegistry r;
    return r;
  }
  Counter counter(std::string_view) { return {}; }
  Gauge gauge(std::string_view) { return {}; }
  Histogram histogram(std::string_view, HistogramSpec = {}) { return {}; }
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
};

#endif  // INSTA_TELEMETRY_ENABLED

}  // namespace insta::telemetry
