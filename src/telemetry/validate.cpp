#include "telemetry/validate.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "telemetry/json.hpp"

namespace insta::telemetry {

namespace {

bool is_nonneg_integer(const JsonValue& v) {
  return v.is_number() && v.number >= 0.0 && v.number == std::floor(v.number);
}

}  // namespace

ValidationResult validate_chrome_trace(std::string_view text,
                                       std::size_t* num_events) {
  ValidationResult res;
  if (num_events != nullptr) *num_events = 0;

  JsonValue doc;
  std::string error;
  if (!json_parse(text, doc, error)) {
    res.fail("trace is not valid JSON: " + error);
    return res;
  }
  const JsonValue* events = nullptr;
  if (doc.is_array()) {
    events = &doc;  // the JSON-array flavor of the format
  } else if (doc.is_object()) {
    events = doc.find("traceEvents");
  }
  if (events == nullptr || !events->is_array()) {
    res.fail("document has no traceEvents array");
    return res;
  }
  if (num_events != nullptr) *num_events = events->array.size();

  struct Lane {
    std::vector<std::string> stack;  ///< open span names
    double last_ts = -1.0;
  };
  std::map<std::pair<double, double>, Lane> lanes;

  std::size_t idx = 0;
  for (const JsonValue& ev : events->array) {
    const std::string where = "event " + std::to_string(idx++);
    if (!ev.is_object()) {
      res.fail(where + ": not an object");
      continue;
    }
    const JsonValue* ph = ev.find("ph");
    const JsonValue* pid = ev.find("pid");
    const JsonValue* tid = ev.find("tid");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* name = ev.find("name");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      res.fail(where + ": missing or malformed ph");
      continue;
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      res.fail(where + ": missing pid/tid");
      continue;
    }
    if (name == nullptr || !name->is_string()) {
      res.fail(where + ": missing name");
      continue;
    }
    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata events carry no timestamp order
    if (ts == nullptr || !ts->is_number() || ts->number < 0.0) {
      res.fail(where + ": missing or negative ts");
      continue;
    }
    Lane& lane = lanes[{pid->number, tid->number}];
    if (ts->number < lane.last_ts) {
      res.fail(where + ": ts decreases within its (pid, tid) lane");
    }
    lane.last_ts = ts->number;
    if (kind == 'B') {
      lane.stack.push_back(name->string);
    } else if (kind == 'E') {
      if (lane.stack.empty()) {
        res.fail(where + ": E event with no open B span");
      } else {
        if (lane.stack.back() != name->string) {
          res.fail(where + ": E name '" + name->string +
                   "' does not match open span '" + lane.stack.back() + "'");
        }
        lane.stack.pop_back();
      }
    } else if (kind == 's' || kind == 't' || kind == 'f') {
      // Flow events: bound to the enclosing slice at ts, keyed by id.
      const JsonValue* id = ev.find("id");
      if (id == nullptr || !id->is_number() ||
          id->number != std::floor(id->number)) {
        res.fail(where + ": flow event without an integral id");
      }
    } else if (kind != 'X' && kind != 'i' && kind != 'C') {
      res.fail(where + ": unsupported ph '" + ph->string + "'");
    }
  }
  for (const auto& [key, lane] : lanes) {
    if (!lane.stack.empty()) {
      res.fail("lane tid " + json_number(key.second) + " has " +
               std::to_string(lane.stack.size()) +
               " unclosed span(s), first: '" + lane.stack.front() + "'");
    }
  }
  return res;
}

ValidationResult validate_metrics_json(std::string_view text) {
  ValidationResult res;

  JsonValue doc;
  std::string error;
  if (!json_parse(text, doc, error)) {
    res.fail("metrics file is not valid JSON: " + error);
    return res;
  }
  if (!doc.is_object()) {
    res.fail("top level is not an object");
    return res;
  }
  const JsonValue* counters = doc.find("counters");
  const JsonValue* gauges = doc.find("gauges");
  const JsonValue* histograms = doc.find("histograms");
  if (counters == nullptr || !counters->is_object()) {
    res.fail("missing counters object");
  } else {
    for (const auto& [name, v] : counters->object) {
      if (!is_nonneg_integer(v)) {
        res.fail("counter '" + name + "' is not a non-negative integer");
      }
    }
  }
  if (gauges == nullptr || !gauges->is_object()) {
    res.fail("missing gauges object");
  } else {
    for (const auto& [name, v] : gauges->object) {
      if (!v.is_number() && v.type != JsonValue::Type::kNull) {
        res.fail("gauge '" + name + "' is not a number");
      }
    }
  }
  if (histograms == nullptr || !histograms->is_object()) {
    res.fail("missing histograms object");
    return res;
  }
  for (const auto& [name, h] : histograms->object) {
    const std::string where = "histogram '" + name + "'";
    if (!h.is_object()) {
      res.fail(where + ": not an object");
      continue;
    }
    const JsonValue* count = h.find("count");
    const JsonValue* sum = h.find("sum");
    const JsonValue* bounds = h.find("bounds");
    const JsonValue* buckets = h.find("buckets");
    if (count == nullptr || !is_nonneg_integer(*count)) {
      res.fail(where + ": missing or malformed count");
      continue;
    }
    if (sum == nullptr ||
        (!sum->is_number() && sum->type != JsonValue::Type::kNull)) {
      res.fail(where + ": missing sum");
    }
    if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
        !buckets->is_array()) {
      res.fail(where + ": missing bounds/buckets arrays");
      continue;
    }
    if (buckets->array.size() != bounds->array.size() + 1) {
      res.fail(where + ": buckets.size() != bounds.size() + 1");
    }
    double prev = -std::numeric_limits<double>::infinity();
    for (const JsonValue& b : bounds->array) {
      if (!b.is_number() || b.number <= prev) {
        res.fail(where + ": bounds not strictly ascending");
        break;
      }
      prev = b.number;
    }
    double total = 0.0;
    bool buckets_ok = true;
    for (const JsonValue& b : buckets->array) {
      if (!is_nonneg_integer(b)) {
        res.fail(where + ": bucket is not a non-negative integer");
        buckets_ok = false;
        break;
      }
      total += b.number;
    }
    if (buckets_ok && total != count->number) {
      res.fail(where + ": count does not equal the sum of buckets");
    }
    // Percentiles are optional (older snapshots lack them) but must be
    // ordered numbers when present.
    double prev_p = -std::numeric_limits<double>::infinity();
    for (const char* key : {"p50", "p95", "p99"}) {
      const JsonValue* p = h.find(key);
      if (p == nullptr) continue;
      if (!p->is_number()) {
        res.fail(where + ": " + key + " is not a number");
        continue;
      }
      if (p->number < prev_p) {
        res.fail(where + ": percentiles are not non-decreasing");
      }
      prev_p = p->number;
    }
  }
  return res;
}

namespace {

/// One SlackSummary object of the whatif schema.
void check_summary(const JsonValue& v, const std::string& where,
                   ValidationResult& res) {
  if (!v.is_object()) {
    res.fail(where + ": not an object");
    return;
  }
  const JsonValue* tns = v.find("tns");
  const JsonValue* wns = v.find("wns");
  const JsonValue* violations = v.find("violations");
  if (tns == nullptr || !tns->is_number()) {
    res.fail(where + ": missing or malformed tns");
  } else if (tns->number > 0.0) {
    res.fail(where + ": tns is positive (must be a sum of negative slacks)");
  }
  if (wns == nullptr || !wns->is_number()) {
    res.fail(where + ": missing or malformed wns");
  }
  if (violations == nullptr || !is_nonneg_integer(*violations)) {
    res.fail(where + ": missing or malformed violations");
  }
}

}  // namespace

ValidationResult validate_whatif_json(std::string_view text,
                                      std::size_t* num_scenarios) {
  ValidationResult res;
  if (num_scenarios != nullptr) *num_scenarios = 0;

  JsonValue doc;
  std::string error;
  if (!json_parse(text, doc, error)) {
    res.fail("whatif file is not valid JSON: " + error);
    return res;
  }
  if (!doc.is_object()) {
    res.fail("top level is not an object");
    return res;
  }
  if (const JsonValue* gen = doc.find("generation");
      gen == nullptr || !is_nonneg_integer(*gen)) {
    res.fail("missing or malformed generation stamp");
  }
  // The corner-set stamp ties per-corner summaries to the engine setup
  // that produced them; its length bounds every *_by_corner array below.
  std::size_t num_corners = 0;
  const JsonValue* corners = doc.find("corners");
  if (corners == nullptr || !corners->is_array()) {
    res.fail("missing corners array");
  } else {
    num_corners = corners->array.size();
    if (num_corners == 0) res.fail("corners array is empty");
    std::size_t cidx = 0;
    for (const JsonValue& c : corners->array) {
      const std::string cw = "corner " + std::to_string(cidx++);
      if (!c.is_object()) {
        res.fail(cw + ": not an object");
        continue;
      }
      const JsonValue* name = c.find("name");
      if (name == nullptr || !name->is_string() || name->string.empty()) {
        res.fail(cw + ": missing or empty name");
      }
      const JsonValue* ds = c.find("delay_scale");
      if (ds == nullptr || !ds->is_number() || !(ds->number > 0.0)) {
        res.fail(cw + ": delay_scale is not a finite positive number");
      }
      const JsonValue* ss = c.find("sigma_scale");
      if (ss == nullptr || !ss->is_number() || !(ss->number > 0.0)) {
        res.fail(cw + ": sigma_scale is not a finite positive number");
      }
    }
  }
  const JsonValue* scenarios = doc.find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array()) {
    res.fail("missing scenarios array");
    return res;
  }
  if (num_scenarios != nullptr) *num_scenarios = scenarios->array.size();

  std::size_t idx = 0;
  for (const JsonValue& s : scenarios->array) {
    const std::string where = "scenario " + std::to_string(idx++);
    if (!s.is_object()) {
      res.fail(where + ": not an object");
      continue;
    }
    const JsonValue* label = s.find("label");
    if (label == nullptr || !label->is_string()) {
      res.fail(where + ": missing or malformed label");
    }
    const JsonValue* setup = s.find("setup");
    if (setup == nullptr) {
      res.fail(where + ": missing setup summary");
    } else {
      check_summary(*setup, where + ".setup", res);
    }
    if (const JsonValue* hold = s.find("hold"); hold != nullptr) {
      check_summary(*hold, where + ".hold", res);
    }
    for (const char* key : {"setup_by_corner", "hold_by_corner"}) {
      const JsonValue* per = s.find(key);
      if (per == nullptr) continue;
      if (!per->is_array()) {
        res.fail(where + "." + key + ": not an array");
        continue;
      }
      if (num_corners != 0 && per->array.size() != num_corners) {
        res.fail(where + "." + key + ": has " +
                 std::to_string(per->array.size()) + " entries, expected " +
                 std::to_string(num_corners) + " (one per corner)");
      }
      std::size_t pc = 0;
      for (const JsonValue& v : per->array) {
        check_summary(v, where + "." + key + "[" + std::to_string(pc++) + "]",
                      res);
      }
    }
    for (const char* key : {"num_deltas", "frontier_pins",
                            "early_terminations", "endpoints_evaluated",
                            "overlay_bytes"}) {
      const JsonValue* v = s.find(key);
      if (v == nullptr || !is_nonneg_integer(*v)) {
        res.fail(where + ": missing or malformed " + key);
      }
    }
  }
  return res;
}

ValidationResult validate_flightrec_json(std::string_view text,
                                         std::size_t* num_events) {
  ValidationResult res;
  if (num_events != nullptr) *num_events = 0;

  JsonValue doc;
  std::string error;
  if (!json_parse(text, doc, error)) {
    res.fail("flight-recorder dump is not valid JSON: " + error);
    return res;
  }
  if (!doc.is_object()) {
    res.fail("top level is not an object");
    return res;
  }
  const JsonValue* total = doc.find("total");
  if (total == nullptr || !is_nonneg_integer(*total)) {
    res.fail("missing or malformed total");
  }
  const JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    res.fail("missing events array");
    return res;
  }
  if (num_events != nullptr) *num_events = events->array.size();

  std::size_t idx = 0;
  for (const JsonValue& e : events->array) {
    const std::string where = "event " + std::to_string(idx++);
    if (!e.is_object()) {
      res.fail(where + ": not an object");
      continue;
    }
    // No monotonicity check on ts_us: events are in ticket (claim) order,
    // and a writer preempted between claiming its ticket and sampling the
    // clock legitimately publishes a slightly later timestamp than its
    // successor.
    const JsonValue* ts = e.find("ts_us");
    if (ts == nullptr || !ts->is_number() || ts->number < 0.0) {
      res.fail(where + ": missing or negative ts_us");
    }
    const JsonValue* type = e.find("type");
    bool known = false;
    if (type != nullptr && type->is_string()) {
      for (const char* t :
           {"admit", "enqueue", "batch", "eval", "reply", "shed"}) {
        if (type->string == t) known = true;
      }
    }
    if (!known) res.fail(where + ": missing or unknown type");
    const JsonValue* id = e.find("id");
    if (id == nullptr || !id->is_number() ||
        id->number != std::floor(id->number)) {
      res.fail(where + ": missing or malformed id");
    }
    for (const char* key : {"generation", "detail"}) {
      const JsonValue* v = e.find(key);
      if (v == nullptr || !is_nonneg_integer(*v)) {
        res.fail(where + ": missing or malformed " + key);
      }
    }
  }
  return res;
}

ValidationResult validate_serve_report(std::string_view text) {
  ValidationResult res;

  JsonValue doc;
  std::string error;
  if (!json_parse(text, doc, error)) {
    res.fail("serve report is not valid JSON: " + error);
    return res;
  }
  if (!doc.is_object()) {
    res.fail("top level is not an object");
    return res;
  }
  for (const char* key : {"clients", "requests_per_client", "ok", "shed",
                          "rejected", "failed", "commits"}) {
    const JsonValue* v = doc.find(key);
    if (v == nullptr || !is_nonneg_integer(*v)) {
      res.fail(std::string("missing or malformed ") + key);
    }
  }
  for (const char* key : {"wall_sec", "qps"}) {
    const JsonValue* v = doc.find(key);
    if (v == nullptr || !v->is_number() || v->number < 0.0) {
      res.fail(std::string("missing or negative ") + key);
    }
  }
  const JsonValue* latency = doc.find("latency_ms");
  if (latency == nullptr || !latency->is_object()) {
    res.fail("missing latency_ms object");
    return res;
  }
  double prev = 0.0;
  for (const char* key : {"p50", "p95", "p99", "max"}) {
    const JsonValue* v = latency->find(key);
    if (v == nullptr || !v->is_number() || v->number < 0.0) {
      res.fail(std::string("latency_ms: missing or negative ") + key);
      continue;
    }
    if (v->number < prev) {
      res.fail("latency_ms: percentiles are not non-decreasing");
    }
    prev = v->number;
  }
  return res;
}

}  // namespace insta::telemetry
