#pragma once

// Phase-scoped tracing with Chrome trace_event export.
//
// TraceSpan is an RAII scope: construction samples the monotonic clock,
// destruction records a {name, begin, end, depth, arg} span into the
// calling thread's ring buffer. Rings are fixed-capacity and overwrite
// their oldest spans, so tracing never allocates on the hot path after the
// first span of a thread and long runs keep the most recent window.
//
// chrome_trace_json() renders everything recorded so far as a Chrome
// "trace_event" JSON document (balanced B/E duration events plus thread
// metadata), loadable in chrome://tracing and https://ui.perfetto.dev.
//
// flow() records standalone flow points ("s"/"t"/"f" events named "req",
// keyed by a 64-bit id — the serve layer uses request ids) that viewers
// render as arrows between the slices enclosing them, parent-linking a
// request's span on its session thread to the batch-leader and evaluation
// spans that served it on other threads.
//
// Tracing is off until set_enabled(true); a disabled TraceSpan costs one
// relaxed atomic load. With INSTA_TELEMETRY_ENABLED == 0 everything here is
// an empty stub (chrome_trace_json() still returns a valid empty trace).

#include <cstdint>
#include <limits>
#include <string>

#include "telemetry/config.hpp"

#if INSTA_TELEMETRY_ENABLED
#include <atomic>
#include <memory>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#endif

namespace insta::telemetry {

/// Sentinel for "span has no numeric argument".
inline constexpr std::int64_t kNoTraceArg =
    std::numeric_limits<std::int64_t>::min();

#if INSTA_TELEMETRY_ENABLED

class TraceSpan;

class Tracer {
 public:
  /// Spans retained per thread; older spans are overwritten.
  static constexpr std::size_t kRingCapacity = 1U << 15U;

  /// Process-wide tracer used by TraceSpan and the INSTA_TRACE_SCOPE macro.
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Discards all recorded spans (ring buffers stay allocated).
  void clear();

  /// Number of spans lost to ring-buffer overwrite since the last clear().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Records a flow point binding the current instant (inside whatever
  /// span is open on this thread) to flow `id`. `phase` is the Chrome flow
  /// phase: 's' starts the flow, 't' steps it, 'f' finishes it. No-op when
  /// tracing is disabled.
  void flow(std::uint64_t id, char phase);

  /// Renders the recorded spans as a Chrome trace_event JSON document.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// The newest `max_spans` completed spans across all threads as a small
  /// introspection document: {"dropped": N, "spans": [{"name", "tid",
  /// "ts_us", "dur_us", "depth", "arg"?}, ...]} in begin order. Flow
  /// points are omitted (they carry no duration).
  [[nodiscard]] std::string spans_json(std::size_t max_spans) const;

  /// Writes chrome_trace_json() to a file; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Monotonic nanoseconds since the first use of the tracer — the shared
  /// epoch of trace spans and flight-recorder events.
  [[nodiscard]] static std::uint64_t now_ns();

 private:
  friend class TraceSpan;

  struct SpanRecord {
    const char* name = nullptr;  ///< must point at a string literal
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::int64_t arg = kNoTraceArg;
    std::int32_t depth = 0;
    std::uint64_t flow_id = 0;  ///< meaningful when flow_phase != 0
    char flow_phase = 0;        ///< 0: span; 's'/'t'/'f': flow point
  };

  struct Ring {
    mutable util::Mutex mutex{"telemetry.ring",
                              util::lockrank::kTelemetryRing};
    /// Capacity kRingCapacity once touched.
    std::vector<SpanRecord> spans INSTA_GUARDED_BY(mutex);
    std::uint64_t total INSTA_GUARDED_BY(mutex) = 0;  ///< spans ever recorded
    /// Written once under Tracer::mutex_ before the ring is published and
    /// immutable afterwards (a nested struct cannot name the outer class's
    /// mutex in an annotation, so this stays prose).
    int tid = 0;
  };

  Tracer() = default;

  Ring* ring();
  void record(const SpanRecord& rec);

  inline static thread_local Ring* t_ring_ = nullptr;

  mutable util::Mutex mutex_{"telemetry.tracer",
                             util::lockrank::kTelemetryTrace};
  std::vector<std::unique_ptr<Ring>> rings_ INSTA_GUARDED_BY(mutex_);
  std::atomic<bool> enabled_{false};
};

/// RAII trace scope. `name` must be a string literal (it is stored by
/// pointer). The optional `arg` is exported as args.v (e.g. a level index).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = kNoTraceArg);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::int64_t arg_ = kNoTraceArg;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

#else  // !INSTA_TELEMETRY_ENABLED

class Tracer {
 public:
  static Tracer& global() {
    static Tracer t;
    return t;
  }
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void clear() {}
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  void flow(std::uint64_t, char) {}
  [[nodiscard]] std::string chrome_trace_json() const {
    return "{\"traceEvents\": []}\n";
  }
  [[nodiscard]] std::string spans_json(std::size_t) const {
    return "{\"dropped\": 0, \"spans\": []}\n";
  }
  bool write_chrome_trace(const std::string& path) const;
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*, std::int64_t = kNoTraceArg) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() = default;
};

#endif  // INSTA_TELEMETRY_ENABLED

}  // namespace insta::telemetry

/// Declares an RAII trace span covering the rest of the enclosing scope.
/// Usage: INSTA_TRACE_SCOPE("engine.forward");
///        INSTA_TRACE_SCOPE("engine.level", static_cast<std::int64_t>(l));
#define INSTA_TRACE_SCOPE(...)                                        \
  const ::insta::telemetry::TraceSpan INSTA_TELEMETRY_CONCAT(         \
      insta_trace_span_, __LINE__) {                                  \
    __VA_ARGS__                                                       \
  }
