#include "telemetry/flight_recorder.hpp"

namespace insta::telemetry {

const char* flight_event_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::kAdmit: return "admit";
    case FlightEventType::kEnqueue: return "enqueue";
    case FlightEventType::kBatch: return "batch";
    case FlightEventType::kEval: return "eval";
    case FlightEventType::kReply: return "reply";
    case FlightEventType::kShed: return "shed";
  }
  return "unknown";
}

}  // namespace insta::telemetry

#if INSTA_TELEMETRY_ENABLED

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <algorithm>

#include "analysis/lock_hierarchy.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

namespace insta::telemetry {

namespace {

/// Best-effort fd write for the abort/signal dump paths.
void write_fd(int fd, const char* buf, int len) {
  if (len <= 0) return;
  ssize_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, buf + off, static_cast<std::size_t>(len) -
                                                 static_cast<std::size_t>(off));
    if (n <= 0) return;
    off += n;
  }
}

extern "C" void flight_signal_handler(int sig) {
  char buf[96];
  const int len = std::snprintf(
      buf, sizeof(buf), "\n[INSTA] fatal signal %d; flight recorder:\n", sig);
  write_fd(2, buf, len);
  FlightRecorder::global().dump(2);
  // SA_RESETHAND restored the default disposition; re-raise to die with
  // the original signal (and the core dump it implies).
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  // Hook the lock-hierarchy abort path on first use: a rank violation then
  // dumps the last request events alongside its stacks, answering "what
  // was the server doing when it died".
  static const bool hooked = [] {
    analysis::lock_check_set_abort_hook(
        [] { FlightRecorder::global().dump(2); });
    return true;
  }();
  (void)hooked;
  return recorder;
}

void FlightRecorder::record(FlightEventType type, std::uint64_t request_id,
                            std::uint64_t generation, std::uint32_t detail) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[ticket % kCapacity];
  // Seqlock write: odd marks the slot torn, even (keyed to the ticket)
  // publishes it. A writer lapped by a full ring rotation can interleave
  // here; readers then see a seq/ticket mismatch and skip the slot —
  // recording stays wait-free and never blocks the request path.
  s.seq.store(2 * ticket + 1, std::memory_order_release);
  s.ts_ns.store(Tracer::now_ns(), std::memory_order_relaxed);
  s.request_id.store(request_id, std::memory_order_relaxed);
  s.generation.store(generation, std::memory_order_relaxed);
  s.detail_type.store((static_cast<std::uint64_t>(detail) << 8U) |
                          static_cast<std::uint64_t>(type),
                      std::memory_order_relaxed);
  s.seq.store(2 * ticket + 2, std::memory_order_release);
}

bool FlightRecorder::read_slot(std::uint64_t ticket, FlightEvent& out) const {
  const Slot& s = slots_[ticket % kCapacity];
  const std::uint64_t want = 2 * ticket + 2;
  if (s.seq.load(std::memory_order_acquire) != want) return false;
  out.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
  out.request_id = s.request_id.load(std::memory_order_relaxed);
  out.generation = s.generation.load(std::memory_order_relaxed);
  const std::uint64_t dt = s.detail_type.load(std::memory_order_relaxed);
  out.detail = static_cast<std::uint32_t>(dt >> 8U);
  out.type = static_cast<FlightEventType>(dt & 0xFFU);
  std::atomic_thread_fence(std::memory_order_acquire);
  return s.seq.load(std::memory_order_relaxed) == want;
}

std::vector<FlightEvent> FlightRecorder::recent(std::size_t max_events) const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t n =
      std::min({end, static_cast<std::uint64_t>(kCapacity),
                static_cast<std::uint64_t>(max_events)});
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t t = end - n; t < end; ++t) {
    FlightEvent e;
    if (read_slot(t, e)) out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::to_json(std::size_t max_events) const {
  const std::vector<FlightEvent> events = recent(max_events);
  std::string out = "{\"total\": " + std::to_string(total()) +
                    ", \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"ts_us\": " +
           json_number(static_cast<double>(e.ts_ns) * 1e-3) +
           ", \"type\": \"" + flight_event_name(e.type) + "\", \"id\": " +
           std::to_string(static_cast<std::int64_t>(e.request_id)) +
           ", \"generation\": " + std::to_string(e.generation) +
           ", \"detail\": " + std::to_string(e.detail) + "}";
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

void FlightRecorder::dump(int fd, std::size_t max_events) const {
  char buf[192];
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t n =
      std::min({end, static_cast<std::uint64_t>(kCapacity),
                static_cast<std::uint64_t>(max_events)});
  int len = std::snprintf(buf, sizeof(buf),
                          "[INSTA] flight recorder: %llu event(s) total, "
                          "newest %llu:\n",
                          static_cast<unsigned long long>(end),
                          static_cast<unsigned long long>(n));
  write_fd(fd, buf, len);
  for (std::uint64_t t = end - n; t < end; ++t) {
    FlightEvent e;
    if (!read_slot(t, e)) continue;
    len = std::snprintf(
        buf, sizeof(buf),
        "  t=%12.3fus %-7s id=%-8lld gen=%llu detail=%u\n",
        static_cast<double>(e.ts_ns) * 1e-3, flight_event_name(e.type),
        static_cast<long long>(e.request_id),
        static_cast<unsigned long long>(e.generation), e.detail);
    write_fd(fd, buf, len);
  }
}

void FlightRecorder::clear() {
  // Test-isolation only: not linearizable against concurrent writers
  // (mirrors MetricsRegistry::reset()).
  for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_release);
}

void FlightRecorder::install_signal_dump() {
  static const bool installed = [] {
    struct sigaction sa = {};
    sa.sa_handler = flight_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
      ::sigaction(sig, &sa, nullptr);
    }
    return true;
  }();
  (void)installed;
}

}  // namespace insta::telemetry

#endif  // INSTA_TELEMETRY_ENABLED
