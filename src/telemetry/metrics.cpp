#include "telemetry/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace insta::telemetry {

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += buckets[b];
    if (static_cast<double>(cum) < target) continue;
    // The target rank falls inside bucket b; interpolate linearly between
    // its bounds, clamped to the observed range (bucket 0 has no lower
    // bound and the last bucket no upper bound).
    double lo = b == 0 ? min : bounds[b - 1];
    double hi = b < bounds.size() ? bounds[b] : max;
    lo = std::clamp(lo, min, max);
    hi = std::clamp(hi, lo, max);
    const double frac =
        (target - before) / static_cast<double>(buckets[b]);
    return lo + (hi - lo) * frac;
  }
  return max;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge_or(std::string_view name, double fallback) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? fallback : it->second;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + json_number(h.sum) +
           ", \"min\": " + json_number(h.min) +
           ", \"max\": " + json_number(h.max) +
           ", \"p50\": " + json_number(h.percentile(0.50)) +
           ", \"p95\": " + json_number(h.percentile(0.95)) +
           ", \"p99\": " + json_number(h.percentile(0.99)) + ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number(h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

#if INSTA_TELEMETRY_ENABLED

namespace {

std::atomic<std::uint64_t> g_registry_uid{1};

constexpr std::uint64_t kPosInfBits = 0x7FF0000000000000ULL;
constexpr std::uint64_t kNegInfBits = 0xFFF0000000000000ULL;

}  // namespace

MetricsRegistry::Shard::Shard() { clear(); }

void MetricsRegistry::Shard::clear() {
  for (auto& c : counters) c.store(0, std::memory_order_relaxed);
  for (auto& h : hists) {
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    h.sum_bits.store(0, std::memory_order_relaxed);
    h.min_bits.store(kPosInfBits, std::memory_order_relaxed);
    h.max_bits.store(kNegInfBits, std::memory_order_relaxed);
  }
}

MetricsRegistry::MetricsRegistry()
    : uid_(g_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::counter(std::string_view name) {
  const util::LockGuard lock(mutex_);
  Counter c;
  c.reg_ = this;
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      c.id_ = static_cast<std::int32_t>(i);
      return c;
    }
  }
  if (counter_names_.size() >= static_cast<std::size_t>(kMaxCounters)) {
    throw std::runtime_error("MetricsRegistry: counter capacity exhausted");
  }
  counter_names_.emplace_back(name);
  c.id_ = static_cast<std::int32_t>(counter_names_.size() - 1);
  return c;
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const util::LockGuard lock(mutex_);
  Gauge g;
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) {
      g.slot_ = gauge_bits_[i].get();
      return g;
    }
  }
  gauge_names_.emplace_back(name);
  gauge_bits_.push_back(std::make_unique<std::atomic<std::uint64_t>>(
      std::bit_cast<std::uint64_t>(0.0)));
  g.slot_ = gauge_bits_.back().get();
  return g;
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     HistogramSpec spec) {
  if (!(spec.base > 0.0) || !(spec.growth > 1.0)) {
    throw std::runtime_error("MetricsRegistry: histogram spec requires base "
                             "> 0 and growth > 1");
  }
  const util::LockGuard lock(mutex_);
  Histogram h;
  h.reg_ = this;
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    if (hist_names_[i] != name) continue;
    if (hist_specs_[i].base != spec.base ||
        hist_specs_[i].growth != spec.growth) {
      throw std::runtime_error(
          "MetricsRegistry: histogram '" + std::string(name) +
          "' re-registered with a different spec");
    }
    h.id_ = static_cast<std::int32_t>(i);
    h.base_ = spec.base;
    h.inv_log_growth_ = 1.0 / std::log(spec.growth);
    return h;
  }
  if (hist_names_.size() >= static_cast<std::size_t>(kMaxHistograms)) {
    throw std::runtime_error("MetricsRegistry: histogram capacity exhausted");
  }
  hist_names_.emplace_back(name);
  hist_specs_.push_back(spec);
  h.id_ = static_cast<std::int32_t>(hist_names_.size() - 1);
  h.base_ = spec.base;
  h.inv_log_growth_ = 1.0 / std::log(spec.growth);
  return h;
}

MetricsRegistry::Shard* MetricsRegistry::shard_slow() {
  const util::LockGuard lock(mutex_);
  Shard*& s = shard_of_thread_[std::this_thread::get_id()];
  if (s == nullptr) {
    shards_.push_back(std::make_unique<Shard>());
    s = shards_.back().get();
  }
  tls_cache_ = TlsCache{uid_, s};
  return s;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const util::LockGuard lock(mutex_);
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters[counter_names_[i]] = total;
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges[gauge_names_[i]] =
        std::bit_cast<double>(gauge_bits_[i]->load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    HistogramSnapshot hs;
    hs.buckets.assign(static_cast<std::size_t>(kNumBuckets), 0);
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const auto& shard : shards_) {
      const HistShard& h = shard->hists[i];
      for (std::size_t b = 0; b < hs.buckets.size(); ++b) {
        hs.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
      hs.sum += std::bit_cast<double>(h.sum_bits.load(std::memory_order_relaxed));
      mn = std::min(mn,
                    std::bit_cast<double>(h.min_bits.load(std::memory_order_relaxed)));
      mx = std::max(mx,
                    std::bit_cast<double>(h.max_bits.load(std::memory_order_relaxed)));
    }
    for (const std::uint64_t b : hs.buckets) hs.count += b;
    hs.min = std::isfinite(mn) ? mn : 0.0;
    hs.max = std::isfinite(mx) ? mx : 0.0;
    const HistogramSpec& spec = hist_specs_[i];
    hs.bounds.reserve(static_cast<std::size_t>(kNumBuckets) - 1);
    double bound = spec.base;
    for (std::int32_t b = 0; b + 1 < kNumBuckets; ++b) {
      hs.bounds.push_back(bound);
      bound *= spec.growth;
    }
    snap.histograms[hist_names_[i]] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::reset() {
  const util::LockGuard lock(mutex_);
  for (const auto& shard : shards_) shard->clear();
  for (const auto& g : gauge_bits_) {
    g->store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  }
}

#endif  // INSTA_TELEMETRY_ENABLED

}  // namespace insta::telemetry
