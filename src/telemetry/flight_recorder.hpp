#pragma once

// Always-on request-lifecycle flight recorder.
//
// A fixed-size lock-free ring of the last kCapacity request events
// (admit/enqueue/batch/eval/reply/shed with request id, generation and a
// per-type detail word). Writers claim a monotonically increasing ticket
// with one relaxed fetch_add and fill the slot through relaxed atomics
// bracketed by an odd/even per-slot sequence number (a seqlock), so
// recording costs a handful of uncontended atomic stores — cheap enough to
// leave enabled in Release, which is the whole point: when the server
// aborts or a request goes sideways, the last few thousand lifecycle
// events are always there to dump.
//
// Readers (recent()/to_json()) walk the newest tickets and re-check each
// slot's sequence number after copying, discarding slots overwritten
// mid-read; dump() additionally avoids the heap so it can run from the
// lock_hierarchy abort handler and fatal-signal handlers.
//
// With INSTA_TELEMETRY_ENABLED == 0 every member is a no-op stub and
// to_json() returns a valid empty document.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/config.hpp"

#if INSTA_TELEMETRY_ENABLED
#include <array>
#include <atomic>
#endif

namespace insta::telemetry {

/// Request lifecycle stages, in pipeline order.
enum class FlightEventType : std::uint8_t {
  kAdmit = 1,    ///< request parsed and assigned an id (detail: op tag)
  kEnqueue = 2,  ///< what-if queued for batching (detail: scenario count)
  kBatch = 3,    ///< member of a drained batch (detail: batch occupancy)
  kEval = 4,     ///< scenarios evaluated (detail: scenario count)
  kReply = 5,    ///< reply serialized (detail: 0 ok, else ErrorCode)
  kShed = 6,     ///< rejected by admission control (detail: ErrorCode)
};

/// Wire/JSON spelling of an event type ("admit", ..., "shed"; "unknown"
/// for out-of-range values from a torn read).
[[nodiscard]] const char* flight_event_name(FlightEventType type);

/// One recorded lifecycle event. ts_ns shares the tracer's monotonic epoch
/// so flight events correlate with Chrome-trace spans.
struct FlightEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;  ///< engine generation where known, else 0
  std::uint32_t detail = 0;
  FlightEventType type = FlightEventType::kAdmit;
};

#if INSTA_TELEMETRY_ENABLED

class FlightRecorder {
 public:
  /// Events retained; older events are overwritten.
  static constexpr std::size_t kCapacity = std::size_t{1} << 12U;

  /// Process-wide recorder used by the serve layer and the dump hooks.
  static FlightRecorder& global();

  /// Records one event. Lock-free and wait-free apart from slot reuse;
  /// safe from any thread.
  void record(FlightEventType type, std::uint64_t request_id,
              std::uint64_t generation = 0, std::uint32_t detail = 0);

  /// Events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total() const {
    return next_.load(std::memory_order_acquire);
  }

  /// The newest `max_events` events in chronological order. Slots being
  /// overwritten concurrently are skipped, never torn.
  [[nodiscard]] std::vector<FlightEvent> recent(
      std::size_t max_events = kCapacity) const;

  /// {"total": N, "events": [{"ts_us", "type", "id", "generation",
  /// "detail"}, ...]} — newest max_events, chronological.
  [[nodiscard]] std::string to_json(std::size_t max_events = kCapacity) const;

  /// Writes a plain-text dump of the newest `max_events` events to `fd`
  /// without touching the heap, so it is safe from abort paths and fatal
  /// signal handlers (modulo the usual snprintf caveats).
  void dump(int fd, std::size_t max_events = 64) const;

  /// Discards all recorded events (test isolation).
  void clear();

  /// Installs fatal-signal handlers (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT)
  /// that dump the newest events to stderr and re-raise with the default
  /// disposition. Call once from long-running entry points (insta_cli
  /// serve); idempotent.
  static void install_signal_dump();

 private:
  /// One seqlock-protected slot. seq transitions 0 -> odd (writing) ->
  /// even (2 * ticket + 2, published); every field is a relaxed atomic so
  /// concurrent read/overwrite is detected by seq, not undefined behavior.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> request_id{0};
    std::atomic<std::uint64_t> generation{0};
    std::atomic<std::uint64_t> detail_type{0};  ///< detail << 8 | type
  };

  /// Reads slot `ticket % kCapacity` if it still (or already) holds that
  /// ticket's published record; false when unwritten or overwritten.
  [[nodiscard]] bool read_slot(std::uint64_t ticket, FlightEvent& out) const;

  std::atomic<std::uint64_t> next_{0};
  std::array<Slot, kCapacity> slots_{};
};

#else  // !INSTA_TELEMETRY_ENABLED

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 12U;
  static FlightRecorder& global() {
    static FlightRecorder fr;
    return fr;
  }
  void record(FlightEventType, std::uint64_t, std::uint64_t = 0,
              std::uint32_t = 0) {}
  [[nodiscard]] std::uint64_t total() const { return 0; }
  [[nodiscard]] std::vector<FlightEvent> recent(
      std::size_t = kCapacity) const {
    return {};
  }
  [[nodiscard]] std::string to_json(std::size_t = kCapacity) const {
    return "{\"total\": 0, \"events\": []}\n";
  }
  void dump(int, std::size_t = 64) const {}
  void clear() {}
  static void install_signal_dump() {}
};

#endif  // INSTA_TELEMETRY_ENABLED

}  // namespace insta::telemetry
