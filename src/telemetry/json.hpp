#pragma once

// Minimal JSON support for the telemetry subsystem: string/number emission
// helpers for the writers, and a small recursive-descent DOM parser used by
// the validators and tests. No external dependencies; always compiled
// regardless of INSTA_TELEMETRY_ENABLED.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace insta::telemetry {

/// Escapes a string for embedding between JSON double quotes (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double as a JSON number. Non-finite values (which JSON cannot
/// represent) are emitted as null.
[[nodiscard]] std::string json_number(double v);

/// One parsed JSON value. Object member order is preserved.
class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document (with trailing whitespace allowed).
/// Returns false and fills `error` with a position-tagged message on
/// malformed input.
bool json_parse(std::string_view text, JsonValue& out, std::string& error);

}  // namespace insta::telemetry
