#pragma once

// Umbrella header for the telemetry subsystem: metrics registry, tracing,
// and the INSTA_TRACE_SCOPE convenience macro. Instrumentation sites should
// include this header only.
//
// Adding a counter to a hot path:
//   1. Register a handle once (static local or member):
//        static telemetry::Counter c =
//            telemetry::MetricsRegistry::global().counter("engine.pins");
//   2. Bump it: c.add(n);
//   3. Wrap anything that is not trivially free when telemetry is compiled
//      out in INSTA_TM(...) so the OFF build drops it entirely.

#include "telemetry/config.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
