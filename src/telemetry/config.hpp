#pragma once

// Compile-time gate for the telemetry subsystem.
//
// The build defines INSTA_TELEMETRY_ENABLED to 1 (default) or 0 via the
// INSTA_TELEMETRY CMake option. When 0, every recording class in
// src/telemetry compiles to an empty inline stub and the instrumentation
// macros below expand to nothing, so instrumented code carries no
// measurable cost (no atomics, no clock reads, no thread-local lookups).
// JSON serialization, parsing and the trace/metrics validators stay
// available in both modes so tools keep working against disabled builds.
#ifndef INSTA_TELEMETRY_ENABLED
#define INSTA_TELEMETRY_ENABLED 1
#endif

// Statement gate: INSTA_TM(x.add(n)); compiles to `x.add(n);` when
// telemetry is enabled and to an empty statement when it is not. Use it for
// instrumentation whose *arguments* would still cost cycles as stub calls
// (local accumulator flushes, stats reads), not for plain stub-class calls.
#if INSTA_TELEMETRY_ENABLED
#define INSTA_TM(...) __VA_ARGS__
#else
#define INSTA_TM(...)
#endif

#define INSTA_TELEMETRY_CONCAT_INNER(a, b) a##b
#define INSTA_TELEMETRY_CONCAT(a, b) INSTA_TELEMETRY_CONCAT_INNER(a, b)
