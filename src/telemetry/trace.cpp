#include "telemetry/trace.hpp"

#include <fstream>

#include "telemetry/json.hpp"

#if INSTA_TELEMETRY_ENABLED
#include <algorithm>
#include <chrono>
#endif

namespace insta::telemetry {

#if INSTA_TELEMETRY_ENABLED

namespace {

/// Per-thread nesting depth of live TraceSpans (spans on this thread's
/// stack). Used to reconstruct B/E ordering at export time.
thread_local std::int32_t t_span_depth = 0;

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Tracer::Ring* Tracer::ring() {
  if (t_ring_ != nullptr) return t_ring_;
  const util::LockGuard lock(mutex_);
  rings_.push_back(std::make_unique<Ring>());
  Ring* r = rings_.back().get();
  r->tid = static_cast<int>(rings_.size());
  {
    // Uncontended (the ring was created one line up) but spans is guarded
    // by the ring lock, and tracer -> ring is the documented nesting.
    const util::LockGuard ring_lock(r->mutex);
    r->spans.reserve(kRingCapacity);
  }
  t_ring_ = r;
  return r;
}

void Tracer::record(const SpanRecord& rec) {
  Ring* r = ring();
  const util::LockGuard lock(r->mutex);
  if (r->spans.size() < kRingCapacity) {
    r->spans.push_back(rec);
  } else {
    r->spans[r->total % kRingCapacity] = rec;
  }
  ++r->total;
}

void Tracer::flow(std::uint64_t id, char phase) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.name = "req";  // flow events bind on (name, id); one shared name
  rec.begin_ns = now_ns();
  rec.end_ns = rec.begin_ns;
  rec.depth = t_span_depth;
  rec.flow_id = id;
  rec.flow_phase = phase;
  record(rec);
}

void Tracer::clear() {
  const util::LockGuard lock(mutex_);
  for (const auto& r : rings_) {
    const util::LockGuard ring_lock(r->mutex);
    r->spans.clear();
    r->total = 0;
  }
}

std::uint64_t Tracer::dropped() const {
  const util::LockGuard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    const util::LockGuard ring_lock(r->mutex);
    if (r->total > r->spans.size()) n += r->total - r->spans.size();
  }
  return n;
}

namespace {

void append_event(std::string& out, char ph, const char* name, int tid,
                  double ts_us, std::int64_t arg, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "    {\"ph\": \"";
  out += ph;
  out += "\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
         ", \"ts\": " + json_number(ts_us) + ", \"name\": \"" +
         json_escape(name) + "\"";
  if (ph == 'B' && arg != kNoTraceArg) {
    out += ", \"args\": {\"v\": " + std::to_string(arg) + "}";
  }
  out += "}";
}

/// One flow event ("s" start / "t" step / "f" finish). Viewers bind the
/// arrow to the slice enclosing ts on this lane.
void append_flow(std::string& out, char ph, int tid, double ts_us,
                 std::uint64_t id, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "    {\"ph\": \"";
  out += ph;
  out += "\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
         ", \"ts\": " + json_number(ts_us) +
         ", \"name\": \"req\", \"cat\": \"req\", \"id\": " +
         std::to_string(id);
  if (ph == 'f') out += ", \"bp\": \"e\"";
  out += "}";
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  // Copy out each ring under its lock, then render without locks held.
  struct ThreadSpans {
    int tid = 0;
    std::vector<SpanRecord> spans;
  };
  std::vector<ThreadSpans> threads;
  {
    const util::LockGuard lock(mutex_);
    threads.reserve(rings_.size());
    for (const auto& r : rings_) {
      const util::LockGuard ring_lock(r->mutex);
      threads.push_back(ThreadSpans{r->tid, r->spans});
    }
  }

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (auto& th : threads) {
    if (th.spans.empty()) continue;
    // Spans were recorded at destruction (end order). Within one thread
    // RAII guarantees the span family is laminar: two spans either nest or
    // are disjoint. Sorting by (begin asc, depth asc, end desc) recovers
    // the begin order with parents before children, after which a stack
    // walk emits balanced B/E events.
    std::sort(th.spans.begin(), th.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
                if (a.depth != b.depth) return a.depth < b.depth;
                return a.end_ns > b.end_ns;
              });
    if (!first) out += ",\n";
    first = false;
    out += "    {\"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(th.tid) +
           ", \"ts\": 0, \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           (th.tid == 1 ? std::string("main")
                        : "worker-" + std::to_string(th.tid - 1)) +
           "\"}}";
    std::vector<const SpanRecord*> stack;
    for (const SpanRecord& s : th.spans) {
      while (!stack.empty() && stack.back()->end_ns <= s.begin_ns) {
        append_event(out, 'E', stack.back()->name, th.tid,
                     static_cast<double>(stack.back()->end_ns) * 1e-3,
                     kNoTraceArg, first);
        stack.pop_back();
      }
      if (s.flow_phase != 0) {
        // Flow points are instants: they never open a slice, so they do
        // not join the B/E stack.
        append_flow(out, s.flow_phase, th.tid,
                    static_cast<double>(s.begin_ns) * 1e-3, s.flow_id, first);
        continue;
      }
      append_event(out, 'B', s.name, th.tid,
                   static_cast<double>(s.begin_ns) * 1e-3, s.arg, first);
      stack.push_back(&s);
    }
    while (!stack.empty()) {
      append_event(out, 'E', stack.back()->name, th.tid,
                   static_cast<double>(stack.back()->end_ns) * 1e-3,
                   kNoTraceArg, first);
      stack.pop_back();
    }
  }
  out += "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

std::string Tracer::spans_json(std::size_t max_spans) const {
  struct Entry {
    SpanRecord rec;
    int tid = 0;
  };
  std::vector<Entry> entries;
  {
    const util::LockGuard lock(mutex_);
    for (const auto& r : rings_) {
      const util::LockGuard ring_lock(r->mutex);
      for (const SpanRecord& s : r->spans) {
        if (s.flow_phase != 0) continue;
        entries.push_back(Entry{s, r->tid});
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.rec.begin_ns < b.rec.begin_ns;
            });
  if (entries.size() > max_spans) {
    entries.erase(entries.begin(),
                  entries.end() - static_cast<std::ptrdiff_t>(max_spans));
  }
  std::string out = "{\"dropped\": " + std::to_string(dropped()) +
                    ", \"spans\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SpanRecord& s = entries[i].rec;
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"" + json_escape(s.name) +
           "\", \"tid\": " + std::to_string(entries[i].tid) +
           ", \"ts_us\": " +
           json_number(static_cast<double>(s.begin_ns) * 1e-3) +
           ", \"dur_us\": " +
           json_number(static_cast<double>(s.end_ns - s.begin_ns) * 1e-3) +
           ", \"depth\": " + std::to_string(s.depth);
    if (s.arg != kNoTraceArg) out += ", \"arg\": " + std::to_string(s.arg);
    out += "}";
  }
  out += entries.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << chrome_trace_json();
  return static_cast<bool>(f);
}

TraceSpan::TraceSpan(const char* name, std::int64_t arg) {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  active_ = true;
  name_ = name;
  arg_ = arg;
  depth_ = t_span_depth++;
  begin_ns_ = Tracer::now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --t_span_depth;
  Tracer::SpanRecord rec;
  rec.name = name_;
  rec.begin_ns = begin_ns_;
  rec.end_ns = Tracer::now_ns();
  rec.arg = arg_;
  rec.depth = depth_;
  Tracer::global().record(rec);
}

#else  // !INSTA_TELEMETRY_ENABLED

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << chrome_trace_json();
  return static_cast<bool>(f);
}

#endif  // INSTA_TELEMETRY_ENABLED

}  // namespace insta::telemetry
