#pragma once

// Structural validators for the two JSON artifacts the telemetry subsystem
// emits: Chrome trace_event documents (--trace) and metrics snapshots
// (--metrics-json). Used by the telemetry_check CLI tool in CI and by the
// unit tests. Always compiled regardless of INSTA_TELEMETRY_ENABLED.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace insta::telemetry {

struct ValidationResult {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    errors.push_back(std::move(msg));
  }
};

/// Checks that `text` is a valid Chrome trace_event JSON document: parses,
/// has a traceEvents array, every event carries ph/pid/tid/ts/name, for
/// each (pid, tid) lane the B/E events are balanced (stack discipline) with
/// non-decreasing timestamps, and flow events (ph "s"/"t"/"f") carry an
/// integral id. Fills `num_events` with the event count.
ValidationResult validate_chrome_trace(std::string_view text,
                                       std::size_t* num_events = nullptr);

/// Checks that `text` matches the MetricsSnapshot::to_json schema: top-level
/// counters/gauges/histograms objects, integral non-negative counters, and
/// for each histogram strictly ascending bounds, buckets.size() ==
/// bounds.size() + 1, and count == sum(buckets).
ValidationResult validate_metrics_json(std::string_view text);

/// Checks that `text` matches the `insta_cli whatif --out` schema: a
/// top-level object stamped with the producing engine's generation
/// (non-negative integral) and corner set (array of {name, delay_scale,
/// sigma_scale} objects with valid scales), plus a scenarios array; each
/// scenario carries a string label, a non-negative integral num_deltas, a
/// setup summary object (numeric tns <= 0, numeric wns, non-negative
/// integral violations), an optional hold summary of the same shape,
/// optional setup_by_corner / hold_by_corner arrays of such summaries
/// whose length must equal the corner count, and non-negative integral
/// frontier_pins / early_terminations / endpoints_evaluated / overlay_bytes.
/// Fills `num_scenarios` with the scenario count.
ValidationResult validate_whatif_json(std::string_view text,
                                      std::size_t* num_scenarios = nullptr);

/// Checks that `text` matches the FlightRecorder::to_json schema: a
/// top-level object with a non-negative integral total and an events array
/// whose members carry a non-negative numeric ts_us, a known type string
/// (admit/enqueue/batch/eval/reply/shed), an integral id, and non-negative
/// integral generation/detail. Fills `num_events` with the event count.
ValidationResult validate_flightrec_json(std::string_view text,
                                         std::size_t* num_events = nullptr);

/// Checks that `text` matches the `serve_client --load --out` report
/// schema: a top-level object with non-negative integral clients /
/// requests_per_client / ok / shed / rejected / failed / commits counts,
/// non-negative numeric wall_sec and qps, and a latency_ms object whose
/// p50 <= p95 <= p99 <= max are all non-negative numbers.
ValidationResult validate_serve_report(std::string_view text);

}  // namespace insta::telemetry
