#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace insta::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // %.17g round-trips doubles; trim to %g style output for readability of
  // exact integers (counts, bucket totals).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser state over the input text.
class Parser {
 public:
  Parser(std::string_view text, std::string& error)
      : text_(text), error_(&error) {}

  bool parse_document(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& msg) {
    *error_ = msg + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4U;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape digit");
              }
            }
            // Validator use only: encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6U));
              out += static_cast<char>(0x80 | (code & 0x3FU));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12U));
              out += static_cast<char>(0x80 | ((code >> 6U) & 0x3FU));
              out += static_cast<char>(0x80 | (code & 0x3FU));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return fail("expected digit");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return fail("expected fraction digit");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return fail("expected exponent digit");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': {
        ++pos_;
        out.type = JsonValue::Type::kObject;
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (at_end() || peek() != ':') return fail("expected ':'");
          ++pos_;
          skip_ws();
          JsonValue child;
          if (!parse_value(child, depth + 1)) return false;
          out.object.emplace_back(std::move(key), std::move(child));
          skip_ws();
          if (at_end()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          if (peek() == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out.type = JsonValue::Type::kArray;
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          JsonValue child;
          if (!parse_value(child, depth + 1)) return false;
          out.array.push_back(std::move(child));
          skip_ws();
          if (at_end()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          if (peek() == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string& error) {
  out = JsonValue{};
  Parser p(text, error);
  return p.parse_document(out);
}

}  // namespace insta::telemetry
