#pragma once

#include <iosfwd>
#include <memory>

#include "netlist/design.hpp"
#include "timing/constraints.hpp"

namespace insta::io {

/// A deserialized design bundle (the library must outlive the design, hence
/// the paired ownership).
struct LoadedDesign {
  std::unique_ptr<netlist::Library> library;
  std::unique_ptr<netlist::Design> design;
  timing::Constraints constraints;
};

/// Writes the library, netlist, placement and constraints as a
/// line-oriented text format (".inet"). The format is self-contained: a
/// round trip reproduces identical timing results. Cell and pin identifiers
/// are positional, so the writer and reader must agree on creation order
/// (they do: cells in id order).
void save_design(const netlist::Design& design,
                 const timing::Constraints& constraints, std::ostream& os);

/// Parses a stream written by save_design. Throws util::CheckError on any
/// malformed content. With `validate` false the structural integrity check
/// (Design::validate) is skipped, so a structurally broken design can still
/// be loaded for inspection — the analysis::Linter reports every violation
/// where validate() throws on the first.
[[nodiscard]] LoadedDesign load_design(std::istream& is, bool validate = true);

/// Convenience file wrappers.
void save_design_file(const netlist::Design& design,
                      const timing::Constraints& constraints,
                      const std::string& path);
[[nodiscard]] LoadedDesign load_design_file(const std::string& path,
                                            bool validate = true);

}  // namespace insta::io
