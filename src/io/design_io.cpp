#include "io/design_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace insta::io {

using netlist::CellFunc;
using netlist::CellId;
using netlist::LibCell;
using netlist::NetId;
using netlist::PinId;
using util::check;

namespace {

constexpr int kFormatVersion = 1;

const char* func_token(CellFunc f) { return netlist::func_name(f); }

CellFunc parse_func(const std::string& tok) {
  for (int i = 0; i <= static_cast<int>(CellFunc::kPortOut); ++i) {
    const auto f = static_cast<CellFunc>(i);
    if (tok == netlist::func_name(f)) return f;
  }
  throw util::CheckError("design_io: unknown cell function: " + tok);
}

}  // namespace

void save_design(const netlist::Design& design,
                 const timing::Constraints& constraints, std::ostream& os) {
  os << std::setprecision(17);
  os << "inet " << kFormatVersion << "\n";

  const netlist::Library& lib = design.library();
  os << "library " << lib.size() << "\n";
  for (const LibCell& c : lib.cells()) {
    os << "libcell " << c.name << ' ' << func_token(c.func) << ' ' << c.drive
       << ' ' << c.area << ' ' << c.leakage << ' ' << c.input_cap;
    for (const int rf : {0, 1}) os << ' ' << c.intrinsic[rf];
    for (const int rf : {0, 1}) os << ' ' << c.drive_res[rf];
    for (const int rf : {0, 1}) os << ' ' << c.slew_intrinsic[rf];
    for (const int rf : {0, 1}) os << ' ' << c.slew_res[rf];
    os << ' ' << c.slew_sens << ' ' << c.sigma_ratio << ' ' << c.setup
       << ' ' << c.hold;
    for (const int rf : {0, 1}) os << ' ' << c.clk2q[rf];
    os << "\n";
  }

  os << "cells " << design.num_cells() << "\n";
  for (std::size_t ci = 0; ci < design.num_cells(); ++ci) {
    const netlist::Cell& c = design.cell(static_cast<CellId>(ci));
    os << "cell " << c.name << ' ' << lib.cell(c.libcell).name << ' ' << c.x
       << ' ' << c.y << ' ' << (c.fixed ? 1 : 0) << "\n";
  }

  os << "nets " << design.num_nets() << "\n";
  for (std::size_t ni = 0; ni < design.num_nets(); ++ni) {
    const netlist::Net& n = design.net(static_cast<NetId>(ni));
    os << "net " << n.name << ' ' << n.length_hint << ' ' << n.driver << ' '
       << n.sinks.size();
    for (const PinId s : n.sinks) os << ' ' << s;
    os << ' ' << n.sink_lengths.size();
    for (const double l : n.sink_lengths) os << ' ' << l;
    os << "\n";
  }

  os << "constraints " << constraints.clock_period << ' '
     << constraints.clock_root << ' ' << constraints.input_arrival_mu << ' '
     << constraints.input_arrival_sigma << ' ' << constraints.output_margin
     << ' ' << constraints.nsigma << ' ' << constraints.exceptions.size()
     << ' ' << constraints.extra_clocks.size() << "\n";
  for (const timing::ExtraClock& c : constraints.extra_clocks) {
    os << "xclk " << c.root << ' ' << c.period_ratio << "\n";
  }
  for (const timing::TimingException& e : constraints.exceptions) {
    os << "exception "
       << (e.kind == timing::ExceptionKind::kFalsePath ? "fp" : "mcp") << ' '
       << e.sp_pin << ' ' << e.ep_pin << ' ' << e.cycles << "\n";
  }
  os << "end\n";
}

LoadedDesign load_design(std::istream& is, bool validate) {
  auto next_line = [&is](const char* what) {
    std::string line;
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return line;
    }
    throw util::CheckError(std::string("design_io: unexpected EOF before ") +
                           what);
  };
  auto expect_tag = [](std::istringstream& ss, const char* tag) {
    std::string tok;
    ss >> tok;
    check(tok == tag, std::string("design_io: expected '") + tag + "', got '" +
                          tok + "'");
  };

  {
    std::istringstream ss(next_line("header"));
    expect_tag(ss, "inet");
    int version = 0;
    ss >> version;
    check(version == kFormatVersion, "design_io: unsupported format version");
  }

  LoadedDesign out;
  out.library = std::make_unique<netlist::Library>();
  {
    std::istringstream ss(next_line("library"));
    expect_tag(ss, "library");
    std::size_t count = 0;
    ss >> count;
    for (std::size_t i = 0; i < count; ++i) {
      std::istringstream ls(next_line("libcell"));
      expect_tag(ls, "libcell");
      LibCell c;
      std::string func;
      ls >> c.name >> func >> c.drive >> c.area >> c.leakage >> c.input_cap;
      c.func = parse_func(func);
      for (const int rf : {0, 1}) ls >> c.intrinsic[rf];
      for (const int rf : {0, 1}) ls >> c.drive_res[rf];
      for (const int rf : {0, 1}) ls >> c.slew_intrinsic[rf];
      for (const int rf : {0, 1}) ls >> c.slew_res[rf];
      ls >> c.slew_sens >> c.sigma_ratio >> c.setup >> c.hold;
      for (const int rf : {0, 1}) ls >> c.clk2q[rf];
      check(static_cast<bool>(ls), "design_io: malformed libcell line");
      out.library->add(std::move(c));
    }
  }

  // Library lookup by name (names are unique in the default library).
  auto find_libcell = [&](const std::string& name) {
    for (const LibCell& c : out.library->cells()) {
      if (c.name == name) return c.id;
    }
    throw util::CheckError("design_io: unknown libcell: " + name);
  };

  out.design = std::make_unique<netlist::Design>(*out.library);
  {
    std::istringstream ss(next_line("cells"));
    expect_tag(ss, "cells");
    std::size_t count = 0;
    ss >> count;
    for (std::size_t i = 0; i < count; ++i) {
      std::istringstream ls(next_line("cell"));
      expect_tag(ls, "cell");
      std::string name, libname;
      double x = 0, y = 0;
      int fixed = 0;
      ls >> name >> libname >> x >> y >> fixed;
      check(static_cast<bool>(ls), "design_io: malformed cell line");
      const CellId id = out.design->add_cell(name, find_libcell(libname));
      netlist::Cell& cell = out.design->cell(id);
      cell.x = x;
      cell.y = y;
      cell.fixed = fixed != 0;
    }
  }
  {
    std::istringstream ss(next_line("nets"));
    expect_tag(ss, "nets");
    std::size_t count = 0;
    ss >> count;
    for (std::size_t i = 0; i < count; ++i) {
      std::istringstream ls(next_line("net"));
      expect_tag(ls, "net");
      std::string name;
      double hint = 0;
      PinId driver = netlist::kNullPin;
      std::size_t nsinks = 0;
      ls >> name >> hint >> driver >> nsinks;
      const NetId net = out.design->add_net(name);
      out.design->net(net).length_hint = hint;
      if (driver != netlist::kNullPin) out.design->connect_driver(net, driver);
      for (std::size_t s = 0; s < nsinks; ++s) {
        PinId sink = netlist::kNullPin;
        ls >> sink;
        out.design->connect_sink(net, sink);
      }
      std::size_t noverrides = 0;
      ls >> noverrides;
      check(noverrides == 0 || noverrides == nsinks,
            "design_io: sink-length override count mismatch");
      if (noverrides > 0) {
        auto& rec = out.design->net(net);
        rec.sink_lengths.resize(noverrides);
        for (std::size_t s = 0; s < noverrides; ++s) ls >> rec.sink_lengths[s];
      }
      check(static_cast<bool>(ls), "design_io: malformed net line");
    }
  }
  {
    std::istringstream ss(next_line("constraints"));
    expect_tag(ss, "constraints");
    std::size_t num_exceptions = 0;
    std::size_t num_extra_clocks = 0;
    ss >> out.constraints.clock_period >> out.constraints.clock_root >>
        out.constraints.input_arrival_mu >>
        out.constraints.input_arrival_sigma >> out.constraints.output_margin >>
        out.constraints.nsigma >> num_exceptions >> num_extra_clocks;
    check(static_cast<bool>(ss), "design_io: malformed constraints line");
    for (std::size_t i = 0; i < num_extra_clocks; ++i) {
      std::istringstream ls(next_line("xclk"));
      expect_tag(ls, "xclk");
      timing::ExtraClock c;
      ls >> c.root >> c.period_ratio;
      check(static_cast<bool>(ls), "design_io: malformed xclk line");
      out.constraints.extra_clocks.push_back(c);
    }
    for (std::size_t i = 0; i < num_exceptions; ++i) {
      std::istringstream ls(next_line("exception"));
      expect_tag(ls, "exception");
      std::string kind;
      timing::TimingException e;
      ls >> kind >> e.sp_pin >> e.ep_pin >> e.cycles;
      check(static_cast<bool>(ls), "design_io: malformed exception line");
      check(kind == "fp" || kind == "mcp", "design_io: bad exception kind");
      e.kind = (kind == "fp") ? timing::ExceptionKind::kFalsePath
                              : timing::ExceptionKind::kMulticycle;
      out.constraints.exceptions.push_back(e);
    }
  }
  {
    std::istringstream ss(next_line("end"));
    expect_tag(ss, "end");
  }
  if (validate) out.design->validate();
  return out;
}

void save_design_file(const netlist::Design& design,
                      const timing::Constraints& constraints,
                      const std::string& path) {
  std::ofstream os(path);
  check(os.good(), "design_io: cannot open for write: " + path);
  save_design(design, constraints, os);
  check(os.good(), "design_io: write failed: " + path);
}

LoadedDesign load_design_file(const std::string& path, bool validate) {
  std::ifstream is(path);
  check(is.good(), "design_io: cannot open for read: " + path);
  return load_design(is, validate);
}

}  // namespace insta::io
