#include "netlist/design.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace insta::netlist {

using util::check;

CellId Design::add_cell(std::string name, LibCellId libcell) {
  const LibCell& lc = library_->cell(libcell);
  const auto id = static_cast<CellId>(cells_.size());
  Cell c;
  c.name = std::move(name);
  c.libcell = libcell;
  c.first_pin = static_cast<PinId>(pins_.size());

  const int n_in = num_data_inputs(lc.func);
  for (int i = 0; i < n_in; ++i) {
    Pin p;
    p.cell = id;
    p.dir = PinDir::kInput;
    p.role = PinRole::kData;
    p.input_index = static_cast<std::uint8_t>(i);
    pins_.push_back(p);
  }
  if (is_sequential(lc.func)) {
    Pin p;
    p.cell = id;
    p.dir = PinDir::kInput;
    p.role = PinRole::kClock;
    pins_.push_back(p);
  }
  if (has_output(lc.func)) {
    Pin p;
    p.cell = id;
    p.dir = PinDir::kOutput;
    pins_.push_back(p);
  }
  c.num_pins = static_cast<std::uint8_t>(pins_.size() - c.first_pin);
  check(c.num_pins > 0, "add_cell: function has no pins");

  if (lc.func == CellFunc::kPortIn) inputs_.push_back(id);
  if (lc.func == CellFunc::kPortOut) outputs_.push_back(id);
  if (is_sequential(lc.func)) ffs_.push_back(id);
  if (lc.func == CellFunc::kPortIn || lc.func == CellFunc::kPortOut) {
    c.fixed = true;
  }
  cells_.push_back(std::move(c));
  return id;
}

CellId Design::add_input_port(std::string name) {
  const auto family = library_->family(CellFunc::kPortIn);
  check(!family.empty(), "library has no kPortIn pseudo-cell");
  return add_cell(std::move(name), family.front());
}

CellId Design::add_output_port(std::string name) {
  const auto family = library_->family(CellFunc::kPortOut);
  check(!family.empty(), "library has no kPortOut pseudo-cell");
  return add_cell(std::move(name), family.front());
}

NetId Design::add_net(std::string name) {
  const auto id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return id;
}

void Design::connect_driver(NetId net_id, PinId pin_id) {
  Net& n = net(net_id);
  check(n.driver == kNullPin, "connect_driver: net already driven");
  Pin& p = pins_.at(static_cast<std::size_t>(pin_id));
  check(p.dir == PinDir::kOutput, "connect_driver: pin is not an output");
  check(p.net == kNullNet, "connect_driver: pin already connected");
  n.driver = pin_id;
  p.net = net_id;
}

void Design::connect_sink(NetId net_id, PinId pin_id) {
  Net& n = net(net_id);
  Pin& p = pins_.at(static_cast<std::size_t>(pin_id));
  check(p.dir == PinDir::kInput, "connect_sink: pin is not an input");
  check(p.net == kNullNet, "connect_sink: pin already connected");
  n.sinks.push_back(pin_id);
  if (!n.sink_lengths.empty()) n.sink_lengths.push_back(-1.0);
  p.net = net_id;
}

void Design::set_sink_length(NetId net_id, PinId pin_id, double length) {
  Net& n = net(net_id);
  const auto it = std::find(n.sinks.begin(), n.sinks.end(), pin_id);
  check(it != n.sinks.end(), "set_sink_length: pin not a sink of net");
  if (n.sink_lengths.size() != n.sinks.size()) {
    n.sink_lengths.assign(n.sinks.size(), -1.0);
  }
  n.sink_lengths[static_cast<std::size_t>(it - n.sinks.begin())] = length;
}

void Design::disconnect_sink(NetId net_id, PinId pin_id) {
  Net& n = net(net_id);
  Pin& p = pins_.at(static_cast<std::size_t>(pin_id));
  check(p.net == net_id, "disconnect_sink: pin not on this net");
  check(p.dir == PinDir::kInput, "disconnect_sink: pin is not an input");
  const auto it = std::find(n.sinks.begin(), n.sinks.end(), pin_id);
  check(it != n.sinks.end(), "disconnect_sink: pin not in sink list");
  if (n.sink_lengths.size() == n.sinks.size()) {
    n.sink_lengths.erase(n.sink_lengths.begin() + (it - n.sinks.begin()));
  }
  n.sinks.erase(it);
  p.net = kNullNet;
}

void Design::resize_cell(CellId cell_id, LibCellId new_libcell) {
  Cell& c = cell(cell_id);
  const LibCell& old_lc = library_->cell(c.libcell);
  const LibCell& new_lc = library_->cell(new_libcell);
  check(old_lc.func == new_lc.func, "resize_cell: function mismatch");
  c.libcell = new_libcell;
}

PinId Design::output_pin(CellId cell_id) const {
  const Cell& c = cell(cell_id);
  const LibCell& lc = library_->cell(c.libcell);
  if (!has_output(lc.func)) return kNullPin;
  return c.first_pin + c.num_pins - 1;
}

PinId Design::input_pin(CellId cell_id, int index) const {
  const Cell& c = cell(cell_id);
  const LibCell& lc = library_->cell(c.libcell);
  check(index >= 0 && index < num_data_inputs(lc.func),
        "input_pin: index out of range");
  return c.first_pin + index;
}

PinId Design::clock_pin(CellId cell_id) const {
  const Cell& c = cell(cell_id);
  const LibCell& lc = library_->cell(c.libcell);
  if (!is_sequential(lc.func)) return kNullPin;
  return c.first_pin + num_data_inputs(lc.func);
}

std::pair<PinId, int> Design::pin_range(CellId cell_id) const {
  const Cell& c = cell(cell_id);
  return {c.first_pin, static_cast<int>(c.num_pins)};
}

std::string Design::pin_name(PinId pin_id) const {
  const Pin& p = pin(pin_id);
  const Cell& c = cell(p.cell);
  if (p.dir == PinDir::kOutput) return c.name + "/Y";
  if (p.role == PinRole::kClock) return c.name + "/CK";
  return c.name + "/A" + std::to_string(p.input_index);
}

const Cell& Design::cell(CellId id) const {
  check(id >= 0 && static_cast<std::size_t>(id) < cells_.size(),
        "Design::cell: bad id");
  return cells_[static_cast<std::size_t>(id)];
}

Cell& Design::cell(CellId id) {
  check(id >= 0 && static_cast<std::size_t>(id) < cells_.size(),
        "Design::cell: bad id");
  return cells_[static_cast<std::size_t>(id)];
}

const Net& Design::net(NetId id) const {
  check(id >= 0 && static_cast<std::size_t>(id) < nets_.size(),
        "Design::net: bad id");
  return nets_[static_cast<std::size_t>(id)];
}

Net& Design::net(NetId id) {
  check(id >= 0 && static_cast<std::size_t>(id) < nets_.size(),
        "Design::net: bad id");
  return nets_[static_cast<std::size_t>(id)];
}

const Pin& Design::pin(PinId id) const {
  check(id >= 0 && static_cast<std::size_t>(id) < pins_.size(),
        "Design::pin: bad id");
  return pins_[static_cast<std::size_t>(id)];
}

const LibCell& Design::libcell_of(CellId id) const {
  return library_->cell(cell(id).libcell);
}

void Design::validate() const {
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    const Net& n = nets_[ni];
    check(n.driver != kNullPin, "validate: net without driver: " + n.name);
    check(pin(n.driver).net == static_cast<NetId>(ni),
          "validate: driver pin net mismatch: " + n.name);
    for (const PinId s : n.sinks) {
      check(pin(s).net == static_cast<NetId>(ni),
            "validate: sink pin net mismatch: " + n.name);
      check(pin(s).dir == PinDir::kInput, "validate: sink is not input");
    }
  }
  for (std::size_t pi = 0; pi < pins_.size(); ++pi) {
    const Pin& p = pins_[pi];
    if (p.dir == PinDir::kInput) {
      check(p.net != kNullNet,
            "validate: unconnected input pin: " + pin_name(static_cast<PinId>(pi)));
    }
  }
}

double Design::total_area() const {
  double a = 0.0;
  for (const Cell& c : cells_) a += library_->cell(c.libcell).area;
  return a;
}

double Design::total_leakage() const {
  double a = 0.0;
  for (const Cell& c : cells_) a += library_->cell(c.libcell).leakage;
  return a;
}

}  // namespace insta::netlist
