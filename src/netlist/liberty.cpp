#include "netlist/liberty.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace insta::netlist {

int num_data_inputs(CellFunc func) {
  switch (func) {
    case CellFunc::kInv:
    case CellFunc::kBuf:
      return 1;
    case CellFunc::kNand2:
    case CellFunc::kNor2:
    case CellFunc::kAnd2:
    case CellFunc::kOr2:
    case CellFunc::kXor2:
    case CellFunc::kXnor2:
      return 2;
    case CellFunc::kNand3:
    case CellFunc::kAoi21:
      return 3;
    case CellFunc::kDff:
      return 1;  // D only; CK is tracked as the clock pin
    case CellFunc::kPortIn:
      return 0;
    case CellFunc::kPortOut:
      return 1;
  }
  return 0;
}

bool has_output(CellFunc func) { return func != CellFunc::kPortOut; }

Unateness unateness(CellFunc func) {
  switch (func) {
    case CellFunc::kInv:
    case CellFunc::kNand2:
    case CellFunc::kNor2:
    case CellFunc::kNand3:
    case CellFunc::kAoi21:
      return Unateness::kNegative;
    case CellFunc::kBuf:
    case CellFunc::kAnd2:
    case CellFunc::kOr2:
      return Unateness::kPositive;
    case CellFunc::kXor2:
    case CellFunc::kXnor2:
      return Unateness::kNonUnate;
    case CellFunc::kDff:
    case CellFunc::kPortIn:
    case CellFunc::kPortOut:
      return Unateness::kPositive;
  }
  return Unateness::kPositive;
}

bool is_sequential(CellFunc func) { return func == CellFunc::kDff; }

const char* func_name(CellFunc func) {
  switch (func) {
    case CellFunc::kInv:     return "inv";
    case CellFunc::kBuf:     return "buf";
    case CellFunc::kNand2:   return "nand2";
    case CellFunc::kNor2:    return "nor2";
    case CellFunc::kAnd2:    return "and2";
    case CellFunc::kOr2:     return "or2";
    case CellFunc::kXor2:    return "xor2";
    case CellFunc::kXnor2:   return "xnor2";
    case CellFunc::kNand3:   return "nand3";
    case CellFunc::kAoi21:   return "aoi21";
    case CellFunc::kDff:     return "dff";
    case CellFunc::kPortIn:  return "port_in";
    case CellFunc::kPortOut: return "port_out";
  }
  return "unknown";
}

namespace {
constexpr int kNumFuncs = static_cast<int>(CellFunc::kPortOut) + 1;
}  // namespace

LibCellId Library::add(LibCell cell) {
  if (families_.empty()) families_.resize(kNumFuncs);
  const auto id = static_cast<LibCellId>(cells_.size());
  cell.id = id;
  auto& family = families_[static_cast<int>(cell.func)];
  family.push_back(id);
  cells_.push_back(std::move(cell));
  std::sort(family.begin(), family.end(), [this](LibCellId a, LibCellId b) {
    return cells_[static_cast<std::size_t>(a)].drive <
           cells_[static_cast<std::size_t>(b)].drive;
  });
  return id;
}

const LibCell& Library::cell(LibCellId id) const {
  util::check(id >= 0 && static_cast<std::size_t>(id) < cells_.size(),
              "Library::cell: bad id");
  return cells_[static_cast<std::size_t>(id)];
}

std::span<const LibCellId> Library::family(CellFunc func) const {
  if (families_.empty()) return {};
  return families_[static_cast<int>(func)];
}

LibCellId Library::find(CellFunc func, int drive) const {
  for (const LibCellId id : family(func)) {
    if (cells_[static_cast<std::size_t>(id)].drive == drive) return id;
  }
  return kNullLibCell;
}

namespace {

/// Relative "logical effort"-style complexity factors per function: more
/// complex gates are slower and heavier than an inverter at equal drive.
struct FuncFactors {
  double res;    ///< drive resistance multiplier
  double cap;    ///< input cap multiplier
  double intr;   ///< intrinsic delay multiplier
  double area;   ///< area multiplier
};

FuncFactors factors(CellFunc func) {
  switch (func) {
    case CellFunc::kInv:   return {1.00, 1.00, 1.0, 1.0};
    case CellFunc::kBuf:   return {1.00, 1.05, 1.8, 1.6};
    case CellFunc::kNand2: return {1.25, 1.20, 1.3, 1.5};
    case CellFunc::kNor2:  return {1.45, 1.25, 1.4, 1.5};
    case CellFunc::kAnd2:  return {1.25, 1.20, 2.0, 2.0};
    case CellFunc::kOr2:   return {1.45, 1.25, 2.1, 2.0};
    case CellFunc::kXor2:  return {1.70, 1.60, 2.4, 2.6};
    case CellFunc::kXnor2: return {1.70, 1.60, 2.5, 2.6};
    case CellFunc::kNand3: return {1.45, 1.30, 1.6, 1.9};
    case CellFunc::kAoi21: return {1.60, 1.35, 1.7, 2.1};
    case CellFunc::kDff:   return {1.30, 1.40, 3.0, 5.0};
    default:               return {1.0, 1.0, 1.0, 1.0};
  }
}

}  // namespace

Library make_default_library(const DefaultLibraryParams& p) {
  Library lib;
  const CellFunc funcs[] = {
      CellFunc::kInv,   CellFunc::kBuf,   CellFunc::kNand2, CellFunc::kNor2,
      CellFunc::kAnd2,  CellFunc::kOr2,   CellFunc::kXor2,  CellFunc::kXnor2,
      CellFunc::kNand3, CellFunc::kAoi21, CellFunc::kDff};
  for (const CellFunc func : funcs) {
    for (const int drive : p.drives) {
      const FuncFactors f = factors(func);
      const double d = static_cast<double>(drive);
      LibCell c;
      c.name = std::string(func_name(func)) + "_x" + std::to_string(drive);
      c.func = func;
      c.drive = drive;
      c.area = f.area * d * 0.9;
      c.leakage = f.area * std::pow(d, 1.15);
      c.input_cap = p.base_cap * f.cap * d;
      for (const int rf : {0, 1}) {
        // Falling output transitions are slightly faster (NMOS pulldown).
        const double rf_skew = (rf == 0) ? 1.06 : 0.94;
        c.intrinsic[rf] = p.base_intrinsic * f.intr * rf_skew;
        c.drive_res[rf] = p.base_res * f.res * rf_skew / d;
        c.slew_intrinsic[rf] = 0.6 * p.base_intrinsic * f.intr * rf_skew;
        c.slew_res[rf] = 0.8 * p.base_res * f.res * rf_skew / d;
      }
      c.slew_sens = p.slew_sens;
      c.sigma_ratio = p.sigma_ratio;
      if (func == CellFunc::kDff) {
        c.setup = 12.0 + 6.0 / d;
        c.hold = 3.0 + 2.0 / d;
        c.clk2q = {p.base_intrinsic * 2.5, p.base_intrinsic * 2.3};
      }
      lib.add(std::move(c));
    }
  }
  // Boundary pseudo-cells: zero-delay, tiny cap, single drive strength.
  for (const CellFunc func : {CellFunc::kPortIn, CellFunc::kPortOut}) {
    LibCell c;
    c.name = func_name(func);
    c.func = func;
    c.drive = 1;
    c.area = 0.0;
    c.leakage = 0.0;
    c.input_cap = (func == CellFunc::kPortOut) ? 2.0 : 0.0;
    c.sigma_ratio = 0.0;
    lib.add(std::move(c));
  }
  return lib;
}

}  // namespace insta::netlist
