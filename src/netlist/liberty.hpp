#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace insta::netlist {

/// Logic function of a library cell.
///
/// kPort is a pseudo-function used for primary inputs/outputs so that the
/// whole design, including its boundary, is expressed with one cell concept.
enum class CellFunc : std::uint8_t {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kNand3,
  kAoi21,
  kDff,
  kPortIn,   ///< primary input: one output pin
  kPortOut,  ///< primary output: one input pin
};

/// Timing sense of the input-to-output arcs of a function.
enum class Unateness : std::uint8_t { kPositive, kNegative, kNonUnate };

/// Number of data input pins of a function (DFF counts only D; its clock pin
/// is tracked separately).
[[nodiscard]] int num_data_inputs(CellFunc func);

/// Whether cells of this function have an output pin.
[[nodiscard]] bool has_output(CellFunc func);

/// Timing sense of the function's input-to-output arcs.
[[nodiscard]] Unateness unateness(CellFunc func);

/// Whether the function is sequential (currently only DFF).
[[nodiscard]] bool is_sequential(CellFunc func);

/// Short lowercase name of the function (e.g. "nand2").
[[nodiscard]] const char* func_name(CellFunc func);

/// Index of a transition direction at a pin; used to address per-rise/fall
/// arrays everywhere in the repository.
enum class RiseFall : std::uint8_t { kRise = 0, kFall = 1 };

/// Both transition directions, for range-for loops.
inline constexpr std::array<RiseFall, 2> kBothTransitions = {RiseFall::kRise,
                                                             RiseFall::kFall};

/// Integer index of a transition (kRise -> 0, kFall -> 1).
[[nodiscard]] constexpr int rf_index(RiseFall rf) { return static_cast<int>(rf); }

/// The opposite transition (used by negative-unate arcs).
[[nodiscard]] constexpr RiseFall opposite(RiseFall rf) {
  return rf == RiseFall::kRise ? RiseFall::kFall : RiseFall::kRise;
}

using LibCellId = std::int32_t;
inline constexpr LibCellId kNullLibCell = -1;

/// One characterized library cell.
///
/// The delay model is a compact NLDM-style analytic form (units: ps, fF, kΩ):
///   cell arc delay(rf) = intrinsic[rf] + drive_res[rf] * load + slew_sens * input_slew
///   output slew(rf)    = slew_intrinsic[rf] + slew_res[rf] * load
///   POCV sigma         = sigma_ratio * nominal delay
/// Larger drive strengths have lower drive_res/slew_res but higher input_cap,
/// area and leakage, giving the classic sizing trade-off.
struct LibCell {
  LibCellId id = kNullLibCell;
  std::string name;
  CellFunc func = CellFunc::kBuf;
  int drive = 1;          ///< relative drive strength (1, 2, 4, ...)
  double area = 1.0;      ///< um^2 (also used as placement width)
  double leakage = 1.0;   ///< leakage power, arbitrary units
  double input_cap = 1.0; ///< fF per data input pin (and clock pin for DFF)

  std::array<double, 2> intrinsic{0.0, 0.0};      ///< ps, indexed by RiseFall
  std::array<double, 2> drive_res{0.0, 0.0};      ///< ps/fF
  std::array<double, 2> slew_intrinsic{0.0, 0.0}; ///< ps
  std::array<double, 2> slew_res{0.0, 0.0};       ///< ps/fF
  double slew_sens = 0.0;   ///< delay ps added per ps of input slew
  double sigma_ratio = 0.0; ///< POCV sigma as a fraction of nominal delay

  // Sequential-only attributes (ignored for combinational cells):
  double setup = 0.0;               ///< ps, setup requirement at D
  double hold = 0.0;                ///< ps, hold requirement at D
  std::array<double, 2> clk2q{0.0, 0.0}; ///< ps, intrinsic clock-to-Q
};

/// A cell library: an indexed collection of LibCells with size-family lookup
/// (all drive strengths of one function form a family, sorted by drive).
class Library {
 public:
  /// Adds a cell; its id is assigned and returned.
  LibCellId add(LibCell cell);

  /// The cell with the given id. Throws CheckError on a bad id.
  [[nodiscard]] const LibCell& cell(LibCellId id) const;

  /// All drive strengths of `func`, sorted ascending by drive.
  [[nodiscard]] std::span<const LibCellId> family(CellFunc func) const;

  /// The library cell with exactly this function and drive, or kNullLibCell.
  [[nodiscard]] LibCellId find(CellFunc func, int drive) const;

  /// Number of cells in the library.
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// All cells, in id order.
  [[nodiscard]] std::span<const LibCell> cells() const { return cells_; }

 private:
  std::vector<LibCell> cells_;
  std::vector<std::vector<LibCellId>> families_;  // indexed by CellFunc
};

/// Parameters of the procedurally generated default library.
struct DefaultLibraryParams {
  std::vector<int> drives = {1, 2, 4, 8, 16};
  double base_res = 8.0;        ///< drive_res of an X1 inverter, ps/fF
  double base_cap = 1.2;        ///< input_cap of an X1 inverter, fF
  double base_intrinsic = 8.0;  ///< intrinsic delay of an X1 inverter, ps
  double sigma_ratio = 0.05;    ///< POCV sigma / nominal delay
  double slew_sens = 0.12;      ///< delay ps per ps of input slew
};

/// Builds the default synthetic library: INV/BUF/NAND2/NOR2/AND2/OR2/XOR2/
/// XNOR2/NAND3/AOI21/DFF in all requested drive strengths, plus the two port
/// pseudo-cells (always drive 1).
[[nodiscard]] Library make_default_library(
    const DefaultLibraryParams& params = {});

}  // namespace insta::netlist
