#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/liberty.hpp"

namespace insta::netlist {

using CellId = std::int32_t;
using NetId = std::int32_t;
using PinId = std::int32_t;
inline constexpr CellId kNullCell = -1;
inline constexpr NetId kNullNet = -1;
inline constexpr PinId kNullPin = -1;

/// Direction of a pin as seen from its cell.
enum class PinDir : std::uint8_t { kInput, kOutput };

/// Functional role of an input pin.
enum class PinRole : std::uint8_t { kData, kClock };

/// One pin instance. Pins of a cell are stored contiguously in the design:
/// data inputs first (in input-index order), then the clock pin (DFF only),
/// then the output pin (if the function has one).
struct Pin {
  CellId cell = kNullCell;
  NetId net = kNullNet;
  PinDir dir = PinDir::kInput;
  PinRole role = PinRole::kData;
  std::uint8_t input_index = 0;  ///< position among the cell's data inputs
};

/// One cell instance (including the port pseudo-cells at the boundary).
struct Cell {
  std::string name;
  LibCellId libcell = kNullLibCell;
  PinId first_pin = kNullPin;
  std::uint8_t num_pins = 0;
  double x = 0.0;  ///< placement location, um
  double y = 0.0;
  bool fixed = false;  ///< immovable during placement (ports, clock tree)
};

/// One net: a single driver pin and its sink pins.
struct Net {
  std::string name;
  PinId driver = kNullPin;
  std::vector<PinId> sinks;
  double length_hint = 0.0;  ///< um; used when the design is not placed
  /// Optional per-sink wire lengths (um), parallel to `sinks`; negative
  /// entries fall back to length_hint. Structural transforms (buffer
  /// insertion) use these to model a genuine wire split on one branch.
  std::vector<double> sink_lengths;

  /// Wire length of the branch to sinks[index].
  [[nodiscard]] double sink_length(std::size_t index) const {
    if (index < sink_lengths.size() && sink_lengths[index] >= 0.0) {
      return sink_lengths[index];
    }
    return length_hint;
  }
};

/// The design database: cells, nets and pins over a Library.
///
/// The Design owns topology and placement only; all timing data (arc delays,
/// arrivals, slacks) lives in the timing/ref/core modules, so that several
/// timing views (golden reference, INSTA clone) can share one netlist.
class Design {
 public:
  /// Creates an empty design over `library`, which must outlive the design.
  explicit Design(const Library& library) : library_(&library) {}

  /// Adds a cell of the given library cell; creates its pins. Returns its id.
  CellId add_cell(std::string name, LibCellId libcell);

  /// Adds a primary input (a kPortIn pseudo-cell). Returns the cell id.
  CellId add_input_port(std::string name);

  /// Adds a primary output (a kPortOut pseudo-cell). Returns the cell id.
  CellId add_output_port(std::string name);

  /// Adds an empty net.
  NetId add_net(std::string name);

  /// Sets `pin` as the single driver of `net`. The pin must be an output pin
  /// and not already connected.
  void connect_driver(NetId net, PinId pin);

  /// Adds `pin` as a sink of `net`. The pin must be an input pin and not
  /// already connected.
  void connect_sink(NetId net, PinId pin);

  /// Replaces the library cell of `cell` with another cell of the same
  /// function (a gate resize). Pin topology is unchanged.
  void resize_cell(CellId cell, LibCellId new_libcell);

  /// Removes `pin` from the sinks of `net` and marks it unconnected. The
  /// pin must currently be a sink of exactly this net. Used by structural
  /// transforms (buffer insertion) before rewiring the pin elsewhere.
  void disconnect_sink(NetId net, PinId pin);

  /// Sets a per-sink wire length for `pin` on `net` (see Net::sink_lengths).
  void set_sink_length(NetId net, PinId pin, double length);

  // ---- pin lookup -------------------------------------------------------

  /// The output pin of `cell`; kNullPin if the function has none.
  [[nodiscard]] PinId output_pin(CellId cell) const;

  /// The `index`-th data input pin of `cell`.
  [[nodiscard]] PinId input_pin(CellId cell, int index) const;

  /// The clock pin of a DFF `cell`; kNullPin for other functions.
  [[nodiscard]] PinId clock_pin(CellId cell) const;

  /// All pins of `cell` as a contiguous id range [first, first+num).
  [[nodiscard]] std::pair<PinId, int> pin_range(CellId cell) const;

  /// Hierarchical-ish display name of a pin, e.g. "u42/A1" or "u42/Y".
  [[nodiscard]] std::string pin_name(PinId pin) const;

  // ---- accessors --------------------------------------------------------

  [[nodiscard]] const Library& library() const { return *library_; }
  [[nodiscard]] const Cell& cell(CellId id) const;
  [[nodiscard]] Cell& cell(CellId id);
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] Net& net(NetId id);
  [[nodiscard]] const Pin& pin(PinId id) const;
  [[nodiscard]] const LibCell& libcell_of(CellId id) const;

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] std::size_t num_pins() const { return pins_.size(); }

  [[nodiscard]] std::span<const Cell> cells() const { return cells_; }
  [[nodiscard]] std::span<const Net> nets() const { return nets_; }
  [[nodiscard]] std::span<const Pin> pins() const { return pins_; }

  /// Ids of all kPortIn cells, in creation order.
  [[nodiscard]] std::span<const CellId> input_ports() const { return inputs_; }

  /// Ids of all kPortOut cells, in creation order.
  [[nodiscard]] std::span<const CellId> output_ports() const { return outputs_; }

  /// Ids of all DFF cells, in creation order.
  [[nodiscard]] std::span<const CellId> flip_flops() const { return ffs_; }

  /// Verifies structural integrity: every net has a driver, every input pin
  /// is connected to exactly the net that lists it, pin directions match.
  /// Throws CheckError with a description of the first violation.
  void validate() const;

  /// Total cell area (placement widths), um^2.
  [[nodiscard]] double total_area() const;

  /// Total leakage of all cells, arbitrary units.
  [[nodiscard]] double total_leakage() const;

 private:
  const Library* library_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::vector<CellId> ffs_;
};

}  // namespace insta::netlist
