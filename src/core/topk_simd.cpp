#include "core/topk_simd.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#if defined(INSTA_SIMD_ENABLED) && INSTA_SIMD_ENABLED && defined(__x86_64__)
#define INSTA_SIMD_COMPILED 1
#include <immintrin.h>
#else
#define INSTA_SIMD_COMPILED 0
#endif

#include "util/check.hpp"

namespace insta::core {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// One group of up to 8 prepared candidates, staged for the scalar
/// insertion loop (the vector flavor stores its lanes here).
struct CandGroup {
  float arr[8];
  float mu[8];
  float sig[8];
};

/// The threshold of the group pre-filter: with a full list, a candidate
/// whose arrival does not beat the smallest kept entry cannot change the
/// list — every kept entry is >= that minimum, so neither the
/// startpoint-update path nor the insert path of topk_insert would fire.
inline float group_threshold(const TopKView& dst) {
  return (*dst.count == dst.k) ? dst.arr[dst.k - 1] : kNegInf;
}

/// Inserts the kept lanes of one group in ascending lane order (matching
/// the sequential candidate order of the pre-SIMD kernel, which is what
/// keeps results bit-identical to it).
inline void insert_group(const TopKView& dst, const CandGroup& cg,
                         const std::int32_t* sp, unsigned keep,
                         MergeCounters& mc) {
  while (keep != 0) {
    const int l = __builtin_ctz(keep);
    keep &= keep - 1;
    mc.prunes += static_cast<std::uint64_t>(
        topk_insert(dst, cg.arr[l], cg.mu[l], cg.sig[l], sp[l]));
  }
}

}  // namespace

void merge_arcs_scalar(const TopKView& dst, const MergeArc* arcs, int n,
                       float nsigma, bool early, MergeCounters& mc) {
  for (int a = 0; a < n; ++a) {
    const MergeArc& ma = arcs[a];
    if (a + 1 < n) {
      // The next arc's parent planes are the only hard-to-predict reads of
      // the merge (CSR-indirect); start pulling them in now.
      __builtin_prefetch(arcs[a + 1].par.mu);
      __builtin_prefetch(arcs[a + 1].par.sig);
    }
    const std::int32_t cnt = ma.par.cnt;
    mc.merges += static_cast<std::uint64_t>(cnt);
    for (std::int32_t kk = 0; kk < cnt; kk += 8) {
      const int g = static_cast<int>(std::min<std::int32_t>(8, cnt - kk));
      const float thr = group_threshold(dst);
      CandGroup cg;
      unsigned keep = 0;
      for (int l = 0; l < g; ++l) {
        const float pmu = ma.par.mu[kk + l];
        const float psig = ma.par.sig[kk + l];
        const float mu = pmu + ma.am;
        const float sig = std::sqrt(psig * psig + ma.as2);
        const float arrival =
            early ? -(mu - nsigma * sig) : (mu + nsigma * sig);
        cg.arr[l] = arrival;
        cg.mu[l] = mu;
        cg.sig[l] = sig;
        if (arrival > thr) keep |= 1u << static_cast<unsigned>(l);
      }
      mc.prunes +=
          static_cast<std::uint64_t>(g - __builtin_popcount(keep));
      insert_group(dst, cg, ma.par.sp + kk, keep, mc);
    }
  }
}

void backward_cand_scalar(const float* tk_mu, const float* tk_sig,
                          const std::int32_t* tk_cnt, const std::int32_t* ci,
                          std::int32_t stride, const float* amu,
                          const float* asig, std::int32_t n, float nsigma,
                          float* out_cand) {
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int32_t c = ci[i];
    if (tk_cnt[c] == 0) {
      out_cand[i] = kNegInf;
      continue;
    }
    const std::size_t base =
        static_cast<std::size_t>(c) * static_cast<std::size_t>(stride);
    const float as = asig[i];
    out_cand[i] = tk_mu[base] + amu[i] +
                  nsigma * std::sqrt(tk_sig[base] * tk_sig[base] + as * as);
  }
}

#if INSTA_SIMD_COMPILED

namespace {

/// Maskload lookup: kTailMask + (8 - g) selects a mask whose first g lanes
/// are enabled. Tail groups load through it so the kernels never read past
/// cnt entries — overlay slabs and scratch buffers need no padding.
alignas(32) constexpr std::int32_t kTailMask[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};

}  // namespace

namespace {

/// topk_insert with the two O(K) scans vectorized: the startpoint tag scan
/// and the insert-position search are 8-wide compares, the shift is a
/// memmove per plane. Byte-identical to topk_insert for every input (the
/// property tests in test_simd.cpp assert this): the tag scan finds the
/// same (unique) entry the scalar scan would, the position count equals
/// the scalar shift loop's final position because the list is descending
/// (entries smaller than the candidate form a suffix), and the memmove
/// performs the same element moves as the scalar shifting.
__attribute__((target("avx2"))) inline bool topk_insert_avx2(
    const TopKView& v, float arr, float mu, float sig, std::int32_t sp) {
  const std::int32_t n = *v.count;
  // Step 1: startpoint uniqueness check, 8 tags per compare.
  const __m256i vsp = _mm256_set1_epi32(sp);
  for (std::int32_t b = 0; b < n; b += 8) {
    const int g = static_cast<int>(std::min<std::int32_t>(8, n - b));
    const __m256i mask = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kTailMask + (8 - g)));
    // Masked lanes read 0 — a valid tag value — so movemask results are
    // clipped to the g live lanes.
    const __m256i tags = (g == 8)
        ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.sp + b))
        : _mm256_maskload_epi32(v.sp + b, mask);
    unsigned hits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(tags, vsp))));
    hits &= (g == 8) ? 0xFFu : ((1u << static_cast<unsigned>(g)) - 1u);
    if (hits == 0) continue;
    const std::int32_t j = b + __builtin_ctz(hits);
    if (arr > v.arr[j]) {
      v.arr[j] = arr;
      v.mu[j] = mu;
      v.sig[j] = sig;
      std::int32_t i = j;
      while (i > 0 && v.arr[i - 1] < v.arr[i]) {
        std::swap(v.arr[i - 1], v.arr[i]);
        std::swap(v.mu[i - 1], v.mu[i]);
        std::swap(v.sig[i - 1], v.sig[i]);
        std::swap(v.sp[i - 1], v.sp[i]);
        --i;
      }
    }
    return false;
  }
  // Step 2: insert as a new startpoint if it qualifies.
  std::int32_t last = n;
  if (n == v.k) {
    if (arr <= v.arr[n - 1]) return true;
    last = n - 1;
  } else {
    *v.count = n + 1;
  }
  // The descending list makes "entries < arr" a suffix; its start is the
  // insert position the scalar shift loop would reach. Count the >= prefix
  // with vector compares (floats here are never NaN).
  const __m256 vc = _mm256_set1_ps(arr);
  std::int32_t pos = 0;
  for (std::int32_t b = 0; b < n; b += 8) {
    const int g = static_cast<int>(std::min<std::int32_t>(8, n - b));
    const __m256i mask = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kTailMask + (8 - g)));
    const __m256 e = (g == 8) ? _mm256_loadu_ps(v.arr + b)
                              : _mm256_maskload_ps(v.arr + b, mask);
    unsigned ge = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(e, vc, _CMP_GE_OQ)));
    ge &= (g == 8) ? 0xFFu : ((1u << static_cast<unsigned>(g)) - 1u);
    pos += __builtin_popcount(ge);
    if (ge != ((g == 8) ? 0xFFu : ((1u << static_cast<unsigned>(g)) - 1u))) {
      break;  // the < suffix has started
    }
  }
  pos = std::min(pos, last);
  if (pos < last) {
    // Shift [pos, last) down one slot, highest chunk first: a chunk's
    // store only overwrites slots above the chunks still to be loaded, so
    // backward order needs no staging buffer (and no memmove call
    // overhead, which would dominate at list-sized moves).
    std::int32_t b = last - 8;
    for (; b >= pos; b -= 8) {
      _mm256_storeu_ps(v.arr + b + 1, _mm256_loadu_ps(v.arr + b));
      _mm256_storeu_ps(v.mu + b + 1, _mm256_loadu_ps(v.mu + b));
      _mm256_storeu_ps(v.sig + b + 1, _mm256_loadu_ps(v.sig + b));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(v.sp + b + 1),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.sp + b)));
    }
    const int g = b + 8 - pos;  // leading partial chunk [pos, pos + g)
    if (g > 0) {
      const __m256i mask = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(kTailMask + (8 - g)));
      _mm256_maskstore_ps(v.arr + pos + 1, mask,
                          _mm256_maskload_ps(v.arr + pos, mask));
      _mm256_maskstore_ps(v.mu + pos + 1, mask,
                          _mm256_maskload_ps(v.mu + pos, mask));
      _mm256_maskstore_ps(v.sig + pos + 1, mask,
                          _mm256_maskload_ps(v.sig + pos, mask));
      _mm256_maskstore_epi32(v.sp + pos + 1, mask,
                             _mm256_maskload_epi32(v.sp + pos, mask));
    }
  }
  v.arr[pos] = arr;
  v.mu[pos] = mu;
  v.sig[pos] = sig;
  v.sp[pos] = sp;
  return false;
}

/// insert_group with the vectorized insert; same ascending lane order.
__attribute__((target("avx2"))) inline void insert_group_avx2(
    const TopKView& dst, const CandGroup& cg, const std::int32_t* sp,
    unsigned keep, MergeCounters& mc) {
  while (keep != 0) {
    const int l = __builtin_ctz(keep);
    keep &= keep - 1;
    mc.prunes += static_cast<std::uint64_t>(
        topk_insert_avx2(dst, cg.arr[l], cg.mu[l], cg.sig[l], sp[l]));
  }
}

// ---- register-resident destination list (8 < k <= 16) ----------------------
//
// The profitability wall of the memory-resident insert path is not the
// candidate math (which vectorizes 8-wide) but the survivor path: every
// tag scan and position search loads the list that the previous candidate
// just stored, so the loop is serialized on store-to-load forwarding of
// 32 B loads over fresh 4 B stores. For k <= 16 the whole list — all four
// planes — fits in eight ymm registers, so the merge of one pin can run
// entirely in registers: scans are two compares + movemask, shifts are
// permute/blend lane moves, and memory is touched exactly twice (one load
// at entry, one masked store at exit). Every value-producing operation is
// unchanged — only data movement differs — so results stay bit-identical
// to topk_insert (the property tests in test_simd.cpp assert this).

/// 16-lane prefix mask (first `t` of 16 dword lanes set), served as two
/// 8-lane halves out of a sliding pool. The domain is t in [0, 17]:
/// t = 17 (all lanes, one past the end) lets reg_seg_insert express the
/// empty range (16, 15] so a no-op is just another mask selection — the
/// key to keeping the insert path branchless.
alignas(32) constexpr std::int32_t kLaneMask34[34] = {
    -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0};

struct PrefixMask {
  __m256i lo, hi;
};

__attribute__((target("avx2"))) inline PrefixMask prefix16(int t) {
  return {_mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(kLaneMask34 + 17 - t)),
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(kLaneMask34 + 25 - t))};
}

/// The four list planes of one destination, lanes 0..15 = entries 0..15.
struct RegList {
  __m256 a0, a1;    // arrival
  __m256 m0, m1;    // mu
  __m256 s0, s1;    // sigma
  __m256i t0, t1;   // startpoint tag
};

/// Entry j's arrival, extracted without a memory round-trip.
__attribute__((target("avx2"))) inline float reg_lane(__m256 lo, __m256 hi,
                                                      int j) {
  const __m256 h = (j < 8) ? lo : hi;
  return _mm256_cvtss_f32(
      _mm256_permutevar8x32_ps(h, _mm256_set1_epi32(j & 7)));
}

/// Startpoint tag scan: bit i of the result = (entry i's tag == sp),
/// clipped to the n live lanes. At most one bit is set (the uniqueness
/// invariant).
__attribute__((target("avx2"))) inline unsigned reg_tag_hits(
    const RegList& l, std::int32_t sp, std::int32_t n) {
  const __m256i vt = _mm256_set1_epi32(sp);
  const auto h0 = static_cast<unsigned>(_mm256_movemask_ps(
      _mm256_castsi256_ps(_mm256_cmpeq_epi32(l.t0, vt))));
  const auto h1 = static_cast<unsigned>(_mm256_movemask_ps(
      _mm256_castsi256_ps(_mm256_cmpeq_epi32(l.t1, vt))));
  const unsigned hits = (h1 << 8) | h0;
  return hits & ((n == 16) ? 0xFFFFu : ((1u << static_cast<unsigned>(n)) - 1u));
}

/// Bit i = (entry i's arrival >= a), unclipped (callers mask to the lanes
/// they care about; dead lanes hold deterministic zero-filled values).
__attribute__((target("avx2"))) inline unsigned reg_ge_mask(const RegList& l,
                                                            float a) {
  const __m256 va = _mm256_set1_ps(a);
  const auto g0 = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_cmp_ps(l.a0, va, _CMP_GE_OQ)));
  const auto g1 = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_cmp_ps(l.a1, va, _CMP_GE_OQ)));
  return (g1 << 8) | g0;
}

/// One plane of reg_seg_insert: lanes selected by rm pick up their
/// predecessor (rotate-right, the hi half's wrap lane patched with lo's
/// top lane to cross the 8-lane seam), the one-hot oh lane takes the new
/// value. (A standalone function, not a lambda, because lambdas do not
/// inherit the enclosing target("avx2") attribute.)
__attribute__((target("avx2"))) inline void reg_shift_plane(
    __m256& lo, __m256& hi, __m256 nv, __m256 rm_lo, __m256 rm_hi,
    __m256 oh_lo, __m256 oh_hi) {
  const __m256i rot = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  const __m256 l7 = _mm256_permutevar8x32_ps(lo, _mm256_set1_epi32(7));
  const __m256 lo_s = _mm256_permutevar8x32_ps(lo, rot);
  const __m256 hi_s =
      _mm256_blend_ps(_mm256_permutevar8x32_ps(hi, rot), l7, 0x01);
  lo = _mm256_blendv_ps(_mm256_blendv_ps(lo, lo_s, rm_lo), nv, oh_lo);
  hi = _mm256_blendv_ps(_mm256_blendv_ps(hi, hi_s, rm_hi), nv, oh_hi);
}

/// Shifts lanes [p, q) down one (lane i -> i + 1 for i in [p, q), so lane
/// q is overwritten) and writes the new entry at lane p — the common
/// primitive behind both the sorted insert (q = last slot) and the
/// bubble-up after a tag update (q = the updated entry's old position).
/// Pure lane movement: no float value is recomputed.
__attribute__((target("avx2"))) inline void reg_seg_insert(
    RegList& l, int p, int q, float a, float m, float s, std::int32_t sp) {
  const PrefixMask up_to_q = prefix16(q + 1);
  const PrefixMask up_to_p = prefix16(p + 1);
  const PrefixMask below_p = prefix16(p);
  // Lanes (p, q] receive their predecessor; lane p the new entry.
  const __m256 rm_lo =
      _mm256_castsi256_ps(_mm256_andnot_si256(up_to_p.lo, up_to_q.lo));
  const __m256 rm_hi =
      _mm256_castsi256_ps(_mm256_andnot_si256(up_to_p.hi, up_to_q.hi));
  const __m256 oh_lo =
      _mm256_castsi256_ps(_mm256_andnot_si256(below_p.lo, up_to_p.lo));
  const __m256 oh_hi =
      _mm256_castsi256_ps(_mm256_andnot_si256(below_p.hi, up_to_p.hi));
  reg_shift_plane(l.a0, l.a1, _mm256_set1_ps(a), rm_lo, rm_hi, oh_lo, oh_hi);
  reg_shift_plane(l.m0, l.m1, _mm256_set1_ps(m), rm_lo, rm_hi, oh_lo, oh_hi);
  reg_shift_plane(l.s0, l.s1, _mm256_set1_ps(s), rm_lo, rm_hi, oh_lo, oh_hi);
  __m256 tl = _mm256_castsi256_ps(l.t0);
  __m256 th = _mm256_castsi256_ps(l.t1);
  reg_shift_plane(tl, th, _mm256_castsi256_ps(_mm256_set1_epi32(sp)), rm_lo,
                  rm_hi, oh_lo, oh_hi);
  l.t0 = _mm256_castps_si256(tl);
  l.t1 = _mm256_castps_si256(th);
}

/// topk_insert against the register-resident list: the same decision
/// values as the scalar kernel, but with no data-dependent branches —
/// tag hit/miss, update-vs-skip, fresh insert, and full-list prune all
/// collapse into one unconditional reg_seg_insert whose (p, q) bounds are
/// cmov-selected (the no-op cases use the empty range p = 16, q = 15).
/// The survivor path's cost is dominated by branch mispredicts in the
/// scalar kernel, so being branchless is worth more here than saving
/// uops. Returns true when the full-list prune fired (mirroring
/// topk_insert's return value).
__attribute__((target("avx2"))) inline bool reg_topk_insert(
    RegList& l, std::int32_t& n, std::int32_t k, float arr, float mu,
    float sig, std::int32_t sp) {
  const unsigned hits = reg_tag_hits(l, sp, n);
  // ctz of the padded word is 16 on a miss (ctz(0) alone is undefined).
  const int j = __builtin_ctz(hits | 0x10000u);
  const bool hit = hits != 0;
  // Garbage extractions (j = 16 reads hi lane 0, n = 0 reads lane 7) feed
  // only into comparisons whose outcome is masked off below.
  const float aj = reg_lane(l.a0, l.a1, j & 15);
  const float amin = reg_lane(l.a0, l.a1, (n - 1) & 15);
  const int full = static_cast<int>(n == k);
  const int upd = static_cast<int>(hit) & static_cast<int>(arr > aj);
  const int prune = (1 - static_cast<int>(hit)) & full &
                    static_cast<int>(arr <= amin);
  const int ins = (1 - static_cast<int>(hit)) & (1 - prune);
  const unsigned ge = reg_ge_mask(l, arr);
  const int last = n - full;
  // Update: the scalar bubble-up stops at the first predecessor >= arr,
  // so the final position is the count of >= entries above the old slot.
  const int pos_h =
      __builtin_popcount(ge & ((1u << static_cast<unsigned>(j)) - 1u));
  // Insert: the descending list makes "entries < arr" a suffix; the
  // count of >= entries (capped at the last slot) is where the scalar
  // shift loop lands.
  const unsigned nmask =
      (n == 16) ? 0xFFFFu : ((1u << static_cast<unsigned>(n)) - 1u);
  int pos_m = __builtin_popcount(ge & nmask);
  pos_m = pos_m < last ? pos_m : last;
  // Mask-arithmetic case select (all-ones / all-zeros multiplicands) so
  // the compiler cannot reintroduce the data-dependent branches.
  const int mu_sel = -upd;
  const int mi_sel = -ins;
  const int mn_sel = ~(mu_sel | mi_sel);  // no-op: empty range (16, 15]
  const int p = (pos_h & mu_sel) | (pos_m & mi_sel) | (16 & mn_sel);
  const int q = (j & mu_sel) | (last & mi_sel) | (15 & mn_sel);
  n += ins & (1 - full);
  reg_seg_insert(l, p, q, arr, mu, sig, sp);
  return prune != 0;
}

/// merge_arcs with the destination held in registers for the whole call
/// (8 < k <= 16; k <= 8 stays on the memory path, whose lists are too
/// small to pay for the load/store bracketing). Loads clip to k lanes and
/// the exit store clips to the final count, so buffers only k entries
/// long are safe and memory beyond cnt is left exactly as the scalar
/// kernel leaves it.
__attribute__((target("avx2"))) void merge_arcs_avx2_reg16(
    const TopKView& dst, const MergeArc* arcs, int nar, float nsigma,
    bool early, MergeCounters& mc) {
  const std::int32_t k = dst.k;
  RegList l;
  {
    const PrefixMask pk = prefix16(static_cast<int>(k));
    l.a0 = _mm256_loadu_ps(dst.arr);
    l.m0 = _mm256_loadu_ps(dst.mu);
    l.s0 = _mm256_loadu_ps(dst.sig);
    l.t0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst.sp));
    l.a1 = _mm256_maskload_ps(dst.arr + 8, pk.hi);
    l.m1 = _mm256_maskload_ps(dst.mu + 8, pk.hi);
    l.s1 = _mm256_maskload_ps(dst.sig + 8, pk.hi);
    l.t1 = _mm256_maskload_epi32(dst.sp + 8, pk.hi);
  }
  std::int32_t n = *dst.count;
  const __m256 vns = _mm256_set1_ps(nsigma);
  const __m256 sign = _mm256_set1_ps(-0.0f);
  for (int a = 0; a < nar; ++a) {
    const MergeArc& ma = arcs[a];
    if (a + 1 < nar) {
      __builtin_prefetch(arcs[a + 1].par.mu);
      __builtin_prefetch(arcs[a + 1].par.sig);
    }
    const std::int32_t cnt = ma.par.cnt;
    mc.merges += static_cast<std::uint64_t>(cnt);
    const __m256 vam = _mm256_set1_ps(ma.am);
    const __m256 vas2 = _mm256_set1_ps(ma.as2);
    for (std::int32_t kk = 0; kk < cnt; kk += 8) {
      const int g = static_cast<int>(std::min<std::int32_t>(8, cnt - kk));
      __m256 pmu;
      __m256 psig;
      if (g == 8) {
        pmu = _mm256_loadu_ps(ma.par.mu + kk);
        psig = _mm256_loadu_ps(ma.par.sig + kk);
      } else {
        const __m256i mask = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(kTailMask + (8 - g)));
        pmu = _mm256_maskload_ps(ma.par.mu + kk, mask);
        psig = _mm256_maskload_ps(ma.par.sig + kk, mask);
      }
      const __m256 mu = _mm256_add_ps(pmu, vam);
      const __m256 sig2 =
          _mm256_sqrt_ps(_mm256_add_ps(_mm256_mul_ps(psig, psig), vas2));
      const __m256 spread = _mm256_mul_ps(vns, sig2);
      const __m256 arrv =
          early ? _mm256_xor_ps(_mm256_sub_ps(mu, spread), sign)
                : _mm256_add_ps(mu, spread);
      const float thr = (n == k) ? reg_lane(l.a0, l.a1, k - 1) : kNegInf;
      unsigned keep = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(arrv, _mm256_set1_ps(thr), _CMP_GT_OQ)));
      keep &= (g == 8) ? 0xFFu : ((1u << static_cast<unsigned>(g)) - 1u);
      CandGroup cg;
      _mm256_storeu_ps(cg.arr, arrv);
      _mm256_storeu_ps(cg.mu, mu);
      _mm256_storeu_ps(cg.sig, sig2);
      mc.prunes += static_cast<std::uint64_t>(g - __builtin_popcount(keep));
      while (keep != 0) {
        const int lane = __builtin_ctz(keep);
        keep &= keep - 1;
        mc.prunes += static_cast<std::uint64_t>(
            reg_topk_insert(l, n, k, cg.arr[lane], cg.mu[lane], cg.sig[lane],
                            ma.par.sp[kk + lane]));
      }
    }
  }
  {
    const PrefixMask pn = prefix16(static_cast<int>(n));
    _mm256_maskstore_ps(dst.arr, pn.lo, l.a0);
    _mm256_maskstore_ps(dst.mu, pn.lo, l.m0);
    _mm256_maskstore_ps(dst.sig, pn.lo, l.s0);
    _mm256_maskstore_epi32(dst.sp, pn.lo, l.t0);
    _mm256_maskstore_ps(dst.arr + 8, pn.hi, l.a1);
    _mm256_maskstore_ps(dst.mu + 8, pn.hi, l.m1);
    _mm256_maskstore_ps(dst.sig + 8, pn.hi, l.s1);
    _mm256_maskstore_epi32(dst.sp + 8, pn.hi, l.t1);
  }
  *dst.count = n;
}

}  // namespace

__attribute__((target("avx2"))) void merge_arcs_avx2(
    const TopKView& dst, const MergeArc* arcs, int n, float nsigma,
    bool early, MergeCounters& mc) {
  if (dst.k > 8 && dst.k <= 16) {
    merge_arcs_avx2_reg16(dst, arcs, n, nsigma, early, mc);
    return;
  }
  const __m256 vns = _mm256_set1_ps(nsigma);
  const __m256 sign = _mm256_set1_ps(-0.0f);
  for (int a = 0; a < n; ++a) {
    const MergeArc& ma = arcs[a];
    if (a + 1 < n) {
      __builtin_prefetch(arcs[a + 1].par.mu);
      __builtin_prefetch(arcs[a + 1].par.sig);
    }
    const std::int32_t cnt = ma.par.cnt;
    mc.merges += static_cast<std::uint64_t>(cnt);
    const __m256 vam = _mm256_set1_ps(ma.am);
    const __m256 vas2 = _mm256_set1_ps(ma.as2);
    for (std::int32_t kk = 0; kk < cnt; kk += 8) {
      const int g = static_cast<int>(std::min<std::int32_t>(8, cnt - kk));
      __m256 pmu;
      __m256 psig;
      if (g == 8) {
        pmu = _mm256_loadu_ps(ma.par.mu + kk);
        psig = _mm256_loadu_ps(ma.par.sig + kk);
      } else {
        const __m256i mask = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(kTailMask + (8 - g)));
        pmu = _mm256_maskload_ps(ma.par.mu + kk, mask);
        psig = _mm256_maskload_ps(ma.par.sig + kk, mask);
      }
      // Same one-rounding-per-op sequence as the scalar flavor; the early
      // corner is the exact negation (sign-bit xor) of mu - nsigma*sig,
      // matching scalar -(mu - nsigma*sig) bit-for-bit including zeros.
      const __m256 mu = _mm256_add_ps(pmu, vam);
      const __m256 sig =
          _mm256_sqrt_ps(_mm256_add_ps(_mm256_mul_ps(psig, psig), vas2));
      const __m256 spread = _mm256_mul_ps(vns, sig);
      const __m256 arrv =
          early ? _mm256_xor_ps(_mm256_sub_ps(mu, spread), sign)
                : _mm256_add_ps(mu, spread);
      const float thr = group_threshold(dst);
      unsigned keep = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(arrv, _mm256_set1_ps(thr), _CMP_GT_OQ)));
      keep &= (g == 8) ? 0xFFu : ((1u << static_cast<unsigned>(g)) - 1u);
      CandGroup cg;
      _mm256_storeu_ps(cg.arr, arrv);
      _mm256_storeu_ps(cg.mu, mu);
      _mm256_storeu_ps(cg.sig, sig);
      mc.prunes +=
          static_cast<std::uint64_t>(g - __builtin_popcount(keep));
      insert_group_avx2(dst, cg, ma.par.sp + kk, keep, mc);
    }
  }
}

__attribute__((target("avx2"))) void backward_cand_avx2(
    const float* tk_mu, const float* tk_sig, const std::int32_t* tk_cnt,
    const std::int32_t* ci, std::int32_t stride, const float* amu,
    const float* asig, std::int32_t n, float nsigma, float* out_cand) {
  const __m256 vns = _mm256_set1_ps(nsigma);
  const __m256 vneginf = _mm256_set1_ps(kNegInf);
  const __m256i vstride = _mm256_set1_epi32(stride);
  const __m256i vzero = _mm256_setzero_si256();
  std::int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vci =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ci + i));
    const __m256i vcnt = _mm256_i32gather_epi32(tk_cnt, vci, 4);
    // Entry base of each parent = count index * stride; empty parents
    // gather stale plane bytes that the -inf blend below discards.
    const __m256i vbase = _mm256_mullo_epi32(vci, vstride);
    const __m256 pmu = _mm256_i32gather_ps(tk_mu, vbase, 4);
    const __m256 psig = _mm256_i32gather_ps(tk_sig, vbase, 4);
    const __m256 vam = _mm256_loadu_ps(amu + i);
    const __m256 vas = _mm256_loadu_ps(asig + i);
    const __m256 var =
        _mm256_add_ps(_mm256_mul_ps(psig, psig), _mm256_mul_ps(vas, vas));
    const __m256 cand = _mm256_add_ps(
        _mm256_add_ps(pmu, vam), _mm256_mul_ps(vns, _mm256_sqrt_ps(var)));
    const __m256 empty =
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(vcnt, vzero));
    _mm256_storeu_ps(out_cand + i, _mm256_blendv_ps(cand, vneginf, empty));
  }
  if (i < n) {
    backward_cand_scalar(tk_mu, tk_sig, tk_cnt, ci + i, stride, amu + i,
                         asig + i, n - i, nsigma, out_cand + i);
  }
}

namespace {

/// Cephes-style polynomial expf over a vector: max error ~2 ulp on the
/// softmax domain (inputs <= 0 here, since cand - max <= 0). Tolerance
/// mode only; never used on the bit-identity paths.
__attribute__((target("avx2"))) inline __m256 exp_ps(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
  __m256 fx = _mm256_add_ps(_mm256_mul_ps(x, log2e), half);
  fx = _mm256_floor_ps(fx);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, c1));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, c2));

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), half);
  y = _mm256_add_ps(_mm256_mul_ps(y, _mm256_mul_ps(x, x)),
                    _mm256_add_ps(x, one));

  const __m256i pow2 = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvttps_epi32(fx), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

}  // namespace

__attribute__((target("avx2"))) void softmax_fast_avx2(const float* cand,
                                                       std::int32_t n,
                                                       float inv_tau,
                                                       float* w) {
  // Max reduction: exact regardless of lane order (max is associative and
  // commutative over floats without NaN).
  __m256 vmax = _mm256_set1_ps(kNegInf);
  std::int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(cand + i));
  }
  alignas(32) float mlanes[8];
  _mm256_store_ps(mlanes, vmax);
  float m = mlanes[0];
  for (int l = 1; l < 8; ++l) m = std::max(m, mlanes[l]);
  for (; i < n; ++i) m = std::max(m, cand[i]);
  if (!std::isfinite(m)) {
    for (std::int32_t j = 0; j < n; ++j) w[j] = 0.0f;
    return;
  }

  // exp + reassociated denominator (8 partial sums): the ULP-drift source
  // this mode documents.
  const __m256 vm = _mm256_set1_ps(m);
  const __m256 vit = _mm256_set1_ps(inv_tau);
  const __m256 vneginf = _mm256_set1_ps(kNegInf);
  __m256 acc = _mm256_setzero_ps();
  for (i = 0; i + 8 <= n; i += 8) {
    const __m256 c = _mm256_loadu_ps(cand + i);
    // exp_ps clamps its argument, so a -inf candidate (empty parent)
    // would leak a denormal weight; force those lanes to exact zero.
    const __m256 e =
        _mm256_andnot_ps(_mm256_cmp_ps(c, vneginf, _CMP_EQ_OQ),
                         exp_ps(_mm256_mul_ps(_mm256_sub_ps(c, vm), vit)));
    _mm256_storeu_ps(w + i, e);
    acc = _mm256_add_ps(acc, e);
  }
  alignas(32) float slanes[8];
  _mm256_store_ps(slanes, acc);
  float denom = 0.0f;
  for (int l = 0; l < 8; ++l) denom += slanes[l];
  for (; i < n; ++i) {
    const float e = std::exp((cand[i] - m) * inv_tau);
    w[i] = e;
    denom += e;
  }
  if (denom <= 0.0f) return;
  const __m256 vinv = _mm256_set1_ps(1.0f / denom);
  for (i = 0; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(w + i, _mm256_mul_ps(_mm256_loadu_ps(w + i), vinv));
  }
  const float inv = 1.0f / denom;
  for (; i < n; ++i) w[i] *= inv;
}

#else  // !INSTA_SIMD_COMPILED

// INSTA_SIMD=OFF builds carry no AVX2 code; util::simd::resolve() never
// selects these, so reaching one is a dispatch bug.

void merge_arcs_avx2(const TopKView&, const MergeArc*, int, float, bool,
                     MergeCounters&) {
  util::check(false, "merge_arcs_avx2: AVX2 kernels not compiled in");
}

void backward_cand_avx2(const float*, const float*, const std::int32_t*,
                        const std::int32_t*, std::int32_t, const float*,
                        const float*, std::int32_t, float, float*) {
  util::check(false, "backward_cand_avx2: AVX2 kernels not compiled in");
}

void softmax_fast_avx2(const float*, std::int32_t, float, float*) {
  util::check(false, "softmax_fast_avx2: AVX2 kernels not compiled in");
}

#endif  // INSTA_SIMD_COMPILED

}  // namespace insta::core
