#pragma once

// Batch Top-K merge and backward-softmax kernels, each in two flavors:
// a scalar reference and an AVX2 version compiled with a function-level
// target attribute (no global -mavx2; see util/simd.hpp for dispatch).
//
// Bit-identity contract: for finite inputs the two flavors of every
// default-mode kernel produce byte-identical outputs and identical
// counters. The per-candidate math (mu = pmu + am, sig = sqrt(psig^2 +
// as2), arrival = +/-(mu -/+ nsigma*sig)) is element-wise — one rounding
// per operation, no reassociation — and the AVX2 bodies use only
// mul/add/sub/sqrt/xor intrinsics, which GCC never contracts into FMA, so
// every lane rounds exactly like the scalar expression. Only the
// explicitly "fast" kernels (softmax_fast_avx2) trade bit-identity for
// throughput; they are gated behind EngineOptions::fast_math_tolerance.

#include <cstdint>

#include "core/topk.hpp"

namespace insta::core {

/// One fanin arc's contribution to a pin merge: the parent's Top-K
/// snapshot (live store or scenario overlay) plus the arc's delay
/// distribution for the output transition being merged.
struct MergeArc {
  TopKConstView par;
  float am = 0.0f;   ///< arc delay mean, ps
  float as2 = 0.0f;  ///< arc delay variance (sigma^2), ps^2
};

/// Counters accumulated by the merge kernels; folded into the caller's
/// ForwardCounters. `prunes` counts candidates rejected either by the
/// 8-lane threshold pre-filter (arrival <= smallest kept entry of a full
/// list — such a candidate can never change the list, even when its
/// startpoint is already present) or by topk_insert's own full-list check.
struct MergeCounters {
  std::uint64_t merges = 0;
  std::uint64_t prunes = 0;
};

/// Merges the candidates of `n` fanin arcs into `dst` in arc order,
/// lane-group by lane-group (groups of 8 parent entries), with a
/// threshold pre-filter against the smallest kept arrival. Scalar
/// reference flavor; the group structure matches the AVX2 flavor exactly
/// so counters agree too.
void merge_arcs_scalar(const TopKView& dst, const MergeArc* arcs, int n,
                       float nsigma, bool early, MergeCounters& mc);

/// AVX2 flavor: 8 candidates per iteration (loadu for full groups,
/// maskload for the ragged tail so no buffer padding is required), vector
/// compare against the threshold, then ascending-lane scalar inserts of
/// the survivors. Call only when util::simd::resolve() said so.
void merge_arcs_avx2(const TopKView& dst, const MergeArc* arcs, int n,
                     float nsigma, bool early, MergeCounters& mc);

/// Dispatched entry point of the forward merge.
inline void merge_arcs(bool use_avx2, const TopKView& dst,
                       const MergeArc* arcs, int n, float nsigma, bool early,
                       MergeCounters& mc) {
  if (use_avx2) {
    merge_arcs_avx2(dst, arcs, n, nsigma, early, mc);
  } else {
    merge_arcs_scalar(dst, arcs, n, nsigma, early, mc);
  }
}

// ---- backward: per-slot softmax candidates ----------------------------------
//
// Phase 1 of run_backward scores every fanin slot with the LSE candidate
//   cand[s] = parent_top1_mu + amu[s] + nsigma * sqrt(parent_top1_sig^2 +
//             asig[s]^2)
// (-inf when the parent's Top-K list is empty). The parent top-1 entries
// are gathered through `ci` (per-slot count index of the parent, i.e.
// tk_pos[parent]*2 + prf) into the stride-padded SoA planes: the entry
// base of a parent is ci[s] * stride.

/// Scalar reference flavor over slots [0, n) of the given arrays.
void backward_cand_scalar(const float* tk_mu, const float* tk_sig,
                          const std::int32_t* tk_cnt, const std::int32_t* ci,
                          std::int32_t stride, const float* amu,
                          const float* asig, std::int32_t n, float nsigma,
                          float* out_cand);

/// AVX2 flavor: i32 gathers of parent count + top-1 mu/sigma, 8 slots per
/// iteration, scalar tail with identical math.
void backward_cand_avx2(const float* tk_mu, const float* tk_sig,
                        const std::int32_t* tk_cnt, const std::int32_t* ci,
                        std::int32_t stride, const float* amu,
                        const float* asig, std::int32_t n, float nsigma,
                        float* out_cand);

inline void backward_cand(bool use_avx2, const float* tk_mu,
                          const float* tk_sig, const std::int32_t* tk_cnt,
                          const std::int32_t* ci, std::int32_t stride,
                          const float* amu, const float* asig, std::int32_t n,
                          float nsigma, float* out_cand) {
  if (use_avx2) {
    backward_cand_avx2(tk_mu, tk_sig, tk_cnt, ci, stride, amu, asig, n,
                       nsigma, out_cand);
  } else {
    backward_cand_scalar(tk_mu, tk_sig, tk_cnt, ci, stride, amu, asig, n,
                         nsigma, out_cand);
  }
}

// ---- backward: fast-math softmax (tolerance mode only) ----------------------

/// Vectorized softmax over cand[0, n) into w[0, n): vector max reduction
/// (exact — max reassociates), polynomial exp (~2 ulp vs libm), 8-lane
/// reassociated denominator. NOT bit-identical to the scalar softmax; only
/// called when EngineOptions::fast_math_tolerance > 0. Writes 0 everywhere
/// and returns when every candidate is -inf (empty pin).
void softmax_fast_avx2(const float* cand, std::int32_t n, float inv_tau,
                       float* w);

}  // namespace insta::core
