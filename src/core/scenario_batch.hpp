#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "timing/types.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace insta::core {

/// How ScenarioBatch::evaluate maps scenarios onto the global thread pool.
enum class ScenarioStrategy : std::uint8_t {
  /// Scenario-parallel for B >= 4 (many small ECOs), level-parallel
  /// otherwise (few large ones).
  kAuto,
  /// One worker per scenario; each scenario propagates serially. Best when
  /// B is large and frontiers are small: every core retires whole
  /// scenarios with zero synchronization between levels.
  kScenarioParallel,
  /// Scenarios evaluated one at a time; each borrows the engine's
  /// level-parallel kernels for its own frontier. Best when B is small and
  /// the frontiers are wide enough to split.
  kLevelParallel,
};

struct ScenarioBatchOptions {
  ScenarioStrategy strategy = ScenarioStrategy::kAuto;
  /// Also record each re-evaluated endpoint's scenario slack in
  /// ScenarioResult::endpoint_changes (the sparse analogue of
  /// Engine::endpoint_slacks for a hypothetical child engine).
  bool collect_endpoints = false;
};

/// Scenario slack of one endpoint the scenario's frontier reached.
struct EndpointSlackChange {
  timing::EndpointId ep = timing::kNullEndpoint;
  float setup = 0.0f;
  /// +infinity when the engine was built without enable_hold.
  float hold = std::numeric_limits<float>::infinity();
};

/// Everything evaluate() reports about one scenario. A scenario's delta-set
/// is broadcast across every engine corner (the corner × delta-set cross
/// product): per-corner summaries land in setup_by_corner/hold_by_corner,
/// and setup/hold hold the cross-corner merged view (with one corner the
/// merged view IS corner 0, so single-corner callers read setup/hold
/// unchanged).
struct ScenarioResult {
  /// Cross-corner merged setup metrics (see Engine::merged_summary).
  SlackSummary setup;
  /// Zeros when the engine was built without enable_hold.
  SlackSummary hold;
  /// Per-corner summaries, indexed by CornerId.
  std::vector<SlackSummary> setup_by_corner;
  /// Empty when the engine was built without enable_hold.
  std::vector<SlackSummary> hold_by_corner;
  std::uint64_t frontier_pins = 0;       ///< pins re-merged on overlays
  std::uint64_t early_terminations = 0;  ///< re-merged pins left unchanged
  std::uint64_t endpoints_evaluated = 0;
  /// Copy-on-write overlay footprint of this scenario, summed over
  /// corners: private Top-K slots, delay overrides, startpoint overrides.
  std::size_t overlay_bytes = 0;
  /// Filled when ScenarioBatchOptions::collect_endpoints. Corner 0's view
  /// (the overlay frontier is corner-independent; per-corner endpoint
  /// slacks beyond corner 0 are a summary-level feature).
  std::vector<EndpointSlackChange> endpoint_changes;
};

/// Batched what-if evaluator: answers B independent "what if I applied this
/// delta-set?" queries against one parent Engine without ever mutating it.
///
/// Each scenario runs the engine's frontier-sparse kernel against a
/// copy-on-write overlay of the Top-K stores: a pin whose merged list
/// changes gets a private overlay slot; every clean pin reads the shared
/// baseline arrays. Memory is O(baseline + sum of scenario frontiers)
/// instead of B full engine clones, and per-scenario results — TNS, WNS,
/// violation counts, endpoint slacks — are bit-identical to sequentially
/// annotating the parent and calling run_forward_incremental() (the merge
/// and evaluation kernels are literally the same templates, and the delta
/// folds replay in the same order).
///
///   ScenarioBatch batch(engine);
///   std::vector<ScenarioResult> r = batch.evaluate(candidate_delta_sets);
///
/// The parent engine must be timing-clean for the duration of evaluate().
/// Workspaces are pooled and reused across evaluate() calls, so a batch
/// object held across an optimization loop allocates only on high-water
/// growth.
class ScenarioBatch {
 public:
  explicit ScenarioBatch(const Engine& engine,
                         ScenarioBatchOptions options = {});
  ~ScenarioBatch();
  ScenarioBatch(const ScenarioBatch&) = delete;
  ScenarioBatch& operator=(const ScenarioBatch&) = delete;

  /// Evaluates B delta-sets; result i corresponds to scenarios[i]. Every
  /// delta-set is validated up front (Engine::check_deltas) and the first
  /// error aborts the batch with a CheckError naming the scenario.
  ///
  /// When `flow_ids` is non-empty it must be scenario-parallel (size B):
  /// each scenario's "scenario.run" trace span emits a flow step with
  /// flow_ids[i], linking the span back to the originating request in the
  /// Chrome trace. Ids of 0 are skipped; purely observational — results are
  /// unaffected.
  [[nodiscard]] std::vector<ScenarioResult> evaluate(
      std::span<const std::span<const timing::ArcDelta>> scenarios,
      std::span<const std::uint64_t> flow_ids = {});

  /// Convenience overload for owning containers.
  [[nodiscard]] std::vector<ScenarioResult> evaluate(
      const std::vector<std::vector<timing::ArcDelta>>& scenarios);

  [[nodiscard]] const Engine& engine() const { return *engine_; }
  [[nodiscard]] const ScenarioBatchOptions& options() const {
    return options_;
  }

 private:
  struct Workspace;
  struct OverlayValues;

  Workspace& acquire_workspace();
  void release_workspace(Workspace& ws);
  void run_scenario(std::span<const timing::ArcDelta> deltas, Workspace& ws,
                    bool level_parallel, std::uint64_t flow_id,
                    ScenarioResult& out) const;
  /// One (scenario, corner) cell of the cross product: the whole
  /// annotate/walk/evaluate/replay pipeline against one corner's planes.
  /// Corners run back-to-back through the same workspace (reset between),
  /// so each cell replays exactly an independent single-corner pass.
  void run_scenario_corner(std::span<const timing::ArcDelta> deltas,
                           Workspace& ws, bool level_parallel, CornerId corner,
                           ScenarioResult& out) const;

  const Engine* engine_;
  ScenarioBatchOptions options_;
  /// Workspace pool: scenario workers check one out per chunk. All owned
  /// here; free_list_ holds the idle ones.
  util::Mutex pool_mutex_{"core.scenario_pool", util::lockrank::kScenarioPool};
  std::vector<std::unique_ptr<Workspace>> workspaces_
      INSTA_GUARDED_BY(pool_mutex_);
  std::vector<Workspace*> free_list_ INSTA_GUARDED_BY(pool_mutex_);
};

}  // namespace insta::core
