#pragma once

#include <cstdint>
#include <cstring>
#include <utility>

namespace insta::core {

/// A mutable view of one pin/transition's Top-K arrival store: four parallel
/// arrays of capacity `k` plus an external count. This mirrors the paper's
/// flat GPU layout (topK_{arrivals, means, stds, SPs}), where each CUDA
/// thread owns the K-slot slice of its output pin.
struct TopKView {
  float* arr = nullptr;       ///< corner arrival times, descending
  float* mu = nullptr;        ///< arrival means
  float* sig = nullptr;       ///< arrival sigmas
  std::int32_t* sp = nullptr; ///< startpoint tags (unique within the list)
  std::int32_t k = 0;         ///< capacity (the K of Top-K)
  std::int32_t* count = nullptr;  ///< current number of valid entries
};

/// A read-only snapshot view of one pin/transition's Top-K store with its
/// count resolved: what the value-parameterized merge/eval kernels consume,
/// whether the entries live in the engine's flat arrays or in a
/// ScenarioBatch copy-on-write overlay.
struct TopKConstView {
  const float* arr = nullptr;
  const float* mu = nullptr;
  const float* sig = nullptr;
  const std::int32_t* sp = nullptr;
  std::int32_t cnt = 0;
};

/// topk_equal between a freshly merged store and a const snapshot view:
/// same count and byte-identical entries.
inline bool topk_equal_const(const TopKView& a, const TopKConstView& b) {
  const std::int32_t n = *a.count;
  if (n != b.cnt) return false;
  const auto fb = static_cast<std::size_t>(n) * sizeof(float);
  const auto ib = static_cast<std::size_t>(n) * sizeof(std::int32_t);
  return std::memcmp(a.arr, b.arr, fb) == 0 &&
         std::memcmp(a.mu, b.mu, fb) == 0 &&
         std::memcmp(a.sig, b.sig, fb) == 0 &&
         std::memcmp(a.sp, b.sp, ib) == 0;
}

/// Algorithm 2 of the paper — the one maintained insert kernel (a
/// binary-heap variant used to exist for the Section III-E ablation; it
/// lost that ablation and was removed when the merge loop was vectorized).
/// Inserts a startpoint-tagged arrival into a fixed-size descending list
/// while keeping startpoints unique.
///
/// Startpoint-uniqueness invariant: at most one entry per startpoint tag
/// may exist in the list at any time. CPPR credit is a function of the
/// (startpoint, endpoint) pair, so two entries with the same tag would
/// describe the same credited path family and the smaller one could never
/// win a slack query — keeping only the per-startpoint maximum is what
/// makes K slots cover K *distinct* credit scenarios (the paper's core
/// trick). The scan of step 1 preserves the invariant on every insert;
/// callers (and the vectorized group pre-filter in topk_simd.cpp) may
/// drop candidates early only when the drop provably cannot violate the
/// per-startpoint maximum — e.g. a candidate at or below a full list's
/// minimum kept arrival loses against every entry, including one with its
/// own tag.
///
/// Step 1 — if `sp` is already present, update it when the new arrival
/// is larger (then bubble it up to restore descending order).
/// Step 2 — otherwise insert in sorted position, shifting entries down and
/// dropping the smallest when the list is full.
///
/// O(K) comparisons and shifts per call; with the K candidate entries of
/// each fanin arc this gives the O(K^2) per-merge cost analysed in
/// Section III-E.
///
/// Returns true when the candidate was pruned: the list was full and the
/// arrival did not beat the smallest kept entry (the Top-K filtering the
/// paper relies on for sub-linear growth of merge work).
inline bool topk_insert(const TopKView& v, float arr, float mu, float sig,
                        std::int32_t sp) {
  const std::int32_t n = *v.count;
  // Step 1: startpoint uniqueness check.
  for (std::int32_t j = 0; j < n; ++j) {
    if (v.sp[j] != sp) continue;
    if (arr > v.arr[j]) {
      v.arr[j] = arr;
      v.mu[j] = mu;
      v.sig[j] = sig;
      // Bubble up to restore descending order.
      std::int32_t i = j;
      while (i > 0 && v.arr[i - 1] < v.arr[i]) {
        std::swap(v.arr[i - 1], v.arr[i]);
        std::swap(v.mu[i - 1], v.mu[i]);
        std::swap(v.sig[i - 1], v.sig[i]);
        std::swap(v.sp[i - 1], v.sp[i]);
        --i;
      }
    }
    return false;  // exit once the existing startpoint is found
  }
  // Step 2: insert as a new startpoint if it qualifies.
  std::int32_t pos = n;
  if (n == v.k) {
    if (arr <= v.arr[n - 1]) return true;  // below the smallest kept entry
    pos = n - 1;
  } else {
    *v.count = n + 1;
  }
  // Shift smaller entries down and place the new one in sorted position.
  while (pos > 0 && v.arr[pos - 1] < arr) {
    v.arr[pos] = v.arr[pos - 1];
    v.mu[pos] = v.mu[pos - 1];
    v.sig[pos] = v.sig[pos - 1];
    v.sp[pos] = v.sp[pos - 1];
    --pos;
  }
  v.arr[pos] = arr;
  v.mu[pos] = mu;
  v.sig[pos] = sig;
  v.sp[pos] = sp;
  return false;
}

/// Bitwise equality of two Top-K stores: same count and byte-identical
/// entries. This is the value-change test of the frontier-sparse
/// incremental pass — a pin whose re-merged list compares equal cannot
/// change anything downstream, so its fanout is not re-dirtied. Bitwise
/// (not epsilon) comparison is what keeps the sparse pass provably
/// identical to a full re-sweep: the merge kernel is deterministic, so
/// unchanged inputs reproduce the exact same bytes.
inline bool topk_equal(const TopKView& a, const TopKView& b) {
  const std::int32_t n = *a.count;
  if (n != *b.count) return false;
  const auto fb = static_cast<std::size_t>(n) * sizeof(float);
  const auto ib = static_cast<std::size_t>(n) * sizeof(std::int32_t);
  return std::memcmp(a.arr, b.arr, fb) == 0 &&
         std::memcmp(a.mu, b.mu, fb) == 0 &&
         std::memcmp(a.sig, b.sig, fb) == 0 &&
         std::memcmp(a.sp, b.sp, ib) == 0;
}

/// Copies the valid entries (and count) of `src` into `dst`. Capacities
/// must match; only the first *src.count slots are written.
inline void topk_copy(const TopKView& dst, const TopKView& src) {
  const std::int32_t n = *src.count;
  const auto fb = static_cast<std::size_t>(n) * sizeof(float);
  const auto ib = static_cast<std::size_t>(n) * sizeof(std::int32_t);
  std::memcpy(dst.arr, src.arr, fb);
  std::memcpy(dst.mu, src.mu, fb);
  std::memcpy(dst.sig, src.sig, fb);
  std::memcpy(dst.sp, src.sp, ib);
  *dst.count = n;
}

}  // namespace insta::core
